"""Scalar loop descriptors: how workloads describe themselves to EV8.

The paper ran its benchmarks on an RTL-validated ASIM model of EV8 with
hand-tuned scalar inner loops.  Neither artifact is available, so each
workload instead *describes* its scalar inner loop — operation mix per
iteration, memory streams with their access patterns and footprints, and
the loop-carried recurrence — and the EV8 model computes throughput from
that description (see DESIGN.md, substitution 1).

The description language:

* :class:`MemStream` — one array the loop walks: bytes touched per
  iteration, footprint, and pattern (``STREAMING`` sequential walks,
  ``RANDOM`` uniformly random touches, ``RESIDENT`` re-walks a small
  structure every outer pass).
* :class:`ScalarLoopBody` — op counts per iteration, the streams, the
  recurrence-limited minimum cycles per iteration, and the iteration
  count for the whole kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import ConfigError


class AccessPattern(Enum):
    STREAMING = "sequential walk through the footprint"
    RANDOM = "uniformly random touches within the footprint"
    RESIDENT = "repeated walks of a structure that should stay cached"


@dataclass(frozen=True)
class MemStream:
    """One logical array referenced by the loop."""

    name: str
    #: bytes this stream reads per iteration (8 per double element)
    read_bytes_per_iter: float = 0.0
    #: bytes this stream writes per iteration
    write_bytes_per_iter: float = 0.0
    #: total bytes the stream touches across the kernel
    footprint_bytes: int = 0
    pattern: AccessPattern = AccessPattern.STREAMING
    #: stores that overwrite whole lines can use wh64 (no fill read)
    full_line_writes: bool = False

    def __post_init__(self) -> None:
        if self.read_bytes_per_iter < 0 or self.write_bytes_per_iter < 0:
            raise ConfigError(f"stream {self.name}: negative traffic")
        if self.footprint_bytes < 0:
            raise ConfigError(f"stream {self.name}: negative footprint")


@dataclass
class ScalarLoopBody:
    """Per-iteration operation mix + memory behavior of a scalar kernel."""

    name: str
    flops: float = 0.0
    int_ops: float = 0.0          # address arithmetic, compares, moves
    loads: float = 0.0
    stores: float = 0.0
    branches: float = 1.0         # the loop-closing branch
    prefetches: float = 0.0
    #: hard-to-predict branches: expected mispredictions per iteration
    #: (the cutoff test in moldyn is the canonical case — section 6)
    mispredicts_per_iter: float = 0.0
    #: loop-carried dependence: minimum cycles between iterations.
    #: Only genuine recurrences belong here — accumulator chains that a
    #: compiler would break with unrolled partial sums do not count.
    recurrence_cycles: float = 0.0
    streams: list[MemStream] = field(default_factory=list)
    iterations: int = 1

    def __post_init__(self) -> None:
        if self.iterations < 0:
            raise ConfigError(f"{self.name}: negative iteration count")

    @property
    def ops_per_iter(self) -> float:
        """All instructions per iteration (issue-slot demand)."""
        return (self.flops + self.int_ops + self.loads + self.stores +
                self.branches + self.prefetches)

    @property
    def mem_refs_per_iter(self) -> float:
        return self.loads + self.stores

    @property
    def total_flops(self) -> float:
        return self.flops * self.iterations

    @property
    def total_ops(self) -> float:
        return self.ops_per_iter * self.iterations

    def scaled(self, factor: float) -> "ScalarLoopBody":
        """Same loop body, ``factor`` x the iterations (for sweeps)."""
        return ScalarLoopBody(
            name=self.name, flops=self.flops, int_ops=self.int_ops,
            loads=self.loads, stores=self.stores, branches=self.branches,
            prefetches=self.prefetches,
            recurrence_cycles=self.recurrence_cycles,
            streams=list(self.streams),
            iterations=int(self.iterations * factor))
