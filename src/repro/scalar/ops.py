"""Scalar operation kinds for the EV8 baseline models.

The EV8 model consumes *loop descriptors* rather than full instruction
traces (see :mod:`repro.scalar.loopmodel`); these enums and the small
:class:`TraceOp` record are shared between the analytic model and the
out-of-order trace simulator used to cross-validate it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class OpKind(Enum):
    FLOP = "floating-point operation"
    IALU = "integer / address / loop-control operation"
    LOAD = "memory load"
    STORE = "memory store"
    PREFETCH = "software prefetch"
    BRANCH = "conditional branch"


#: default execution latencies in cycles (EV8-class core)
DEFAULT_LATENCY = {
    OpKind.FLOP: 4.0,
    OpKind.IALU: 1.0,
    OpKind.LOAD: 3.0,       # L1 hit; cache model adds miss time
    OpKind.STORE: 1.0,
    OpKind.PREFETCH: 1.0,
    OpKind.BRANCH: 1.0,
}


@dataclass
class TraceOp:
    """One dynamic operation for the OoO trace simulator.

    ``deps`` are indices of earlier trace ops whose results this op
    consumes; ``addr`` is the byte address for memory ops.
    """

    kind: OpKind
    deps: tuple[int, ...] = ()
    addr: int | None = None
    latency: float | None = None
    stream: str = ""

    def resolved_latency(self) -> float:
        if self.latency is not None:
            return self.latency
        return DEFAULT_LATENCY[self.kind]
