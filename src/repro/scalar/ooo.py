"""A small out-of-order core simulator for cross-validating the EV8
analytic model.

This is not the ASIM EV8 model (unavailable); it is a classic
trace-driven OoO engine with the structures that matter for loop
throughput: fetch width, ROB occupancy, FP/load/store ports, a two-level
cache, MSHR-limited misses and a bandwidth-limited memory bus.  The
tests drive the same loop through this engine and through
:class:`~repro.scalar.ev8.EV8Model` and require agreement within a
modest tolerance — the evidence that the bound model is a faithful
substitute.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import MachineConfig
from repro.mem.banks import make_tag_cache
from repro.scalar.loopmodel import AccessPattern, ScalarLoopBody
from repro.scalar.ops import OpKind, TraceOp
from repro.utils.bitops import line_address
from repro.utils.timeline import MultiPortTimeline, ResourceTimeline


@dataclass
class OoOResult:
    cycles: float
    instructions: int
    l1_misses: int = 0
    l2_misses: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class OoOCore:
    """Trace-driven out-of-order core with a two-level cache."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.l1 = make_tag_cache(config.l1_bytes, config.l1_ways,
                                 config.line_bytes, name="ooo-l1")
        self.l2 = make_tag_cache(config.l2_bytes, config.l2_ways,
                                 config.line_bytes, name="ooo-l2")
        self.fp_ports = MultiPortTimeline(config.scalar_flops_per_cycle, "fp")
        self.load_ports = MultiPortTimeline(config.scalar_load_ports, "ld")
        self.store_ports = MultiPortTimeline(config.scalar_store_ports, "st")
        self.mshrs = MultiPortTimeline(config.mshrs, "mshr")
        #: shared memory bus: one line occupies line/bw cycles
        self.membus = ResourceTimeline("membus")
        self.l1_misses = 0
        self.l2_misses = 0

    def _memory_latency(self, op: TraceOp, ready: float) -> float:
        """Latency of a load/store data access from the cache model."""
        cfg = self.config
        addr = line_address(op.addr or 0)
        hit1, _ = self.l1.access(addr, is_write=op.kind is OpKind.STORE)
        if hit1:
            return cfg.l1_load_use
        self.l1_misses += 1
        hit2, _ = self.l2.access(addr, is_write=op.kind is OpKind.STORE)
        if hit2:
            return cfg.l2_scalar_load_use
        self.l2_misses += 1
        line_cycles = cfg.line_bytes / cfg.rambus_bytes_per_cycle
        start = self.mshrs.reserve(ready, cfg.memory_latency_cycles)
        bus_start = self.membus.reserve(start, line_cycles)
        return (bus_start - ready) + line_cycles + cfg.memory_latency_cycles

    def run(self, trace: list[TraceOp]) -> OoOResult:
        cfg = self.config
        n = len(trace)
        completion = [0.0] * n
        commit = [0.0] * n
        for i, op in enumerate(trace):
            fetch = i / cfg.core_issue_width
            deps_ready = max((completion[d] for d in op.deps), default=0.0)
            rob_ok = commit[i - cfg.rob_entries] if i >= cfg.rob_entries else 0.0
            ready = max(fetch, deps_ready, rob_ok)
            if op.kind is OpKind.FLOP:
                start = self.fp_ports.reserve(ready, 1.0)
                completion[i] = start + op.resolved_latency()
            elif op.kind in (OpKind.LOAD, OpKind.PREFETCH):
                start = self.load_ports.reserve(ready, 1.0)
                completion[i] = start + self._memory_latency(op, start)
            elif op.kind is OpKind.STORE:
                start = self.store_ports.reserve(ready, 1.0)
                completion[i] = start + self._memory_latency(op, start)
            else:
                completion[i] = ready + op.resolved_latency()
            commit[i] = max(completion[i],
                            commit[i - 1] if i else 0.0,
                            (i / cfg.core_issue_width))
        cycles = commit[-1] if n else 0.0
        return OoOResult(cycles=cycles, instructions=n,
                         l1_misses=self.l1_misses, l2_misses=self.l2_misses)


def trace_from_loop(loop: ScalarLoopBody, iterations: int | None = None,
                    base_addr: int = 0x10_0000,
                    seed: int = 7) -> list[TraceOp]:
    """Synthesize an op trace from a loop descriptor.

    Per iteration: the loads issue first (walking each stream), the
    flops form a balanced chain consuming the loads, the stores consume
    the last flop, and an int-op tail models address update + branch.
    A nonzero ``recurrence_cycles`` threads a serial dependence through
    the iterations.
    """
    import random

    rng = random.Random(seed)
    iters = iterations if iterations is not None else loop.iterations
    trace: list[TraceOp] = []
    # lay streams out in distinct regions
    stream_base = {}
    cursor = base_addr
    for stream in loop.streams:
        stream_base[stream.name] = cursor
        cursor += max(stream.footprint_bytes, 64) + (1 << 16)
    offsets = {s.name: 0 for s in loop.streams}
    recurrence_head: int | None = None

    for it in range(iters):
        load_ids = []
        for stream in loop.streams:
            per_iter = stream.read_bytes_per_iter
            count = int(round(per_iter / 8.0))
            for _ in range(count):
                if stream.pattern is AccessPattern.RANDOM:
                    span = max(stream.footprint_bytes // 8, 1)
                    addr = stream_base[stream.name] + rng.randrange(span) * 8
                else:
                    addr = stream_base[stream.name] + \
                        offsets[stream.name] % max(stream.footprint_bytes, 8)
                    offsets[stream.name] += 8
                trace.append(TraceOp(OpKind.LOAD, addr=addr,
                                     stream=stream.name))
                load_ids.append(len(trace) - 1)
        flop_ids = []
        deps = tuple(load_ids)
        if recurrence_head is not None and loop.recurrence_cycles > 0:
            deps = deps + (recurrence_head,)
        for f in range(int(round(loop.flops))):
            trace.append(TraceOp(OpKind.FLOP, deps=deps))
            flop_ids.append(len(trace) - 1)
            if loop.recurrence_cycles > 0:
                deps = (len(trace) - 1,)
        if loop.recurrence_cycles > 0 and flop_ids:
            recurrence_head = flop_ids[-1]
        store_deps = tuple(flop_ids[-1:]) or tuple(load_ids[-1:])
        for stream in loop.streams:
            count = int(round(stream.write_bytes_per_iter / 8.0))
            for _ in range(count):
                addr = stream_base[stream.name] + \
                    offsets[stream.name] % max(stream.footprint_bytes, 8)
                offsets[stream.name] += 8
                trace.append(TraceOp(OpKind.STORE, deps=store_deps, addr=addr,
                                     stream=stream.name))
        for _ in range(int(round(loop.int_ops))):
            trace.append(TraceOp(OpKind.IALU))
        for _ in range(int(round(loop.branches))):
            trace.append(TraceOp(OpKind.BRANCH))
    return trace
