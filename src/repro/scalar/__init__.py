"""EV8 scalar baseline: loop descriptors, analytic model, OoO validator."""

from repro.scalar.ev8 import EV8Model, ScalarRunResult, TrafficEstimate
from repro.scalar.loopmodel import AccessPattern, MemStream, ScalarLoopBody
from repro.scalar.ooo import OoOCore, OoOResult, trace_from_loop
from repro.scalar.ops import OpKind, TraceOp

__all__ = [
    "AccessPattern",
    "EV8Model",
    "MemStream",
    "OoOCore",
    "OoOResult",
    "OpKind",
    "ScalarLoopBody",
    "ScalarRunResult",
    "TraceOp",
    "TrafficEstimate",
    "trace_from_loop",
]
