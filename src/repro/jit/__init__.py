"""Trace JIT for the simulation loop (ROADMAP item 3).

Detects hot basic blocks in fully-unrolled kernel programs
(:mod:`repro.jit.recorder`), compiles each into a fused batched-numpy
trace executing many loop iterations per Python dispatch
(:mod:`repro.jit.compiler`), and installs it behind seams in both the
functional and timing simulators with regime guards and a
deoptimization path back to the reference interpreter
(:mod:`repro.jit.runtime`).  See docs/PERF.md for the design and how to
read the counters.

Control surface:

* ``REPRO_JIT=off`` (or ``0``) in the environment disables the JIT —
  the escape hatch CI uses to prove byte-identical reports;
* :func:`set_enabled` is the CLI override (``--jit``/``--no-jit``); it
  also writes ``REPRO_JIT`` so pool workers inherit the choice;
* the default is **on**.
"""

from __future__ import annotations

import contextlib
import os

from repro.jit.runtime import STATS, clear_caches

__all__ = ["enabled", "set_enabled", "disabled", "clear_caches", "STATS"]

_FORCED: bool | None = None


def enabled() -> bool:
    """True when the trace JIT should be used (CLI override > env > on)."""
    if _FORCED is not None:
        return _FORCED
    env = os.environ.get("REPRO_JIT", "").strip().lower()
    return env not in ("off", "0", "no", "false")


def set_enabled(value: bool | None) -> None:
    """CLI override; ``None`` leaves the environment default in place.

    The choice is exported via ``REPRO_JIT`` so spawned pool workers
    (which re-import everything) inherit it.
    """
    global _FORCED
    if value is None:
        return
    _FORCED = bool(value)
    os.environ["REPRO_JIT"] = "on" if value else "off"


@contextlib.contextmanager
def disabled():
    """Force the JIT off for a block, in-process only.

    Unlike :func:`set_enabled` this does not touch ``REPRO_JIT``, so it
    cannot leak into spawned workers — it exists for same-process
    differential measurements (the bench's ``jit_off`` sidecar) and
    tests.
    """
    global _FORCED
    previous = _FORCED
    _FORCED = False
    try:
        yield
    finally:
        _FORCED = previous
