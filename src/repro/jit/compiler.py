"""Trace compiler: batched numpy execution of one recorded region.

A compiled trace executes ``R`` loop iterations of a region per Python
dispatch, slot-major: for each of the ``period`` slots, one numpy
operation covers all ``R`` iterations at once.  That reordering is only
legal under the dataflow and memory-disjointness rules below, so the
compiler's job is mostly *proving eligibility*; the emitted "code" is a
list of small step closures over a batch context.

Value model (the batch environment):

* a vector register is ``("inv", (vl,) uint64)`` — loop-invariant — or
  ``("rows", (R, vl) uint64)`` — one row per iteration;
* a scalar register is a Python int (invariant) or an ``(R,)`` uint64
  array (one value per iteration, e.g. a batched ``ldq``).

Eligibility (anything else deoptimizes to the interpreter):

* ops: SC ``lda/addq/subq/mulq/sll/ldq``; VC ``setvl``/``setvs``
  immediate-form re-asserting the entry regime; SM loads/stores
  (including prefetches); every VV/VS operate/unary/FMAC.  No RM
  (gathers reorder through the CR box), no ``setvm``/masking, no
  ``stq``/``wh64``/``drainm``, no cross-element VC ops.
* dataflow (via :func:`repro.analysis.depgraph.block_dataflow`): every
  read is intra-iteration, loop-invariant, or a same-slot accumulator
  chain (FMAC ``vd += va*b`` or a ``vd == va`` binop), which batches as
  a sequential ``np.ufunc.accumulate`` left fold — bit-identical to the
  interpreter's per-iteration order.  Scalar loop-carried reads and
  memory base registers written in-region are rejected.
* memory: per-slot footprints are affine intervals; store/load pairs
  must be disjoint across all iteration offsets (a same-address
  load-before-store pair at offset 0 is the one legal overlap — the
  batch reads before it commits, like the interpreter).  Checked
  symbolically here and re-checked against live base registers at every
  region entry.

The timing half does not batch the machine model: it replays the
interpreter's per-instruction scheduling with precomputed slot metadata
(see :mod:`repro.jit.runtime`), calling the real ``plan()``/L2/coherency
paths so cycles stay bit-identical by construction.  What it *skips* is
the plan-cache invalidation on in-region ``setvl``/``setvs``: those
re-assert the guarded regime, so invalidation would only thrash the
PR 5 plan cache (cycles are unaffected — a replayed plan is identical
to a rebuilt one, which the plan-cache differential suite proves).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.depgraph import block_dataflow
from repro.isa.instructions import Group, TimingClass
from repro.isa.registers import MVL
from repro.isa.semantics import (
    _FP_BINOPS,
    _FP_COMPARES,
    _INT_BINOPS,
    float_to_bits,
)

_MASK = (1 << 64) - 1

_ALLOWED_SC = ("lda", "addq", "subq", "mulq", "sll", "ldq")

#: binop suffixes whose ``f(x, acc)`` equals ``f(acc, x)`` — the only
#: ones an accumulator chain may use in the ``vd == vb`` orientation
_COMMUTATIVE = ("addq", "mulq", "and", "bis", "xor", "addt", "mult",
                "maxt", "mint")

#: suffix -> ufunc usable as a sequential left fold over iteration rows
_ACC_UFUNCS = {
    "addq": np.add, "subq": np.subtract, "mulq": np.multiply,
    "and": np.bitwise_and, "bis": np.bitwise_or, "xor": np.bitwise_xor,
    "addt": np.add, "subt": np.subtract, "mult": np.multiply,
    "maxt": np.maximum, "mint": np.minimum,
}

_FP_ACC = ("addt", "subt", "mult", "maxt", "mint")


class TraceReject(Exception):
    """Region cannot be compiled; carries the reason (for observability)."""


class _Ctx:
    """Per-entry batch state: environment, deferred stores, constants."""

    __slots__ = ("R", "vl", "state", "mem", "vreg", "sreg", "stores",
                 "iota", "stride_row")

    def __init__(self, R, vl, vs, state, mem):
        self.R = R
        self.vl = vl
        self.state = state
        self.mem = mem
        self.vreg = {}
        self.sreg = {}
        self.stores = []
        self.iota = np.arange(R, dtype=np.uint64)
        self.stride_row = (np.uint64(vs & _MASK)
                           * np.arange(vl, dtype=np.uint64))


def _vread(ctx, reg):
    e = ctx.vreg.get(reg)
    if e is None:
        if reg == 31:
            arr = np.zeros(ctx.vl, dtype=np.uint64)
        else:
            arr = ctx.state.vregs._regs[reg][:ctx.vl].copy()
        e = ("inv", arr)
        ctx.vreg[reg] = e
    return e


def _sread(ctx, reg):
    try:
        return ctx.sreg[reg]
    except KeyError:
        val = ctx.state.sregs.read(reg)
        ctx.sreg[reg] = val
        return val


class MemSlot:
    """Symbolic footprint of one memory slot, for disjointness checks.

    ``disp1`` is the displacement of the slot's *first batched*
    iteration; the interval advances by ``delta`` per iteration.
    """

    __slots__ = ("slot", "is_store", "is_scalar", "is_prefetch", "rb",
                 "disp1", "delta")

    def __init__(self, slot, is_store, is_scalar, is_prefetch, rb,
                 disp1, delta):
        self.slot = slot
        self.is_store = is_store
        self.is_scalar = is_scalar
        self.is_prefetch = is_prefetch
        self.rb = rb
        self.disp1 = disp1
        self.delta = delta

    def interval(self, sregs, vl, vs):
        """[lo, hi) byte interval at the first batched iteration."""
        base = sregs.read(self.rb) + self.disp1
        if self.is_scalar:
            return base, base + 8
        span = vs * (vl - 1)
        lo = base + min(0, span)
        hi = base + max(0, span) + 8
        return lo, hi


def _overlap_offsets(lo_s, hi_s, lo_a, hi_a, delta, R):
    """Iteration offsets d in [-(R-1), R-1] where the two equal-delta
    intervals overlap (A shifted by d iterations relative to S)."""
    out = []
    for d in range(-(R - 1), R):
        shift = d * delta
        if lo_s < hi_a + shift and lo_a + shift < hi_s:
            out.append(d)
    return out


def check_disjoint(mem_slots, sregs, vl, vs, R) -> bool:
    """True when slot-major batched execution preserves memory order.

    Run at every region entry against live base-register values (the
    compile-time check would go stale if a base changed between runs).
    """
    slots = [m for m in mem_slots if not m.is_prefetch]
    stores = [m for m in slots if m.is_store]
    if not stores:
        return True
    ivals = {m.slot: m.interval(sregs, vl, vs) for m in slots}
    for s in stores:
        lo_s, hi_s = ivals[s.slot]
        for a in slots:
            if a.slot == s.slot:
                # self-pair: any cross-iteration overlap is rejected
                # (commit order inside one fancy-store is not the
                # iteration order the interpreter guarantees)
                if a.delta != 0 and abs(a.delta) < hi_s - lo_s:
                    return False
                if a.delta == 0:
                    return False if R > 1 else True
                continue
            lo_a, hi_a = ivals[a.slot]
            if a.delta == s.delta:
                for d in _overlap_offsets(lo_s, hi_s, lo_a, hi_a,
                                          s.delta, R):
                    if d == 0 and not a.is_store and a.slot < s.slot:
                        # the batch reads every load before any store
                        # commits, exactly like the interpreter's
                        # load-then-store program order
                        continue
                    return False
            else:
                # different strides: conservative swept bounding boxes
                box_s = (lo_s + min(0, (R - 1) * s.delta),
                         hi_s + max(0, (R - 1) * s.delta))
                box_a = (lo_a + min(0, (R - 1) * a.delta),
                         hi_a + max(0, (R - 1) * a.delta))
                if box_s[0] < box_a[1] and box_a[0] < box_s[1]:
                    return False
    return True


class SlotTiming:
    """Precomputed per-slot inputs of the interpreter's scheduling step."""

    __slots__ = ("route", "is_sc", "vsrc", "ssrc", "transfer",
                 "needs_vl", "needs_vs")

    def __init__(self, route, is_sc, vsrc, ssrc, transfer, needs_vl,
                 needs_vs):
        self.route = route
        self.is_sc = is_sc
        self.vsrc = vsrc
        self.ssrc = ssrc
        self.transfer = transfer
        self.needs_vl = needs_vl
        self.needs_vs = needs_vs


class CompiledTrace:
    """One region compiled against a vl/vs regime."""

    __slots__ = ("period", "vl", "vs", "steps", "slots_timing",
                 "mem_slots", "written_vregs", "written_sregs",
                 "counts_inc", "tag_inc", "plan_store")

    def __init__(self, period, vl, vs, steps, slots_timing, mem_slots,
                 written_vregs, written_sregs, counts_inc, tag_inc):
        self.period = period
        self.vl = vl
        self.vs = vs
        self.steps = steps
        self.slots_timing = slots_timing
        self.mem_slots = mem_slots
        self.written_vregs = written_vregs
        self.written_sregs = written_sregs
        self.counts_inc = counts_inc
        self.tag_inc = tag_inc
        #: address-plan cache entries harvested after a timing batch,
        #: re-seeded into the (per-processor) plan cache before the next
        #: one — a fresh processor then *replays* every strided plan the
        #: region needs instead of rebuilding them (see runtime).
        #: Partitioned by the generators' pump regime: the trace is
        #: shared across machine configs (it is keyed by program
        #: identity), and a stride-1 plan built with the pump enabled is
        #: a different plan from the reordered one a pump-less config
        #: must build.
        self.plan_store = {True: {}, False: {}}


# -- batched functional step builders ---------------------------------------


def _fetch_vector(reg):
    def fetch(ctx):
        return _vread(ctx, reg)
    return fetch


def _fetch_const(bits):
    row = None

    def fetch(ctx):
        nonlocal row
        if row is None or row.shape[0] != ctx.vl:
            row = np.full(ctx.vl, bits, dtype=np.uint64)
        return ("inv", row)
    return fetch


def _fetch_sreg_scalar(reg):
    def fetch(ctx):
        val = _sread(ctx, reg)
        if isinstance(val, np.ndarray):
            return ("col", val)
        return ("inv", np.full(ctx.vl, val & _MASK, dtype=np.uint64))
    return fetch


def _view_fp(kind, arr):
    f = arr.view(np.float64)
    return f[:, None] if kind == "col" else f


def _view_int(kind, arr):
    return arr[:, None] if kind == "col" else arr


def _result_kind(*kinds):
    return "rows" if any(k != "inv" for k in kinds) else "inv"


def _make_binop(vd, fetch_a, fetch_b, suffix):
    int_fn = _INT_BINOPS.get(suffix)
    cmp_fn = _FP_COMPARES.get(suffix)
    fp_fn = _FP_BINOPS.get(suffix) if cmp_fn is None else None

    def step(ctx):
        ka, a = fetch_a(ctx)
        kb, b = fetch_b(ctx)
        if int_fn is not None:
            result = int_fn(_view_int(ka, a), _view_int(kb, b))
        elif cmp_fn is not None:
            result = cmp_fn(_view_fp(ka, a),
                            _view_fp(kb, b)).astype(np.uint64)
        else:
            with np.errstate(divide="ignore", invalid="ignore",
                             over="ignore"):
                result = fp_fn(_view_fp(ka, a),
                               _view_fp(kb, b)).view(np.uint64)
        ctx.vreg[vd] = (_result_kind(ka, kb), result)
    return step


def _make_unary(vd, fetch_a, op):
    def step(ctx):
        ka, a = fetch_a(ctx)
        if op == "vsqrtt":
            with np.errstate(invalid="ignore"):
                result = np.sqrt(a.view(np.float64)).view(np.uint64)
        elif op == "vcvtqt":
            result = a.view(np.int64).astype(np.float64).view(np.uint64)
        elif op == "vcvttq":
            f = a.view(np.float64)
            with np.errstate(invalid="ignore"):
                result = np.trunc(f)
                result = np.where(np.isfinite(result), result, 0.0)
                result = result.astype(np.int64).view(np.uint64)
        else:  # vnot
            result = ~a
        ctx.vreg[vd] = (ka, result)
    return step


def _rows_of(ctx, kind, arr):
    """Materialize an operand as an (R, vl) float64 row matrix."""
    f = arr.view(np.float64)
    if kind == "rows":
        return f
    if kind == "col":
        return np.broadcast_to(f[:, None], (ctx.R, ctx.vl))
    return np.broadcast_to(f, (ctx.R, ctx.vl))


def _make_madd(vd, fetch_a, fetch_b, carried):
    def step(ctx):
        ka, a = fetch_a(ctx)
        kb, b = fetch_b(ctx)
        with np.errstate(over="ignore", invalid="ignore"):
            if carried:
                # sequential left fold from the entry accumulator: the
                # same adds in the same order as the interpreter
                terms = (_view_fp(ka, a) * _view_fp(kb, b))
                if terms.ndim == 1 or terms.shape[0] != ctx.R:
                    terms = np.broadcast_to(terms, (ctx.R, ctx.vl))
                acc0 = _vread(ctx, vd)[1].view(np.float64)
                chain = np.concatenate([acc0[None, :], terms])
                result = np.add.accumulate(chain, axis=0)[1:]
            else:
                kacc, acc = _vread(ctx, vd)
                result = (_view_fp(kacc, acc)
                          + _view_fp(ka, a) * _view_fp(kb, b))
        ctx.vreg[vd] = ("rows" if carried
                        else _result_kind(ka, kb, kacc), result.view(np.uint64))
    return step


def _make_acc_binop(vd, fetch_x, suffix):
    ufunc = _ACC_UFUNCS[suffix]
    is_fp = suffix in _FP_ACC

    def step(ctx):
        kx, x = fetch_x(ctx)
        if is_fp:
            rows = _rows_of(ctx, kx, x)
            acc0 = _vread(ctx, vd)[1].view(np.float64)
        else:
            rows = x if kx == "rows" else np.broadcast_to(
                _view_int(kx, x), (ctx.R, ctx.vl))
            acc0 = _vread(ctx, vd)[1]
        chain = np.concatenate([acc0[None, :], rows])
        result = ufunc.accumulate(chain, axis=0)[1:]
        if is_fp:
            result = result.view(np.uint64)
        ctx.vreg[vd] = ("rows", result)
    return step


def _addr_matrix(ctx, rb, disp1, delta):
    base = (_sread(ctx, rb) + disp1) & _MASK
    bases = np.uint64(base) + np.uint64(delta & _MASK) * ctx.iota
    return (bases[:, None] + ctx.stride_row).ravel()


def _make_vload(vd, rb, disp1, delta):
    def step(ctx):
        addrs = _addr_matrix(ctx, rb, disp1, delta)
        vals = ctx.mem.read_quads(addrs).reshape(ctx.R, ctx.vl)
        ctx.vreg[vd] = ("rows", vals)
    return step


def _make_vstore(va, rb, disp1, delta):
    def step(ctx):
        kind, data = _vread(ctx, va)
        addrs = _addr_matrix(ctx, rb, disp1, delta)
        if kind == "inv":
            vals = np.broadcast_to(data, (ctx.R, ctx.vl)).ravel()
        else:
            vals = data.ravel()
        ctx.mem.validate_quads(addrs)
        ctx.stores.append((addrs, vals))
    return step


def _make_ldq(rd, rb, disp1, delta):
    def step(ctx):
        base = (_sread(ctx, rb) + disp1) & _MASK
        addrs = np.uint64(base) + np.uint64(delta & _MASK) * ctx.iota
        vals = ctx.mem.read_quads(addrs)
        if rd != 31:
            ctx.sreg[rd] = vals
    return step


def _wrap_scalar(val):
    if isinstance(val, np.ndarray):
        return val
    return val & _MASK


def _s_arith(op, a, b):
    """Scalar ALU on int-or-(R,)-array operands, 64-bit wrapping."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if not isinstance(a, np.ndarray):
            a = np.uint64(a & _MASK)
        if not isinstance(b, np.ndarray):
            b = np.uint64(b & _MASK)
        if op == "addq":
            return a + b
        if op == "subq":
            return a - b
        if op == "mulq":
            return a * b
        return a << (b & np.uint64(63))
    if op == "addq":
        return (a + b) & _MASK
    if op == "subq":
        return (a - b) & _MASK
    if op == "mulq":
        return (a * b) & _MASK
    return (a << (b & 63)) & _MASK


def _make_scalar(instr):
    op = instr.op
    rd, ra, rb, imm = instr.rd, instr.ra, instr.rb, instr.imm
    if op == "lda":
        if isinstance(imm, float):
            if rb is not None and rb != 31:
                # the interpreter requires base == 0 for float literals
                raise TraceReject("lda float immediate with base register")
            bits = float_to_bits(imm)

            def step(ctx):
                if rd != 31:
                    ctx.sreg[rd] = bits
        else:
            def step(ctx):
                base = _sread(ctx, rb) if rb is not None else 0
                if rd != 31:
                    ctx.sreg[rd] = _wrap_scalar(_s_arith("addq", base,
                                                         int(imm)))
        return step

    def step(ctx):
        a = _sread(ctx, ra)
        b = int(imm) if imm is not None else _sread(ctx, rb)
        if rd != 31:
            ctx.sreg[rd] = _wrap_scalar(_s_arith(op, a, b))
    return step


# -- compilation ------------------------------------------------------------


def _timing_slot(instr):
    d = instr.definition
    vsrc = tuple(r for r in instr.vreg_reads()
                 if not (d.is_store and r == instr.va))
    ssrc = tuple(r for r in (instr.ra, instr.rb) if r is not None)
    if d.group is Group.SC:
        route = "sc"
    elif d.group is Group.VC:
        route = instr.op                     # "setvl" | "setvs"
    elif d.is_memory:
        route = "mem"
    else:
        route = "arith"
    return SlotTiming(
        route=route, is_sc=d.group is Group.SC, vsrc=vsrc, ssrc=ssrc,
        transfer=d.group is not Group.SC,
        needs_vl=d.group in (Group.VV, Group.VS, Group.SM, Group.RM),
        needs_vs=d.is_memory and not d.is_indexed)


def _operand_fetchers(instr, flow, m, fp_imm=None):
    """(fetch_a, fetch_b) for an operate's two sources; validates reads."""
    d = instr.definition
    fetch_a = _fetch_vector(instr.va)
    if d.group is Group.VV and "vb" in d.fields:
        fetch_b = _fetch_vector(instr.vb)
    elif instr.ra is not None:
        if flow.sreg_kinds[m].get(instr.ra) == "carried":
            raise TraceReject(f"slot {m}: carried scalar operand "
                              f"r{instr.ra}")
        fetch_b = _fetch_sreg_scalar(instr.ra)
    else:
        if fp_imm is None:
            suffix = instr.op[2:]
            fp_imm = suffix in _FP_BINOPS or suffix in _FP_COMPARES
        bits = (float_to_bits(float(instr.imm)) if fp_imm
                else int(instr.imm) & _MASK)
        fetch_b = _fetch_const(bits)
    return fetch_a, fetch_b


def compile_region(program, region, state) -> CompiledTrace:
    """Compile ``region`` against the current vl/vs regime.

    Raises :class:`TraceReject` with the reason when the region cannot
    be batched.  The caller interprets the region's *first* iteration
    before calling, so ``state`` already reflects the regime the batched
    iterations run under.
    """
    vl = state.ctrl.vl
    vs = state.ctrl.vs
    if vl == 0:
        raise TraceReject("vl == 0 regime")
    p = region.period
    start = region.start
    slots = [program[start + i] for i in range(p)]
    flow = block_dataflow(slots)

    steps = []
    mem_slots = []
    written_vregs = []
    written_sregs = []

    for m, instr in enumerate(slots):
        d = instr.definition
        op = instr.op
        delta = region.deltas[m]
        disp1 = program[start + p + m].disp
        if instr.masked:
            raise TraceReject(f"slot {m}: masked {op}")

        if d.group is Group.SC:
            if op not in _ALLOWED_SC:
                raise TraceReject(f"slot {m}: scalar {op}")
            for reg, kind in flow.sreg_kinds[m].items():
                if kind == "carried":
                    raise TraceReject(f"slot {m}: {op} carried r{reg}")
            if op == "ldq":
                if instr.rb in flow.sreg_writers:
                    raise TraceReject(f"slot {m}: ldq base r{instr.rb} "
                                      "written in-region")
                steps.append(_make_ldq(instr.rd, instr.rb, disp1, delta))
                mem_slots.append(MemSlot(m, False, True, False,
                                         instr.rb, disp1, delta))
            else:
                if delta != 0:
                    raise TraceReject(f"slot {m}: {op} with varying disp")
                steps.append(_make_scalar(instr))
            if instr.rd is not None and instr.rd != 31:
                written_sregs.append(instr.rd)

        elif d.group is Group.VC:
            if op not in ("setvl", "setvs") or instr.ra is not None:
                raise TraceReject(f"slot {m}: control {op}")
            if op == "setvl":
                if min(int(instr.imm), MVL) != vl:
                    raise TraceReject(f"slot {m}: setvl {instr.imm} "
                                      f"!= regime vl {vl}")
            else:
                raw = int(instr.imm) & _MASK
                if raw >= 1 << 63:
                    raw -= 1 << 64
                if raw != vs:
                    raise TraceReject(f"slot {m}: setvs {instr.imm} "
                                      f"!= regime vs {vs}")
            # functional no-op: it re-asserts the guarded entry regime

        elif d.group is Group.RM:
            raise TraceReject(f"slot {m}: indexed memory {op}")

        elif d.group is Group.SM:
            if instr.rb in flow.sreg_writers:
                raise TraceReject(f"slot {m}: {op} base r{instr.rb} "
                                  "written in-region")
            if instr.is_prefetch:
                steps.append(None)           # no architectural effect
                mem_slots.append(MemSlot(m, False, False, True,
                                         instr.rb, disp1, delta))
            elif d.is_load:
                steps.append(_make_vload(instr.vd, instr.rb, disp1,
                                         delta))
                mem_slots.append(MemSlot(m, False, False, False,
                                         instr.rb, disp1, delta))
                written_vregs.append(instr.vd)
            else:
                if flow.vreg_kinds[m].get(instr.va) == "carried":
                    raise TraceReject(f"slot {m}: store of carried "
                                      f"v{instr.va}")
                steps.append(_make_vstore(instr.va, instr.rb, disp1,
                                          delta))
                mem_slots.append(MemSlot(m, True, False, False,
                                         instr.rb, disp1, delta))

        else:                                # VV / VS operate
            if instr.vd is None or instr.vd == 31:
                raise TraceReject(f"slot {m}: {op} writing v31")
            vd = instr.vd
            carried_acc = flow.vreg_kinds[m].get(vd) == "carried"
            if carried_acc and flow.vreg_writers.get(vd) != (m,):
                raise TraceReject(f"slot {m}: accumulator v{vd} has "
                                  "multiple writers")
            for reg, kind in flow.vreg_kinds[m].items():
                if kind == "carried" and reg != vd:
                    raise TraceReject(f"slot {m}: carried read v{reg}")
            if op in ("vvmaddt", "vsmaddt"):
                if carried_acc and (instr.va == vd or instr.vb == vd):
                    raise TraceReject(f"slot {m}: madd multiplicand "
                                      "aliases carried accumulator")
                fetch_a, fetch_b = _operand_fetchers(instr, flow, m,
                                                     fp_imm=True)
                steps.append(_make_madd(vd, fetch_a, fetch_b,
                                        carried_acc))
            elif "vb" in d.fields or "scalar" in d.fields:
                suffix = op[2:]
                if carried_acc:
                    if suffix not in _ACC_UFUNCS:
                        raise TraceReject(f"slot {m}: no accumulate "
                                          f"fold for {op}")
                    if vd == instr.va and ("vb" in d.fields
                                           or "scalar" in d.fields):
                        # out = f(acc, x): the natural left fold
                        if d.group is Group.VV and vd == instr.vb:
                            raise TraceReject(f"slot {m}: {op} with "
                                              "vd == va == vb")
                        if d.group is Group.VV:
                            fetch_x = _fetch_vector(instr.vb)
                        else:
                            _a, fetch_x = _operand_fetchers(instr, flow,
                                                            m)
                    elif d.group is Group.VV and vd == instr.vb:
                        # out = f(x, acc): fold only if commutative
                        if suffix not in _COMMUTATIVE:
                            raise TraceReject(f"slot {m}: {op} "
                                              "non-commutative vd==vb")
                        fetch_x = _fetch_vector(instr.va)
                    else:
                        raise TraceReject(f"slot {m}: {op} carried vd "
                                          "not an operand")
                    steps.append(_make_acc_binop(vd, fetch_x, suffix))
                else:
                    fetch_a, fetch_b = _operand_fetchers(instr, flow, m)
                    steps.append(_make_binop(vd, fetch_a, fetch_b,
                                             suffix))
            else:                            # unary
                if carried_acc:
                    raise TraceReject(f"slot {m}: carried unary {op}")
                steps.append(_make_unary(vd, _fetch_vector(instr.va),
                                         op))
            written_vregs.append(vd)

    # symbolic disjointness with the *compile-time* bases; re-checked
    # against live registers at every entry (see runtime)
    if not check_disjoint(mem_slots, state.sregs, vl, vs,
                          max(region.reps - 1, 1)):
        raise TraceReject("memory slots not provably disjoint")

    counts_inc, tag_inc = _accounting(slots, vl)
    seen: set = set()
    written_vregs = [r for r in written_vregs
                     if not (r in seen or seen.add(r))]
    seen = set()
    written_sregs = [r for r in written_sregs
                     if not (r in seen or seen.add(r))]
    return CompiledTrace(
        period=p, vl=vl, vs=vs,
        steps=[s for s in steps if s is not None],
        slots_timing=[_timing_slot(i) for i in slots],
        mem_slots=mem_slots,
        written_vregs=tuple(written_vregs),
        written_sregs=tuple(written_sregs),
        counts_inc=counts_inc, tag_inc=tag_inc)


def _accounting(slots, vl):
    """Per-iteration OperationCounts increments (mirrors ``_account``)."""
    inc = {"flops": 0, "memory_elements": 0, "other": 0,
           "scalar_instructions": 0, "vector_instructions": 0,
           "prefetch_elements": 0}
    tags: dict = {}

    def bump(tag, amount):
        if tag:
            tags[tag] = tags.get(tag, 0) + amount

    for instr in slots:
        d = instr.definition
        if d.group is Group.SC:
            inc["scalar_instructions"] += 1
            inc["other"] += 1
            bump(instr.tag, 1)
            continue
        inc["vector_instructions"] += 1
        if instr.is_prefetch:
            inc["prefetch_elements"] += vl
            continue
        if d.is_memory:
            inc["memory_elements"] += vl
            bump(instr.tag, vl)
        elif d.flops:
            inc["flops"] += vl * d.flops
            bump(instr.tag, vl * d.flops)
        elif d.timing in (TimingClass.CTRL,):
            inc["other"] += 1
            bump(instr.tag, 1)
        else:
            inc["other"] += vl
            bump(instr.tag, vl)
    return inc, tags
