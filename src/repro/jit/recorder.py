"""Trace recorder: find hot basic blocks in a straight-line program.

Workload programs are fully unrolled (the loop control ran on the EV8
core in the paper; our :class:`~repro.isa.builder.KernelBuilder` emits
the unrolled body), so a "hot loop" appears as a run of iterations whose
instructions are identical except for their byte displacements, which
advance by a fixed per-slot delta every iteration — e.g. linpack's
trailing update emits ``[setvl; vloadq; ldq; vloadq; vsmult; vvsubt;
vstoreq]`` once per column with every ``disp`` marching by one column
stride.

The recorder detects those runs *purely by shape*: each instruction is
reduced to a key of every operand field except ``disp``, and a region is
a maximal ``(start, period, reps)`` such that

* the shape-key sequence repeats with the given period, and
* ``disp[start + k*period + m] == disp[start + m] + k * delta[m]``
  (per-slot affine displacement).

Smaller periods win (a register-alternating loop body that only repeats
every second iteration naturally yields the doubled period, because the
shape keys differ at the single period).  Whether a region can actually
be *compiled* into a batched trace is a separate question answered by
:mod:`repro.jit.compiler`; the recorder is deliberately semantics-blind
so that detection stays a cheap one-pass scan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa.program import Program

#: longest loop body considered (covers the repo's register-tiled
#: bodies: dgemm's k-loop is 13 instructions, lu/linpacktpp's column
#: tile is 22)
MAX_PERIOD = 48
#: shortest run worth compiling: the first iteration always runs in the
#: interpreter (it establishes the vl/vs regime and seeds the plan
#: cache), so ``reps`` iterations batch only ``reps - 1``
MIN_REPS = 4


@dataclass(frozen=True)
class Region:
    """One detected hot block: ``reps`` iterations of ``period`` slots.

    ``deltas[m]`` is the per-iteration displacement advance of slot
    ``m``; instruction ``start + k*period + m`` has
    ``disp = program[start + m].disp + k * deltas[m]``.
    """

    start: int
    period: int
    reps: int
    deltas: tuple

    @property
    def end(self) -> int:
        return self.start + self.period * self.reps


def shape_key(instr) -> tuple:
    """Everything that must repeat exactly for iterations to batch.

    ``disp`` is excluded (it is the affine loop-carried part); ``tag``
    is included because per-tag operation accounting must stay constant
    across the batched slots.
    """
    return (instr.op, instr.vd, instr.va, instr.vb, instr.rd, instr.ra,
            instr.rb, instr.imm, instr.masked, instr.tag)


def _extend(ids: np.ndarray, disp: np.ndarray, i: int, p: int,
            n: int) -> int:
    """Exact repetition count of period ``p`` starting at ``i``."""
    nrows = (n - i) // p
    if nrows < 2:
        return 1
    seg = ids[i:i + nrows * p].reshape(nrows, p)
    eq = (seg == seg[0]).all(axis=1)
    bad = np.flatnonzero(~eq)
    rows = int(bad[0]) if bad.size else nrows
    if rows < 2:
        return 1
    dseg = disp[i:i + rows * p].reshape(rows, p)
    deltas = dseg[1] - dseg[0]
    affine = dseg[0] + np.arange(rows, dtype=np.int64)[:, None] * deltas
    ok = (dseg == affine).all(axis=1)
    bad = np.flatnonzero(~ok)
    return int(bad[0]) if bad.size else rows


def find_regions(program: Program, min_reps: int = MIN_REPS,
                 max_period: int = MAX_PERIOD) -> list:
    """All non-overlapping hot regions of ``program``, greedily, in
    program order, smallest period first at each position."""
    instrs = list(program)
    n = len(instrs)
    if n < 2:
        return []
    intern: dict = {}
    ids_list = []
    for ins in instrs:
        key = shape_key(ins)
        h = intern.get(key)
        if h is None:
            h = intern[key] = len(intern)
        ids_list.append(h)
    ids = np.asarray(ids_list, dtype=np.int64)
    disp = np.asarray([ins.disp for ins in instrs], dtype=np.int64)

    # positions whose shape recurs within max_period at all — everything
    # else (straight-line glue code) is skipped at numpy speed
    match_any = np.zeros(n, dtype=bool)
    for p in range(1, min(max_period, n - 1) + 1):
        np.logical_or(match_any[:n - p], ids[:n - p] == ids[p:],
                      out=match_any[:n - p])
    candidates = np.flatnonzero(match_any)

    regions: list = []
    ci = 0
    ncand = len(candidates)
    i = 0
    while ci < ncand:
        if candidates[ci] < i:
            ci += 1
            continue
        i = int(candidates[ci])
        found = None
        pmax = min(max_period, (n - i) // 2)
        for p in range(1, pmax + 1):
            if ids_list[i + p] != ids_list[i]:
                continue
            reps = _extend(ids, disp, i, p, n)
            if reps >= min_reps:
                deltas = tuple(int(disp[i + p + m] - disp[i + m])
                               for m in range(p))
                found = Region(i, p, reps, deltas)
                break
        if found is not None:
            regions.append(found)
            i = found.end
        else:
            ci += 1
    return regions
