"""Trace-JIT runtime: caches, guards, deoptimization, batch execution.

The run loop *bursts* the reference interpreter between region starts
(so straight-line glue code pays zero extra per-instruction overhead)
and enters a trace at each recorded region head:

1. **trim** — the region's first iteration always runs in the
   interpreter: it establishes the vl/vs regime the batch is compiled
   against and seeds the PR 5 address-plan cache, so the timing batch
   replays plans instead of rebuilding them;
2. **guard** — the live regime selects the compiled trace (a new regime
   invalidates and recompiles — the same seam ``setvl``/``setvs`` use to
   invalidate address plans); memory poisoning and the live-base-register
   disjointness recheck deoptimize;
3. **execute** — functional compute is phased: batched reads and store
   *validation* run first and mutate nothing, so an architectural trap
   mid-batch deoptimizes with zero side effects and the interpreter
   re-executes the iterations one by one, trapping at the precise PC.
   The timing half then replays the interpreter's per-instruction
   scheduling (same ``_time_*`` helpers, same dispatch/ROB arithmetic)
   over the real instruction objects — cycles are bit-identical by
   construction — and finally the functional results commit.

A deoptimized entry consumes only the trimmed first iteration; the
burst loop interprets the remaining iterations because the next region
start lies beyond them.

Traces are cached per :class:`~repro.isa.program.Program` identity in a
``WeakKeyDictionary`` — per-process, like the engine's other memos, and
dropped automatically when the program dies.  Counters live in
:data:`STATS` and flow into ``EngineStats`` / ``--profile`` /
``repro serve`` ``/stats``.
"""

from __future__ import annotations

import math
import weakref

import numpy as np

from repro.errors import ArchitecturalTrap
from repro.jit.compiler import (
    TraceReject,
    _Ctx,
    check_disjoint,
    compile_region,
)
from repro.jit.recorder import find_regions
from repro.vbox.reorder import BANK_PERIOD

#: imported for the inlined source-ready check (matches processor.py)
from repro.core.processor import SCALAR_TRANSFER


class JitStats:
    """Process-wide trace-JIT counters (mirrored into ``EngineStats``)."""

    __slots__ = ("trace_cache_hits", "trace_cache_misses",
                 "invalidations", "deopts", "compile_rejects",
                 "traces_compiled", "regions_detected",
                 "batched_instructions")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.trace_cache_hits = 0
        self.trace_cache_misses = 0
        self.invalidations = 0
        self.deopts = 0
        self.compile_rejects = 0
        self.traces_compiled = 0
        self.regions_detected = 0
        self.batched_instructions = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


STATS = JitStats()


class _Entry:
    """One recorded region: compiled traces keyed by (vl, vs) regime."""

    __slots__ = ("region", "traces", "dead")

    def __init__(self, region) -> None:
        self.region = region
        self.traces = {}
        self.dead = set()


class ProgramTraces:
    """All recorded regions of one program, by start index."""

    __slots__ = ("entries", "starts")

    def __init__(self, program) -> None:
        regions = find_regions(program)
        self.entries = {r.start: _Entry(r) for r in regions}
        self.starts = sorted(self.entries)
        STATS.regions_detected += len(regions)


_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def traces_for(program) -> ProgramTraces:
    pt = _CACHE.get(program)
    if pt is None:
        pt = ProgramTraces(program)
        _CACHE[program] = pt
    return pt


def clear_caches() -> None:
    """Drop all recorded regions and compiled traces (bench hygiene)."""
    _CACHE.clear()


def _trace_for(entry, program, state):
    """Compiled trace for the live regime, or None (dead / rejected)."""
    key = (state.ctrl.vl, state.ctrl.vs)
    trace = entry.traces.get(key)
    if trace is not None:
        STATS.trace_cache_hits += 1
        return trace
    if key in entry.dead:
        STATS.deopts += 1
        return None
    if entry.traces or entry.dead:
        # compiled before under a different regime: the regime guard
        # failed, exactly the plan-cache invalidation seam
        STATS.invalidations += 1
    STATS.trace_cache_misses += 1
    try:
        trace = compile_region(program, entry.region, state)
    except TraceReject:
        STATS.compile_rejects += 1
        entry.dead.add(key)
        return None
    entry.traces[key] = trace
    STATS.traces_compiled += 1
    return trace


def _compute_batch(trace, R, state, mem):
    """Phase 1: batched reads + store validation; mutates nothing.

    Returns the batch context, or None when an architectural trap
    deoptimizes the entry (the interpreter will re-execute and trap at
    the precise instruction).
    """
    ctx = _Ctx(R, trace.vl, trace.vs, state, mem)
    try:
        for step_fn in trace.steps:
            step_fn(ctx)
    except ArchitecturalTrap:
        STATS.deopts += 1
        return None
    return ctx


def _commit_batch(trace, ctx, sim, R) -> None:
    """Phase 3: write registers, memory and counters for R iterations."""
    state = sim.state
    vl = trace.vl
    vregs = state.vregs._regs
    for reg in trace.written_vregs:
        kind, arr = ctx.vreg[reg]
        # unmasked writes below vl merge with the preserved tail, which
        # a partial-row assignment gives us for free
        vregs[reg][:vl] = arr if kind == "inv" else arr[-1]
    for reg in trace.written_sregs:
        v = ctx.sreg[reg]
        if isinstance(v, np.ndarray):
            v = v[-1]
        state.sregs.write(reg, int(v))
    mem = sim.memory
    for addrs, vals in ctx.stores:
        mem.write_quads(addrs, vals)
    c = sim.counts
    inc = trace.counts_inc
    c.flops += inc["flops"] * R
    c.memory_elements += inc["memory_elements"] * R
    c.other += inc["other"] * R
    c.scalar_instructions += inc["scalar_instructions"] * R
    c.vector_instructions += inc["vector_instructions"] * R
    c.prefetch_elements += inc["prefetch_elements"] * R
    by_tag = c.by_tag
    for tag, v in trace.tag_inc.items():
        by_tag[tag] = by_tag.get(tag, 0) + v * R
    sim.instructions_executed += trace.period * R
    STATS.batched_instructions += trace.period * R


# -- functional-only execution ----------------------------------------------


def _execute_functional(entry, program, sim) -> int:
    """Run one region on the functional simulator; returns instructions
    consumed (``period`` on deopt — the trimmed first iteration)."""
    region = entry.region
    start, period = region.start, region.period
    step = sim.step
    for j in range(start, start + period):
        step(program[j])
    trace = _trace_for(entry, program, sim.state)
    if trace is None:
        return period
    R = region.reps - 1
    mem = sim.memory
    if mem._poisoned or not check_disjoint(
            trace.mem_slots, sim.state.sregs, trace.vl, trace.vs, R):
        STATS.deopts += 1
        return period
    ctx = _compute_batch(trace, R, sim.state, mem)
    if ctx is None:
        return period
    _commit_batch(trace, ctx, sim, R)
    return period * region.reps


def run_functional(sim, program):
    """JIT-enabled replacement for ``FunctionalSimulator.run``."""
    pt = traces_for(program)
    n = len(program)
    starts = pt.starts
    step = sim.step
    i = 0
    si = 0
    nstarts = len(starts)
    while i < n:
        while si < nstarts and starts[si] < i:
            si += 1
        nxt = starts[si] if si < nstarts else n
        while i < nxt:
            step(program[i])
            i += 1
        if i >= n:
            break
        i += _execute_functional(pt.entries[i], program, sim)
        si += 1
    return sim.counts


# -- timing (co-simulated) execution ----------------------------------------


def _seed_plans(proc, trace) -> None:
    """Pre-load the processor's address-plan cache from the trace.

    The plan cache (:mod:`repro.vbox.address_gen`) dies with its
    processor, so every run used to rebuild the first occurrence of
    each (vl, base-residue) strided plan.  The compiled trace outlives
    the processor (it is keyed by program identity), so it carries the
    entries its region needs across runs; ``plan()`` then takes its
    normal replay path — counters, soundness trace and cycles all come
    from the same code the interpreter uses, and ``_replay_plan``
    re-validates every entry against the *live* TLB and base register.
    """
    gens = proc.addr_gens
    cache = gens._plan_cache
    for key, entry in trace.plan_store[gens.pump_enabled].items():
        if key not in cache:
            cache[key] = entry
            gens._seeded.add(key)


def _harvest_plans(proc, program, trace, start: int, R: int) -> None:
    """Save the batch's strided-plan entries onto the trace.

    Keys are recomputed exactly as ``_plan_key`` builds them: the slot's
    base advances affinely, so its ``base % BANK_PERIOD`` residues cycle
    with period ``BANK_PERIOD / gcd(delta, BANK_PERIOD)``.
    """
    cache = proc.addr_gens._plan_cache
    if not cache:
        return
    store = trace.plan_store[proc.addr_gens.pump_enabled]
    sregs = proc.functional.state.sregs
    vl, vs = trace.vl, trace.vs
    for ms in trace.mem_slots:
        if ms.is_scalar:
            continue
        instr = program[start + ms.slot]
        base1 = sregs.read(ms.rb) + ms.disp1
        delta = ms.delta
        # 2**64 is a multiple of BANK_PERIOD, so plain python modulo of
        # the (possibly overflowing) sum equals the masked base's residue
        cycle = BANK_PERIOD // math.gcd(delta, BANK_PERIOD)
        for k in range(min(R, cycle)):
            key = (instr.op, instr.tag, instr.is_prefetch, instr.masked,
                   vl, vs, (base1 + delta * k) % BANK_PERIOD, None)
            entry = cache.get(key)
            if entry is not None:
                store[key] = entry


def _time_batch(proc, program, trace, start, R) -> None:
    """Replay the interpreter's scheduling for R batched iterations.

    Mirrors ``TarantulaProcessor.step`` exactly — same dispatch/ROB
    arithmetic, same source-ready rules (specialized via the compiled
    slot metadata), same ``_time_scalar``/``_time_memory``/
    ``_time_arithmetic`` helpers over the *real* instruction objects —
    except ``setvl``/``setvs``: they re-assert the guarded regime, so
    the plan-cache invalidation is skipped (replayed plans equal rebuilt
    ones; the scoreboard/VCU updates are kept) and the functional half
    runs batched instead of per instruction.
    """
    period = trace.period
    slots = trace.slots_timing
    cfg = proc.config
    inv_core = 1.0 / cfg.core_issue_width
    inv_vbox = 1.0 / cfg.vbox_issue_width
    rob_entries = cfg.rob_entries
    rob = proc._rob
    vr = proc._vreg_ready
    sr = proc._sreg_ready
    vcu_complete = proc.vcu.complete
    time_scalar = proc._time_scalar
    time_memory = proc._time_memory
    time_arith = proc._time_arithmetic
    idx = start + period
    try:
        for k in range(R):
            base = start + period * (k + 1)
            for m in range(period):
                st = slots[m]
                idx = base + m
                instr = program[idx]
                # dispatch (= _dispatch_time)
                t = proc._front_all = proc._front_all + inv_core
                if not st.is_sc:
                    fv = proc._front_vec
                    if t > fv:
                        fv = t
                    t = proc._front_vec = fv + inv_vbox
                if len(rob) >= rob_entries:
                    head = rob.popleft()
                    if head > t:
                        t = head
                # sources (= _sources_ready for compiled-eligible ops:
                # never masked, never indexed)
                for reg in st.vsrc:
                    rt = vr[reg]
                    if rt > t:
                        t = rt
                if st.transfer:
                    for reg in st.ssrc:
                        rt = sr[reg] + SCALAR_TRANSFER
                        if rt > t:
                            t = rt
                else:
                    for reg in st.ssrc:
                        rt = sr[reg]
                        if rt > t:
                            t = rt
                if st.needs_vl:
                    rt = proc._vl_ready
                    if rt > t:
                        t = rt
                if st.needs_vs:
                    rt = proc._vs_ready
                    if rt > t:
                        t = rt
                route = st.route
                if route == "mem":
                    done = time_memory(instr, t)
                elif route == "arith":
                    done = time_arith(instr, t)
                elif route == "sc":
                    done = time_scalar(instr, t)
                elif route == "setvl":
                    done = t + 1.0
                    proc._vl_ready = done
                    vcu_complete(done)
                else:  # setvs
                    done = t + 1.0
                    proc._vs_ready = done
                    vcu_complete(done)
                # retire (= _retire)
                rob.append(done)
                if done > proc._last_completion:
                    proc._last_completion = done
    except ArchitecturalTrap as trap:
        raise trap.attribute(idx) from None


def _execute_timing(entry, program, proc) -> int:
    """Run one region on the co-simulated pair; returns instructions
    consumed."""
    region = entry.region
    start, period = region.start, region.period
    step = proc.step
    for j in range(start, start + period):
        step(program[j])
    fn = proc.functional
    trace = _trace_for(entry, program, fn.state)
    if trace is None:
        return period
    R = region.reps - 1
    mem = fn.memory
    if mem._poisoned or not check_disjoint(
            trace.mem_slots, fn.state.sregs, trace.vl, trace.vs, R):
        STATS.deopts += 1
        return period
    # functional compute first (mutates nothing), then timing — the
    # timing helpers read only region-invariant functional state (the
    # guarded vl/vs regime and memory base registers the compiler
    # proved are not written in-region) — then commit
    ctx = _compute_batch(trace, R, fn.state, mem)
    if ctx is None:
        return period
    _seed_plans(proc, trace)
    _time_batch(proc, program, trace, start, R)
    _harvest_plans(proc, program, trace, start, R)
    _commit_batch(trace, ctx, fn, R)
    proc._instr_index += period * R
    return period * region.reps


def run_timing(proc, program) -> None:
    """JIT-enabled co-simulated execution of a whole program."""
    pt = traces_for(program)
    n = len(program)
    starts = pt.starts
    step = proc.step
    i = 0
    si = 0
    nstarts = len(starts)
    while i < n:
        while si < nstarts and starts[si] < i:
            si += 1
        nxt = starts[si] if si < nstarts else n
        while i < nxt:
            step(program[i])
            i += 1
        if i >= n:
            break
        i += _execute_timing(pt.entries[i], program, proc)
        si += 1
