"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's evaluation artifacts:

* ``run <kernel>`` — one benchmark on one machine, with metrics;
* ``report`` — regenerate every table and figure in one command,
  process-parallel and incrementally cached (docs/HARNESS.md); with
  ``--suite NAME [--instances FAMILY]`` it instead reports one
  registered suite x instance-family matrix (docs/WORKLOADS.md);
* ``list-suites`` — the registered suites and instance families that
  ``--suite``/``--instances`` accept (``--format json`` for a stable
  machine-readable listing);
* ``serve`` — run the simulation job server: POST spec JSON, results
  come back as structured payloads, with a bounded per-tenant-fair
  queue, in-flight dedupe, cached-result short-circuits and a graceful
  SIGTERM drain (docs/SERVE.md);
* ``table1|table2|table3|table4`` — regenerate a table;
* ``fig6|fig7|fig8|fig9`` — regenerate a figure's data series;
* ``chaos`` — run the fault-injection recovery suite: seeded faults at
  every site type, precise-trap recovery, differential state oracle
  (docs/FAULTS.md); ``--layer pool`` instead drills the orchestration
  layer (seeded worker kills, hangs, torn cache writes) and proves the
  rendered report is byte-identical to a fault-free run; ``--layer
  serve`` drills a live job server under the same seeded faults plus
  concurrent duplicate/burst/malformed submissions and a SIGTERM
  drain (docs/SERVE.md);
* ``bench`` — measure simulator throughput (wall-clock and simulated
  instructions per host second) per workload and write
  ``BENCH_sim_throughput.json`` (docs/PERF.md);
* ``list`` — the benchmark suite and the machine configurations;
* ``asm <file>`` — assemble a text kernel and print its listing;
* ``lint <kernel|file.s>`` — statically verify a hand-vectorized kernel
  (``--all`` gates the whole registry, ``--format json`` emits the
  machine-readable report CI archives, ``--list-codes`` enumerates
  every diagnostic; see docs/ANALYSIS.md).  Exit status: 0 clean,
  1 findings, 2 usage error.

Simulation grids (table2/table4, the figures, report) accept
``--jobs N`` for process-parallel fan-out and ``--no-cache`` to bypass
the content-addressed result cache under ``.repro-cache/``.  ``report``
and ``bench`` additionally take ``--timeout S`` (per-cell wall-clock
budget), ``--deadline S`` (whole-grid budget; overrunning cells degrade
into Timeout failures instead of hanging) and ``--pool
{auto,serial,process}`` to force an execution backend — the fault
budget of docs/HARNESS.md's pool layer.

Everything prints the paper's published values alongside where they
exist, so the CLI doubles as a reproduction report generator.

Ctrl-C mid-grid is graceful: completed cells are kept (and cached),
unfinished ones render as FAIL rows, and the process exits 130 — the
conventional SIGINT status — so a rerun resumes from the cache instead
of restarting the sweep.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.config import CONFIGURATIONS
from repro.harness import figures, report, tables
from repro.harness.engine import ResultCache, default_jobs
from repro.harness.pool import PoolPolicy
from repro.harness.runner import run
from repro.workloads.registry import REGISTRY


def _engine_args(args):
    """(jobs, cache) from the shared --jobs/--no-cache flags.

    Where the command grew pool flags (report), ``--timeout``,
    ``--deadline`` and ``--pool`` become the process-wide default
    :class:`PoolPolicy`, so every grid the command runs — tables,
    figures, suite matrices — executes under the same fault budget
    without threading a policy through each generator signature.
    """
    from repro.harness import engine

    jobs = args.jobs if args.jobs > 0 else default_jobs()
    cache = None if args.no_cache else ResultCache()
    engine.DEFAULT_POLICY = PoolPolicy(
        backend=getattr(args, "pool", None) or "auto",
        timeout=getattr(args, "timeout", None),
        deadline=getattr(args, "deadline", None))
    return jobs, cache


def _cmd_list(args) -> int:
    print("benchmarks (Table 2):")
    for name, workload in sorted(REGISTRY.items()):
        tag = " [surrogate]" if workload.surrogate else ""
        print(f"  {name:<14s} {workload.description}{tag}")
    print("\nmachines (Table 3):")
    for name in CONFIGURATIONS:
        cfg = CONFIGURATIONS[name]()
        kind = "vector" if cfg.has_vbox else "scalar"
        print(f"  {name:<9s} {cfg.core_ghz:5.2f} GHz  "
              f"{cfg.l2_bytes >> 20:2d} MB L2  "
              f"{cfg.rambus_gbs:5.1f} GB/s  ({kind})")
    return 0


def _cmd_list_suites(args) -> int:
    """Enumerate registered suites and instance families."""
    from repro.workloads.suite import list_families, list_suites

    if getattr(args, "format", "text") == "json":
        import json

        print(json.dumps({
            "suites": [
                {"name": suite.name, "title": suite.title,
                 "source": suite.source, "workloads": list(suite)}
                for suite in list_suites()
            ],
            "families": [
                {"name": family.name, "description": family.description,
                 "instances": [
                     {"name": inst.name, "config": inst.config,
                      "scale_factor": inst.scale_factor,
                      "overrides": dict(inst.overrides),
                      "apply_l2_hint": inst.apply_l2_hint}
                     for inst in family
                 ]}
                for family in list_families()
            ],
        }, indent=2, sort_keys=True))
        return 0
    print("suites (report --suite NAME):")
    for suite in list_suites():
        print(f"  {suite.name:<10s} {len(suite):>2d} workload(s)  "
              f"{suite.title}")
        if suite.source:
            print(f"  {'':<10s}    source: {suite.source}")
    print("\ninstance families (report --instances NAME):")
    for family in list_families():
        insts = ", ".join(family.instance_names)
        print(f"  {family.name:<10s} [{insts}]  {family.description}")
    return 0


def _cmd_run(args) -> int:
    kwargs = {}
    if CONFIGURATIONS[args.config]().has_vbox:
        kwargs["check"] = not args.no_check
    out = run(args.kernel, args.config, scale=args.scale, **kwargs)
    print(f"{out.kernel} on {out.config_name}: "
          f"{out.cycles:.0f} cycles ({out.seconds * 1e6:.1f} us)")
    print(f"  OPC={out.opc:.2f}  FPC={out.fpc:.2f}  MPC={out.mpc:.2f}")
    if out.streams_mbytes_per_s:
        print(f"  streams bandwidth: {out.streams_mbytes_per_s:.0f} MB/s "
              f"(raw {out.raw_mbytes_per_s:.0f})")
    if out.verified:
        print("  output verified against the numpy reference")
    return 0


def _cmd_table(args) -> int:
    if args.which == "table1":
        print(report.render_table1(tables.table1()))
    elif args.which == "table3":
        print(report.render_table3(tables.table3()))
    else:
        jobs, cache = _engine_args(args)
        if args.which == "table2":
            print(report.render_table2(
                tables.table2(quick=args.quick, jobs=jobs, cache=cache)))
        else:
            print(report.render_table4(
                tables.table4(quick=args.quick, jobs=jobs, cache=cache)))
    return 0


def _cmd_figure(args) -> int:
    quick = args.quick
    jobs, cache = _engine_args(args)
    generate = {"fig6": figures.figure6, "fig7": figures.figure7,
                "fig8": figures.figure8, "fig9": figures.figure9}
    render = {"fig6": report.render_figure6, "fig7": report.render_figure7,
              "fig8": report.render_figure8, "fig9": report.render_figure9}
    rows = generate[args.which](quick=quick, jobs=jobs, cache=cache)
    print(render[args.which](rows))
    return 0


def _cmd_report(args) -> int:
    """Regenerate every table and figure of the evaluation section."""
    if getattr(args, "profile", False):
        from repro.harness.profiling import profiled
        with profiled():
            return _report_body(args)
    return _report_body(args)


def _report_body(args) -> int:
    quick = args.quick
    jobs, cache = _engine_args(args)
    if getattr(args, "suite", None):
        return _suite_report(args.suite, args.instances, quick, jobs, cache)
    sections = [
        report.render_table1(tables.table1()),
        report.render_table2(tables.table2(quick=quick, jobs=jobs,
                                           cache=cache)),
        report.render_table3(tables.table3()),
        report.render_table4(tables.table4(quick=quick, jobs=jobs,
                                           cache=cache)),
        report.render_figure6(figures.figure6(quick=quick, jobs=jobs,
                                              cache=cache)),
        report.render_figure7(figures.figure7(quick=quick, jobs=jobs,
                                              cache=cache)),
        report.render_figure8(figures.figure8(quick=quick, jobs=jobs,
                                              cache=cache)),
        report.render_figure9(figures.figure9(quick=quick, jobs=jobs,
                                              cache=cache)),
    ]
    print("\n\n".join(sections))
    _cache_stats(cache)
    return 0


def _cache_stats(cache) -> None:
    # stderr, so cached and cold runs stay byte-identical on stdout
    if cache is not None:
        print(f"report: {cache.misses} cell(s) simulated, "
              f"{cache.hits} loaded from {cache.root}/",
              file=sys.stderr)
    else:
        print("report: cache disabled (--no-cache)", file=sys.stderr)


def _suite_report(suite_name: str, family_name: str, quick: bool,
                  jobs: int, cache) -> int:
    """``repro report --suite X --instances Y``: one matrix, rendered.

    Runs the full timing simulation with output verification for every
    cell — the generic path a new suite gets before anyone writes it a
    bespoke table/figure generator.
    """
    from repro.workloads.suite import Matrix, get_family, get_suite

    try:
        suite = get_suite(suite_name)
        family = get_family(family_name)
    except KeyError as exc:
        raise _usage_error(f"report: {exc.args[0]}")
    grid = Matrix(suite, family, quick=quick, check=True).run(
        jobs=jobs, cache=cache)
    print(report.render_matrix(suite, family, grid))
    _cache_stats(cache)
    failed = sum(1 for name in suite for inst in family
                 if getattr(grid[name][inst.name], "failed", False))
    if failed:
        print(f"report: {failed} cell(s) failed", file=sys.stderr)
    return 1 if failed else 0


def _cmd_chaos(args) -> int:
    """Run the recovery oracle over workloads (docs/FAULTS.md)."""
    if getattr(args, "profile", False):
        from repro.harness.profiling import profiled
        with profiled():
            return _chaos_body(args)
    return _chaos_body(args)


def _chaos_body(args) -> int:
    from repro.errors import ReproError
    from repro.faults import SITE_TYPES, run_recovery_oracle

    if args.layer == "pool":
        return _chaos_pool_body(args)
    if args.layer == "serve":
        return _chaos_serve_body(args)
    sites = tuple(args.sites) if args.sites else SITE_TYPES
    for site in sites:
        if site not in SITE_TYPES:
            raise SystemExit(f"chaos: unknown site {site!r}; "
                             f"known: {', '.join(SITE_TYPES)}")
    kernels = args.kernel if args.kernel else sorted(REGISTRY)
    print(f"chaos: seed={args.seed} sites={','.join(sites)} "
          f"kernels={len(kernels)}")
    failures = 0
    for kernel in kernels:
        try:
            result = run_recovery_oracle(kernel, seed=args.seed, sites=sites,
                                         scale=args.scale)
        except (ReproError, AssertionError) as exc:
            failures += 1
            print(f"{kernel:<14s} ERROR  {type(exc).__name__}: {exc}")
            continue
        print(result.summary())
        if not result.ok:
            failures += 1
    if failures:
        print(f"\nchaos: {failures} of {len(kernels)} workload(s) failed "
              "recovery")
        return 1
    print(f"\nchaos: all {len(kernels)} workload(s) recovered to "
          "bit-identical state")
    return 0


def _chaos_pool_body(args) -> int:
    """``repro chaos --layer pool``: the orchestration-chaos gate.

    Seeded worker kills, hangs and torn cache writes against one suite
    grid; passes (exit 0) only when the rendered report is
    byte-identical to a fault-free serial run, nothing was quarantined
    and retries stayed within budget (docs/FAULTS.md).
    """
    from repro.faults.chaos_pool import run_pool_chaos_oracle

    scale = args.scale if args.scale is not None else (
        0.02 if args.quick else 0.05)
    result = run_pool_chaos_oracle(
        seed=args.seed, suite=args.suite, jobs=args.jobs,
        scale=scale, timeout=args.timeout)
    text = result.summary()
    print(text)
    if args.log:
        with open(args.log, "w") as handle:
            handle.write(text + "\n")
    return 0 if result.ok else 1


def _chaos_serve_body(args) -> int:
    """``repro chaos --layer serve``: the simulation-service gate.

    Runs :func:`repro.faults.chaos_serve.run_serve_chaos_oracle`:
    a live job server under seeded worker kills/hangs while concurrent
    clients submit duplicates, bursts against a tiny queue and
    malformed payloads, finishing with a SIGTERM drain drill.  Exit 0
    only when every accepted job's payload is byte-identical to a
    serial fault-free run, duplicates simulated exactly once, the full
    queue answered clean 429s and the cache survived intact.
    """
    from repro.faults.chaos_serve import run_serve_chaos_oracle

    scale = args.scale if args.scale is not None else (
        0.02 if args.quick else 0.05)
    result = run_serve_chaos_oracle(
        seed=args.seed, suite=args.suite, jobs=args.jobs,
        scale=scale, timeout=args.timeout)
    text = result.summary()
    print(text)
    if args.log:
        with open(args.log, "w") as handle:
            handle.write(text + "\n")
    return 0 if result.ok else 1


def _cmd_serve(args) -> int:
    """``repro serve``: run the simulation job server (docs/SERVE.md)."""
    from repro.serve.server import ServeConfig, serve_main

    config = ServeConfig(
        host=args.host, port=args.port,
        jobs=args.jobs if args.jobs > 0 else default_jobs(),
        queue_limit=args.queue_limit, batch_max=args.batch_max,
        timeout=args.timeout, deadline=args.deadline,
        retries=args.retries,
        cache_dir=None if args.no_cache else args.cache_dir)
    return serve_main(config)


def _cmd_bench(args) -> int:
    """Benchmark simulator throughput (docs/PERF.md)."""
    from repro.harness.bench import DEFAULT_OUTPUT, main as bench_main

    out = args.out if args.out is not None else DEFAULT_OUTPUT
    if out == "-":
        out = None
    return bench_main(quick=args.quick, output=out,
                      check_against=args.check_against,
                      kernels=args.kernel, suite=args.suite,
                      timeout=args.timeout, deadline=args.deadline,
                      backend=args.pool)


def _cmd_asm(args) -> int:
    from repro.isa.assembler import assemble

    with open(args.file) as handle:
        source = handle.read()
    program = assemble(source, name=args.file)
    print(program.listing())
    stats = program.stats()
    print(f"\n{stats.total} instructions "
          f"({stats.vector_instructions} vector, "
          f"{stats.scalar_instructions} scalar, "
          f"{stats.memory_instructions} memory, "
          f"{stats.prefetches} prefetch)")
    return 0


def _usage_error(message: str) -> SystemExit:
    """A usage problem (exit 2), as distinct from findings (exit 1)."""
    print(message, file=sys.stderr)
    return SystemExit(2)


def _lint_target_program(target: str, scale):
    """Resolve a lint target: registry kernel name, or an assembly file.

    Returns ``(program, buffers)`` — declared buffer extents for
    registry kernels (enables the vmem bounds check), ``None`` for
    assembly files.  Misses exit 2 with the kernel list and, when the
    name is close to a known one, a spelling suggestion.
    """
    import os

    from repro.errors import AssemblerError
    from repro.isa.assembler import assemble

    if target in REGISTRY:
        workload = REGISTRY[target]
        instance = (workload.build_small() if scale is None
                    else workload.build(scale))
        return instance.program, instance.buffers
    if os.path.exists(target):
        with open(target) as handle:
            source = handle.read()
        try:
            return assemble(source, name=target), None
        except AssemblerError as exc:
            raise _usage_error(f"lint: {target} does not assemble: {exc}")
    import difflib

    lines = [f"lint: {target!r} is neither a registry kernel nor a file"]
    close = difflib.get_close_matches(target, sorted(REGISTRY), n=3)
    if close:
        lines.append(f"did you mean: {', '.join(close)}?")
    lines.append("known kernels: " + ", ".join(sorted(REGISTRY)))
    raise _usage_error("\n".join(lines))


def _cmd_lint_codes() -> int:
    """Print every diagnostic code with its default severity."""
    from repro.analysis import Code

    width = max(len(code.name) for code in Code)
    for code in Code:
        print(f"{code.name:<{width}s}  {str(code.default_severity):<7s}  "
              f"{code.value}")
    return 0


def _lint_json(reports) -> str:
    """Machine-readable lint report (stable fields; consumed by CI)."""
    import json

    return json.dumps({"programs": [
        {
            "program": name,
            "errors": len(report.errors),
            "warnings": len(report.warnings),
            "notes": len(report.infos),
            "diagnostics": [
                {"code": d.code.name,
                 "severity": str(d.severity),
                 "pc": d.index,
                 "message": d.message,
                 "instruction": d.instruction}
                for d in report
            ],
        }
        for name, report in reports.items()
    ]}, indent=2)


def _cmd_lint(args) -> int:
    from repro.analysis import Severity, lint_registry, lint_program

    if args.list_codes:
        return _cmd_lint_codes()
    min_sev = Severity.INFO if args.verbose else Severity.WARNING
    if args.all:
        reports = lint_registry(scale=args.scale)
    elif args.target is None:
        raise _usage_error("lint: give a kernel name / .s file, --all, "
                           "or --list-codes")
    else:
        program, buffers = _lint_target_program(args.target, args.scale)
        report = lint_program(program, buffers=buffers)
        reports = {report.program_name: report}
    failed = sum(1 for report in reports.values() if report.has_errors)
    if args.format == "json":
        print(_lint_json(reports))
        return 1 if failed else 0
    for report in reports.values():
        if report.has_errors or report.warnings or args.verbose:
            print(report.format(min_severity=min_sev))
        else:
            print(report.summary())
    if failed:
        print(f"\nlint: {failed} of {len(reports)} program(s) have errors")
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tarantula (ISCA 2002) reproduction harness")
    parser.add_argument("--jit", dest="jit", action="store_true",
                        default=None,
                        help="force the trace JIT on (overrides REPRO_JIT; "
                        "docs/PERF.md)")
    parser.add_argument("--no-jit", dest="jit", action="store_false",
                        help="force the trace JIT off — every command "
                        "produces byte-identical output either way")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="benchmarks and machines").set_defaults(
        fn=_cmd_list)

    p_suites = sub.add_parser(
        "list-suites", help="registered suites and instance families "
        "(docs/WORKLOADS.md)")
    p_suites.add_argument("--format", choices=("text", "json"),
                          default="text",
                          help="json: stable machine-readable listing "
                          "(suites + families with full instance fields)")
    p_suites.set_defaults(fn=_cmd_list_suites)

    p_run = sub.add_parser("run", help="run one benchmark")
    p_run.add_argument("kernel", choices=sorted(REGISTRY))
    p_run.add_argument("--config", default="T",
                       choices=sorted(CONFIGURATIONS))
    p_run.add_argument("--scale", type=float, default=0.5)
    p_run.add_argument("--no-check", action="store_true",
                       help="skip output verification")
    p_run.set_defaults(fn=_cmd_run)

    def add_engine_flags(p, quick_help):
        p.add_argument("--quick", action="store_true", help=quick_help)
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (0 = all cores; default 1)")
        p.add_argument("--no-cache", action="store_true",
                       help="bypass the .repro-cache/ result cache")

    def add_pool_flags(p):
        p.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-cell wall-clock budget; an overrunning "
                       "cell is retried, then degrades into a Timeout "
                       "failure (default: none)")
        p.add_argument("--deadline", type=float, default=None, metavar="S",
                       help="whole-grid wall-clock budget; unfinished "
                       "cells degrade into Timeout failures instead of "
                       "hanging (default: none)")
        p.add_argument("--pool", choices=("auto", "serial", "process"),
                       default="auto",
                       help="grid execution backend (default: auto — "
                       "process when --jobs > 1)")

    # table1/table3 are pure configuration arithmetic: no --quick (they
    # reject it), no simulation grid to parallelize or cache
    for which in ("table1", "table3"):
        p = sub.add_parser(which, help=f"regenerate {which} (analytic; "
                           "takes no --quick)")
        p.set_defaults(fn=_cmd_table, which=which)
    for which, quick_help in (
            ("table2", "quarter the vectorization-census scale"),
            ("table4", "quarter the bandwidth-kernel scales")):
        p = sub.add_parser(which, help=f"regenerate {which}")
        add_engine_flags(p, quick_help)
        p.set_defaults(fn=_cmd_table, which=which)

    for which in ("fig6", "fig7", "fig8", "fig9"):
        p = sub.add_parser(which, help=f"regenerate {which}")
        add_engine_flags(p, "quarter every kernel's problem scale")
        p.set_defaults(fn=_cmd_figure, which=which)

    p_report = sub.add_parser(
        "report", help="regenerate every table and figure "
        "(parallel + cached; see docs/HARNESS.md)")
    add_engine_flags(p_report, "quarter every problem scale")
    p_report.add_argument("--profile", action="store_true",
                          help="print per-component time to stderr "
                          "(docs/PERF.md)")
    p_report.add_argument("--suite", default=None, metavar="NAME",
                          help="report one registered suite instead of "
                          "the full evaluation (see list-suites)")
    p_report.add_argument("--instances", default="default", metavar="FAMILY",
                          help="instance family for --suite "
                          "(default: 'default')")
    add_pool_flags(p_report)
    p_report.set_defaults(fn=_cmd_report, jobs=0)

    p_chaos = sub.add_parser(
        "chaos", help="fault-injection recovery suite (docs/FAULTS.md)")
    p_chaos.add_argument("--seed", type=int, default=1234,
                         help="FaultPlan seed (default 1234)")
    p_chaos.add_argument("--layer", choices=("sim", "pool", "serve"),
                         default="sim",
                         help="'sim' injects architectural faults inside "
                         "the simulator; 'pool' injects orchestration "
                         "faults (worker kills, hangs, torn cache writes) "
                         "into grid execution; 'serve' drills a live job "
                         "server with concurrent duplicate/burst/malformed "
                         "submissions under worker kills and a SIGTERM "
                         "drain (docs/SERVE.md) (default: sim)")
    p_chaos.add_argument("--suite", default="table4", metavar="NAME",
                         help="suite the pool drill runs over "
                         "(default: table4; see list-suites)")
    p_chaos.add_argument("--jobs", type=int, default=2, metavar="N",
                         help="pool-drill worker processes (default 2)")
    p_chaos.add_argument("--timeout", type=float, default=8.0, metavar="S",
                         help="pool-drill per-cell wall-clock budget "
                         "(default 8s)")
    p_chaos.add_argument("--quick", action="store_true",
                         help="pool drill at a CI-sized problem scale")
    p_chaos.add_argument("--log", default=None, metavar="FILE",
                         help="also write the pool-drill chaos log here")
    p_chaos.add_argument("--kernel", action="append", default=None,
                         metavar="NAME", choices=sorted(REGISTRY),
                         help="restrict to one kernel (repeatable; "
                         "default: all)")
    p_chaos.add_argument("--sites", nargs="+", default=None,
                         metavar="SITE",
                         help="fault site types (default: all four)")
    p_chaos.add_argument("--scale", type=float, default=None,
                         help="problem scale (default: test-sized instance)")
    p_chaos.add_argument("--profile", action="store_true",
                         help="print per-component time to stderr "
                         "(docs/PERF.md)")
    p_chaos.set_defaults(fn=_cmd_chaos)

    p_bench = sub.add_parser(
        "bench", help="measure simulator throughput per workload "
        "(docs/PERF.md)")
    p_bench.add_argument("--quick", action="store_true",
                         help="CI-sized problem scale")
    p_bench.add_argument("--out", default=None, metavar="FILE",
                         help="output JSON path (default "
                         "BENCH_sim_throughput.json; '-' skips writing)")
    p_bench.add_argument("--check-against", default=None, metavar="FILE",
                         help="fail (exit 1) when the total warm "
                         "wall-clock regresses >20%% vs this baseline")
    p_bench.add_argument("--kernel", action="append", default=None,
                         metavar="NAME", choices=sorted(REGISTRY),
                         help="restrict to one kernel (repeatable)")
    p_bench.add_argument("--suite", default=None, metavar="NAME",
                         help="benchmark one registered suite "
                         "(default: tarantula; see list-suites)")
    add_pool_flags(p_bench)
    p_bench.set_defaults(fn=_cmd_bench)

    p_serve = sub.add_parser(
        "serve", help="run the simulation job server: POST specs, get "
        "results (docs/SERVE.md)")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8537,
                         help="bind port; 0 picks a free one and reports "
                         "it on stderr (default 8537)")
    p_serve.add_argument("--jobs", type=int, default=0, metavar="N",
                         help="pool worker processes (0 = all cores)")
    p_serve.add_argument("--queue-limit", type=int, default=256, metavar="N",
                         help="bounded admission queue; beyond this, "
                         "submissions get 429 + Retry-After (default 256)")
    p_serve.add_argument("--batch-max", type=int, default=0, metavar="N",
                         help="max specs per engine batch (default 2x jobs)")
    p_serve.add_argument("--timeout", type=float, default=None, metavar="S",
                         help="per-cell wall-clock budget; an overrunning "
                         "cell degrades into a Timeout payload "
                         "(default: none)")
    p_serve.add_argument("--deadline", type=float, default=None, metavar="S",
                         help="per-batch grid budget (default: none)")
    p_serve.add_argument("--retries", type=int, default=1, metavar="N",
                         help="per-cell retry budget (default 1)")
    p_serve.add_argument("--cache-dir", default=str(_default_cache_dir()),
                         metavar="DIR",
                         help="result-cache root (default .repro-cache/)")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="disable the result cache")
    p_serve.set_defaults(fn=_cmd_serve)

    p_asm = sub.add_parser("asm", help="assemble a text kernel")
    p_asm.add_argument("file")
    p_asm.set_defaults(fn=_cmd_asm)

    p_lint = sub.add_parser(
        "lint", help="statically verify a kernel (see docs/ANALYSIS.md)")
    p_lint.add_argument("target", nargs="?", default=None,
                        help="registry kernel name or assembly file")
    p_lint.add_argument("--all", action="store_true",
                        help="lint every registry workload")
    p_lint.add_argument("--scale", type=float, default=None,
                        help="problem scale (default: test-sized instance)")
    p_lint.add_argument("--verbose", action="store_true",
                        help="also show info-level notes")
    p_lint.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="output format (json: stable fields "
                        "code/severity/pc/message per diagnostic)")
    p_lint.add_argument("--list-codes", action="store_true",
                        help="list every diagnostic code with its "
                        "default severity and exit")
    p_lint.set_defaults(fn=_cmd_lint)
    return parser


def _default_cache_dir():
    from repro.harness.engine import CACHE_DIR

    return CACHE_DIR


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    from repro import jit

    jit.set_enabled(args.jit)
    from repro.harness.engine import STATS

    try:
        code = args.fn(args)
    except KeyboardInterrupt:
        print("\ninterrupted — completed cells were kept (and cached); "
              "rerun to resume from them", file=sys.stderr)
        return 130
    if getattr(STATS, "interrupted", 0):
        # a grid caught Ctrl-C mid-flight and degraded the remaining
        # cells into FAIL rows; report the conventional SIGINT status
        print(f"interrupted — {STATS.interrupted} unfinished cell(s) "
              "rendered as FAIL; completed cells were kept (and cached)",
              file=sys.stderr)
        return 130
    return code


if __name__ == "__main__":
    sys.exit(main())
