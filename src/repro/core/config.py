"""Machine configurations — the four architectures of Table 3 (plus T10).

======================  =====  =====  =====  =====  =====
symbol                  EV8    EV8+   T      T4     T10
======================  =====  =====  =====  =====  =====
core speed (GHz)        2.13   2.13   2.13   4.8    10.66
core issue              8      8      8      8      8
vbox issue              --     --     3      3      3
peak int/fp             8/4    8/4    32     32     32
peak ld+st              2+2    2+2    32+32  32+32  32+32
L2 size (MB)            4      16     16     16     16
L2 BW (GB/s)            273    273    1091   2457   5460
L2 load-to-use scalar   12     12     28     28     28
L2 load-to-use stride1  --     --     34     34     34
L2 load-to-use odd      --     --     38     38     38
RAMBUS ports            2      8      8      8      8
RAMBUS speed (MHz)      1066   1066   1066   1200   1333
RAMBUS BW (GB/s)        16.6   66.6   66.6   75.0   83.3
======================  =====  =====  =====  =====  =====

Frequencies derive from the RAMBUS clock: 1:2 for 2.13 GHz, 1:4 for
4.8 GHz, 1:8 for T10's 10.66 GHz (Figure 8).  Load-to-use latencies are
in core cycles and stay constant across the frequency scaling study,
exactly as in Table 3 — which is precisely why memory-bound kernels stop
scaling (Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError

#: bytes one RAMBUS port moves per MHz-second — 8 ports at 1066 MHz give
#: the paper's 66.6 GB/s raw figure
_PORT_BYTES_PER_MHZ = 7.8125e-3  # GB/s per (port x MHz)


@dataclass(frozen=True)
class MachineConfig:
    """Everything the timing models need to know about one machine."""

    name: str
    core_ghz: float
    has_vbox: bool
    rambus_mhz: float
    rambus_ports: int

    # core
    core_issue_width: int = 8
    scalar_flops_per_cycle: int = 4
    scalar_load_ports: int = 2
    scalar_store_ports: int = 2
    rob_entries: int = 256
    mshrs: int = 64
    #: fraction of peak the scalar pipeline sustains on compute-bound
    #: loops (the paper notes its EV8 binaries used an EV6 scheduler and
    #: reached e.g. 2.5 of 4 flops/cycle on dgemm)
    scheduling_efficiency: float = 0.7
    #: branch misprediction penalty, cycles
    mispredict_penalty: float = 14.0

    # vbox
    vbox_issue_width: int = 3
    vector_flops_per_cycle: int = 32
    pump_enabled: bool = True
    maf_entries: int = 32
    vbox_rename_registers: int = 16
    #: CR-box tournament cost (cycles per 16x16 comparison round);
    #: calibrated at 4.0 against Table 4's RndCopy bandwidth
    crbox_cycles_per_round: float = 4.0

    # caches
    l1_bytes: int = 64 << 10
    l1_ways: int = 2
    l2_bytes: int = 16 << 20
    l2_ways: int = 8
    line_bytes: int = 64
    #: maximum sustainable L2 bandwidth, bytes per core cycle
    l2_bytes_per_cycle: float = 512.0

    # load-to-use latencies, core cycles (Table 3)
    l2_scalar_load_use: float = 28.0
    l2_stride1_load_use: float = 34.0
    l2_odd_stride_load_use: float = 38.0
    l1_load_use: float = 3.0

    # memory timing
    memory_latency_ns: float = 45.0
    rambus_turnaround_ns: float = 2.4
    rambus_row_activate_ns: float = 3.8
    rambus_row_precharge_ns: float = 1.9

    def __post_init__(self) -> None:
        if self.core_ghz <= 0:
            raise ConfigError(f"{self.name}: core frequency must be positive")
        if self.rambus_ports < 1:
            raise ConfigError(f"{self.name}: need at least one RAMBUS port")

    # -- derived quantities ------------------------------------------------

    @property
    def rambus_gbs(self) -> float:
        """Raw memory bandwidth in GB/s (Table 3's last row)."""
        return self.rambus_ports * self.rambus_mhz * _PORT_BYTES_PER_MHZ

    @property
    def rambus_bytes_per_cycle(self) -> float:
        """Raw memory bandwidth per core cycle."""
        return self.rambus_gbs / self.core_ghz

    @property
    def memory_latency_cycles(self) -> float:
        return self.memory_latency_ns * self.core_ghz

    @property
    def peak_vector_flops_per_cycle(self) -> int:
        return self.vector_flops_per_cycle if self.has_vbox else \
            self.scalar_flops_per_cycle

    @property
    def peak_gflops(self) -> float:
        return self.peak_vector_flops_per_cycle * self.core_ghz

    @property
    def peak_operations_per_cycle(self) -> int:
        """The paper's 104-ops/cycle headline for Tarantula: 32 vector
        arithmetic + 32 vector loads + 32 vector stores + 8 scalar."""
        if not self.has_vbox:
            return self.core_issue_width
        return (self.vector_flops_per_cycle + 64 + self.core_issue_width)

    def scaled_to(self, name: str, rambus_mhz: float,
                  ratio: int) -> "MachineConfig":
        """Derive a frequency-scaled variant (core = ratio x RAMBUS)."""
        return replace(self, name=name, rambus_mhz=rambus_mhz,
                       core_ghz=rambus_mhz * ratio / 1000.0)


def ev8() -> MachineConfig:
    """The EV8 baseline: 8-wide superscalar, 4 MB L2, 2 RAMBUS ports."""
    return MachineConfig(
        name="EV8", core_ghz=2.13, has_vbox=False,
        rambus_mhz=1066.0, rambus_ports=2,
        l2_bytes=4 << 20, l2_bytes_per_cycle=128.0,
        l2_scalar_load_use=12.0,
    )


def ev8_plus() -> MachineConfig:
    """EV8 core with Tarantula's memory system (16 MB L2, 8 ports)."""
    return MachineConfig(
        name="EV8+", core_ghz=2.13, has_vbox=False,
        rambus_mhz=1066.0, rambus_ports=8,
        l2_bytes=16 << 20, l2_bytes_per_cycle=128.0,
        l2_scalar_load_use=12.0,
    )


def tarantula() -> MachineConfig:
    """Tarantula at the 1:2 RAMBUS ratio (2.13 GHz)."""
    return MachineConfig(
        name="T", core_ghz=2.13, has_vbox=True,
        rambus_mhz=1066.0, rambus_ports=8,
    )


def tarantula4() -> MachineConfig:
    """Aggressively clocked Tarantula: 1:4 ratio of a 1200 MHz part."""
    return tarantula().scaled_to("T4", rambus_mhz=1200.0, ratio=4)


def tarantula10() -> MachineConfig:
    """Figure 8's far point: 1:8 ratio of a 1333 MHz part (10.66 GHz)."""
    return tarantula().scaled_to("T10", rambus_mhz=1333.0, ratio=8)


def tarantula_no_pump() -> MachineConfig:
    """Figure 9's ablation: stride-1 double-bandwidth mode disabled."""
    return replace(tarantula(), name="T-nopump", pump_enabled=False)


#: the named configurations, keyed as the harness refers to them
CONFIGURATIONS = {
    "EV8": ev8,
    "EV8+": ev8_plus,
    "T": tarantula,
    "T4": tarantula4,
    "T10": tarantula10,
    "T-nopump": tarantula_no_pump,
}
