"""Run-level metrics: the quantities the paper's figures plot.

Figure 6 plots sustained operations per cycle split into FPC (flops),
MPC (memory element operations) and Other; Figure 7 plots speedups from
total run time; Table 4 reports sustained bandwidths in MB/s both as
"Streams" (useful read/write bytes, the STREAMS accounting) and "Raw"
(everything crossing the RAMBUS pins, directory traffic included).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.functional import OperationCounts


@dataclass
class TimingResult:
    """Outcome of one kernel on one timing simulator run."""

    config_name: str
    kernel: str
    cycles: float
    counts: OperationCounts
    core_ghz: float
    #: useful bytes moved at the memory pins (reads+writes of data)
    mem_useful_bytes: int = 0
    #: all bytes moved at the memory pins (incl. directory traffic)
    mem_raw_bytes: int = 0
    #: bytes the workload itself considers "streamed" (STREAMS method)
    workload_bytes: int = 0
    component_stats: dict = field(default_factory=dict)

    # -- Figure 6 quantities -------------------------------------------------

    @property
    def opc(self) -> float:
        """Sustained operations per cycle."""
        return self.counts.total / self.cycles if self.cycles else 0.0

    @property
    def fpc(self) -> float:
        """Flops per cycle."""
        return self.counts.flops / self.cycles if self.cycles else 0.0

    @property
    def mpc(self) -> float:
        """Memory element operations per cycle."""
        return self.counts.memory_elements / self.cycles if self.cycles else 0.0

    @property
    def other_pc(self) -> float:
        return self.counts.other / self.cycles if self.cycles else 0.0

    # -- time / bandwidth ------------------------------------------------------

    @property
    def seconds(self) -> float:
        return self.cycles / (self.core_ghz * 1e9) if self.core_ghz else 0.0

    @property
    def streams_mbytes_per_s(self) -> float:
        """Table 4 'Streams' column: useful workload bytes over run time."""
        if not self.seconds:
            return 0.0
        return self.workload_bytes / self.seconds / 1e6

    @property
    def raw_mbytes_per_s(self) -> float:
        """Table 4 'Raw' column: all RAMBUS bytes over run time."""
        if not self.seconds:
            return 0.0
        return self.mem_raw_bytes / self.seconds / 1e6

    @property
    def gflops(self) -> float:
        if not self.seconds:
            return 0.0
        return self.counts.flops / self.seconds / 1e9

    def summary(self) -> str:
        return (f"{self.kernel:>14s} on {self.config_name:<8s} "
                f"{self.cycles:12.0f} cyc  OPC={self.opc:6.2f} "
                f"(FPC={self.fpc:5.2f} MPC={self.mpc:5.2f} "
                f"Other={self.other_pc:5.2f})")
