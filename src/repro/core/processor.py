"""The Tarantula processor timing simulator.

Composes every substrate — EV8 front end, Vbox issue ports, address
generators (reorder ROM + CR box), per-lane TLBs, banked L2 with MAF and
PUMP, Zbox/RAMBUS — into one instruction-level timing model, co-simulated
with the functional simulator so all data values (and hence all gather
indices, mask bits and loop trip counts) are architecturally exact.

Scheduling model (see DESIGN.md section 5): instructions are processed
in program order; each computes its dispatch time from the front-end
rate (8/cycle overall, 3/cycle into the Vbox), the ROB window, and its
source operands' ready times, then reserves the resources it needs.
Memory ordering follows the Alpha memory model: the timing simulator
lets independent accesses overlap freely (kernels that need ordering
use DrainM, exactly as the paper's do), while the functional simulator
executes sequentially so results are always exact.
"""

from __future__ import annotations

from collections import deque
from repro.core.config import MachineConfig, tarantula
from repro.core.coherency import CoherencyController
from repro.core.functional import FunctionalSimulator
from repro.core.metrics import TimingResult
from repro.errors import ArchitecturalTrap, SimulationError
from repro.isa.instructions import Group, Instruction, TimingClass
from repro.isa.program import Program
from repro.mem.l1cache import L1DataCache
from repro.mem.l2cache import BankedL2, L2Config
from repro.mem.memory import MainMemory
from repro.mem.pump import PumpUnit
from repro.mem.rambus import RambusConfig
from repro.mem.zbox import Zbox
from repro.utils.stats import Counter
from repro.vbox.address_gen import AddressGenerators
from repro.vbox.crbox import ConflictResolutionBox
from repro.vbox.issue import VboxIssue
from repro.vbox.rename import RenameAllocator
from repro.vbox.vcu import CompletionUnit
from repro.vbox.vtlb import VectorTLB

#: one-way scalar-operand transfer time across the core<->Vbox interface
#: (half the 20-cycle round trip of section 2)
SCALAR_TRANSFER = 10.0

#: precomputed counter labels for _time_memory (hot path: building
#: f"mem_{kind}" per retired memory instruction is measurable)
_MEM_COUNTER = {kind: f"mem_{kind}" for kind in
                ("pump", "reordered", "cr", "empty")}


class TarantulaProcessor:
    """Cycle-level model of the whole chip, per Table 3 configuration."""

    def __init__(self, config: MachineConfig | None = None,
                 memory: MainMemory | None = None) -> None:
        self.config = config or tarantula()
        cfg = self.config
        if not cfg.has_vbox:
            raise SimulationError(
                f"{cfg.name} has no Vbox; use repro.scalar.EV8Model")
        self.functional = FunctionalSimulator(memory)

        ghz = cfg.core_ghz
        rambus_cfg = RambusConfig(
            ports=cfg.rambus_ports,
            bytes_per_core_cycle=cfg.rambus_bytes_per_cycle,
            turnaround_cycles=cfg.rambus_turnaround_ns * ghz,
            row_activate_cycles=cfg.rambus_row_activate_ns * ghz,
            row_precharge_cycles=cfg.rambus_row_precharge_ns * ghz,
            access_latency=cfg.memory_latency_cycles,
        )
        self.zbox = Zbox(rambus_cfg)
        self.pump = PumpUnit(enabled=cfg.pump_enabled)
        self.l1 = L1DataCache(cfg.l1_bytes, cfg.l1_ways, cfg.line_bytes)
        self.l2 = BankedL2(
            L2Config(capacity_bytes=cfg.l2_bytes, ways=cfg.l2_ways,
                     line_bytes=cfg.line_bytes,
                     hit_latency=cfg.l2_scalar_load_use,
                     maf_entries=cfg.maf_entries),
            self.zbox, self.pump, self.l1)
        self.coherency = CoherencyController(self.l1, self.l2)
        self.vtlb = VectorTLB()
        self.addr_gens = AddressGenerators(
            self.vtlb, ConflictResolutionBox(cfg.crbox_cycles_per_round),
            pump_enabled=cfg.pump_enabled)
        self.vbox = VboxIssue()
        self.vcu = CompletionUnit()
        self.rename = RenameAllocator(
            physical=32 + cfg.vbox_rename_registers, architectural=32)
        self.counters = Counter()

        # memory-dependence map: quadword address -> completion time of
        # the last vector store to it.  Loads and stores to the same
        # address order behind it (Alpha is weakly ordered between
        # independent locations, but same-address RAW/WAW is real).
        self._last_store: dict[int, float] = {}
        #: cache-line addresses covered by _last_store (a superset —
        #: rebuilt only on prune), so an access can rule out aliasing
        #: with one sweep over its <=17 lines instead of its <=128
        #: quadword addresses
        self._store_lines: set[int] = set()
        self._store_watermark = 0.0
        #: amortized pruning bound for _last_store; doubles when a prune
        #: reclaims less than half the map, so a large live store window
        #: never degrades into an O(n) rebuild per store
        self._store_prune_threshold = 1 << 17

        #: optional per-instruction trace: set to a list to record
        #: (index, instruction, dispatch_cycle, completion_cycle)
        self.trace: list | None = None
        self._instr_index = 0

        # scoreboard
        self._vreg_ready = [0.0] * 32
        self._sreg_ready = [0.0] * 32
        self._vl_ready = 0.0
        self._vs_ready = 0.0
        self._vm_ready = 0.0
        self._front_all = 0.0      # 8-wide front end position
        self._front_vec = 0.0      # 3-wide Pbox->Vbox bus position
        self._rob: deque[float] = deque()
        self._last_completion = 0.0

    # -- helpers -----------------------------------------------------------

    def warm_l2(self, base: int, nbytes: int) -> None:
        """Preload an address range into the L2 tags (no timing cost)."""
        self.l2.warm_range(base, nbytes)

    def _sources_ready(self, instr: Instruction) -> float:
        d = instr.definition
        vreg_ready = self._vreg_ready
        sreg_ready = self._sreg_ready
        ready = 0.0
        for reg in instr.vreg_reads():
            if d.is_store and reg == instr.va:
                # store *data* does not gate address generation/tag lookup
                # (the store queue holds it); _time_memory accounts for it
                continue
            t = vreg_ready[reg]
            if t > ready:
                ready = t
        # scalar operands cross the narrow interface
        for reg in (instr.ra, instr.rb):
            if reg is not None:
                t = sreg_ready[reg]
                if d.group is not Group.SC:
                    t += SCALAR_TRANSFER
                if t > ready:
                    ready = t
        if d.group in (Group.VV, Group.VS, Group.SM, Group.RM) \
                and self._vl_ready > ready:
            ready = self._vl_ready
        if d.is_memory and not d.is_indexed and self._vs_ready > ready:
            ready = self._vs_ready
        if instr.masked and self._vm_ready > ready:
            ready = self._vm_ready
        if d.group in (Group.RM,) or (d.is_memory and d.is_indexed):
            if instr.vb is not None and instr.vb != 31:
                t = vreg_ready[instr.vb]
                if t > ready:
                    ready = t
        return ready

    def _dispatch_time(self, instr: Instruction) -> float:
        """Front-end position: fetch/rename bandwidth + ROB window."""
        d = instr.definition
        self._front_all += 1.0 / self.config.core_issue_width
        t = self._front_all
        if d.group is not Group.SC:
            fv = self._front_vec
            if t > fv:
                fv = t
            t = self._front_vec = fv + 1.0 / self.config.vbox_issue_width
        if len(self._rob) >= self.config.rob_entries:
            head = self._rob.popleft()
            if head > t:
                t = head
        return t

    def _retire(self, completion: float) -> None:
        self._rob.append(completion)
        if completion > self._last_completion:
            self._last_completion = completion

    # -- per-group timing ------------------------------------------------------

    def _time_arithmetic(self, instr: Instruction, t0: float) -> float:
        d = instr.definition
        vl = self.functional.state.ctrl.vl
        writes = instr.vreg_writes()
        t0 = self.rename.allocate(t0, t0 + 1.0) if writes else t0
        start, done = self.vbox.issue_arithmetic(t0, vl, d.timing)
        for reg in writes:
            self._vreg_ready[reg] = done
        self.vcu.complete(done)
        return done

    def _time_control(self, instr: Instruction, t0: float) -> float:
        op = instr.op
        done = t0 + 1.0
        if op == "setvl":
            self._vl_ready = done
            self.addr_gens.invalidate_plans()
        elif op == "setvs":
            self._vs_ready = done
            self.addr_gens.invalidate_plans()
        elif op == "setvm":
            # vm is renamed: the new mask is ready once va is, +1 cycle
            self._vm_ready = done
            self.addr_gens.invalidate_plans()
        elif op in ("vextq", "vsumq", "vsumt"):
            # reductions sweep the register (ceil(vl/16)) then transfer
            vl = self.functional.state.ctrl.vl
            start, exec_done = self.vbox.issue_arithmetic(
                t0, vl, TimingClass.FP if op == "vsumt" else TimingClass.INT)
            done = exec_done + SCALAR_TRANSFER
            if instr.rd is not None:
                self._sreg_ready[instr.rd] = done
        elif op in ("vinsq", "viota"):
            start, done = self.vbox.issue_arithmetic(
                t0, self.functional.state.ctrl.vl, TimingClass.INT)
            for reg in instr.vreg_writes():
                self._vreg_ready[reg] = done
        self.vcu.complete(done)
        return done

    def _memory_order(self, touched: tuple, earliest: float,
                      slices=None) -> float:
        """Delay an access behind in-flight stores to the same quadwords."""
        last = self._last_store
        if not last or earliest >= self._store_watermark:
            # no store still completes after `earliest`, so nothing in
            # the map can push this access later — skip the per-address
            # walk entirely (the common case once stores drain)
            return earliest
        if slices is not None:
            # line-granularity prefilter: quadword aliasing implies line
            # aliasing, and the line sweep is ~8x shorter
            lines = self._store_lines
            for s in slices:
                if not lines.isdisjoint(s.line_addresses()):
                    break
            else:
                return earliest
        hit = last.keys() & touched
        if not hit:
            return earliest
        bound = earliest
        for addr in hit:
            # the intersection is tiny (the aliased quadwords only), so
            # the python loop runs over a handful of entries instead of
            # the whole 128-address footprint
            t = last[addr]
            if t > bound:
                bound = t
        if bound > earliest:
            self.counters.add("memory_order_stalls")
        return bound

    def _record_store(self, touched: tuple, completion: float,
                      slices=None) -> None:
        self._last_store.update(dict.fromkeys(touched, completion))
        if slices is not None:
            lines = self._store_lines
            for s in slices:
                lines.update(s.line_addresses())
        else:
            self._store_lines.update(a & ~0x3F for a in touched)
        if completion > self._store_watermark:
            self._store_watermark = completion
        # prune entries that completed far in the past: anything that old
        # can no longer delay an access (dispatch times only move forward)
        if len(self._last_store) > self._store_prune_threshold:
            before = len(self._last_store)
            cutoff = self._store_watermark - 100000.0
            self._last_store = {a: t for a, t in self._last_store.items()
                                if t > cutoff}
            self._store_lines = {a & ~0x3F for a in self._last_store}
            pruned = before - len(self._last_store)
            if pruned:
                self.counters.add("store_map_pruned", pruned)
            if len(self._last_store) > self._store_prune_threshold >> 1:
                self._store_prune_threshold <<= 1

    def _time_memory(self, instr: Instruction, t0: float) -> float:
        plan = self.addr_gens.plan(instr, self.functional.state)
        if plan.kind == "empty":
            return t0 + 1.0
        t0 = self._memory_order(plan.touched, t0, plan.slices)
        gen_time = plan.addr_gen_cycles + plan.tlb_penalty
        gen_start = self.vbox.addr_gen.reserve(t0, gen_time)
        self.counters.add(_MEM_COUNTER[plan.kind])
        if not plan.slices:
            return gen_start + gen_time
        per_slice = gen_time / len(plan.slices)
        completion = gen_start
        for i, s in enumerate(plan.slices):
            t_slice = gen_start + (i + 1) * per_slice
            done = self.l2.access_slice(
                s.line_addresses(), s.quadwords, plan.is_write, t_slice,
                pump_bit=s.pump, full_line_write=s.full_line_write,
                canonical=True)
            completion = max(completion, done)
        if plan.is_write and instr.va is not None and instr.va != 31:
            # the store retires once its data has streamed out of the
            # register file (ceil(qw/32) cycles after the data is ready)
            data_ready = self._vreg_ready[instr.va]
            completion = max(completion,
                             data_ready + max(1.0, plan.quadwords / 32.0))
        if plan.is_write:
            self._record_store(plan.touched, completion, plan.slices)
        if plan.is_prefetch:
            # prefetches retire as soon as addresses are generated; the
            # fills proceed in the background
            done = gen_start + gen_time
            self.vcu.complete(done)
            return done
        if not plan.is_write and instr.vd is not None and instr.vd != 31:
            self._vreg_ready[instr.vd] = completion
        self.vcu.complete(completion)
        return completion

    def _time_scalar(self, instr: Instruction, t0: float) -> float:
        op = instr.op
        if op == "ldq":
            addr = (self.functional.state.sregs.read(instr.rb) + instr.disp)
            done = self.coherency.scalar_load(addr, t0)
            if instr.rd is not None:
                self._sreg_ready[instr.rd] = done
            return done
        if op == "stq":
            addr = (self.functional.state.sregs.read(instr.rb) + instr.disp)
            return self.coherency.scalar_store(addr, t0)
        if op == "drainm":
            outcome = self.coherency.drainm(t0)
            done = t0 + outcome.cycles
            # the replay trap kills and refetches younger instructions
            self._front_all = max(self._front_all, done)
            self._front_vec = max(self._front_vec, done)
            return done
        done = t0 + 1.0
        if op in ("lda", "addq", "subq", "mulq", "sll") and instr.rd is not None:
            self._sreg_ready[instr.rd] = done
        return done

    # -- main loop -----------------------------------------------------------------

    def step(self, instr: Instruction) -> float:
        """Time one instruction, then execute it functionally.

        Returns its completion cycle.  An :class:`ArchitecturalTrap`
        escaping either half (the timing model's TLB walk or the
        functional executor) is attributed to this instruction's index
        before propagating — the paper's precise-PC contract (section
        2).  The trapping instruction does not retire: the index stays
        put so a recovered run can re-execute it in place.
        """
        idx = self._instr_index
        d = instr.definition
        try:
            t0 = self._dispatch_time(instr)
            src = self._sources_ready(instr)
            if src > t0:
                t0 = src
            if d.group is Group.SC:
                done = self._time_scalar(instr, t0)
            elif d.group is Group.VC:
                done = self._time_control(instr, t0)
            elif d.is_memory:
                done = self._time_memory(instr, t0)
            else:
                done = self._time_arithmetic(instr, t0)
            self.functional.step(instr)
        except ArchitecturalTrap as trap:
            raise trap.attribute(idx) from None
        self._retire(done)
        if self.trace is not None:
            self.trace.append((idx, instr, t0, done))
        self._instr_index = idx + 1
        return done

    def resume_at(self, index: int) -> None:
        """Point the co-simulated pair at instruction ``index``.

        Used by fault recovery after restoring a functional checkpoint:
        the timing scoreboard keeps whatever reservations it made (the
        trapped attempt's cycles are real — the pipe did the work), but
        both instruction counters rewind so the stream re-executes from
        the checkpoint.
        """
        self._instr_index = index
        self.functional.instructions_executed = index

    def execute_program(self, program: Program) -> None:
        """Execute a whole program, through the trace JIT when possible.

        The JIT seam engages only when nothing observes per-instruction
        effects: the instruction trace hook is off, address tracing and
        tail poisoning are off, and :mod:`repro.jit` is enabled.  Any
        other configuration — and any region the JIT cannot prove safe —
        uses the per-instruction reference loop.
        """
        fn = self.functional
        if fn.address_trace is None and not fn.poison_tail \
                and self.trace is None:
            from repro import jit

            if jit.enabled():
                from repro.jit.runtime import run_timing

                run_timing(self, program)
                return
        for instr in program:
            self.step(instr)

    def run(self, program: Program) -> TimingResult:
        """Run a whole program; returns timing + operation metrics."""
        self.execute_program(program)
        return self.result(program.name)

    def result(self, kernel: str, workload_bytes: int = 0) -> TimingResult:
        stats = {
            "l2": self.l2.counters.as_dict(),
            "zbox": self.zbox.stats().as_dict(),
            "maf": self.l2.maf.counters.as_dict(),
            "addr_gens": self.addr_gens.counters.as_dict(),
            "crbox": self.addr_gens.crbox.counters.as_dict(),
            "vtlb": self.vtlb.counters.as_dict(),
            "pump": self.pump.counters.as_dict(),
            "processor": self.counters.as_dict(),
        }
        return TimingResult(
            config_name=self.config.name, kernel=kernel,
            cycles=max(self._last_completion, self._front_all),
            counts=self.functional.counts,
            core_ghz=self.config.core_ghz,
            mem_useful_bytes=self.zbox.useful_bytes(),
            mem_raw_bytes=self.zbox.raw_bytes(),
            workload_bytes=workload_bytes,
            component_stats=stats)
