"""Functional (architectural) simulator.

Runs a :class:`~repro.isa.program.Program` against an
:class:`~repro.isa.registers.ArchState` and
:class:`~repro.mem.memory.MainMemory`, and accounts the dynamic
*operation* counts the evaluation figures need: flops, memory element
operations, and "other" (integer vector elements + scalar instructions) —
the same three categories as the paper's Figure 6.

The functional simulator is the golden reference: every workload's
vector kernel is checked against a numpy implementation through it, and
the timing simulator replays the identical instruction stream.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ArchitecturalTrap
from repro.isa.instructions import Group, Instruction, TimingClass
from repro.isa.program import Program
from repro.isa.registers import ArchSnapshot, ArchState
from repro.isa.semantics import execute
from repro.mem.memory import MainMemory, MemorySnapshot


@dataclass
class OperationCounts:
    """Dynamic operation counts in the paper's Figure-6 categories."""

    flops: int = 0                  # double-precision FP operations
    memory_elements: int = 0        # vector loads/stores, element count
    other: int = 0                  # integer vector elements + scalar instrs
    scalar_instructions: int = 0
    vector_instructions: int = 0
    prefetch_elements: int = 0
    by_tag: dict = field(default_factory=dict)

    @property
    def total(self) -> int:
        """All sustained operations (the paper's OPC numerator)."""
        return self.flops + self.memory_elements + self.other

    @property
    def vector_operations(self) -> int:
        return self.flops + self.memory_elements + \
            (self.other - self.scalar_instructions)

    @property
    def vectorization_percent(self) -> float:
        """Percent of dynamic operations executed by the vector unit
        (Table 2's "Vect. %" column)."""
        if self.total == 0:
            return 0.0
        return 100.0 * self.vector_operations / self.total

    def _bump_tag(self, tag: str, amount: int) -> None:
        if tag:
            self.by_tag[tag] = self.by_tag.get(tag, 0) + amount


@dataclass
class Checkpoint:
    """A resumable point in a program's execution.

    Captures everything a restart from instruction ``index`` can
    observe: the architectural registers, the complete memory image,
    and the operation counters (so a recovered run's Figure-6 numbers
    match the fault-free run exactly).  Taken at trap PCs by the
    fault-recovery machinery (docs/FAULTS.md).
    """

    index: int
    state: ArchSnapshot
    memory: MemorySnapshot
    counts: OperationCounts


class FunctionalSimulator:
    """Executes programs and accumulates operation counts."""

    def __init__(self, memory: MainMemory | None = None,
                 poison_tail: bool = False,
                 trace_addresses: bool = False) -> None:
        self.memory = memory if memory is not None else MainMemory()
        self.state = ArchState()
        self.poison_tail = poison_tail
        self.counts = OperationCounts()
        self.instructions_executed = 0
        #: pc -> byte addresses dynamically touched (active lanes only);
        #: the vmem soundness suite diffs this against static footprints
        self.address_trace: dict[int, np.ndarray] | None = \
            {} if trace_addresses else None

    def active_elements(self, instr: Instruction) -> int:
        """Elements this instruction operates on under current vl/vm."""
        if instr.definition.group is Group.SC:
            return 0
        return self.state.active_count(instr.masked)

    def _account(self, instr: Instruction) -> None:
        d = instr.definition
        if d.group is Group.SC:
            self.counts.scalar_instructions += 1
            self.counts.other += 1
            self.counts._bump_tag(instr.tag, 1)
            return
        self.counts.vector_instructions += 1
        n = self.active_elements(instr)
        if instr.is_prefetch:
            # Prefetches move data but do no architecturally-counted work;
            # the paper's OPC counts real computation only.
            self.counts.prefetch_elements += n
            return
        if d.is_memory:
            self.counts.memory_elements += n
            self.counts._bump_tag(instr.tag, n)
        elif d.flops:
            self.counts.flops += n * d.flops
            self.counts._bump_tag(instr.tag, n * d.flops)
        elif d.timing in (TimingClass.CTRL,):
            # control-register moves are near-free; count one op
            self.counts.other += 1
            self.counts._bump_tag(instr.tag, 1)
        else:
            self.counts.other += n
            self.counts._bump_tag(instr.tag, n)

    def checkpoint(self) -> Checkpoint:
        """Snapshot the full resumable state at the current instruction."""
        return Checkpoint(
            index=self.instructions_executed,
            state=self.state.snapshot(),
            memory=self.memory.snapshot(),
            counts=dataclasses.replace(self.counts,
                                       by_tag=dict(self.counts.by_tag)))

    def restore(self, cp: Checkpoint) -> None:
        """Rewind to a checkpoint; the next step re-runs ``cp.index``."""
        self.state.restore(cp.state)
        self.memory.restore(cp.memory)
        self.counts = dataclasses.replace(cp.counts,
                                          by_tag=dict(cp.counts.by_tag))
        self.instructions_executed = cp.index

    def step(self, instr: Instruction) -> None:
        """Execute a single instruction.

        Execution precedes accounting so that a trapping instruction
        leaves the operation counters untouched (it will be re-counted
        when recovery re-executes it), and every escaping trap carries
        the faulting instruction index — the paper's precise-PC report.
        """
        if self.address_trace is not None:
            addrs = self._touched_addresses(instr)
            if addrs is not None:
                self.address_trace[self.instructions_executed] = addrs
        try:
            execute(instr, self.state, self.memory,
                    poison_tail=self.poison_tail)
        except ArchitecturalTrap as trap:
            raise trap.attribute(self.instructions_executed) from None
        self._account(instr)
        self.instructions_executed += 1

    def _touched_addresses(self, instr: Instruction) -> np.ndarray | None:
        """Byte addresses ``instr`` is about to touch, or None.

        Computed against the *pre*-execution state (address operands are
        read before any write-back), mirroring the semantics handlers.
        Prefetches return None — they never materialize addresses
        architecturally (faults are suppressed), so the static analyzer
        skips them too.
        """
        from repro.isa.semantics import indexed_addresses, strided_addresses

        d = instr.definition
        if instr.is_prefetch:
            return None
        if d.group in (Group.SM, Group.RM):
            addrs = indexed_addresses(instr, self.state) if d.is_indexed \
                else strided_addresses(instr, self.state)
            idx = self.state.active_indices(instr.masked)
            # the strided array is a shared read-only cache: fancy
            # indexing copies, which is exactly what we want
            return np.asarray(addrs[idx], dtype=np.uint64)
        if d.group is Group.SC and instr.op in ("ldq", "stq"):
            addr = (self.state.sregs.read(instr.rb) + instr.disp) \
                & ((1 << 64) - 1)
            return np.array([addr], dtype=np.uint64)
        return None

    def run(self, program: Program) -> OperationCounts:
        """Execute a whole program; returns the cumulative counts.

        Hot regions run through the trace JIT (:mod:`repro.jit`) unless
        it is disabled or a mode that observes per-instruction effects
        is active (address tracing, tail poisoning) — those fall back to
        the reference interpreter, as does any region the JIT cannot
        prove safe to batch.
        """
        if self.address_trace is None and not self.poison_tail:
            from repro import jit

            if jit.enabled():
                from repro.jit.runtime import run_functional

                return run_functional(self, program)
        for instr in program:
            self.step(instr)
        return self.counts
