"""Functional (architectural) simulator.

Runs a :class:`~repro.isa.program.Program` against an
:class:`~repro.isa.registers.ArchState` and
:class:`~repro.mem.memory.MainMemory`, and accounts the dynamic
*operation* counts the evaluation figures need: flops, memory element
operations, and "other" (integer vector elements + scalar instructions) —
the same three categories as the paper's Figure 6.

The functional simulator is the golden reference: every workload's
vector kernel is checked against a numpy implementation through it, and
the timing simulator replays the identical instruction stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.isa.instructions import Group, Instruction, TimingClass
from repro.isa.program import Program
from repro.isa.registers import ArchState
from repro.isa.semantics import execute
from repro.mem.memory import MainMemory


@dataclass
class OperationCounts:
    """Dynamic operation counts in the paper's Figure-6 categories."""

    flops: int = 0                  # double-precision FP operations
    memory_elements: int = 0        # vector loads/stores, element count
    other: int = 0                  # integer vector elements + scalar instrs
    scalar_instructions: int = 0
    vector_instructions: int = 0
    prefetch_elements: int = 0
    by_tag: dict = field(default_factory=dict)

    @property
    def total(self) -> int:
        """All sustained operations (the paper's OPC numerator)."""
        return self.flops + self.memory_elements + self.other

    @property
    def vector_operations(self) -> int:
        return self.flops + self.memory_elements + \
            (self.other - self.scalar_instructions)

    @property
    def vectorization_percent(self) -> float:
        """Percent of dynamic operations executed by the vector unit
        (Table 2's "Vect. %" column)."""
        if self.total == 0:
            return 0.0
        return 100.0 * self.vector_operations / self.total

    def _bump_tag(self, tag: str, amount: int) -> None:
        if tag:
            self.by_tag[tag] = self.by_tag.get(tag, 0) + amount


class FunctionalSimulator:
    """Executes programs and accumulates operation counts."""

    def __init__(self, memory: MainMemory | None = None,
                 poison_tail: bool = False) -> None:
        self.memory = memory if memory is not None else MainMemory()
        self.state = ArchState()
        self.poison_tail = poison_tail
        self.counts = OperationCounts()
        self.instructions_executed = 0

    def active_elements(self, instr: Instruction) -> int:
        """Elements this instruction operates on under current vl/vm."""
        if instr.definition.group is Group.SC:
            return 0
        return int(np.count_nonzero(self.state.active_mask(instr.masked)))

    def _account(self, instr: Instruction) -> None:
        d = instr.definition
        if d.group is Group.SC:
            self.counts.scalar_instructions += 1
            self.counts.other += 1
            self.counts._bump_tag(instr.tag, 1)
            return
        self.counts.vector_instructions += 1
        n = self.active_elements(instr)
        if instr.is_prefetch:
            # Prefetches move data but do no architecturally-counted work;
            # the paper's OPC counts real computation only.
            self.counts.prefetch_elements += n
            return
        if d.is_memory:
            self.counts.memory_elements += n
            self.counts._bump_tag(instr.tag, n)
        elif d.flops:
            self.counts.flops += n * d.flops
            self.counts._bump_tag(instr.tag, n * d.flops)
        elif d.timing in (TimingClass.CTRL,):
            # control-register moves are near-free; count one op
            self.counts.other += 1
            self.counts._bump_tag(instr.tag, 1)
        else:
            self.counts.other += n
            self.counts._bump_tag(instr.tag, n)

    def step(self, instr: Instruction) -> None:
        """Execute a single instruction."""
        self._account(instr)
        execute(instr, self.state, self.memory, poison_tail=self.poison_tail)
        self.instructions_executed += 1

    def run(self, program: Program) -> OperationCounts:
        """Execute a whole program; returns the cumulative counts."""
        for instr in program:
            self.step(instr)
        return self.counts
