"""Scalar-vector coherency: P-bits and the DrainM barrier (section 3.4).

Two actors share memory behind each other's backs: the EV8 core works
through its L1 and write buffer, while the Vbox reads and writes the L2
directly.  The protocol:

* every L2 line carries a P-bit, set whenever the EV8 core touches it;
* a vector access that finds the P-bit set sends an invalidate to the
  L1 (clean lines drop, dirty lines write through), then proceeds;
* one hazard remains — *scalar write, then vector read*: a retired
  scalar store can sit in the write buffer, invisible to the L2, where
  no P-bit protects it.  The programmer must insert ``DrainM``, which
  purges the write buffer, updates the P-bits, and replay-traps younger
  instructions.

:class:`CoherencyController` wires the pieces together and — crucially
for the tests — exposes :meth:`stale_lines_for`, which reports exactly
the reads that would see stale data, so the litmus suite can show the
hazard exists *and* that DrainM closes it, faithfully to the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.l1cache import L1DataCache
from repro.mem.l2cache import BankedL2
from repro.utils.bitops import line_address
from repro.utils.stats import Counter


@dataclass
class DrainOutcome:
    """What one DrainM did."""

    drained_lines: list[int]
    replay_trap: bool
    cycles: float


class CoherencyController:
    """Owns the L1/write-buffer <-> L2 coherency interactions."""

    #: cycles to purge the write buffer and replay-trap, per drained store
    DRAIN_BASE_COST = 12.0
    DRAIN_PER_LINE_COST = 2.0

    def __init__(self, l1: L1DataCache, l2: BankedL2) -> None:
        self.l1 = l1
        self.l2 = l2
        if self.l2.l1 is None:
            self.l2.l1 = l1
        self.counters = Counter()

    # -- scalar side -------------------------------------------------------

    def scalar_load(self, addr: int, earliest: float) -> float:
        """EV8 load: L1 first, then L2 (setting the P-bit)."""
        if self.l1.load(addr):
            return earliest + 3.0
        _, ready = self.l2.scalar_access(addr, False, earliest)
        return ready

    def scalar_store(self, addr: int, earliest: float) -> float:
        """EV8 store: retires into the write buffer — invisible to L2."""
        self.l1.store(addr)
        return earliest + 1.0

    def drainm(self, earliest: float) -> DrainOutcome:
        """Execute a DrainM barrier."""
        drained = self.l1.drain()
        self.l2.set_pbits(drained)
        cost = self.DRAIN_BASE_COST + self.DRAIN_PER_LINE_COST * len(drained)
        self.counters.add("drainm")
        self.counters.add("drained_lines", len(drained))
        return DrainOutcome(drained, replay_trap=True, cycles=cost)

    # -- hazard detection (the litmus-test hook) -----------------------------

    def stale_lines_for(self, read_addrs) -> set[int]:
        """Lines a vector read would see stale (still in the write buffer).

        This is the exact hazard the paper says "is not covered and
        requires programmer intervention".
        """
        pending = self.l1.pending_lines()
        wanted = {line_address(int(a)) for a in read_addrs}
        return wanted & pending
