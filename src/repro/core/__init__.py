"""Core Tarantula processor models: functional and timing simulators."""

from repro.core.coherency import CoherencyController, DrainOutcome
from repro.core.config import (
    CONFIGURATIONS,
    MachineConfig,
    ev8,
    ev8_plus,
    tarantula,
    tarantula10,
    tarantula4,
    tarantula_no_pump,
)
from repro.core.functional import FunctionalSimulator, OperationCounts
from repro.core.metrics import TimingResult
from repro.core.power import (
    ChipPowerModel,
    cmp_ev8_model,
    gflops_per_watt_advantage,
    table1_rows,
    tarantula_model,
)
from repro.core.processor import TarantulaProcessor

__all__ = [
    "CONFIGURATIONS",
    "ChipPowerModel",
    "CoherencyController",
    "DrainOutcome",
    "FunctionalSimulator",
    "MachineConfig",
    "OperationCounts",
    "TarantulaProcessor",
    "TimingResult",
    "cmp_ev8_model",
    "ev8",
    "ev8_plus",
    "gflops_per_watt_advantage",
    "table1_rows",
    "tarantula",
    "tarantula10",
    "tarantula4",
    "tarantula_model",
]
