"""Power and area model — Table 1 (section 5).

The paper scaled EV7 measurements down to 65 nm at ~1 V and 2.5 GHz,
then compared a CMP of two EV8 cores against Tarantula (one EV8 core +
Vbox), both with the same 16 MB L2 and memory system.  The Vbox power is
extrapolated from EV7's FP-unit power density, explicitly "a lower
bound".  We reproduce the accounting: per-block area percentages and
watts, a 20% leakage adder on total power, peak Gflops, and Gflops/W —
including the headline 3.4x Gflops/W advantage.

Block values are the published Table 1 numbers, carried as *model
parameters* (they are estimates in the paper too); the class recomputes
all derived rows so tests can perturb assumptions (e.g. double the
flops for FMAC, as section 5 suggests).
"""

from __future__ import annotations

from dataclasses import dataclass

#: leakage adder applied to the summed dynamic power (Table 1 note)
LEAKAGE_FRACTION = 0.20


@dataclass(frozen=True)
class PowerBlock:
    """One circuit block's area share and dynamic power."""

    name: str
    area_percent: float | None    # None where the paper leaves it blank
    watts: float


@dataclass
class ChipPowerModel:
    """Area/power accounting for one chip configuration."""

    name: str
    blocks: list[PowerBlock]
    die_area_mm2: float
    clock_ghz: float = 2.5
    flops_per_cycle: int = 8
    fmac: bool = False

    @property
    def dynamic_watts(self) -> float:
        return sum(b.watts for b in self.blocks)

    @property
    def total_watts(self) -> float:
        """Dynamic power plus the 20% leakage attribution."""
        return self.dynamic_watts * (1.0 + LEAKAGE_FRACTION)

    @property
    def peak_gflops(self) -> float:
        flops = self.flops_per_cycle * (2 if self.fmac else 1)
        return flops * self.clock_ghz

    @property
    def gflops_per_watt(self) -> float:
        return self.peak_gflops / self.total_watts

    def block(self, name: str) -> PowerBlock:
        for b in self.blocks:
            if b.name == name:
                return b
        raise KeyError(name)

    def rows(self) -> list[tuple[str, float | None, float]]:
        """Table rows: (circuit, area %, watts)."""
        return [(b.name, b.area_percent, b.watts) for b in self.blocks]


def cmp_ev8_model() -> ChipPowerModel:
    """The CMP alternative: two EV8 cores sharing the L2/memory system."""
    return ChipPowerModel(
        name="CMP-EV8",
        blocks=[
            PowerBlock("Core", 42.0, 54.3),
            PowerBlock("IO Drivers", None, 26.5),
            PowerBlock("IO logic", 14.0, 6.6),
            PowerBlock("L2 cache", 33.0, 5.1),
            PowerBlock("R/Z Box", 5.0, 6.3),
            PowerBlock("Other", 6.0, 7.9),
        ],
        die_area_mm2=250.0,
        flops_per_cycle=8,   # 2 cores x 4 flops
    )


def tarantula_model() -> ChipPowerModel:
    """Tarantula: one EV8 core + the 16-lane Vbox."""
    return ChipPowerModel(
        name="Tarantula",
        blocks=[
            PowerBlock("Core", 15.0, 22.2),
            PowerBlock("IO Drivers", None, 26.5),
            PowerBlock("IO logic", 8.0, 4.3),
            PowerBlock("L2 cache", 43.0, 7.6),
            PowerBlock("R/Z Box", 7.0, 10.1),
            PowerBlock("Vbox", 15.0, 30.9),
            PowerBlock("Other", 12.0, 18.2),
        ],
        die_area_mm2=286.0,
        flops_per_cycle=32,
    )


def gflops_per_watt_advantage(fmac: bool = False) -> float:
    """Tarantula's Gflops/W over CMP-EV8 (the paper's 3.4x; ~6.8x with
    FMAC units added to the Vbox, which section 5 notes would come at
    "very little extra complexity and power")."""
    t = tarantula_model()
    c = cmp_ev8_model()
    if fmac:
        t.fmac = True
    return t.gflops_per_watt / c.gflops_per_watt


def table1_rows() -> dict[str, dict[str, float | None]]:
    """Regenerate Table 1 as nested dicts keyed by circuit block."""
    cmp_model, t_model = cmp_ev8_model(), tarantula_model()
    out: dict[str, dict[str, float | None]] = {}
    names = [b.name for b in t_model.blocks]
    for name in names:
        row: dict[str, float | None] = {}
        try:
            cb = cmp_model.block(name)
            row["cmp_area_pct"], row["cmp_watts"] = cb.area_percent, cb.watts
        except KeyError:
            row["cmp_area_pct"] = row["cmp_watts"] = None
        tb = t_model.block(name)
        row["t_area_pct"], row["t_watts"] = tb.area_percent, tb.watts
        out[name] = row
    out["Total"] = {
        "cmp_area_pct": None, "cmp_watts": round(cmp_model.total_watts, 1),
        "t_area_pct": None, "t_watts": round(t_model.total_watts, 1),
    }
    out["Peak Gflops"] = {
        "cmp_area_pct": None, "cmp_watts": cmp_model.peak_gflops,
        "t_area_pct": None, "t_watts": t_model.peak_gflops,
    }
    out["Gflops/Watt"] = {
        "cmp_area_pct": None,
        "cmp_watts": round(cmp_model.gflops_per_watt, 2),
        "t_area_pct": None,
        "t_watts": round(t_model.gflops_per_watt, 2),
    }
    return out
