"""Seeded, deterministic fault schedules.

A :class:`FaultPlan` turns ``(seed, site filters)`` into a concrete
schedule of :class:`FaultEvent`\\ s for a given program.  The same seed
against the same program always yields the same schedule — byte for
byte, as :meth:`FaultPlan.describe` makes checkable — so every chaos
run is reproducible from its command line.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.isa.instructions import Group
from repro.isa.program import Program

#: A vector memory instruction's page is unmapped behind its back
#: (page-table hole + TLB shootdown) -> TLBMissTrap from the vTLB walk.
SITE_TLB = "tlb_unmap"
#: A replay storm trips the MAF's livelock panic mode; competing
#: requests are NACKed until the offending slice completes.
SITE_MAF = "maf_panic"
#: A line a vector load will read is poisoned -> MachineCheckTrap.
SITE_POISON = "poison_line"
#: The processor is killed mid-kernel and a fresh one resumes from an
#: architectural checkpoint.
SITE_KILL = "kill_replay"

#: All site types, in canonical scheduling order.
SITE_TYPES = (SITE_TLB, SITE_MAF, SITE_POISON, SITE_KILL)


@dataclass(frozen=True)
class FaultEvent:
    """One planned fault: inject ``site`` before instruction ``index``.

    ``expect_fire=False`` marks a *probe*: the fault is armed but must
    NOT trap (used to assert prefetch-via-v31 fault transparency).
    """

    site: str
    index: int
    expect_fire: bool = True


def _vector_memory_indices(program: Program, loads_only: bool = False,
                           prefetch: bool = False) -> list:
    """Instruction indices eligible for memory-seam faults."""
    out = []
    for i, instr in enumerate(program):
        d = instr.definition
        if d.group not in (Group.SM, Group.RM) or not d.is_memory:
            continue
        if instr.is_prefetch != prefetch:
            continue
        if loads_only and not d.is_load:
            continue
        out.append(i)
    return out


class FaultPlan:
    """Deterministic fault-site chooser.

    ``sites`` restricts which fault types are scheduled (default: all);
    ``probe_prefetch`` additionally schedules a TLB hole under a
    prefetch instruction with ``expect_fire=False``, asserting the
    section-2 promise that prefetch-via-v31 suppresses faults entirely.
    """

    def __init__(self, seed: int, sites: tuple = SITE_TYPES,
                 probe_prefetch: bool = True) -> None:
        for site in sites:
            if site not in SITE_TYPES:
                raise ValueError(
                    f"unknown fault site {site!r}; known: {SITE_TYPES}")
        self.seed = seed
        self.sites = tuple(sites)
        self.probe_prefetch = probe_prefetch

    def schedule(self, program: Program) -> list:
        """The fault events for ``program``, sorted by instruction index.

        Site eligibility: TLB holes and poisoned lines need a real
        vector memory access to trip on (poison additionally needs a
        load); MAF storms and kill-and-replay can strike anywhere.
        Each event gets a distinct index so recoveries never overlap.
        """
        rng = random.Random(self.seed)
        n = len(program)
        taken: set = set()
        events = []

        def pick(eligible: list) -> int | None:
            free = [i for i in eligible if i not in taken]
            if not free:
                return None
            choice = rng.choice(free)
            taken.add(choice)
            return choice

        for site in self.sites:
            if site == SITE_TLB:
                eligible = _vector_memory_indices(program)
            elif site == SITE_POISON:
                eligible = _vector_memory_indices(program, loads_only=True)
            else:  # MAF storms / kills can hit any instruction boundary
                eligible = list(range(n))
            index = pick(eligible)
            if index is not None:
                events.append(FaultEvent(site, index))
        if self.probe_prefetch and SITE_TLB in self.sites:
            probe = pick(_vector_memory_indices(program, prefetch=True))
            if probe is not None:
                events.append(FaultEvent(SITE_TLB, probe, expect_fire=False))
        return sorted(events, key=lambda e: (e.index, e.site))

    def describe(self, program: Program) -> str:
        """Canonical textual form of the schedule (byte-reproducible)."""
        lines = [f"# FaultPlan seed={self.seed} sites={','.join(self.sites)} "
                 f"probe_prefetch={self.probe_prefetch} "
                 f"program={program.name}/{len(program)}"]
        for event in self.schedule(program):
            fire = "fire" if event.expect_fire else "probe"
            lines.append(f"{event.index:6d} {event.site} {fire}")
        return "\n".join(lines) + "\n"
