"""Orchestration-level chaos: seeded kills, hangs and torn cache writes.

PR 4 proved faults *inside* the simulator recover bit-identically; this
module applies the same seeded-injection + differential-oracle
discipline one level up, to the grid-execution layer itself.  Three
injectors, all deterministic in a single seed:

* :class:`ChaosPool` — wraps any :class:`~repro.harness.pool.Pool` and
  decorates every submitted cell with a :class:`ChaosCell` that, per a
  :class:`PoolChaosPlan` schedule, kills its worker mid-cell
  (``os._exit``) or wedges it in a long sleep.  Marker files give each
  event fire-once semantics across worker respawns and retries, so a
  retried cell runs clean — exactly the transient-fault shape the
  scheduler's budget is sized for.
* :class:`ChaosCache` — a :class:`~repro.harness.engine.ResultCache`
  that deterministically tears a subset of its committed entries
  (truncated pickle) and leaks backdated ``*.tmp.*`` debris, modelling
  writers killed mid-put.
* :func:`run_pool_chaos_oracle` — the differential gate: a fault-free
  serial reference render, a chaos run under kills/hangs/tears, and a
  warm rerun against the damaged cache must all produce byte-identical
  ``repro report`` output, with zero quarantined cells and retries
  within budget.  ``repro chaos --layer pool --seed N`` runs it; CI
  pins one seed.  See docs/FAULTS.md.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import tempfile
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.harness.engine import STATS, ResultCache
from repro.harness.pool import PoolPolicy, ProcessPool, SerialPool

__all__ = [
    "EVENT_HANG",
    "EVENT_KILL",
    "POOL_EVENTS",
    "ChaosCache",
    "ChaosCell",
    "ChaosPool",
    "PoolChaosPlan",
    "PoolChaosResult",
    "run_pool_chaos_oracle",
]

EVENT_KILL = "worker_kill"
EVENT_HANG = "worker_hang"
POOL_EVENTS = (EVENT_KILL, EVENT_HANG)

#: exit status a killed worker dies with (aids post-mortems in CI logs)
KILL_STATUS = 13


def _token(spec) -> str:
    """Stable short id for a spec (marker filenames, schedules)."""
    return hashlib.sha256(repr(spec).encode()).hexdigest()[:16]


@dataclass(frozen=True)
class PoolChaosPlan:
    """Deterministic schedule of orchestration faults for one grid.

    ``schedule`` picks hang targets from the first half of the grid and
    kill targets from the second half (both seeded): hangs then
    exercise the timeout/retry path *before* the kill breaks the pool
    and exercises preserve-on-break — one run covers both seams.
    ``tears`` marks a seeded subset of cache keys for torn-write
    injection.
    """

    seed: int
    kills: int = 1
    hangs: int = 1
    #: how long a hung worker sleeps; size it beyond the grid timeout
    hang_s: float = 30.0
    #: tear roughly 1-in-N committed cache entries (0 disables)
    tear_every: int = 3

    def _pick(self, indices: list, count: int, salt: str) -> list:
        picked = []
        pool = list(indices)
        for i in range(min(count, len(pool))):
            word = int.from_bytes(hashlib.sha256(
                f"{self.seed}|{salt}|{i}".encode()).digest()[:8], "big")
            picked.append(pool.pop(word % len(pool)))
        return picked

    def schedule(self, specs) -> dict:
        """Map spec -> event name, deterministic in (seed, grid)."""
        n = len(specs)
        first, second = list(range(n // 2)), list(range(n // 2, n))
        events = {}
        for i in self._pick(first or second, self.hangs, "hang"):
            events[specs[i]] = EVENT_HANG
        for i in self._pick([j for j in (second or first)
                             if specs[j] not in events],
                            self.kills, "kill"):
            events[specs[i]] = EVENT_KILL
        return events

    def tears(self, key: str) -> bool:
        if not self.tear_every:
            return False
        word = hashlib.sha256(f"{self.seed}|tear|{key}".encode()).digest()
        return word[0] % self.tear_every == 0


@dataclass(frozen=True)
class ChaosCell:
    """Picklable cell decorator that fires one scheduled event per spec.

    Runs in the worker as ``cell(fn, spec)``.  An event fires at most
    once grid-wide (marker file, shared across processes and respawns)
    and never in the orchestrating parent — a serial fallback must make
    progress, not re-kill itself.  Suppressed events leave a
    ``.suppressed`` marker so the chaos log can account for them.
    """

    events: dict
    marker_dir: str
    parent_pid: int
    hang_s: float

    def __call__(self, fn, spec):
        event = self.events.get(spec)
        if event is not None:
            marker = Path(self.marker_dir) / f"{_token(spec)}.{event}"
            if os.getpid() == self.parent_pid:
                if not marker.exists():
                    marker.with_suffix(marker.suffix + ".suppressed") \
                        .write_text(event)
            elif not marker.exists():
                marker.write_text(event)
                if event == EVENT_KILL:
                    os._exit(KILL_STATUS)
                time.sleep(self.hang_s)
        return fn(spec)


class ChaosPool:
    """A :class:`~repro.harness.pool.Pool` wrapper injecting the plan.

    Delegates the whole pool surface to ``inner``; the only change is
    that ``submit(fn, item)`` runs the item through a
    :class:`ChaosCell`.  The scheduler underneath cannot tell chaos
    from weather — which is the point.
    """

    def __init__(self, inner, plan: PoolChaosPlan, specs,
                 marker_dir: Path | str) -> None:
        self.inner = inner
        self.plan = plan
        self.marker_dir = Path(marker_dir)
        self.marker_dir.mkdir(parents=True, exist_ok=True)
        self.events = plan.schedule(list(specs))
        self._cell = ChaosCell(self.events, str(self.marker_dir),
                               os.getpid(), plan.hang_s)

    @property
    def kind(self) -> str:
        return self.inner.kind

    @property
    def workers(self) -> int:
        return self.inner.workers

    @property
    def dirty(self) -> bool:
        return self.inner.dirty

    def submit(self, fn, *args):
        return self.inner.submit(self._cell, fn, *args)

    def mark_dirty(self) -> None:
        self.inner.mark_dirty()

    def respawn(self) -> None:
        self.inner.respawn()

    def close(self) -> None:
        self.inner.close()

    def event_log(self) -> list:
        """(spec, event, status) per scheduled event, from the markers."""
        out = []
        for spec, event in self.events.items():
            marker = self.marker_dir / f"{_token(spec)}.{event}"
            if marker.exists():
                status = "fired"
            elif marker.with_suffix(marker.suffix + ".suppressed").exists():
                status = "suppressed"
            else:
                status = "unfired"
            out.append((spec, event, status))
        return out


class ChaosCache(ResultCache):
    """ResultCache variant whose writes deterministically go wrong.

    After a normal ``put``, a seeded subset of keys gets the committed
    entry truncated (a torn write: the next reader must quarantine and
    re-simulate, never trust it) plus a backdated ``*.tmp.*`` file (a
    crashed writer's debris: the next cache init must sweep it).
    """

    def __init__(self, root, plan: PoolChaosPlan) -> None:
        super().__init__(root)
        self.plan = plan
        self.torn = 0
        self.leaked_tmp = 0

    def put(self, key: str, outcome) -> None:
        super().put(key, outcome)
        if not self.plan.tears(key):
            return
        path = self._path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            return
        path.write_bytes(blob[: max(1, len(blob) // 3)])
        self.torn += 1
        leak = path.with_suffix(f".tmp.{os.getpid()}")
        leak.write_bytes(blob[: max(1, len(blob) // 4)])
        stale = time.time() - 2 * self.STALE_TMP_AGE_S
        os.utime(leak, (stale, stale))
        self.leaked_tmp += 1


# -- the differential oracle -----------------------------------------------


@dataclass
class PoolChaosResult:
    """Outcome of one :func:`run_pool_chaos_oracle` drill."""

    suite: str
    seed: int
    cells: int
    jobs: int
    #: chaos-run report bytes == fault-free serial reference bytes
    identical: bool
    #: warm rerun against the damaged cache is *also* byte-identical
    warm_identical: bool
    #: STATS deltas across the chaos pass
    quarantined: int
    retries: int
    timeouts: int
    preserved_on_break: int
    stragglers: int
    speculative_wins: int
    #: injection accounting
    torn_writes: int
    leaked_tmp: int
    swept_tmp: int
    corrupt_recovered: int
    retry_budget: int
    events: tuple = ()
    report_text: str = ""

    @property
    def within_budget(self) -> bool:
        # the serial continuation after a pool break restarts each
        # unfinished cell's budget, hence the factor of two
        return self.retries <= 2 * self.retry_budget * self.cells

    @property
    def ok(self) -> bool:
        return (self.identical and self.warm_identical
                and self.quarantined == 0 and self.within_budget)

    def log_lines(self) -> list:
        lines = [f"chaos[pool]: seed={self.seed} suite={self.suite} "
                 f"cells={self.cells} jobs={self.jobs}"]
        for spec, event, status in self.events:
            lines.append(f"  {event:<12s} {spec.kernel}/{spec.config} "
                         f"scale={spec.scale:g}: {status}")
        lines.append(
            f"  counters: timeouts={self.timeouts} retries={self.retries} "
            f"quarantined={self.quarantined} "
            f"preserved_on_break={self.preserved_on_break} "
            f"stragglers={self.stragglers} "
            f"speculative_wins={self.speculative_wins}")
        lines.append(
            f"  cache damage: torn={self.torn_writes} "
            f"tmp_leaked={self.leaked_tmp} tmp_swept={self.swept_tmp} "
            f"corrupt_recovered={self.corrupt_recovered}")
        lines.append("  report bytes: " +
                     ("identical" if self.identical else "DIVERGED"))
        lines.append("  warm rerun:   " +
                     ("identical" if self.warm_identical else "DIVERGED"))
        lines.append("chaos[pool]: " + (
            "OK — orchestration faults are invisible in the report"
            if self.ok else "FAILED"))
        return lines

    def summary(self) -> str:
        return "\n".join(self.log_lines())


def _stats_snapshot() -> dict:
    return dataclasses.asdict(STATS)


def run_pool_chaos_oracle(seed: int = 1234, suite: str = "table4",
                          instances: str = "default", jobs: int = 2,
                          scale: float = 0.05, timeout: float = 8.0,
                          hang_s: Optional[float] = None, retries: int = 2,
                          workdir: Optional[Path] = None) -> PoolChaosResult:
    """The orchestration-chaos differential gate.

    Three passes over one suite x instance grid at a small scale:

    1. *reference* — serial, fault-free, uncached; its rendered report
       is the byte-level truth.
    2. *chaos* — a :class:`ProcessPool` wrapped in :class:`ChaosPool`
       (seeded worker kill + hang) writing through a
       :class:`ChaosCache` (torn entries, leaked tmp files), under a
       per-cell ``timeout`` and a ``retries`` budget.
    3. *warm* — a fresh, plain :class:`ResultCache` over the damaged
       root, serial: init must sweep the leaked tmp files, reads must
       quarantine every torn entry and re-simulate.

    All three renders must be byte-identical, nothing may end
    quarantined, and retries must stay within budget — the scheduler's
    whole fault machinery, proven invisible from the outside.
    """
    import repro.workloads.registry  # noqa: F401 - populate the registries
    from repro.harness import report
    from repro.workloads.suite import Matrix, get_family, get_suite

    suite_obj = get_suite(suite)
    family = get_family(instances)
    matrix = Matrix(suite_obj, family, scales=scale, check=True)
    specs = matrix.specs()
    if hang_s is None:
        hang_s = 4 * timeout
    if workdir is None:
        workdir = Path(tempfile.mkdtemp(prefix="repro-chaos-pool-"))
    workdir = Path(workdir)
    marker_dir = workdir / "markers"
    cache_root = workdir / "cache"

    # pass 1: fault-free serial reference
    ref_text = report.render_matrix(suite_obj, family, matrix.run(jobs=1))

    # pass 2: chaos
    plan = PoolChaosPlan(seed, hang_s=hang_s)
    policy = PoolPolicy(backend="process", timeout=timeout, retries=retries,
                        backoff_base=0.05, backoff_seed=seed)
    cache = ChaosCache(cache_root, plan)
    try:
        inner = ProcessPool(jobs)
    except (OSError, PermissionError):
        inner = SerialPool()  # sandboxed platform: still drill the cache
    pool = ChaosPool(inner, plan, specs, marker_dir)
    before = _stats_snapshot()
    try:
        with warnings.catch_warnings():
            # the mid-grid break warning is the expected behavior here
            warnings.simplefilter("ignore", RuntimeWarning)
            chaos_grid = matrix.run(cache=cache, pool=pool, policy=policy)
    finally:
        pool.close()
    delta = {k: v - before[k] for k, v in _stats_snapshot().items()}
    chaos_text = report.render_matrix(suite_obj, family, chaos_grid)

    # pass 3: warm rerun over the damaged cache root
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)  # quarantines
        warm_cache = ResultCache(cache_root)
        warm_text = report.render_matrix(
            suite_obj, family, matrix.run(jobs=1, cache=warm_cache))

    return PoolChaosResult(
        suite=suite_obj.name, seed=seed, cells=len(specs), jobs=jobs,
        identical=chaos_text == ref_text,
        warm_identical=warm_text == ref_text,
        quarantined=delta["quarantined"], retries=delta["retries"],
        timeouts=delta["timeouts"],
        preserved_on_break=delta["preserved_on_break"],
        stragglers=delta["stragglers"],
        speculative_wins=delta["speculative_wins"],
        torn_writes=cache.torn, leaked_tmp=cache.leaked_tmp,
        swept_tmp=warm_cache.swept, corrupt_recovered=warm_cache.corrupt,
        retry_budget=retries, events=tuple(pool.event_log()),
        report_text=ref_text)
