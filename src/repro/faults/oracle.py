"""Differential recovery oracle.

Runs each workload twice — once fault-free on the functional simulator
(the golden run), once on the timing processor under a seeded
:class:`~repro.faults.plan.FaultPlan` with full recovery — and asserts
the two end in bit-identical architectural state.  This is the
executable form of the paper's section-2 contract: a trap, serviced and
resumed, must be invisible to the program.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.core.config import CONFIGURATIONS
from repro.core.functional import FunctionalSimulator
from repro.core.processor import TarantulaProcessor
from repro.faults.injector import FaultInjector
from repro.faults.plan import SITE_TYPES, FaultPlan
from repro.workloads import registry


def state_digest(sim: FunctionalSimulator) -> str:
    """SHA-256 over the complete architectural state + memory image."""
    snap = sim.state.snapshot()
    h = hashlib.sha256()
    h.update(snap.vregs.tobytes())
    h.update(repr(snap.sregs).encode())
    h.update(repr((snap.vl, snap.vs)).encode())
    h.update(snap.vm.tobytes())
    h.update(sim.memory.content_digest().encode())
    return h.hexdigest()


@dataclass
class OracleResult:
    """Verdict of one workload's inject → recover → compare cycle."""

    kernel: str
    seed: int
    matched: bool
    schedule_reproducible: bool
    golden_digest: str
    faulted_digest: str
    fired_sites: tuple = ()
    recoveries: int = 0
    suppressed: int = 0
    kills: int = 0
    nacks: int = 0
    records: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.matched and self.schedule_reproducible

    def summary(self) -> str:
        status = "ok" if self.ok else "STATE MISMATCH" if not self.matched \
            else "SCHEDULE DRIFT"
        sites = ",".join(sorted(self.fired_sites)) or "-"
        return (f"{self.kernel:<14s} {status:<6s} recoveries={self.recoveries} "
                f"kills={self.kills} suppressed={self.suppressed} "
                f"nacks={self.nacks} sites={sites}")


def run_recovery_oracle(kernel: str, seed: int = 0,
                        sites: tuple = SITE_TYPES,
                        scale: float | None = None,
                        config: str = "T") -> OracleResult:
    """Prove inject → trap → recover → resume is invisible for ``kernel``.

    Also verifies the kernel's own numeric ``check`` against the
    recovered memory image, and that two independently constructed
    plans with the same seed describe byte-identical schedules.
    """
    workload = registry.get(kernel)
    instance = workload.build(scale) if scale is not None \
        else workload.build_small()

    golden = FunctionalSimulator()
    instance.setup(golden.memory)
    golden.run(instance.program)
    golden_digest = state_digest(golden)

    plan = FaultPlan(seed, sites)
    reproducible = plan.describe(instance.program) == \
        FaultPlan(seed, sites).describe(instance.program)

    proc = TarantulaProcessor(CONFIGURATIONS[config]())
    instance.setup(proc.functional.memory)
    injector = FaultInjector(proc, instance.program, plan)
    log = injector.run(recover=True)
    faulted_digest = state_digest(injector.proc.functional)
    instance.check(injector.proc.functional.memory)

    return OracleResult(
        kernel=kernel, seed=seed,
        matched=faulted_digest == golden_digest,
        schedule_reproducible=reproducible,
        golden_digest=golden_digest, faulted_digest=faulted_digest,
        fired_sites=tuple(sorted(log.fired_sites())),
        recoveries=log.recoveries, suppressed=log.suppressed,
        kills=log.kills, nacks=log.nacks, records=log.records)
