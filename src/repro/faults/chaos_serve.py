"""Serve-layer chaos: concurrent duplicates, bursts and kills vs HTTP.

``repro chaos --layer pool`` proved the grid scheduler survives worker
kills, hangs and torn cache writes.  This module climbs one more level:
the same seeded faults, now injected *under a live HTTP job server*
(:mod:`repro.serve`) while concurrent clients hammer it with duplicate,
bursty and malformed submissions.  The differential contract gets
stricter, because the serve layer adds promises of its own:

* every accepted job's result payload is **byte-identical** to a serial
  fault-free ``execute()`` of the same spec — kills, hangs, retries and
  pool rebuilds must be invisible in the bytes;
* duplicates simulate **exactly once**: the execute-side cache records
  one miss and one store per unique digest no matter how many
  concurrent submissions carried it;
* a full queue answers a clean 429 with ``Retry-After`` — never
  unbounded memory, never a dropped connection;
* malformed payloads 400 and the server stays healthy;
* the result cache is never torn: no ``*.tmp.*`` debris, zero corrupt
  entries, every entry loadable after drain;
* SIGTERM mid-load drains gracefully (a real subprocess drill): exit 0
  and every accepted spec's result is in the cache, intact.

:func:`run_serve_chaos_oracle` stages all of it deterministically: the
seeded hang becomes a *plug* — submitted first, it wedges the executor
long enough that a burst against a tiny queue must observe 429s and
the in-flight dedupe window must collapse the duplicates.
``repro chaos --layer serve --seed N`` runs it; CI pins one seed.
See docs/SERVE.md and docs/FAULTS.md.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.faults.chaos_pool import EVENT_HANG, ChaosPool, PoolChaosPlan
from repro.harness.engine import (
    STATS,
    ResultCache,
    cache_key,
    execute,
    spec_digest,
)
from repro.harness.pool import ProcessPool, SerialPool
from repro.serve.client import ServeClient
from repro.serve.jobs import outcome_payload
from repro.serve.server import ServeConfig, ServerThread

__all__ = ["ServeChaosResult", "run_serve_chaos_oracle"]


def _spec_json(spec) -> dict:
    """The JSON a client would POST for ``spec`` (round-trips exactly)."""
    out = {"kernel": spec.kernel, "config": spec.config,
           "scale": spec.scale, "check": spec.check,
           "drain_dirty": spec.drain_dirty, "warm": spec.warm,
           "apply_l2_hint": spec.apply_l2_hint, "mode": spec.mode}
    if spec.overrides:
        out["overrides"] = dict(spec.overrides)
    return out


#: (description, body bytes) pairs that must all 400 without harming
#: the server — the malformed-load half of the drill
def _malformed_bodies() -> list:
    return [
        ("not JSON at all", b"{this is not json"),
        ("unknown kernel", json.dumps({"kernel": "strems.copy"}).encode()),
        ("negative scale", json.dumps(
            {"kernel": "streams.copy", "scale": -1}).encode()),
        ("unknown config", json.dumps(
            {"kernel": "streams.copy", "config": "ZZZ"}).encode()),
        ("non-object spec", json.dumps([1, 2, 3]).encode()),
        ("unknown field", json.dumps(
            {"kernel": "streams.copy", "frobnicate": 1}).encode()),
        ("empty batch", json.dumps({"specs": []}).encode()),
    ]


@dataclass
class ServeChaosResult:
    """Outcome of one :func:`run_serve_chaos_oracle` drill."""

    suite: str
    seed: int
    #: unique specs (= the exactly-once execution budget)
    cells: int
    jobs: int
    duplicates: int
    queue_limit: int
    #: every result payload byte-identical to the serial reference
    identical: bool
    mismatched: int
    #: admission accounting (client-observed)
    accepted: int
    deduped: int
    cached: int
    rejected_429: int
    #: every observed 429 carried a Retry-After header
    retry_after_ok: bool
    #: the seeded hang fired in a worker, so 429s were reachable
    rejections_expected: bool
    malformed_ok: int
    malformed_total: int
    #: execute-side cache traffic (the exactly-once proof)
    exec_misses: int
    exec_stores: int
    quarantined: int
    #: cache integrity after drain
    tmp_debris: int
    corrupt: int
    cache_intact: bool
    #: SIGTERM drill (None = drill skipped)
    drain_exit: Optional[int] = None
    drain_intact: Optional[bool] = None
    drain_lost: int = 0
    events: tuple = ()
    notes: tuple = ()

    @property
    def exactly_once(self) -> bool:
        return self.exec_misses == self.cells \
            and self.exec_stores == self.cells

    @property
    def ok(self) -> bool:
        return (self.identical and self.exactly_once
                and self.quarantined == 0
                and self.tmp_debris == 0 and self.corrupt == 0
                and self.cache_intact
                and self.malformed_ok == self.malformed_total
                and (not self.rejections_expected
                     or (self.rejected_429 > 0 and self.retry_after_ok))
                and self.drain_exit in (None, 0)
                and self.drain_intact in (None, True)
                and self.drain_lost == 0)

    def log_lines(self) -> list:
        lines = [f"chaos[serve]: seed={self.seed} suite={self.suite} "
                 f"cells={self.cells} jobs={self.jobs} "
                 f"duplicates={self.duplicates} "
                 f"queue_limit={self.queue_limit}"]
        for spec, event, status in self.events:
            lines.append(f"  {event:<12s} {spec.kernel}/{spec.config} "
                         f"scale={spec.scale:g}: {status}")
        lines.append(
            f"  admissions: accepted={self.accepted} deduped={self.deduped} "
            f"cached={self.cached} rejected_429={self.rejected_429} "
            f"(retry_after {'ok' if self.retry_after_ok else 'MISSING'})")
        lines.append(
            f"  exactly-once: misses={self.exec_misses} "
            f"stores={self.exec_stores} for {self.cells} unique cell(s): "
            + ("OK" if self.exactly_once else "VIOLATED"))
        lines.append(
            f"  malformed: {self.malformed_ok}/{self.malformed_total} "
            "rejected with 400, server healthy")
        lines.append(
            f"  cache: tmp_debris={self.tmp_debris} corrupt={self.corrupt} "
            f"quarantined={self.quarantined} "
            + ("intact" if self.cache_intact else "DAMAGED"))
        lines.append("  payload bytes: " + (
            "identical" if self.identical
            else f"{self.mismatched} DIVERGED"))
        if self.drain_exit is not None:
            lines.append(
                f"  drain drill: exit={self.drain_exit} "
                f"lost={self.drain_lost} cache "
                + ("intact" if self.drain_intact else "DAMAGED"))
        for note in self.notes:
            lines.append(f"  note: {note}")
        lines.append("chaos[serve]: " + (
            "OK — serve-layer faults are invisible in the payload bytes"
            if self.ok else "FAILED"))
        return lines

    def summary(self) -> str:
        return "\n".join(self.log_lines())


def _burst(host: str, port: int, specs_by_thread: list, seed: int,
           counts: dict, retry_after: list, ids: list) -> list:
    """Hammer the server from ``len(specs_by_thread)`` client threads.

    Each thread submits its spec list one at a time, retrying 429s with
    the server's own ``Retry-After`` advice.  Returns raised errors.
    """
    lock = threading.Lock()
    errors: list = []

    def worker(idx: int, specs: list) -> None:
        client = ServeClient(host, port)
        try:
            for spec in specs:
                body = json.dumps(_spec_json(spec)).encode()
                deadline = time.monotonic() + 120
                while True:
                    status, headers, payload = client.raw_request(
                        "POST", "/jobs", body)
                    if status == 202:
                        entry = payload["jobs"][0]
                        with lock:
                            if entry.get("deduped"):
                                counts["deduped"] += 1
                            elif entry.get("cached"):
                                counts["cached"] += 1
                            else:
                                counts["accepted"] += 1
                            ids.append((spec, entry["id"]))
                        break
                    if status == 429:
                        advice = headers.get("Retry-After")
                        with lock:
                            counts["rejected_429"] += 1
                            retry_after.append(advice)
                        if time.monotonic() > deadline:
                            raise AssertionError(
                                "429 retry loop exceeded 120s")
                        time.sleep(min(float(advice or 1), 0.5))
                        continue
                    raise AssertionError(
                        f"unexpected status {status}: {payload!r}")
        except Exception as exc:  # noqa: BLE001 - collected for the report
            with lock:
                errors.append(f"client {idx}: {type(exc).__name__}: {exc}")
        finally:
            client.close()

    threads = [threading.Thread(target=worker, args=(i, specs), daemon=True)
               for i, specs in enumerate(specs_by_thread)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(180)
    return errors


def _shuffled(items: list, seed: int) -> list:
    """Deterministic order-scramble without ``random`` state leakage."""
    import hashlib

    def rank(pair):
        i, _ = pair
        return hashlib.sha256(f"{seed}|{i}".encode()).digest()

    return [item for _, item in sorted(enumerate(items), key=rank)]


def _drain_drill(specs, reference: dict, jobs: int, timeout: float,
                 workdir: Path, notes: list) -> tuple:
    """SIGTERM a real ``python -m repro serve`` subprocess mid-load.

    Returns ``(exit_code, cache_intact, lost)``: the server must exit 0
    and leave every accepted spec's result in the cache, byte-identical
    to the reference — graceful drain, proven from outside the process.
    """
    import repro

    root = workdir / "drain-cache"
    src = Path(repro.__file__).parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--jobs", str(jobs), "--timeout", str(timeout),
         "--cache-dir", str(root)],
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
        env=env)
    try:
        port = None
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            line = proc.stderr.readline()
            if not line:
                break
            match = re.search(r"listening on http://[\d.]+:(\d+)", line)
            if match:
                port = int(match.group(1))
                break
        if port is None:
            proc.kill()
            notes.append("drain drill: server never reported its port")
            return proc.wait(), False, len(specs)
        with ServeClient("127.0.0.1", port) as client:
            response = client.submit_batch([_spec_json(s) for s in specs])
            accepted = [e for e in response["jobs"] if "id" in e]
        time.sleep(0.3)                 # land mid-batch
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=300)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        proc.stderr.close()
    debris = len(list(root.rglob("*.tmp.*"))) if root.exists() else 0
    cache = ResultCache(root)
    lost = 0
    for spec in specs:
        outcome = cache.get(cache_key(spec))
        if outcome is None or json.dumps(
                outcome_payload(outcome),
                sort_keys=True) != reference[spec_digest(spec)]:
            lost += 1
    intact = debris == 0 and cache.corrupt == 0 and lost == 0
    if len(accepted) != len(specs):
        notes.append(f"drain drill: only {len(accepted)}/{len(specs)} "
                     "specs accepted before SIGTERM")
    return code, intact, lost


def run_serve_chaos_oracle(seed: int = 1234, suite: str = "table4",
                           instances: str = "default", jobs: int = 2,
                           scale: float = 0.05, timeout: float = 8.0,
                           duplicates: int = 3, queue_limit: int = 4,
                           drain: bool = True,
                           workdir: Optional[Path] = None
                           ) -> ServeChaosResult:
    """The serve-layer differential gate (see the module docstring).

    Deterministic staging: the plan's hang target is submitted alone
    first (the *plug*); once it is running, the executor is wedged for
    ~``timeout`` seconds, so the follow-up burst of
    ``duplicates x (cells - 1)`` submissions against a
    ``queue_limit``-slot queue must both collapse in flight and
    overflow into 429s.  The seeded kill lands later in the burst and
    exercises preserve-on-break plus the between-batch pool rebuild.
    """
    import repro.workloads.registry  # noqa: F401 - populate the registries
    from repro.workloads.suite import Matrix, get_family, get_suite

    suite_obj = get_suite(suite)
    family = get_family(instances)
    specs = Matrix(suite_obj, family, scales=scale, check=True).specs()
    if workdir is None:
        workdir = Path(tempfile.mkdtemp(prefix="repro-chaos-serve-"))
    workdir = Path(workdir)
    marker_dir = workdir / "markers"
    cache_root = workdir / "cache"
    notes: list = []

    # pass 1: the serial fault-free reference payload bytes, per digest
    digests = {spec: spec_digest(spec) for spec in specs}
    reference = {digests[spec]: json.dumps(
        outcome_payload(execute(spec)), sort_keys=True) for spec in specs}

    # pass 2: the live server under seeded chaos + client storm
    plan = PoolChaosPlan(seed, kills=1, hangs=1, hang_s=4 * timeout,
                         tear_every=0)
    events = plan.schedule(specs)
    plug = next((s for s, e in events.items() if e == EVENT_HANG), specs[0])
    pools: list = []

    def pool_factory():
        try:
            inner = ProcessPool(jobs)
        except (OSError, PermissionError):
            inner = SerialPool()
        pool = ChaosPool(inner, plan, specs, marker_dir)
        pools.append(pool)
        return pool

    config = ServeConfig(
        port=0, jobs=jobs, queue_limit=queue_limit, timeout=timeout,
        retries=2, backoff_seed=seed, cache_dir=str(cache_root))
    before = dataclasses.asdict(STATS)
    counts = {"accepted": 0, "deduped": 0, "cached": 0, "rejected_429": 0}
    retry_after: list = []
    ids: list = []
    mismatched = 0
    malformed_ok = 0
    bodies = _malformed_bodies()

    with ServerThread(config, pool_factory=pool_factory) as st:
        host, port = st.server.host, st.server.port
        with ServeClient(host, port) as client:
            # the plug: wedge the executor so the burst meets a full
            # queue and a live dedupe window
            entry = client.submit(_spec_json(plug))
            counts["accepted"] += 1
            ids.append((plug, entry["id"]))
            wait_until = time.monotonic() + 15
            while time.monotonic() < wait_until:
                if client.job(entry["id"])["state"] != "queued":
                    break
                time.sleep(0.05)

            remaining = [s for s in specs if s is not plug]
            per_thread = [_shuffled(remaining, seed + 7 * i) + [plug]
                          for i in range(duplicates)]
            errors = _burst(host, port, per_thread, seed, counts,
                            retry_after, ids)
            notes.extend(errors)

            # every submission's job must resolve to the reference bytes
            for spec, job_id in ids:
                payload = client.wait_result(job_id, timeout=120)
                if json.dumps(payload, sort_keys=True) \
                        != reference[digests[spec]]:
                    mismatched += 1

            # malformed storm: each must 400, server must stay healthy
            for label, body in bodies:
                status, _h, _p = client.raw_request("POST", "/jobs", body)
                healthy = client.healthz().get("ok", False)
                if status == 400 and healthy:
                    malformed_ok += 1
                else:
                    notes.append(f"malformed {label!r}: status={status} "
                                 f"healthy={healthy}")

            server_stats = client.stats()
        # leaving the context drains the server gracefully

    delta_quar = STATS.quarantined - before["quarantined"]
    exec_stats = (server_stats.get("cache") or {}).get("execute", {})
    hang_fired = any(status == "fired" and event == EVENT_HANG
                     for _s, event, status in pools[-1].event_log()) \
        if pools else False
    if not hang_fired:
        notes.append("hang suppressed (no process pool): 429 coverage "
                     "not required on this platform")

    tmp_debris = len(list(cache_root.rglob("*.tmp.*"))) \
        if cache_root.exists() else 0
    warm = ResultCache(cache_root)
    cache_intact = all(warm.get(cache_key(spec)) is not None
                       for spec in specs) and warm.corrupt == 0

    drain_exit = drain_intact = None
    drain_lost = 0
    if drain:
        drain_exit, drain_intact, drain_lost = _drain_drill(
            specs, reference, jobs, timeout, workdir, notes)

    return ServeChaosResult(
        suite=suite_obj.name, seed=seed, cells=len(specs), jobs=jobs,
        duplicates=duplicates, queue_limit=queue_limit,
        identical=mismatched == 0 and not errors,
        mismatched=mismatched,
        accepted=counts["accepted"], deduped=counts["deduped"],
        cached=counts["cached"], rejected_429=counts["rejected_429"],
        retry_after_ok=all(a is not None for a in retry_after),
        rejections_expected=hang_fired,
        malformed_ok=malformed_ok, malformed_total=len(bodies),
        exec_misses=exec_stats.get("misses", -1),
        exec_stores=exec_stats.get("stores", -1),
        quarantined=delta_quar,
        tmp_debris=tmp_debris, corrupt=warm.corrupt,
        cache_intact=cache_intact,
        drain_exit=drain_exit, drain_intact=drain_intact,
        drain_lost=drain_lost,
        events=tuple(pools[-1].event_log()) if pools else (),
        notes=tuple(notes))
