"""Deterministic fault injection and precise-trap recovery.

The paper's section 2 makes precise traps a headline feature of the
Tarantula ISA: a faulting vector instruction reports its PC, older
instructions complete, and execution is restartable.  This package
proves that contract end to end against the simulator:

* :mod:`repro.faults.plan` — a seedable :class:`FaultPlan` that picks
  injection sites deterministically from a program;
* :mod:`repro.faults.injector` — a :class:`FaultInjector` that arms
  faults at real model seams (page-table holes, poisoned lines, MAF
  replay storms, mid-kernel kill-and-replay) and drives the
  trap → checkpoint → service → resume recovery cycle;
* :mod:`repro.faults.oracle` — a differential oracle asserting that the
  recovered run reaches bit-identical architectural state to the
  fault-free run.

See docs/FAULTS.md for the fault model.
"""

from __future__ import annotations

from repro.faults.injector import FaultInjector, InjectionLog, InjectionRecord
from repro.faults.plan import (
    SITE_KILL,
    SITE_MAF,
    SITE_POISON,
    SITE_TLB,
    SITE_TYPES,
    FaultEvent,
    FaultPlan,
)
from repro.faults.oracle import OracleResult, run_recovery_oracle, state_digest

__all__ = [
    "SITE_KILL",
    "SITE_MAF",
    "SITE_POISON",
    "SITE_TLB",
    "SITE_TYPES",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "InjectionLog",
    "InjectionRecord",
    "OracleResult",
    "run_recovery_oracle",
    "state_digest",
]
