"""Deterministic fault injection and precise-trap recovery.

The paper's section 2 makes precise traps a headline feature of the
Tarantula ISA: a faulting vector instruction reports its PC, older
instructions complete, and execution is restartable.  This package
proves that contract end to end against the simulator:

* :mod:`repro.faults.plan` — a seedable :class:`FaultPlan` that picks
  injection sites deterministically from a program;
* :mod:`repro.faults.injector` — a :class:`FaultInjector` that arms
  faults at real model seams (page-table holes, poisoned lines, MAF
  replay storms, mid-kernel kill-and-replay) and drives the
  trap → checkpoint → service → resume recovery cycle;
* :mod:`repro.faults.oracle` — a differential oracle asserting that the
  recovered run reaches bit-identical architectural state to the
  fault-free run;
* :mod:`repro.faults.chaos_pool` — orchestration-level chaos: a seeded
  :class:`ChaosPool`/:class:`ChaosCache` pair that kills workers
  mid-cell, wedges them in hangs and tears result-cache writes, with
  :func:`run_pool_chaos_oracle` proving the rendered report stays
  byte-identical to a fault-free run (``repro chaos --layer pool``);
* :mod:`repro.faults.chaos_serve` — service-level chaos: the same
  seeded kills and hangs injected under a live :mod:`repro.serve` job
  server while concurrent clients submit duplicate, bursty and
  malformed load, with :func:`run_serve_chaos_oracle` proving every
  accepted job's payload stays byte-identical, duplicates simulate
  exactly once and SIGTERM drains without losing a job
  (``repro chaos --layer serve``; docs/SERVE.md).

See docs/FAULTS.md for the fault model.
"""

from __future__ import annotations

from repro.faults.chaos_pool import (
    POOL_EVENTS,
    ChaosCache,
    ChaosCell,
    ChaosPool,
    PoolChaosPlan,
    PoolChaosResult,
    run_pool_chaos_oracle,
)
from repro.faults.chaos_serve import ServeChaosResult, run_serve_chaos_oracle
from repro.faults.injector import FaultInjector, InjectionLog, InjectionRecord
from repro.faults.plan import (
    SITE_KILL,
    SITE_MAF,
    SITE_POISON,
    SITE_TLB,
    SITE_TYPES,
    FaultEvent,
    FaultPlan,
)
from repro.faults.oracle import OracleResult, run_recovery_oracle, state_digest

__all__ = [
    "POOL_EVENTS",
    "SITE_KILL",
    "SITE_MAF",
    "SITE_POISON",
    "SITE_TLB",
    "SITE_TYPES",
    "ChaosCache",
    "ChaosCell",
    "ChaosPool",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "InjectionLog",
    "InjectionRecord",
    "OracleResult",
    "PoolChaosPlan",
    "PoolChaosResult",
    "ServeChaosResult",
    "run_recovery_oracle",
    "run_pool_chaos_oracle",
    "run_serve_chaos_oracle",
    "state_digest",
]
