"""Drives planned faults through a timing processor, recovering precisely.

The injector owns the main loop that a PALcode + OS pair would own on
real hardware: it steps the co-simulated processor one instruction at a
time, arms each planned fault just before its victim instruction, and
when the architectural trap arrives it *services* the fault (maps the
page back in, scrubs the poisoned line), restores the checkpoint taken
at the trap PC, and resumes — re-executing the faulting instruction in
place, exactly the restart the paper's precise-trap model promises
(section 2).

Two fault sites never trap at all and exercise different guarantees:

* ``maf_panic`` storms the Miss Address File until livelock panic mode
  trips, then holds the offending entry for a few instructions so the
  workload's own misses get NACKed — state must be bit-identical anyway
  because the MAF is purely a timing structure;
* ``kill_replay`` abandons the processor mid-kernel and resumes a
  freshly constructed one from an architectural checkpoint — the
  context-switch/migration story.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.processor import TarantulaProcessor
from repro.errors import ArchitecturalTrap, SimulationError
from repro.faults.plan import (
    SITE_KILL,
    SITE_MAF,
    SITE_POISON,
    SITE_TLB,
    FaultEvent,
    FaultPlan,
    _vector_memory_indices,
)
from repro.isa.program import Program
from repro.isa.semantics import indexed_addresses, strided_addresses

#: instructions the MAF panic entry is held across before release
PANIC_HOLD_INSTRUCTIONS = 4
#: recoveries allowed per event before declaring the fault stuck
MAX_RECOVERIES_PER_EVENT = 3


@dataclass
class InjectionRecord:
    """What one planned event actually did."""

    site: str
    index: int
    outcome: str          # recovered | suppressed | panicked | killed | unfired
    trap_pc: int | None = None
    detail: str = ""


@dataclass
class InjectionLog:
    """Aggregate result of one injector run."""

    records: list = field(default_factory=list)
    recoveries: int = 0
    suppressed: int = 0
    kills: int = 0
    nacks: int = 0

    def fired_sites(self) -> set:
        return {r.site for r in self.records
                if r.outcome in ("recovered", "panicked", "killed")}

    def outcome_of(self, site: str) -> list:
        return [r for r in self.records if r.site == site]


def _first_active_address(instr, state) -> int | None:
    """Effective address of the first active element, or None if vl/vm
    leaves the instruction with nothing to do."""
    addrs = indexed_addresses(instr, state) if instr.definition.is_indexed \
        else strided_addresses(instr, state)
    active = state.active_mask(instr.masked)
    idx = np.nonzero(active)[0]
    if idx.size == 0:
        return None
    return int(addrs[idx[0]])


class FaultInjector:
    """Runs ``program`` on ``proc`` while injecting ``plan``'s faults."""

    def __init__(self, proc: TarantulaProcessor, program: Program,
                 plan: FaultPlan) -> None:
        self.proc = proc
        self.program = program
        self.plan = plan
        self.log = InjectionLog()
        self._events: dict[int, list] = {}
        for event in plan.schedule(program):
            self._events.setdefault(event.index, []).append(event)
        # armed per-trap-site state
        self._armed: dict[int, tuple] = {}   # index -> (event, kind, token)
        self._panic_hold: tuple | None = None  # (entry, release_index, nacks0)

    # -- arming ------------------------------------------------------------

    def _defer(self, event: FaultEvent, reason: str) -> None:
        """Re-attach an unarmable event to the next eligible index."""
        eligible = _vector_memory_indices(
            self.program, loads_only=event.site == SITE_POISON,
            prefetch=not event.expect_fire)
        later = [i for i in eligible
                 if i > event.index and i not in self._events]
        if later:
            moved = FaultEvent(event.site, later[0], event.expect_fire)
            self._events.setdefault(moved.index, []).append(moved)
        else:
            self.log.records.append(InjectionRecord(
                event.site, event.index, "unfired", detail=reason))

    def _arm(self, event: FaultEvent, index: int) -> None:
        proc, instr = self.proc, self.program[index]
        if event.site == SITE_TLB:
            addr = _first_active_address(instr, proc.functional.state)
            if addr is None:
                self._defer(event, "no active elements")
                return
            vpn = proc.vtlb.page_table.vpn_of(addr)
            proc.vtlb.page_table.punch_hole(vpn)
            proc.vtlb.invalidate(vpn)
            self._armed[index] = (event, SITE_TLB, vpn)
        elif event.site == SITE_POISON:
            addr = _first_active_address(instr, proc.functional.state)
            if addr is None:
                self._defer(event, "no active elements")
                return
            proc.functional.memory.poison_line(addr)
            self._armed[index] = (event, SITE_POISON, addr)
        elif event.site == SITE_MAF:
            maf = proc.l2.maf
            now = proc._last_completion
            t = maf.earliest_entry(now)
            entry = maf.allocate(t, {0xFAD_0000})
            while not maf.panic_mode:
                maf.record_replay(entry)
            self._panic_hold = (entry, index + PANIC_HOLD_INSTRUCTIONS,
                                maf.counters.get("nacks"))
            self.log.records.append(InjectionRecord(
                event.site, index, "panicked",
                detail=f"owner slice {entry.slice_id}"))
        elif event.site == SITE_KILL:
            self._release_panic()  # the doomed MAF dies with its processor
            cp = proc.functional.checkpoint()
            replacement = TarantulaProcessor(proc.config)
            replacement.functional.restore(cp)
            replacement.resume_at(index)
            self.proc = replacement
            self.log.kills += 1
            self.log.records.append(InjectionRecord(
                event.site, index, "killed",
                detail=f"resumed at instruction {index}"))

    def _disarm(self, index: int) -> tuple | None:
        armed = self._armed.pop(index, None)
        if armed is None:
            return None
        _, kind, token = armed
        if kind == SITE_TLB:
            self.proc.vtlb.page_table.fill_hole(token)
        elif kind == SITE_POISON:
            self.proc.functional.memory.scrub_line(token)
        return armed

    def _release_panic(self) -> None:
        if self._panic_hold is None:
            return
        entry, _, nacks0 = self._panic_hold
        self._panic_hold = None
        maf = self.proc.l2.maf
        self.log.nacks += maf.counters.get("nacks") - nacks0
        maf.release(entry, self.proc._last_completion)

    # -- the recovery loop -------------------------------------------------

    def run(self, recover: bool = True) -> InjectionLog:
        """Execute the whole program, injecting and recovering.

        With ``recover=False`` the first architectural trap escapes to
        the caller (the engine's deliberate-failure path); otherwise
        every planned trap is serviced and execution resumes until the
        program completes.
        """
        instrs = list(self.program)
        attempts: dict[int, int] = {}
        i = 0
        while i < len(instrs):
            if self._panic_hold is not None and i >= self._panic_hold[1]:
                self._release_panic()
            pending = self._events.pop(i, ())
            # Checkpoint BEFORE arming: the snapshot must describe the
            # fault-free world, or restoring it would re-inject the fault
            # (a poisoned line in the memory image) and trap forever.
            checkpoint = self.proc.functional.checkpoint() if pending else None
            for event in pending:
                self._arm(event, i)
            armed = self._armed.get(i)
            try:
                self.proc.step(instrs[i])
            except ArchitecturalTrap as trap:
                if not recover or armed is None:
                    raise
                if trap.pc != i:
                    raise SimulationError(
                        f"imprecise trap: planned at {i}, reported pc="
                        f"{trap.pc} ({trap})") from trap
                event = armed[0]
                if not event.expect_fire:
                    raise SimulationError(
                        f"prefetch probe at {i} trapped ({trap}); "
                        "prefetch-via-v31 must suppress faults") from trap
                attempts[i] = attempts.get(i, 0) + 1
                if attempts[i] > MAX_RECOVERIES_PER_EVENT:
                    raise SimulationError(
                        f"fault at {i} still trapping after "
                        f"{MAX_RECOVERIES_PER_EVENT} recoveries") from trap
                self._disarm(i)  # service: map the page back / scrub
                self.proc.functional.restore(checkpoint)
                self.proc.resume_at(i)
                self.log.recoveries += 1
                self.log.records.append(InjectionRecord(
                    event.site, i, "recovered", trap_pc=trap.pc,
                    detail=str(trap)))
                continue  # re-execute instruction i, now fault-free
            if armed is not None:
                event = armed[0]
                self._disarm(i)
                if event.expect_fire:
                    raise SimulationError(
                        f"planned {event.site} fault at {i} did not trap")
                self.log.suppressed += 1
                self.log.records.append(InjectionRecord(
                    event.site, i, "suppressed",
                    detail="prefetch ignored the armed fault"))
            i += 1
        self._release_panic()
        for index, pending in sorted(self._events.items()):
            for event in pending:  # planned past the end of the program
                self.log.records.append(InjectionRecord(
                    event.site, index, "unfired", detail="past program end"))
        return self.log
