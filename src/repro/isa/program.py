"""Program container: an assembled sequence of instructions.

The paper's benchmarks were hand-written assembly; loop control ran on
the EV8 scalar core.  We mirror that split: kernels are built by Python
code (the "compiler"), and the resulting :class:`Program` is a flat,
fully-unrolled instruction sequence.  Static statistics (instruction mix
by group) live here; dynamic operation counts (flops, element ops) are
accounted by the functional/timing simulators because they depend on
``vl``/``vm`` at execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.isa.instructions import Group, Instruction


@dataclass
class ProgramStats:
    """Static instruction-mix summary of a program.

    ``memory_instructions`` counts *architected* memory traffic only —
    loads and stores whose elements the functional/timing models charge
    as memory work.  Prefetches (loads targeting ``v31``) are counted
    separately in ``prefetches`` and excluded from
    ``memory_instructions``, mirroring the dynamic accounting
    (:class:`~repro.core.functional.OperationCounts` keeps
    ``prefetch_elements`` out of ``memory_elements``).  An SM/RM-group
    prefetch still counts as a vector instruction and in ``by_group``.
    """

    total: int = 0
    by_group: dict[str, int] = field(default_factory=dict)
    vector_instructions: int = 0
    scalar_instructions: int = 0
    memory_instructions: int = 0
    masked_instructions: int = 0
    prefetches: int = 0

    @property
    def static_vector_fraction(self) -> float:
        """Fraction of static instructions that are vector instructions."""
        if self.total == 0:
            return 0.0
        return self.vector_instructions / self.total


class Program:
    """An ordered, immutable-after-build list of instructions."""

    def __init__(self, name: str = "program",
                 instructions: Iterable[Instruction] = ()) -> None:
        self.name = name
        self._instructions: list[Instruction] = list(instructions)

    def append(self, instr: Instruction) -> None:
        self._instructions.append(instr)

    def extend(self, instrs: Iterable[Instruction]) -> None:
        self._instructions.extend(instrs)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __len__(self) -> int:
        return len(self._instructions)

    def __getitem__(self, index):
        return self._instructions[index]

    def stats(self) -> ProgramStats:
        """Compute the static instruction mix."""
        stats = ProgramStats()
        for instr in self._instructions:
            d = instr.definition
            stats.total += 1
            stats.by_group[d.group.name] = stats.by_group.get(d.group.name, 0) + 1
            if d.group is Group.SC:
                stats.scalar_instructions += 1
            else:
                stats.vector_instructions += 1
            if instr.is_prefetch:
                stats.prefetches += 1
            elif d.is_memory:
                stats.memory_instructions += 1
            if instr.masked:
                stats.masked_instructions += 1
        return stats

    def listing(self) -> str:
        """Assembly-like text listing (one instruction per line)."""
        return "\n".join(f"{i:6d}:  {instr}" for i, instr in enumerate(self))

    def __repr__(self) -> str:
        return f"Program({self.name!r}, {len(self)} instructions)"
