"""Text assembler for the Tarantula extension.

The syntax follows the Alpha convention used by the paper's Figure 1:
sources first, destination last, ``#`` immediates, ``disp(rN)`` memory
operands, ``;`` comments, and a trailing ``/m`` qualifier for execution
under mask::

    ; copy with scale
    setvl   #128
    setvs   #8
    lda     r1, 0x10000
    lda     r2, 0x20000
    vloadq  v0, 0(r1)
    vsmult  v0, #3.5, v1
    vstoreq v1, 0(r2)       /m
    vgathq  v2, v5, 0(r1)   ; vd, index vector, base
    vscatq  v1, v5, 0(r2)   ; data, index vector, base

There is no branch support: loop control runs on the scalar core, so
kernels are emitted fully unrolled (by the builder) or written as
straight-line bodies.
"""

from __future__ import annotations

import re

from repro.errors import AssemblerError
from repro.isa.instructions import INSTRUCTION_SET, Group, Instruction
from repro.isa.program import Program

_MEM_RE = re.compile(r"^(?P<disp>[+-]?(?:0x[0-9a-fA-F]+|\d+)?)\((?P<reg>r\d+)\)$")
_VREG_RE = re.compile(r"^v(\d+)$")
_SREG_RE = re.compile(r"^r(\d+)$")
_IMM_RE = re.compile(r"^#(?P<val>.+)$")


def _parse_int(text: str, line: int) -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblerError(f"bad integer {text!r}", line)


def _parse_imm(text: str, line: int):
    """Immediate: int (dec/hex) or float (contains '.' or exponent)."""
    if re.search(r"[.eE]", text) and not text.lower().startswith("0x"):
        try:
            return float(text)
        except ValueError:
            raise AssemblerError(f"bad float immediate {text!r}", line)
    return _parse_int(text, line)


class _Operand:
    """One parsed operand: exactly one of vreg/sreg/imm/mem is set."""

    def __init__(self, token: str, line: int) -> None:
        self.vreg = self.sreg = self.imm = self.mem = None
        m = _VREG_RE.match(token)
        if m:
            self.vreg = int(m.group(1))
            return
        m = _SREG_RE.match(token)
        if m:
            self.sreg = int(m.group(1))
            return
        m = _IMM_RE.match(token)
        if m:
            self.imm = _parse_imm(m.group("val"), line)
            return
        m = _MEM_RE.match(token)
        if m:
            disp_text = m.group("disp") or "0"
            if disp_text in ("+", "-"):
                raise AssemblerError(f"bad displacement in {token!r}", line)
            self.mem = (_parse_int(disp_text, line),
                        int(m.group("reg")[1:]))
            return
        # Bare numeric literals are accepted as immediates (lda r1, 0x1000).
        try:
            self.imm = _parse_imm(token, line)
            return
        except AssemblerError:
            pass
        raise AssemblerError(f"cannot parse operand {token!r}", line)

    def require(self, kind: str, line: int, op: str):
        value = getattr(self, kind)
        if value is None:
            raise AssemblerError(
                f"{op}: expected {kind} operand", line)
        return value


def _split_operands(text: str) -> list[str]:
    text = text.strip()
    if not text:
        return []
    return [t.strip() for t in text.split(",")]


def _bind(op: str, operands: list[_Operand], line: int) -> Instruction:
    """Map parsed operands onto Instruction fields for mnemonic ``op``."""
    d = INSTRUCTION_SET[op]
    kw: dict = {}

    def expect(n: int) -> None:
        if len(operands) != n:
            raise AssemblerError(
                f"{op}: expected {n} operands, got {len(operands)}", line)

    if d.group is Group.VV and "vb" in d.fields:
        expect(3)
        kw["va"] = operands[0].require("vreg", line, op)
        kw["vb"] = operands[1].require("vreg", line, op)
        kw["vd"] = operands[2].require("vreg", line, op)
    elif d.group is Group.VV:  # unary
        expect(2)
        kw["va"] = operands[0].require("vreg", line, op)
        kw["vd"] = operands[1].require("vreg", line, op)
    elif d.group is Group.VS:
        expect(3)
        kw["va"] = operands[0].require("vreg", line, op)
        if operands[1].sreg is not None:
            kw["ra"] = operands[1].sreg
        else:
            kw["imm"] = operands[1].require("imm", line, op)
        kw["vd"] = operands[2].require("vreg", line, op)
    elif op in ("vloadq", "vstoreq"):
        expect(2)
        reg = operands[0].require("vreg", line, op)
        kw["vd" if op == "vloadq" else "va"] = reg
        kw["disp"], kw["rb"] = operands[1].require("mem", line, op)
    elif op == "vgathq":
        expect(3)
        kw["vd"] = operands[0].require("vreg", line, op)
        kw["vb"] = operands[1].require("vreg", line, op)
        kw["disp"], kw["rb"] = operands[2].require("mem", line, op)
    elif op == "vscatq":
        expect(3)
        kw["va"] = operands[0].require("vreg", line, op)
        kw["vb"] = operands[1].require("vreg", line, op)
        kw["disp"], kw["rb"] = operands[2].require("mem", line, op)
    elif op in ("setvl", "setvs"):
        expect(1)
        if operands[0].sreg is not None:
            kw["ra"] = operands[0].sreg
        else:
            kw["imm"] = operands[0].require("imm", line, op)
    elif op == "setvm":
        expect(1)
        kw["va"] = operands[0].require("vreg", line, op)
    elif op == "viota":
        expect(1)
        kw["vd"] = operands[0].require("vreg", line, op)
    elif op == "vextq":
        expect(3)
        kw["va"] = operands[0].require("vreg", line, op)
        if operands[1].sreg is not None:
            kw["ra"] = operands[1].sreg
        else:
            kw["imm"] = operands[1].require("imm", line, op)
        kw["rd"] = operands[2].require("sreg", line, op)
    elif op == "vinsq":
        expect(3)
        kw["ra"] = operands[0].require("sreg", line, op)
        kw["imm"] = operands[1].require("imm", line, op)
        kw["vd"] = operands[2].require("vreg", line, op)
    elif op in ("vsumq", "vsumt"):
        expect(2)
        kw["va"] = operands[0].require("vreg", line, op)
        kw["rd"] = operands[1].require("sreg", line, op)
    elif op == "lda":
        expect(2)
        kw["rd"] = operands[0].require("sreg", line, op)
        if operands[1].mem is not None:
            kw["imm"], kw["rb"] = operands[1].mem
        else:
            kw["imm"] = operands[1].require("imm", line, op)
    elif op in ("addq", "subq", "mulq", "sll"):
        expect(3)
        kw["ra"] = operands[0].require("sreg", line, op)
        if operands[1].sreg is not None:
            kw["rb"] = operands[1].sreg
        else:
            kw["imm"] = operands[1].require("imm", line, op)
        kw["rd"] = operands[2].require("sreg", line, op)
    elif op in ("ldq", "stq"):
        expect(2)
        kw["rd" if op == "ldq" else "ra"] = operands[0].require("sreg", line, op)
        kw["disp"], kw["rb"] = operands[1].require("mem", line, op)
    elif op == "wh64":
        expect(1)
        kw["disp"], kw["rb"] = operands[0].require("mem", line, op)
    elif op == "drainm":
        expect(0)
    else:  # pragma: no cover - table and binder kept in sync by tests
        raise AssemblerError(f"no binding rule for {op!r}", line)

    try:
        return Instruction(op, **kw)
    except Exception as exc:
        raise AssemblerError(str(exc), line)


#: optional listing-style line prefix ("   12:  vloadq ..."), so the
#: output of :meth:`Program.listing` assembles directly
_LABEL_RE = re.compile(r"^\d+:\s*")


def assemble(source: str, name: str = "asm", lint: bool = False) -> Program:
    """Assemble source text into a :class:`Program`.

    Accepts ``Program.listing()`` output verbatim (leading instruction
    indices are treated as labels and ignored).  With ``lint=True`` the
    assembled program passes through the static verifier
    (:mod:`repro.analysis`) and errors raise ``LintError``.
    """
    program = Program(name)
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        line = _LABEL_RE.sub("", line)
        if not line:
            continue
        masked = False
        if line.endswith("/m"):
            masked = True
            line = line[:-2].strip()
        parts = line.split(None, 1)
        op = parts[0].lower()
        if op not in INSTRUCTION_SET:
            raise AssemblerError(f"unknown mnemonic {op!r}", lineno)
        operands = [_Operand(tok, lineno)
                    for tok in _split_operands(parts[1] if len(parts) > 1 else "")]
        instr = _bind(op, operands, lineno)
        instr.masked = masked
        if masked:
            # re-validate with the mask applied (scalar ops reject /m)
            instr.__post_init__()
        program.append(instr)
    if lint:
        from repro.analysis import LintError, lint_program

        report = lint_program(program)
        if report.has_errors:
            raise LintError(report)
    return program


def disassemble(program: Program) -> str:
    """Inverse of :func:`assemble` (modulo whitespace)."""
    return "\n".join(str(instr) for instr in program)
