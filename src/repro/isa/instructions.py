"""Instruction definitions for the Tarantula ISA extension.

The paper (section 2) groups the ~45 new instructions into five
categories:

* ``VV`` — vector-vector operate (``vvaddq va, vb, vc``)
* ``VS`` — vector-scalar operate (``vsmulq va, rb, vc``)
* ``SM`` — strided memory access (``vloadq vc, off(rb)`` using ``vs``)
* ``RM`` — random memory access (gather/scatter)
* ``VC`` — vector control (``setvl``, ``setvs``, ``setvm``, ...)

plus the scalar Alpha instructions the kernels need, which we tag ``SC``
(they execute on the EV8 core).  Each mnemonic has an
:class:`InstructionDef` entry recording its group, data type, per-element
flop count and timing class; :class:`Instruction` is one assembled
instance with concrete operands.

Three mnemonics are documented *extensions* beyond the paper's list
(``viota``, ``vsumq``, ``vsumt``): the paper's benchmarks (dot products
in linpack/moldyn, index generation for gathers) require them, and
contemporary vector ISAs all provide equivalents.  They are flagged
``extension=True`` so the harness can report exactly what was added.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Union

from repro.errors import ProgramError

Scalar = Union[int, float]


class Group(Enum):
    """The paper's five instruction categories, plus scalar-core ops."""

    VV = "vector-vector operate"
    VS = "vector-scalar operate"
    SM = "strided memory access"
    RM = "random memory access"
    VC = "vector control"
    SC = "scalar (EV8 core)"


class TimingClass(Enum):
    """Latency/occupancy class used by the Vbox timing model."""

    INT = "int"          # integer ALU ops
    FP = "fp"            # pipelined FP add/mul/compare/convert
    FP_DIV = "fpdiv"     # unpipelined divide
    FP_SQRT = "fpsqrt"   # unpipelined square root
    MEM = "mem"          # memory pipeline (address generators + L2)
    CTRL = "ctrl"        # control-register moves
    SCALAR = "scalar"    # runs on the EV8 core


@dataclass(frozen=True)
class InstructionDef:
    """Static properties of one mnemonic."""

    mnemonic: str
    group: Group
    timing: TimingClass
    fields: tuple[str, ...]          # operand fields an instance must fill
    flops: int = 0                   # double-precision flops per active element
    is_store: bool = False
    is_load: bool = False
    is_indexed: bool = False         # gather/scatter (RM group)
    is_compare: bool = False
    writes_vm: bool = False
    #: the destination is also a source (FMAC accumulators)
    reads_dest: bool = False
    extension: bool = False          # not in the paper's instruction list
    description: str = ""

    @property
    def is_memory(self) -> bool:
        return self.is_load or self.is_store


def _d(mnemonic, group, timing, fields, **kw) -> InstructionDef:
    return InstructionDef(mnemonic, group, timing, tuple(fields), **kw)


def _operate_defs() -> list[InstructionDef]:
    """Build the VV and VS operate groups from a compact op table."""
    defs: list[InstructionDef] = []
    # (suffix, timing, flops, is_compare, description)
    binary_ops = [
        ("addq", TimingClass.INT, 0, False, "integer add"),
        ("subq", TimingClass.INT, 0, False, "integer subtract"),
        ("mulq", TimingClass.INT, 0, False, "integer multiply"),
        ("and", TimingClass.INT, 0, False, "bitwise and"),
        ("bis", TimingClass.INT, 0, False, "bitwise or (Alpha BIS)"),
        ("xor", TimingClass.INT, 0, False, "bitwise xor"),
        ("sll", TimingClass.INT, 0, False, "shift left logical"),
        ("srl", TimingClass.INT, 0, False, "shift right logical"),
        ("sra", TimingClass.INT, 0, False, "shift right arithmetic"),
        ("cmpeq", TimingClass.INT, 0, True, "integer compare equal"),
        ("cmpne", TimingClass.INT, 0, True, "integer compare not-equal"),
        ("cmplt", TimingClass.INT, 0, True, "integer compare less-than"),
        ("cmple", TimingClass.INT, 0, True, "integer compare less-or-equal"),
        ("addt", TimingClass.FP, 1, False, "FP add (T format)"),
        ("subt", TimingClass.FP, 1, False, "FP subtract"),
        ("mult", TimingClass.FP, 1, False, "FP multiply"),
        ("divt", TimingClass.FP_DIV, 1, False, "FP divide"),
        ("maxt", TimingClass.FP, 1, False, "FP maximum"),
        ("mint", TimingClass.FP, 1, False, "FP minimum"),
        ("cmpteq", TimingClass.FP, 1, True, "FP compare equal"),
        ("cmptlt", TimingClass.FP, 1, True, "FP compare less-than"),
        ("cmptle", TimingClass.FP, 1, True, "FP compare less-or-equal"),
    ]
    for suffix, timing, flops, is_cmp, desc in binary_ops:
        defs.append(_d(f"vv{suffix}", Group.VV, timing, ("va", "vb", "vd"),
                       flops=flops, is_compare=is_cmp,
                       description=f"vector-vector {desc}"))
        defs.append(_d(f"vs{suffix}", Group.VS, timing, ("va", "scalar", "vd"),
                       flops=flops, is_compare=is_cmp,
                       description=f"vector-scalar {desc}"))
    # FMAC: the section-5 extension ("adding floating point multiply-
    # accumulate units to Tarantula, this rate could be doubled with
    # very little extra complexity and power").  The third operand is
    # the destination itself, which is what makes it cheap for the Vbox
    # and expensive for EV8's queues.
    defs.append(_d("vvmaddt", Group.VV, TimingClass.FP, ("va", "vb", "vd"),
                   flops=2, reads_dest=True, extension=True,
                   description="FMAC: vd += va * vb (section 5 extension)"))
    defs.append(_d("vsmaddt", Group.VS, TimingClass.FP,
                   ("va", "scalar", "vd"),
                   flops=2, reads_dest=True, extension=True,
                   description="FMAC: vd += va * scalar (section 5 extension)"))
    # Unary ops live in the VV group (single vector source).
    unary_ops = [
        ("vsqrtt", TimingClass.FP_SQRT, 1, "FP square root"),
        ("vcvtqt", TimingClass.FP, 1, "convert int64 -> FP"),
        ("vcvttq", TimingClass.FP, 1, "convert FP -> int64 (truncate)"),
        ("vnot", TimingClass.INT, 0, "bitwise complement"),
    ]
    for name, timing, flops, desc in unary_ops:
        defs.append(_d(name, Group.VV, timing, ("va", "vd"),
                       flops=flops, description=f"vector {desc}"))
    return defs


def _memory_defs() -> list[InstructionDef]:
    return [
        _d("vloadq", Group.SM, TimingClass.MEM, ("vd", "rb"), is_load=True,
           description="strided vector load of quadwords, stride = vs"),
        _d("vstoreq", Group.SM, TimingClass.MEM, ("va", "rb"), is_store=True,
           description="strided vector store of quadwords, stride = vs"),
        _d("vgathq", Group.RM, TimingClass.MEM, ("vb", "rb", "vd"),
           is_load=True, is_indexed=True,
           description="gather: vd[i] = MEM[rb + vb[i]]"),
        _d("vscatq", Group.RM, TimingClass.MEM, ("va", "rb", "vb"),
           is_store=True, is_indexed=True,
           description="scatter: MEM[rb + vb[i]] = va[i]"),
    ]


def _control_defs() -> list[InstructionDef]:
    return [
        _d("setvl", Group.VC, TimingClass.CTRL, ("scalar",),
           description="vl <- scalar (clamped to [0,128])"),
        _d("setvs", Group.VC, TimingClass.CTRL, ("scalar",),
           description="vs <- scalar byte stride"),
        _d("setvm", Group.VC, TimingClass.CTRL, ("va",), writes_vm=True,
           description="vm <- low bit of each element of va"),
        _d("vextq", Group.VC, TimingClass.CTRL, ("va", "scalar", "rd"),
           description="scalar rd <- va[index] (20-cycle round trip)"),
        _d("vinsq", Group.VC, TimingClass.CTRL, ("scalar", "imm", "vd"),
           description="vd[index] <- scalar, other elements preserved"),
        _d("viota", Group.VC, TimingClass.INT, ("vd",), extension=True,
           description="vd[i] = i (index generation; documented extension)"),
        _d("vsumq", Group.VC, TimingClass.INT, ("va", "rd"), extension=True,
           description="integer sum reduction to scalar (extension)"),
        _d("vsumt", Group.VC, TimingClass.FP, ("va", "rd"), flops=1,
           extension=True,
           description="FP sum reduction to scalar (extension)"),
    ]


def _scalar_defs() -> list[InstructionDef]:
    return [
        _d("lda", Group.SC, TimingClass.SCALAR, ("rd", "imm"),
           description="rd <- rb + imm (rb optional, defaults to r31=0)"),
        _d("addq", Group.SC, TimingClass.SCALAR, ("ra", "rd"),
           description="scalar integer add (second source imm or rb)"),
        _d("subq", Group.SC, TimingClass.SCALAR, ("ra", "rd"),
           description="scalar integer subtract (second source imm or rb)"),
        _d("mulq", Group.SC, TimingClass.SCALAR, ("ra", "rd"),
           description="scalar integer multiply (second source imm or rb)"),
        _d("sll", Group.SC, TimingClass.SCALAR, ("ra", "rd"),
           description="scalar shift left logical (second source imm or rb)"),
        _d("ldq", Group.SC, TimingClass.SCALAR, ("rd", "rb"), is_load=True,
           description="scalar load quadword (through L1)"),
        _d("stq", Group.SC, TimingClass.SCALAR, ("ra", "rb"), is_store=True,
           description="scalar store quadword (through L1/write buffer)"),
        _d("wh64", Group.SC, TimingClass.SCALAR, ("rb",),
           description="write-hint 64: allocate dirty line without read"),
        _d("drainm", Group.SC, TimingClass.SCALAR, (),
           description="memory barrier: purge write buffer, update P-bits, "
                       "replay-trap younger instructions"),
    ]


def _build_table() -> dict[str, InstructionDef]:
    table: dict[str, InstructionDef] = {}
    for d in _operate_defs() + _memory_defs() + _control_defs() + _scalar_defs():
        if d.mnemonic in table:
            raise AssertionError(f"duplicate mnemonic {d.mnemonic}")
        table[d.mnemonic] = d
    return table


#: Mnemonic -> definition for every instruction the simulator understands.
INSTRUCTION_SET: dict[str, InstructionDef] = _build_table()

#: Mnemonics that are documented extensions beyond the paper's list.
EXTENSIONS = tuple(sorted(d.mnemonic for d in INSTRUCTION_SET.values() if d.extension))


def vector_instruction_count() -> int:
    """Number of non-extension vector mnemonics (paper reports ~45
    "not counting data-type variations"; we count concrete mnemonics)."""
    return sum(
        1 for d in INSTRUCTION_SET.values()
        if d.group is not Group.SC and not d.extension
    )


@dataclass
class Instruction:
    """One assembled instruction instance.

    Operand fields are filled according to the mnemonic's
    ``InstructionDef.fields``:

    * ``vd`` destination vector register, ``va``/``vb`` vector sources
    * ``rd`` destination scalar register, ``ra``/``rb`` scalar sources
      (``rb`` is the memory base register)
    * ``imm`` immediate; VS-group scalars may come from ``ra`` *or* ``imm``
    * ``disp`` byte displacement for memory instructions
    * ``masked`` executes under the current ``vm``
    """

    op: str
    vd: Optional[int] = None
    va: Optional[int] = None
    vb: Optional[int] = None
    rd: Optional[int] = None
    ra: Optional[int] = None
    rb: Optional[int] = None
    imm: Optional[Scalar] = None
    disp: int = 0
    masked: bool = False
    #: free-form tag the workloads use to label phases for metrics
    tag: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        op = self.op
        d = INSTRUCTION_SET.get(op)
        if d is None:
            # mnemonics are case-insensitive; only lowercase when the
            # direct lookup misses (assemblers emit lowercase already)
            op = op.lower()
            self.op = op
            d = INSTRUCTION_SET.get(op)
            if d is None:
                raise ProgramError(f"unknown mnemonic {op!r}")
        self._validate(d)
        # cache the table lookups as plain attributes (not properties):
        # the timing and functional simulators consult
        # definition/is_prefetch several times per executed instruction,
        # and operand fields never change after assembly
        self.definition = self._definition = d
        #: loads targeting v31 are prefetches (paper, section 2)
        self.is_prefetch = self._is_prefetch = \
            d.is_load and self.vd == 31 and d.group in (Group.SM, Group.RM)
        self._vreg_reads: Optional[tuple[int, ...]] = None
        self._vreg_writes: Optional[tuple[int, ...]] = None

    def _validate(self, d: InstructionDef) -> None:
        for f in d.fields:
            if f == "scalar":
                if self.ra is None and self.imm is None:
                    raise ProgramError(
                        f"{self.op}: scalar operand needs ra or imm")
            elif f == "imm":
                if self.imm is None:
                    raise ProgramError(f"{self.op}: missing immediate")
            elif getattr(self, f) is None:
                raise ProgramError(f"{self.op}: missing operand {f!r}")
        if (self.vd is not None and not 0 <= self.vd < 32) or \
                (self.va is not None and not 0 <= self.va < 32) or \
                (self.vb is not None and not 0 <= self.vb < 32):
            for reg in ("vd", "va", "vb"):
                v = getattr(self, reg)
                if v is not None and not 0 <= v < 32:
                    raise ProgramError(f"{self.op}: {reg}=v{v} out of range")
        if (self.rd is not None and not 0 <= self.rd < 32) or \
                (self.ra is not None and not 0 <= self.ra < 32) or \
                (self.rb is not None and not 0 <= self.rb < 32):
            for reg in ("rd", "ra", "rb"):
                v = getattr(self, reg)
                if v is not None and not 0 <= v < 32:
                    raise ProgramError(f"{self.op}: {reg}=r{v} out of range")
        if self.masked and d.group in (Group.SC,):
            raise ProgramError(f"{self.op}: scalar ops cannot be masked")
        if d.group is Group.SC and self.op in ("addq", "subq", "mulq", "sll") \
                and self.imm is None and self.rb is None:
            raise ProgramError(f"{self.op}: needs a second source (imm or rb)")

    # -- dependence queries used by the timing model ---------------------

    def vreg_reads(self) -> tuple[int, ...]:
        """Vector registers this instruction reads (excluding v31)."""
        cached = self._vreg_reads
        if cached is not None:
            return cached
        d = self._definition
        reads = []
        for f in ("va", "vb"):
            if f in d.fields:
                v = getattr(self, f)
                if v is not None and v != 31:
                    reads.append(v)
        # A masked-store/gather destination is never a read; but a masked
        # operate merges into vd, and FMAC accumulates into it.
        if (self.masked or d.reads_dest) and self.vd is not None \
                and self.vd != 31 and not d.is_memory:
            reads.append(self.vd)
        self._vreg_reads = result = tuple(reads)
        return result

    def vreg_writes(self) -> tuple[int, ...]:
        cached = self._vreg_writes
        if cached is not None:
            return cached
        d = self._definition
        if "vd" in d.fields and self.vd is not None and self.vd != 31:
            result: tuple[int, ...] = (self.vd,)
        else:
            result = ()
        self._vreg_writes = result
        return result

    def __str__(self) -> str:
        """Render in the assembler's syntax (see repro.isa.assembler)."""
        op = self.op
        mem = f"{self.disp}(r{self.rb})"
        if op in ("vloadq",):
            parts = [f"v{self.vd}", mem]
        elif op in ("vstoreq",):
            parts = [f"v{self.va}", mem]
        elif op == "vgathq":
            parts = [f"v{self.vd}", f"v{self.vb}", mem]
        elif op == "vscatq":
            parts = [f"v{self.va}", f"v{self.vb}", mem]
        elif op in ("ldq",):
            parts = [f"r{self.rd}", mem]
        elif op in ("stq",):
            parts = [f"r{self.ra}", mem]
        elif op == "wh64":
            parts = [mem]
        elif op == "lda":
            parts = [f"r{self.rd}",
                     f"{self.imm}(r{self.rb})" if self.rb is not None
                     else f"#{self.imm}"]
        elif self.definition.group is Group.SC and \
                self.definition.fields == ("ra", "rd"):
            # scalar operates carry a second source in rb *or* imm that
            # the fields tuple does not list; render sources-first like
            # the assembler expects: "addq ra, (rb|#imm), rd"
            second = f"r{self.rb}" if self.rb is not None else f"#{self.imm}"
            parts = [f"r{self.ra}", second, f"r{self.rd}"]
        else:
            parts = []
            for f in self.definition.fields:
                if f == "scalar":
                    parts.append(f"r{self.ra}" if self.ra is not None
                                 else f"#{self.imm}")
                elif f == "imm":
                    parts.append(f"#{self.imm}")
                elif f in ("vd", "va", "vb"):
                    parts.append(f"v{getattr(self, f)}")
                else:
                    parts.append(f"r{getattr(self, f)}")
        text = op if not parts else f"{op} " + ", ".join(parts)
        if self.masked:
            text += " /m"
        return text
