"""Tarantula instruction-set architecture: state, instructions, tools.

Public surface:

* :class:`~repro.isa.registers.ArchState` — vector/scalar/control state
* :class:`~repro.isa.instructions.Instruction` and the
  :data:`~repro.isa.instructions.INSTRUCTION_SET` table
* :class:`~repro.isa.builder.KernelBuilder` — hand-vectorization DSL
* :func:`~repro.isa.assembler.assemble` — text assembler
* :func:`~repro.isa.semantics.execute` — architectural semantics
"""

from repro.isa.assembler import assemble, disassemble
from repro.isa.builder import KernelBuilder
from repro.isa.encodings import EncodingError, decode, encode
from repro.isa.instructions import (
    EXTENSIONS,
    INSTRUCTION_SET,
    Group,
    Instruction,
    InstructionDef,
    TimingClass,
    vector_instruction_count,
)
from repro.isa.program import Program, ProgramStats
from repro.isa.registers import MVL, ArchState, ControlRegisters, \
    ScalarRegisterFile, VectorRegisterFile
from repro.isa.semantics import bits_to_float, execute, float_to_bits

__all__ = [
    "ArchState",
    "ControlRegisters",
    "EXTENSIONS",
    "EncodingError",
    "Group",
    "INSTRUCTION_SET",
    "Instruction",
    "InstructionDef",
    "KernelBuilder",
    "MVL",
    "Program",
    "ProgramStats",
    "ScalarRegisterFile",
    "TimingClass",
    "VectorRegisterFile",
    "assemble",
    "bits_to_float",
    "decode",
    "disassemble",
    "encode",
    "execute",
    "float_to_bits",
    "vector_instruction_count",
]
