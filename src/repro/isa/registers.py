"""Architectural state added by the Tarantula ISA extension.

Section 2 of the paper: 32 vector registers (``v0..v31``) of 128 64-bit
elements each, plus three control registers — vector length ``vl`` (8
bits), vector stride ``vs`` (64 bits, a byte stride), and vector mask
``vm`` (128 bits).  Register ``v31`` is hardwired to zero, following the
Alpha tradition; writes to it are discarded, which is what makes
vector/gather/scatter *prefetches* expressible as ordinary loads with
``v31`` as destination.

The scalar side of the machine (the EV8 core) is modeled by
:class:`ScalarRegisterFile` — 31 writable integer registers with ``r31``
hardwired to zero, enough to express the hand-vectorized kernels'
address arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ProgramError

#: Number of architectural vector registers (v31 reads as zero).
NUM_VREGS = 32
#: Elements per vector register.
MVL = 128
#: Number of scalar integer registers (r31 reads as zero).
NUM_SREGS = 32
#: Hardwired-zero register index (both files).
ZERO_REG = 31


class VectorRegisterFile:
    """The 32 x 128 x 64-bit vector register file, ``v31`` = 0.

    Values are stored as ``uint64``; floating-point instructions
    reinterpret the bits as IEEE double (the Alpha "T" format).
    """

    def __init__(self) -> None:
        self._regs = np.zeros((NUM_VREGS, MVL), dtype=np.uint64)

    def read(self, index: int) -> np.ndarray:
        """Return a *copy* of register ``index`` (v31 always reads zero)."""
        self._check(index)
        if index == ZERO_REG:
            return np.zeros(MVL, dtype=np.uint64)
        return self._regs[index].copy()

    def write(self, index: int, values: np.ndarray) -> None:
        """Overwrite register ``index``; writes to v31 are discarded."""
        self._check(index)
        if index == ZERO_REG:
            return
        if values.shape != (MVL,):
            raise ProgramError(
                f"vector register write must be {MVL} elements, got {values.shape}"
            )
        self._regs[index] = values.astype(np.uint64, copy=False)

    def write_elements(self, index: int, positions: np.ndarray, values: np.ndarray) -> None:
        """Write only the given element positions (used for masked ops)."""
        self._check(index)
        if index == ZERO_REG:
            return
        self._regs[index][positions] = values.astype(np.uint64, copy=False)

    @staticmethod
    def _check(index: int) -> None:
        if not 0 <= index < NUM_VREGS:
            raise ProgramError(f"vector register index {index} out of range")


class ScalarRegisterFile:
    """EV8-side integer registers ``r0..r31`` with ``r31`` = 0."""

    def __init__(self) -> None:
        self._regs = [0] * NUM_SREGS

    def read(self, index: int) -> int:
        if not 0 <= index < NUM_SREGS:
            raise ProgramError(f"scalar register index {index} out of range")
        if index == ZERO_REG:
            return 0
        return self._regs[index]

    def write(self, index: int, value: int) -> None:
        if not 0 <= index < NUM_SREGS:
            raise ProgramError(f"scalar register index {index} out of range")
        if index == ZERO_REG:
            return
        self._regs[index] = value & ((1 << 64) - 1)


class ControlRegisters:
    """The ``vl`` / ``vs`` / ``vm`` control registers.

    ``vl`` is clamped to [0, 128] (8-bit register); ``vs`` is a signed
    64-bit byte stride; ``vm`` is a 128-element boolean vector.
    """

    def __init__(self) -> None:
        self.vl: int = MVL
        self.vs: int = 8
        self.vm: np.ndarray = np.ones(MVL, dtype=bool)
        #: bumped whenever vm is replaced; keys the active-mask cache
        self.vm_version: int = 0

    def set_vl(self, value: int) -> None:
        if not 0 <= value <= MVL:
            raise ProgramError(f"vl must be in [0, {MVL}], got {value}")
        self.vl = int(value)

    def set_vs(self, value: int) -> None:
        limit = 1 << 63
        if not -limit <= value < limit:
            raise ProgramError(f"vs must fit in a signed 64-bit register")
        self.vs = int(value)

    def set_vm(self, bits: np.ndarray) -> None:
        if bits.shape != (MVL,):
            raise ProgramError(f"vm must be {MVL} bits, got {bits.shape}")
        self.vm = bits.astype(bool, copy=True)
        self.vm_version += 1


@dataclass
class ArchSnapshot:
    """A point-in-time copy of the complete architectural register state.

    The unit of the precise-trap contract (paper section 2): a trap
    reports its PC, the snapshot taken there restores every register a
    restarted instruction could observe — all 32 vector registers,
    the scalar file, and ``vl``/``vs``/``vm``.  All arrays are copies;
    a snapshot stays valid however execution proceeds.
    """

    vregs: np.ndarray         # (NUM_VREGS, MVL) uint64
    sregs: tuple              # NUM_SREGS ints
    vl: int
    vs: int
    vm: np.ndarray            # (MVL,) bool


class ArchState:
    """Complete architectural state visible to a Tarantula program."""

    def __init__(self) -> None:
        self.vregs = VectorRegisterFile()
        self.sregs = ScalarRegisterFile()
        self.ctrl = ControlRegisters()
        # active-mask cache, keyed by (vl, vm replacement version); the
        # derived counts and nonzero-index arrays are filled lazily
        self._mask_key = (-1, -1)
        self._mask_cache: dict = {}

    def _mask_entry(self) -> dict:
        key = (self.ctrl.vl, self.ctrl.vm_version)
        if key != self._mask_key:
            active = np.zeros(MVL, dtype=bool)
            active[: key[0]] = True
            self._mask_key = key
            self._mask_cache = {False: active, True: active & self.ctrl.vm}
        return self._mask_cache

    def active_mask(self, masked: bool) -> np.ndarray:
        """Boolean per-element activity: below vl, and vm if ``masked``.

        The array is cached until vl or vm changes and shared between
        callers — treat it as read-only.
        """
        return self._mask_entry()[masked]

    def active_count(self, masked: bool) -> int:
        """Number of active elements under the current vl/vm."""
        entry = self._mask_entry()
        n = entry.get(("n", masked))
        if n is None:
            n = entry[("n", masked)] = int(np.count_nonzero(entry[masked]))
        return n

    def active_indices(self, masked: bool) -> np.ndarray:
        """Indices of active elements (shared cache — read-only)."""
        entry = self._mask_entry()
        idx = entry.get(("i", masked))
        if idx is None:
            idx = entry[("i", masked)] = np.nonzero(entry[masked])[0]
        return idx

    def snapshot(self) -> ArchSnapshot:
        """Copy the full architectural register state (checkpoint)."""
        return ArchSnapshot(
            vregs=self.vregs._regs.copy(),
            sregs=tuple(self.sregs._regs),
            vl=self.ctrl.vl, vs=self.ctrl.vs,
            vm=self.ctrl.vm.copy())

    def restore(self, snap: ArchSnapshot) -> None:
        """Restore a snapshot taken by :meth:`snapshot` (resume)."""
        self.vregs._regs[:] = snap.vregs
        self.sregs._regs = list(snap.sregs)
        self.ctrl.vl = int(snap.vl)
        self.ctrl.vs = int(snap.vs)
        self.ctrl.set_vm(snap.vm)
