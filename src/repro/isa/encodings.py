"""Binary instruction encodings.

The paper extends the Alpha ISA but does not publish opcode assignments,
so this module defines a concrete, documented 32-bit encoding in the
spirit of the Alpha formats.  It exists so the repository contains a
complete ISA definition (encode/decode round-trips are property-tested),
and so traces can be stored compactly.

Formats (bit 31 on the left)::

  operate   | major:6 | fcode:8 | M:1 | L:1 | a:5 | b:5 | c:5 | 0 |
  memory    | major:6 | fcode:8 | M:1 | a:5 | b:5 | disp:7(signed, x8) |
  control   | major:6 | fcode:8 | M:1 | L:1 | a:5 | b:5 | lit8/c:5+pad |

* ``major`` is always 0x1A (an unused Alpha opcode slot).
* ``fcode`` selects the mnemonic (table below).
* ``M`` = executes under mask, ``L`` = operand ``b`` is a 5-bit literal.
* memory displacements are signed multiples of 8 bytes in [-512, 504].

The encoding intentionally cannot represent every :class:`Instruction`
the simulator accepts (e.g. float immediates or huge displacements, which
a real compiler would materialize through registers); ``encode`` raises
:class:`EncodingError` for those.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.isa.instructions import INSTRUCTION_SET, Group, Instruction

MAJOR_OPCODE = 0x1A


class EncodingError(ReproError):
    """Instruction cannot be represented in the 32-bit encoding."""


def _fcode_table() -> dict[str, int]:
    """Stable mnemonic -> function-code assignment (sorted order)."""
    return {name: i for i, name in enumerate(sorted(INSTRUCTION_SET))}


FCODES: dict[str, int] = _fcode_table()
MNEMONICS: dict[int, str] = {v: k for k, v in FCODES.items()}


def _field(value: int | None) -> int:
    return 31 if value is None else value


def encode(instr: Instruction) -> int:
    """Encode to a 32-bit word; raises EncodingError when not encodable."""
    d = instr.definition
    op = instr.op
    fcode = FCODES[op]
    word = (MAJOR_OPCODE << 26) | (fcode << 18)
    masked = 1 if instr.masked else 0

    if d.is_memory or op in ("ldq", "stq", "wh64"):
        if not -512 <= instr.disp <= 504 or instr.disp % 8:
            raise EncodingError(
                f"{op}: displacement {instr.disp} not an 8-multiple in [-512,504]")
        disp7 = (instr.disp // 8) & 0x7F
        a = _field(instr.vd if d.is_load and d.group is not Group.SC else None)
        if op == "vstoreq" or op == "vscatq":
            a = _field(instr.va)
        elif op == "vloadq" or op == "vgathq":
            a = _field(instr.vd)
        elif op == "ldq":
            a = _field(instr.rd)
        elif op == "stq":
            a = _field(instr.ra)
        elif op == "wh64":
            a = 31
        b = _field(instr.vb if d.is_indexed else instr.rb)
        if d.is_indexed:
            if instr.disp != 0:
                raise EncodingError(
                    f"{op}: indexed accesses cannot encode a displacement")
            # indexed forms carry the base register in the low field
            word |= (masked << 17) | (a << 12) | (b << 7) | (_field(instr.rb) << 2)
            return word
        word |= (masked << 17) | (a << 12) | (b << 7) | disp7
        return word

    # operate / control / scalar-operate forms
    lit = 0
    bfield = 0
    if op in ("vextq", "vinsq"):
        if op == "vextq" and instr.ra is not None:
            bfield = instr.ra           # index from a scalar register
        else:
            imm = instr.imm if instr.imm is not None else 0
            if not isinstance(imm, int) or not 0 <= imm <= 31:
                raise EncodingError(
                    f"{op}: index {imm!r} not a 5-bit literal")
            lit = 1
            bfield = imm
    elif "scalar" in d.fields or op in ("addq", "subq", "mulq", "sll"):
        if instr.ra is not None and d.group is not Group.SC:
            bfield = instr.ra
        elif d.group is Group.SC and instr.rb is not None:
            bfield = instr.rb
        else:
            imm = instr.imm
            if not isinstance(imm, int) or not 0 <= imm <= 31:
                raise EncodingError(
                    f"{op}: immediate {imm!r} not a 5-bit unsigned literal")
            lit = 1
            bfield = imm
    elif "vb" in d.fields:
        bfield = _field(instr.vb)

    afield = _field(instr.va if instr.va is not None else
                    (instr.ra if instr.ra is not None else instr.rd))
    cfield = _field(instr.vd if instr.vd is not None else instr.rd)
    if op == "lda":
        imm = instr.imm
        if not isinstance(imm, int) or not 0 <= imm <= 31:
            raise EncodingError(f"lda: immediate {imm!r} not a 5-bit literal")
        lit = 1
        afield = _field(instr.rb)
        bfield = imm
        cfield = _field(instr.rd)
    word |= (masked << 17) | (lit << 16) | (afield << 11) | (bfield << 6) | (cfield << 1)
    return word


def decode(word: int) -> Instruction:
    """Decode a 32-bit word produced by :func:`encode`."""
    if (word >> 26) & 0x3F != MAJOR_OPCODE:
        raise EncodingError(f"major opcode {(word >> 26) & 0x3F:#x} is not Tarantula")
    fcode = (word >> 18) & 0xFF
    op = MNEMONICS.get(fcode)
    if op is None:
        raise EncodingError(f"unknown function code {fcode:#x}")
    d = INSTRUCTION_SET[op]
    masked = bool((word >> 17) & 1)

    if d.is_memory or op in ("ldq", "stq", "wh64"):
        a = (word >> 12) & 0x1F
        b = (word >> 7) & 0x1F
        if d.is_indexed:
            rb = (word >> 2) & 0x1F
            if op == "vgathq":
                return Instruction(op, vd=a, vb=b, rb=rb, masked=masked)
            return Instruction(op, va=a, vb=b, rb=rb, masked=masked)
        disp7 = word & 0x7F
        disp = (disp7 - 128 if disp7 >= 64 else disp7) * 8
        if op == "vloadq":
            return Instruction(op, vd=a, rb=b, disp=disp, masked=masked)
        if op == "vstoreq":
            return Instruction(op, va=a, rb=b, disp=disp, masked=masked)
        if op == "ldq":
            return Instruction(op, rd=a, rb=b, disp=disp)
        if op == "stq":
            return Instruction(op, ra=a, rb=b, disp=disp)
        return Instruction(op, rb=b, disp=disp)  # wh64

    lit = (word >> 16) & 1
    a = (word >> 11) & 0x1F
    b = (word >> 6) & 0x1F
    c = (word >> 1) & 0x1F
    kw: dict = {"masked": masked}
    if op == "lda":
        return Instruction(op, rd=c, imm=b, rb=None if a == 31 else a)
    if op == "drainm":
        return Instruction(op)
    if d.group in (Group.VV,) and "vb" in d.fields:
        return Instruction(op, va=a, vb=b, vd=c, **kw)
    if d.group is Group.VV:
        return Instruction(op, va=a, vd=c, **kw)
    if d.group is Group.VS:
        if lit:
            return Instruction(op, va=a, imm=b, vd=c, **kw)
        return Instruction(op, va=a, ra=b, vd=c, **kw)
    if op in ("setvl", "setvs"):
        if lit:
            return Instruction(op, imm=b)
        return Instruction(op, ra=b)
    if op == "setvm":
        return Instruction(op, va=a)
    if op == "viota":
        return Instruction(op, vd=c)
    if op == "vextq":
        if lit:
            return Instruction(op, va=a, imm=b, rd=c)
        return Instruction(op, va=a, ra=b, rd=c)
    if op == "vinsq":
        return Instruction(op, ra=a, imm=b, vd=c)
    if op in ("vsumq", "vsumt"):
        return Instruction(op, va=a, rd=c, masked=masked)
    if op in ("addq", "subq", "mulq", "sll"):
        if lit:
            return Instruction(op, ra=a, imm=b, rd=c)
        return Instruction(op, ra=a, rb=b, rd=c)
    raise EncodingError(f"no decode rule for {op!r}")  # pragma: no cover
