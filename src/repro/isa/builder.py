"""Kernel builder: the hand-vectorization DSL.

The paper's authors coded each benchmark's hot loops in vector assembly
by hand.  :class:`KernelBuilder` is our equivalent pen: every method
emits one instruction into a :class:`~repro.isa.program.Program`.  The
builder adds only conveniences that an assembler macro package would
provide (load-float-literal, set-mask-all-ones, prefetch aliases); it
never synthesizes multi-instruction idioms silently — kernels stay
auditable one-to-one against the emitted listing.

Example (the paper's section 2 mask idiom)::

    kb = KernelBuilder("mask-example")
    kb.setvl(128)
    kb.setvs(8)
    kb.vloadq(0, rb=1)                 # v0 <- A(i)
    kb.vloadq(1, rb=2)                 # v1 <- B(i)
    kb.vscmptle(6, 0, imm=0.0)         # v6 <- A(i) <= 0  (to be negated)
    kb.vnot(6, 6)                      # v6 <- A(i) != 0 ... low bit only
    kb.vscmptle(7, 1, imm=2.0)         # v7 <- B(i) <= 2
    kb.vnot(7, 7)                      # v7 <- B(i) > 2
    kb.vvand(8, 6, 7)                  # v8 <- v6 & v7
    kb.setvm(8)                        # vm <- v8
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import ProgramError
from repro.isa.instructions import INSTRUCTION_SET, Group, Instruction
from repro.isa.program import Program

Scalar = Union[int, float]


class KernelBuilder:
    """Fluent emitter of Tarantula instructions into a program."""

    def __init__(self, name: str = "kernel", lint: bool = False) -> None:
        self.program = Program(name)
        self._tag = ""
        #: when True, :meth:`build` runs the static verifier
        #: (:mod:`repro.analysis`) and raises ``LintError`` on errors
        self.lint = lint

    # -- housekeeping -----------------------------------------------------

    def tag(self, label: str) -> "KernelBuilder":
        """Label subsequent instructions (shows up in per-phase metrics)."""
        self._tag = label
        return self

    def emit(self, op: str, **fields) -> Instruction:
        """Emit an arbitrary instruction by mnemonic; returns it."""
        instr = Instruction(op, tag=self._tag, **fields)
        self.program.append(instr)
        return instr

    # -- control ----------------------------------------------------------

    def setvl(self, value: Union[int, None] = None, ra: Optional[int] = None):
        """Set vector length from an immediate or scalar register."""
        return self.emit("setvl", imm=value, ra=ra)

    def setvs(self, value: Union[int, None] = None, ra: Optional[int] = None):
        """Set the byte stride for SM-group accesses."""
        return self.emit("setvs", imm=value, ra=ra)

    def setvm(self, va: int):
        """vm <- low bit of each element of ``va``."""
        return self.emit("setvm", va=va)

    def setvm_all(self):
        """Set vm to all-ones via ``vvcmpeq v31, v31`` + ``setvm``.

        This is the two-instruction macro a real assembler would expand;
        both instructions appear in the listing.
        """
        self.emit("vvcmpeq", va=31, vb=31, vd=30)
        return self.emit("setvm", va=30)

    def viota(self, vd: int):
        return self.emit("viota", vd=vd)

    def vextq(self, rd: int, va: int, index: int):
        return self.emit("vextq", va=va, imm=index, rd=rd)

    def vinsq(self, vd: int, ra: int, index: int):
        return self.emit("vinsq", ra=ra, imm=index, vd=vd)

    def vsumt(self, rd: int, va: int, masked: bool = False):
        return self.emit("vsumt", va=va, rd=rd, masked=masked)

    def vsumq(self, rd: int, va: int, masked: bool = False):
        return self.emit("vsumq", va=va, rd=rd, masked=masked)

    # -- scalar side ------------------------------------------------------

    def lda(self, rd: int, imm: Scalar, rb: Optional[int] = None):
        """rd <- rb + imm; float immediates materialize IEEE bits."""
        return self.emit("lda", rd=rd, imm=imm, rb=rb)

    def addq(self, rd: int, ra: int, imm: Optional[int] = None,
             rb: Optional[int] = None):
        return self.emit("addq", rd=rd, ra=ra, imm=imm, rb=rb)

    def subq(self, rd: int, ra: int, imm: Optional[int] = None,
             rb: Optional[int] = None):
        return self.emit("subq", rd=rd, ra=ra, imm=imm, rb=rb)

    def mulq(self, rd: int, ra: int, imm: Optional[int] = None,
             rb: Optional[int] = None):
        return self.emit("mulq", rd=rd, ra=ra, imm=imm, rb=rb)

    def sll(self, rd: int, ra: int, imm: Optional[int] = None,
            rb: Optional[int] = None):
        return self.emit("sll", rd=rd, ra=ra, imm=imm, rb=rb)

    def ldq(self, rd: int, rb: int, disp: int = 0):
        return self.emit("ldq", rd=rd, rb=rb, disp=disp)

    def stq(self, ra: int, rb: int, disp: int = 0):
        return self.emit("stq", ra=ra, rb=rb, disp=disp)

    def wh64(self, rb: int, disp: int = 0):
        """Write-hint: allocate a dirty line without reading memory."""
        return self.emit("wh64", rb=rb, disp=disp)

    def drainm(self):
        """The scalar-write -> vector-read coherency barrier (section 3.4)."""
        return self.emit("drainm")

    # -- strided memory ----------------------------------------------------

    def vloadq(self, vd: int, rb: int, disp: int = 0, masked: bool = False):
        """Strided load; stride taken from ``vs`` at execution time."""
        return self.emit("vloadq", vd=vd, rb=rb, disp=disp, masked=masked)

    def vstoreq(self, va: int, rb: int, disp: int = 0, masked: bool = False):
        return self.emit("vstoreq", va=va, rb=rb, disp=disp, masked=masked)

    def vprefetch(self, rb: int, disp: int = 0):
        """Strided prefetch: a vloadq with destination v31 (section 2)."""
        return self.emit("vloadq", vd=31, rb=rb, disp=disp)

    # -- gather / scatter ---------------------------------------------------

    def vgathq(self, vd: int, vb: int, rb: int, disp: int = 0,
               masked: bool = False):
        """Gather: vd[i] = MEM[rb + disp + vb[i]] (vb holds byte offsets)."""
        return self.emit("vgathq", vd=vd, vb=vb, rb=rb, disp=disp, masked=masked)

    def vscatq(self, va: int, vb: int, rb: int, disp: int = 0,
               masked: bool = False):
        """Scatter: MEM[rb + disp + vb[i]] = va[i]."""
        return self.emit("vscatq", va=va, vb=vb, rb=rb, disp=disp, masked=masked)

    def vgath_prefetch(self, vb: int, rb: int, disp: int = 0):
        """Gather prefetch via v31 destination."""
        return self.emit("vgathq", vd=31, vb=vb, rb=rb, disp=disp)

    # -- generated operate methods ------------------------------------------

    def build(self) -> Program:
        """Return the assembled program.

        With ``lint=True`` the program first passes through the static
        verifier; authoring mistakes (use-before-def, unset ``vl``,
        masks that were never produced, ...) raise
        :class:`~repro.analysis.diagnostics.LintError` here, before a
        single simulated cycle runs.
        """
        if self.lint:
            from repro.analysis import LintError, lint_program

            report = lint_program(self.program)
            if report.has_errors:
                raise LintError(report)
        return self.program


def _add_operate_methods() -> None:
    """Attach one builder method per VV/VS operate mnemonic.

    Methods follow the instruction operand order:
    ``kb.vvaddt(vd, va, vb)`` and ``kb.vsmult(vd, va, imm=...)`` /
    ``kb.vsmult(vd, va, ra=...)``.
    """
    for mnemonic, definition in INSTRUCTION_SET.items():
        if definition.group is Group.VV and "vb" in definition.fields:
            def method(self, vd, va, vb, masked=False, _op=mnemonic):
                return self.emit(_op, vd=vd, va=va, vb=vb, masked=masked)
        elif definition.group is Group.VV and definition.fields == ("va", "vd"):
            def method(self, vd, va, masked=False, _op=mnemonic):
                return self.emit(_op, vd=vd, va=va, masked=masked)
        elif definition.group is Group.VS:
            def method(self, vd, va, imm=None, ra=None, masked=False,
                       _op=mnemonic):
                if imm is None and ra is None:
                    raise ProgramError(f"{_op}: give imm= or ra=")
                return self.emit(_op, vd=vd, va=va, imm=imm, ra=ra,
                                 masked=masked)
        else:
            continue
        method.__name__ = mnemonic
        method.__doc__ = definition.description
        setattr(KernelBuilder, mnemonic, method)


_add_operate_methods()
