"""Functional (architectural) semantics of every instruction.

This module is the executable version of the paper's Figure 1.  Each
mnemonic maps to a handler ``handler(instr, state, mem) -> None`` that
mutates the :class:`~repro.isa.registers.ArchState` and
:class:`~repro.mem.memory.MainMemory`.  Handlers are numpy-vectorized
over the 128 elements.

Semantics choices where the paper says UNPREDICTABLE:

* elements at or beyond ``vl`` keep their previous destination value
  (or are filled with a poison pattern when ``poison_tail`` is enabled,
  which tests use to catch kernels that rely on tails);
* a scatter with duplicate addresses resolves in ascending element
  order (last writer wins), a deterministic stand-in for the paper's
  random-permutation ordering.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import ProgramError
from repro.isa.instructions import Group, Instruction
from repro.isa.registers import MVL, ArchState
from repro.mem.memory import MainMemory

#: hoisted element-index vector (strided_addresses runs per memory
#: instruction; never mutated — ufuncs below always allocate fresh output)
_IOTA = np.arange(MVL, dtype=np.uint64)

#: Poison value written beyond ``vl`` when tail poisoning is on.
POISON = np.uint64(0xDEAD_BEEF_DEAD_BEEF)

#: scalar bit pattern -> read-only MVL-wide splat of it.  VS operands
#: repeat across loop iterations; the arrays are marked non-writeable so
#: any accidental in-place use fails loudly instead of corrupting state.
_SPLAT_CACHE: dict[int, np.ndarray] = {}


def _splat(bits) -> np.ndarray:
    key = int(bits)
    arr = _SPLAT_CACHE.get(key)
    if arr is None:
        if len(_SPLAT_CACHE) > 512:
            _SPLAT_CACHE.clear()
        arr = np.full(MVL, key, dtype=np.uint64)
        arr.setflags(write=False)
        _SPLAT_CACHE[key] = arr
    return arr


def float_to_bits(value: float) -> int:
    """IEEE-754 double bit pattern of a Python float, as an int."""
    return struct.unpack("<Q", struct.pack("<d", float(value)))[0]


def bits_to_float(bits: int) -> float:
    """Python float from an IEEE-754 double bit pattern."""
    return struct.unpack("<d", struct.pack("<Q", bits & ((1 << 64) - 1)))[0]


def resolve_scalar(instr: Instruction, state: ArchState, as_float: bool) -> np.uint64:
    """Bit pattern of the scalar operand of a VS/VC instruction.

    Register operands supply raw 64-bit patterns; immediates are
    converted according to the consuming instruction's data type
    (``as_float`` selects IEEE-double encoding).
    """
    if instr.ra is not None:
        return np.uint64(state.sregs.read(instr.ra))
    imm = instr.imm
    if as_float:
        return np.uint64(float_to_bits(float(imm)))
    return np.uint64(int(imm) & ((1 << 64) - 1))


def _is_fp_suffix(suffix: str) -> bool:
    """True when the operate suffix consumes IEEE-double operands."""
    return suffix in _FP_BINOPS or suffix in _FP_COMPARES


def _merge_write(instr, state, result, active, poison_tail):
    """Write ``result`` into vd honoring mask/vl merge semantics."""
    vd = instr.vd
    if state.active_count(instr.masked) == MVL:
        # every element is active (vl == MVL, mask all-true): the merge
        # is the identity and there is no tail to poison
        state.vregs.write(vd, result)
        return
    old = state.vregs.read(vd)
    out = np.where(active, result, old)
    if poison_tail:
        out[state.ctrl.vl:] = POISON
    state.vregs.write(vd, out)


# -- operate groups (VV / VS) ---------------------------------------------

_INT_BINOPS = {
    "addq": lambda a, b: a + b,
    "subq": lambda a, b: a - b,
    "mulq": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "bis": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "sll": lambda a, b: a << (b & np.uint64(63)),
    "srl": lambda a, b: a >> (b & np.uint64(63)),
    "sra": lambda a, b: (a.view(np.int64) >> (b & np.uint64(63)).view(np.int64)).view(np.uint64),
    "cmpeq": lambda a, b: (a == b).astype(np.uint64),
    "cmpne": lambda a, b: (a != b).astype(np.uint64),
    "cmplt": lambda a, b: (a.view(np.int64) < b.view(np.int64)).astype(np.uint64),
    "cmple": lambda a, b: (a.view(np.int64) <= b.view(np.int64)).astype(np.uint64),
}

_FP_BINOPS = {
    "addt": lambda a, b: a + b,
    "subt": lambda a, b: a - b,
    "mult": lambda a, b: a * b,
    "divt": lambda a, b: a / b,
    "maxt": np.maximum,
    "mint": np.minimum,
    "cmpteq": None,  # compares produce integer 0/1, handled specially
    "cmptlt": None,
    "cmptle": None,
}

_FP_COMPARES = {
    "cmpteq": lambda a, b: a == b,
    "cmptlt": lambda a, b: a < b,
    "cmptle": lambda a, b: a <= b,
}


def _exec_madd(instr: Instruction, state: ArchState, mem: MainMemory,
               poison_tail: bool) -> None:
    """FMAC semantics: vd += va * (vb | scalar), fused (one rounding in
    hardware; the double-precision double-rounding difference is below
    our verification tolerance)."""
    a = state.vregs.read(instr.va).view(np.float64)
    if instr.op == "vvmaddt":
        b = state.vregs.read(instr.vb).view(np.float64)
    else:
        bits = resolve_scalar(instr, state, as_float=True)
        b = _splat(bits).view(np.float64)
    acc = state.vregs.read(instr.vd).view(np.float64)
    active = state.active_mask(instr.masked)
    with np.errstate(over="ignore", invalid="ignore"):
        result = (acc + a * b).view(np.uint64)
    _merge_write(instr, state, result, active, poison_tail)


def _exec_operate(instr: Instruction, state: ArchState, mem: MainMemory,
                  poison_tail: bool) -> None:
    d = instr.definition
    suffix = instr.op[2:]  # strip the vv/vs prefix
    a = state.vregs.read(instr.va)
    if d.group is Group.VV and "vb" in d.fields:
        b = state.vregs.read(instr.vb)
    else:
        b = _splat(resolve_scalar(instr, state, _is_fp_suffix(suffix)))
    active = state.active_mask(instr.masked)
    if suffix in _INT_BINOPS:
        # integer *array* ops wrap silently in numpy; no errstate needed
        result = _INT_BINOPS[suffix](a, b)
    elif suffix in _FP_COMPARES:
        result = _FP_COMPARES[suffix](a.view(np.float64), b.view(np.float64))
        result = result.astype(np.uint64)
    elif suffix in _FP_BINOPS:
        fa, fb = a.view(np.float64), b.view(np.float64)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            result = _FP_BINOPS[suffix](fa, fb).view(np.uint64)
    else:
        raise ProgramError(f"no semantics for operate suffix {suffix!r}")
    _merge_write(instr, state, result, active, poison_tail)


def _exec_unary(instr: Instruction, state: ArchState, mem: MainMemory,
                poison_tail: bool) -> None:
    a = state.vregs.read(instr.va)
    active = state.active_mask(instr.masked)
    if instr.op == "vsqrtt":
        with np.errstate(invalid="ignore"):
            result = np.sqrt(a.view(np.float64)).view(np.uint64)
    elif instr.op == "vcvtqt":
        result = a.view(np.int64).astype(np.float64).view(np.uint64)
    elif instr.op == "vcvttq":
        f = a.view(np.float64)
        with np.errstate(invalid="ignore"):
            result = np.trunc(f)
            # NaN/inf convert to 0 like hardware saturating-to-unpredictable
            result = np.where(np.isfinite(result), result, 0.0)
            result = result.astype(np.int64).view(np.uint64)
    elif instr.op == "vnot":
        result = ~a
    else:
        raise ProgramError(f"no semantics for unary op {instr.op!r}")
    _merge_write(instr, state, result, active, poison_tail)


# -- memory groups (SM / RM) ------------------------------------------------


#: one-entry (base, stride) -> address-vector cache: each memory
#: instruction computes its addresses twice (functional execute, then
#: the timing planner) with identical operands.  The array is returned
#: read-only and shared; every consumer copies or fancy-reads it.
_STRIDED_CACHE: tuple = (None, None)


def strided_addresses(instr: Instruction, state: ArchState) -> np.ndarray:
    """Effective addresses of a strided (SM-group) access, all 128 slots.

    ``ea_i = rb + disp + i * vs`` with 64-bit wraparound, per Figure 1.
    The returned array is shared and non-writeable.
    """
    global _STRIDED_CACHE
    base = (state.sregs.read(instr.rb) + instr.disp) & ((1 << 64) - 1)
    stride = state.ctrl.vs & ((1 << 64) - 1)
    key, cached = _STRIDED_CACHE
    if key == (base, stride):
        return cached
    # integer array ops wrap silently (scalar-only overflow warns)
    addrs = np.uint64(base) + _IOTA * np.uint64(stride)
    addrs.setflags(write=False)
    _STRIDED_CACHE = ((base, stride), addrs)
    return addrs


def indexed_addresses(instr: Instruction, state: ArchState) -> np.ndarray:
    """Effective addresses of a gather/scatter: ``rb + disp + vb[i]``."""
    base = np.uint64((state.sregs.read(instr.rb) + instr.disp) & ((1 << 64) - 1))
    offsets = state.vregs.read(instr.vb)
    return base + offsets


def _exec_memory(instr: Instruction, state: ArchState, mem: MainMemory,
                 poison_tail: bool) -> None:
    d = instr.definition
    if instr.is_prefetch:
        # Prefetches have no architectural effect; TLB misses, alignment
        # faults and machine checks are all ignored (section 2), so the
        # addresses are never even materialized against memory here.
        # The timing model still sees the access pattern.
        return
    addrs = indexed_addresses(instr, state) if d.is_indexed \
        else strided_addresses(instr, state)
    active = state.active_mask(instr.masked)
    idx = state.active_indices(instr.masked)
    if d.is_load:
        values = np.zeros(MVL, dtype=np.uint64)
        values[idx] = mem.read_quads(addrs[idx])
        _merge_write(instr, state, values, active, poison_tail)
    else:
        data = state.vregs.read(instr.va)
        mem.write_quads(addrs[idx], data[idx])


# -- control group (VC) ------------------------------------------------------


def _exec_control(instr: Instruction, state: ArchState, mem: MainMemory,
                  poison_tail: bool) -> None:
    op = instr.op
    if op == "setvl":
        value = int(resolve_scalar(instr, state, as_float=False))
        state.ctrl.set_vl(min(value, MVL))
    elif op == "setvs":
        raw = int(resolve_scalar(instr, state, as_float=False))
        if raw >= 1 << 63:
            raw -= 1 << 64
        state.ctrl.set_vs(raw)
    elif op == "setvm":
        bits = state.vregs.read(instr.va) & np.uint64(1)
        state.ctrl.set_vm(bits.astype(bool))
    elif op == "vextq":
        index = int(resolve_scalar(instr, state, as_float=False)) % MVL
        state.sregs.write(instr.rd, int(state.vregs.read(instr.va)[index]))
    elif op == "vinsq":
        index = int(instr.imm) % MVL
        value = np.uint64(state.sregs.read(instr.ra)) if instr.ra is not None \
            else np.uint64(0)
        reg = state.vregs.read(instr.vd)
        reg[index] = value
        state.vregs.write(instr.vd, reg)
    elif op == "viota":
        state.vregs.write(instr.vd, np.arange(MVL, dtype=np.uint64))
    elif op == "vsumq":
        active = state.active_mask(instr.masked)
        total = int(np.sum(state.vregs.read(instr.va)[active], dtype=np.uint64))
        state.sregs.write(instr.rd, total)
    elif op == "vsumt":
        active = state.active_mask(instr.masked)
        total = float(np.sum(state.vregs.read(instr.va).view(np.float64)[active]))
        state.sregs.write(instr.rd, float_to_bits(total))
    else:
        raise ProgramError(f"no semantics for control op {op!r}")


# -- scalar group (SC) -------------------------------------------------------


def _exec_scalar(instr: Instruction, state: ArchState, mem: MainMemory,
                 poison_tail: bool) -> None:
    op = instr.op
    sregs = state.sregs
    if op == "lda":
        base = sregs.read(instr.rb) if instr.rb is not None else 0
        imm = instr.imm
        if isinstance(imm, float):
            # lda with a float immediate materializes the IEEE bit pattern,
            # our stand-in for an FP-register literal load.
            if base != 0:
                raise ProgramError("lda float immediates require rb=r31")
            sregs.write(instr.rd, float_to_bits(imm))
        else:
            sregs.write(instr.rd, base + int(imm))
    elif op in ("addq", "subq", "mulq", "sll"):
        a = sregs.read(instr.ra)
        if instr.imm is not None:
            b = int(instr.imm)
        elif instr.rb is not None:
            b = sregs.read(instr.rb)
        else:
            raise ProgramError(f"{op}: missing second scalar source (imm or rb)")
        if op == "addq":
            sregs.write(instr.rd, a + b)
        elif op == "subq":
            sregs.write(instr.rd, a - b)
        elif op == "mulq":
            sregs.write(instr.rd, a * b)
        else:
            sregs.write(instr.rd, a << (b & 63))
    elif op == "ldq":
        addr = (sregs.read(instr.rb) + instr.disp) & ((1 << 64) - 1)
        sregs.write(instr.rd, mem.read_quad(addr))
    elif op == "stq":
        addr = (sregs.read(instr.rb) + instr.disp) & ((1 << 64) - 1)
        mem.write_quad(addr, sregs.read(instr.ra))
    elif op in ("wh64", "drainm"):
        # No architectural effect in the functional model; both shape the
        # timing/coherency models (write-hint allocation, write-buffer purge).
        pass
    else:
        raise ProgramError(f"no semantics for scalar op {op!r}")


def execute(instr: Instruction, state: ArchState, mem: MainMemory,
            poison_tail: bool = False) -> None:
    """Execute one instruction against architectural state and memory."""
    d = instr.definition
    if instr.op in ("vvmaddt", "vsmaddt"):
        _exec_madd(instr, state, mem, poison_tail)
    elif d.group in (Group.VV, Group.VS):
        if "vb" in d.fields or "scalar" in d.fields:
            _exec_operate(instr, state, mem, poison_tail)
        else:
            _exec_unary(instr, state, mem, poison_tail)
    elif d.group in (Group.SM, Group.RM):
        _exec_memory(instr, state, mem, poison_tail)
    elif d.group is Group.VC:
        _exec_control(instr, state, mem, poison_tail)
    elif d.group is Group.SC:
        _exec_scalar(instr, state, mem, poison_tail)
    else:  # pragma: no cover - exhaustive over Group
        raise ProgramError(f"unhandled group {d.group}")
