"""Vbox lane organization (section 3.2, Fig. 3).

The vector execution engine is 16 identical lanes; each lane holds a
slice of the vector register file, a slice of the (tiny) mask file, two
functional units (north and south), an address generator and a private
TLB.  There is no cross-lane communication except for gather/scatter.

This module captures the structural facts the rest of the model (issue
logic, power estimates, invariant tests) relies on.  The "schedulers see
32 functional units as just two resources" property is what makes
:class:`~repro.vbox.issue.VboxIssue` a pair of timelines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.registers import MVL, NUM_VREGS

#: Number of identical lanes (Fig. 3).
N_LANES = 16
#: Functional units per lane (north + south).
UNITS_PER_LANE = 2
#: Total functional units controlled by the two issue ports.
TOTAL_UNITS = N_LANES * UNITS_PER_LANE


@dataclass(frozen=True)
class LaneConfig:
    """Per-lane structure used by power/area and invariant checks."""

    #: vector register file slice: 128-element registers / 16 lanes
    elements_per_register: int = MVL // N_LANES
    #: architectural registers visible per thread
    arch_registers: int = NUM_VREGS
    #: rename copies per thread (the SMT decision forced a large file)
    rename_registers_per_thread: int = 16
    #: SMT thread contexts (EV8 is 4-way SMT; Vbox follows, section 3.3)
    threads: int = 4
    #: register file read ports feeding the two functional units
    fu_read_ports: int = 4
    #: register file write ports for the functional units
    fu_write_ports: int = 2
    #: extra ports supporting loads and stores (footnote 1)
    memory_read_ports: int = 2
    memory_write_ports: int = 2
    #: mask file bits per lane, including all rename copies per thread
    mask_bits: int = 256
    #: mask file ports (section 3.2)
    mask_read_ports: int = 3
    mask_write_ports: int = 2
    #: per-lane TLB entries (32-entry CAM, section 3.4)
    tlb_entries: int = 32

    @property
    def physical_registers_per_thread(self) -> int:
        return self.arch_registers + self.rename_registers_per_thread

    @property
    def regfile_elements_per_lane(self) -> int:
        """64-bit words of register storage in one lane (all threads)."""
        return (self.physical_registers_per_thread * self.threads *
                self.elements_per_register)

    @property
    def operand_bandwidth_per_cycle(self) -> int:
        """Operands/cycle the sliced file supplies to the FUs — the
        64 + 32 figure the paper cites as impossible for a unified file."""
        return (self.fu_read_ports + self.fu_write_ports) * N_LANES


def lane_of_element(element_index: int) -> int:
    """Register-file lane holding a given vector element."""
    return element_index % N_LANES
