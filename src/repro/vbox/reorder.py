"""Conflict-free address reordering for strided vector accesses.

Section 3.4 ("Conflict-free Address Generation"): for a stride
S = sigma * 2^s (sigma odd, s small), the 128 elements of a vector access
can be reordered into 8 groups of 16 addresses, each group touching all
16 L2 banks exactly once *and* all 16 register lanes exactly once.  The
hardware implements the order with a 2.1 KB ROM and a 64x7 multiplier
per lane; we compute the same schedules on demand and memoize them —
the memo table is the ROM.

The construction is exact, not heuristic.  Element ``i`` is an edge
``lane(i) -> bank(i)`` in a bipartite multigraph between the 16 lanes
(``i mod 16``) and the 16 banks (address bits <9:6>).  Every lane has
degree exactly 8; when the banks are also uniformly hit (degree 8 each)
the graph is 8-regular, and König's edge-coloring theorem guarantees a
decomposition into 8 perfect matchings — each matching is one
conflict-free slice.  When the bank histogram is *not* uniform (strides
whose power-of-two factor is too large), no such decomposition exists:
those are the paper's *self-conflicting* strides, which fall back to the
CR box.  With our 64-byte-line / 16-bank geometry the uniformity
condition works out to byte strides sigma * 2^k with k <= 6, i.e.
quadword strides sigma * 2^s with s <= 3; the paper's banking constant
differs slightly (it quotes s <= 4) but the dichotomy — small
power-of-two factors reorder, large ones self-conflict — is identical,
and our classifier *derives* the threshold from the geometry instead of
hardcoding it.

The schedule depends only on (stride mod 1024, base mod 1024), which is
what makes a small ROM sufficient in hardware and a small memo table
sufficient here.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.isa.registers import MVL
from repro.vbox.slices import SLICE_SIZE

N_BANKS = 16
#: bank pattern period in bytes (16 banks x 64-byte lines)
BANK_PERIOD = 1024


def bank_pattern(base: int, stride: int, n: int = MVL) -> np.ndarray:
    """Bank (bits <9:6>) of each of the ``n`` element addresses."""
    offsets = (base + stride * np.arange(n, dtype=np.int64)) % BANK_PERIOD
    return (offsets // 64).astype(np.int64)


def is_reorderable(base: int, stride: int, n: int = MVL) -> bool:
    """True when the 8-matching decomposition exists (uniform banks)."""
    if n % N_BANKS:
        return False
    counts = np.bincount(bank_pattern(base, stride, n), minlength=N_BANKS)
    return bool(np.all(counts == n // N_BANKS))


def _perfect_matching(adjacency: list[list[int]]) -> list[int] | None:
    """Kuhn's augmenting-path perfect matching, lanes -> banks.

    ``adjacency[lane]`` lists candidate banks.  Returns ``match`` with
    ``match[lane] = bank`` or None when no perfect matching exists.
    """
    bank_owner = [-1] * N_BANKS

    def try_lane(lane: int, visited: list[bool]) -> bool:
        for bank in adjacency[lane]:
            if not visited[bank]:
                visited[bank] = True
                if bank_owner[bank] == -1 or try_lane(bank_owner[bank], visited):
                    bank_owner[bank] = lane
                    return True
        return False

    for lane in range(len(adjacency)):
        if not try_lane(lane, [False] * N_BANKS):
            return None
    match = [-1] * len(adjacency)
    for bank, lane in enumerate(bank_owner):
        if lane >= 0:
            match[lane] = bank
    return match


@lru_cache(maxsize=4096)
def _schedule_key(stride_mod: int, base_mod: int) -> tuple[tuple[int, ...], ...]:
    """The ROM lookup: 8 slices of 16 element indices, or raises ValueError.

    Keyed on the residues that determine the bank pattern, mirroring the
    hardware's 2.1 KB ROM indexed by stride class and base alignment.
    """
    banks = bank_pattern(base_mod, stride_mod, MVL)
    counts = np.bincount(banks, minlength=N_BANKS)
    if not np.all(counts == MVL // N_BANKS):
        raise ValueError("stride is self-conflicting: bank histogram not uniform")

    # pools[(lane, bank)] = element indices still to schedule
    pools: dict[tuple[int, int], list[int]] = {}
    for i in range(MVL):
        pools.setdefault((i % SLICE_SIZE, int(banks[i])), []).append(i)

    slices: list[tuple[int, ...]] = []
    for _ in range(MVL // SLICE_SIZE):
        adjacency = [
            [bank for bank in range(N_BANKS) if pools.get((lane, bank))]
            for lane in range(SLICE_SIZE)
        ]
        match = _perfect_matching(adjacency)
        if match is None:  # pragma: no cover - König forbids this
            raise ValueError("regular bipartite graph failed to decompose")
        chosen = []
        for lane in range(SLICE_SIZE):
            bank = match[lane]
            chosen.append(pools[(lane, bank)].pop())
        slices.append(tuple(sorted(chosen)))
    return tuple(slices)


def conflict_free_schedule(base: int, stride: int) -> list[np.ndarray]:
    """Order the 128 elements of a strided access into 8 conflict-free
    slices of element indices.

    Raises ``ValueError`` for self-conflicting strides (callers route
    those through the CR box instead).
    """
    key = _schedule_key(stride % BANK_PERIOD, base % BANK_PERIOD)
    return [np.array(group, dtype=np.int64) for group in key]


def schedule_cache_info():
    """Memoized-ROM statistics (size stands in for the 2.1 KB ROM)."""
    return _schedule_key.cache_info()
