"""Vector TLB: sixteen per-lane TLBs (section 3.4, "Virtual Memory").

Each lane owns a 32-entry fully-associative TLB mapping 512 MB pages for
the addresses its own address generator produces.  On a slice TLB miss,
control transfers to system software (PALcode), which may either

* refill just the lanes that missed (``RefillStrategy.PER_MISS``), or
* peek at ``vs`` and refill every mapping the offending instruction
  could need (``RefillStrategy.WHOLE_STRIDE``),

both strategies the paper describes.  The associativity guarantee
matters for forward progress: a malicious stride can map 128 different
pages onto one TLB index, which is why the hardware chose CAM-based
fully-associative TLBs; being fully associative, ours can always hold
the at-most-8 distinct pages a single slice references per lane.
"""

from __future__ import annotations

from collections import OrderedDict
from enum import Enum

import numpy as np

from repro.mem.pages import PageTable
from repro.utils.stats import Counter
from repro.vbox.slices import SLICE_SIZE


class RefillStrategy(Enum):
    PER_MISS = "refill only the lanes that missed"
    WHOLE_STRIDE = "refill all pages the instruction will touch"


class LaneTLB:
    """One lane's fully-associative, LRU, 32-entry TLB."""

    def __init__(self, entries: int = 32) -> None:
        self.entries = entries
        self._map: OrderedDict[int, int] = OrderedDict()

    def lookup(self, vpn: int) -> int | None:
        pfn = self._map.get(vpn)
        if pfn is not None:
            self._map.move_to_end(vpn)
        return pfn

    def remove(self, vpn: int) -> None:
        """Drop a mapping if present (TLB shootdown)."""
        self._map.pop(vpn, None)

    def insert(self, vpn: int, pfn: int) -> int | None:
        """Install a mapping; returns the evicted vpn, if any."""
        if vpn in self._map:
            self._map.move_to_end(vpn)
            self._map[vpn] = pfn
            return None
        evicted = None
        if len(self._map) >= self.entries:
            evicted, _ = self._map.popitem(last=False)
        self._map[vpn] = pfn
        return evicted

    def __len__(self) -> int:
        return len(self._map)


class VectorTLB:
    """The 16-lane TLB array with PALcode-style refill."""

    def __init__(self, page_table: PageTable | None = None,
                 entries_per_lane: int = 32,
                 strategy: RefillStrategy = RefillStrategy.WHOLE_STRIDE,
                 refill_penalty_cycles: float = 150.0) -> None:
        self.page_table = page_table or PageTable()
        self.lanes = [LaneTLB(entries_per_lane) for _ in range(SLICE_SIZE)]
        self.strategy = strategy
        self.refill_penalty_cycles = refill_penalty_cycles
        self.counters = Counter()
        #: vpns known identity-mapped and resident in *every* lane — the
        #: vectorized fast path for the common huge-page case
        self._hot_identity_vpns: set[int] = set()
        #: did the most recent translate_elements() take the fast path?
        #: (the plan cache only caches fast-path translations)
        self.last_fast_path = False

    def _vpn(self, addr: int) -> int:
        return addr >> self.page_table.page_shift

    def invalidate(self, vpn: int) -> None:
        """Shoot ``vpn`` down from every lane (and the identity fast path).

        Required by the fault injector after punching a page-table hole:
        a stale lane entry would otherwise keep translating the page and
        the planned :class:`TLBMissTrap` would never fire.
        """
        for lane in self.lanes:
            lane.remove(vpn)
        self._hot_identity_vpns.discard(vpn)
        self.counters.add("shootdowns")

    def translate_elements(self, elements: np.ndarray,
                           addresses: np.ndarray,
                           ignore_misses: bool = False) -> tuple[np.ndarray, float]:
        """Translate one instruction's addresses; returns (paddrs, penalty).

        ``elements`` gives each address's element index (hence its lane).
        ``penalty`` is the total PALcode refill time in cycles; prefetch
        instructions pass ``ignore_misses=True`` (section 2: TLB misses
        on prefetches are simply ignored, but they also do no refill).
        """
        # fast path: every page already resident in every lane and
        # identity-mapped -> translation is the identity, zero penalty
        self.last_fast_path = False
        if self._hot_identity_vpns:
            shift = self.page_table.page_shift
            vpns = {a >> shift for a in addresses.tolist()}
            if vpns <= self._hot_identity_vpns:
                self.counters.add("hits", len(addresses))
                self.last_fast_path = True
                return addresses.astype(np.uint64, copy=True), 0.0

        paddrs = addresses.astype(np.uint64).copy()
        penalty = 0.0
        miss_events = 0
        for pos in range(len(addresses)):
            lane = int(elements[pos]) % SLICE_SIZE
            vaddr = int(addresses[pos])
            vpn = self._vpn(vaddr)
            pfn = self.lanes[lane].lookup(vpn)
            if pfn is None:
                self.counters.add("misses")
                if ignore_misses:
                    continue
                miss_events += 1
                if self.strategy is RefillStrategy.WHOLE_STRIDE:
                    self._refill_whole(elements, addresses)
                else:
                    pfn = self.page_table.translate_page(vpn)
                    evicted = self.lanes[lane].insert(vpn, pfn)
                    if evicted is not None:
                        self._hot_identity_vpns.discard(evicted)
                pfn = self.lanes[lane].lookup(vpn)
                if pfn is None:  # pragma: no cover - refill always installs
                    raise RuntimeError("TLB refill failed to install mapping")
            else:
                self.counters.add("hits")
            offset = vaddr & (self.page_table.page_bytes - 1)
            paddrs[pos] = np.uint64((pfn << self.page_table.page_shift) | offset)
        if miss_events:
            # one PALcode trap covers a whole-stride refill; per-miss
            # refills trap once per missing lane group
            traps = 1 if self.strategy is RefillStrategy.WHOLE_STRIDE \
                else miss_events
            penalty = traps * self.refill_penalty_cycles
            self.counters.add("refill_traps", traps)
        return paddrs, penalty

    def _refill_whole(self, elements: np.ndarray, addresses: np.ndarray) -> None:
        """PALcode peeks at the access pattern and refills every lane.

        When the instruction touches few pages (the huge-page common
        case) PALcode over-refills every lane — enabling the vectorized
        fast path.  When it touches many pages (giant strides mapping a
        page per element), each lane receives only *its own* pages: a
        lane sees at most 128/16 = 8 distinct pages per instruction,
        which always fits the 32-entry CAM — the paper's forward-
        progress guarantee.
        """
        shift = np.uint64(self.page_table.page_shift)
        all_vpns = np.unique(addresses.astype(np.uint64) >> shift)
        if len(all_vpns) <= self.lanes[0].entries // 2:
            for vpn_u in all_vpns:
                vpn = int(vpn_u)
                pfn = self.page_table.translate_page(vpn)
                for lane in self.lanes:
                    if lane.lookup(vpn) is None:
                        evicted = lane.insert(vpn, pfn)
                        if evicted is not None:
                            self._hot_identity_vpns.discard(evicted)
                if pfn == vpn:
                    self._hot_identity_vpns.add(vpn)
            return
        # many-page case: strictly per-lane refill
        for pos in range(len(addresses)):
            lane_idx = int(elements[pos]) % SLICE_SIZE
            vpn = int(addresses[pos]) >> self.page_table.page_shift
            lane = self.lanes[lane_idx]
            if lane.lookup(vpn) is None:
                pfn = self.page_table.translate_page(vpn)
                evicted = lane.insert(vpn, pfn)
                if evicted is not None:
                    self._hot_identity_vpns.discard(evicted)
