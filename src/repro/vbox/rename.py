"""Vector register renaming.

The Vbox renames both the vector registers and ``vm`` (section 2 notes
the renamed mask lets the next mask be pre-computed while the current
one is in use).  The timing model needs renaming for one thing the
paper calls out: the *physical register pool* is finite, and an
instruction cannot rename until a physical destination is free.

The model is a free-list with release-on-retire semantics, driven by the
processor's in-order rename / out-of-order complete schedule: renaming
instruction ``i`` frees the *previous* mapping of its destination only
when ``i`` retires, so the pool bounds the number of in-flight
destination writes exactly as real rename logic does.
"""

from __future__ import annotations

import heapq

from repro.errors import ConfigError
from repro.utils.stats import Counter


class RenameAllocator:
    """Free-list allocator for one register class (vregs or masks)."""

    def __init__(self, physical: int, architectural: int,
                 name: str = "vregs") -> None:
        if physical <= architectural:
            raise ConfigError(
                f"{name}: need more physical ({physical}) than "
                f"architectural ({architectural}) registers")
        self.name = name
        self.physical = physical
        self.architectural = architectural
        #: free slots beyond the committed architectural state
        self._free = physical - architectural
        #: min-heap of pending release times
        self._releases: list[float] = []
        self.counters = Counter()
        self.stall_cycles = 0.0

    def _drain(self, time: float) -> None:
        while self._releases and self._releases[0] <= time:
            heapq.heappop(self._releases)
            self._free += 1

    def available_at(self, time: float) -> int:
        self._drain(time)
        return self._free

    def allocate(self, time: float, release_time: float) -> float:
        """Claim one physical register at >= ``time``.

        Returns the cycle at which the allocation could proceed (equal
        to ``time`` unless the pool was empty — rename stalls until the
        oldest in-flight writer retires).  The previous mapping frees at
        ``release_time``.
        """
        self._drain(time)
        start = time
        while self._free == 0:
            if not self._releases:
                raise ConfigError(f"{self.name}: rename pool deadlock")
            start = self._releases[0]
            self._drain(start)
        if start > time:
            self.counters.add("rename_stalls")
            self.stall_cycles += start - time
        self._free -= 1
        heapq.heappush(self._releases, max(release_time, start))
        self.counters.add("allocations")
        return start
