"""Vbox issue logic: two ports drive 32 functional units (section 3.2).

"To them, the 32 functional units appear only as just two resources:
the north and south issue ports.  When an instruction is launched onto
one of the two ports, the sixteen associated functional units work
fully synchronously on the instruction.  Thus, the port is marked busy
for ceil(vl/16) cycles (typically, 8 cycles)."

The memory side has its own pipes: one load stream and one store stream
(peak 32+32 ld/st element slots per cycle, Table 3), fed by the address
generators.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.isa.instructions import TimingClass
from repro.utils.bitops import ceil_div
from repro.utils.stats import Counter
from repro.utils.timeline import CalendarTimeline, ResourceTimeline
from repro.vbox.lanes import N_LANES


@dataclass
class FunctionalUnitLatencies:
    """Pipeline latencies (cycles) by timing class, EV8-era values."""

    int_alu: float = 2.0
    fp: float = 6.0
    #: partially-pipelined divide: latency, and per-lane result interval
    fp_div_latency: float = 16.0
    fp_div_interval: float = 4.0
    fp_sqrt_latency: float = 30.0
    fp_sqrt_interval: float = 8.0
    ctrl: float = 1.0
    #: scalar operand / result transfers cross the core-Vbox interface
    scalar_roundtrip: float = 20.0


class VboxIssue:
    """North/south issue ports + load/store memory pipes."""

    def __init__(self, latencies: FunctionalUnitLatencies | None = None) -> None:
        self.latencies = latencies or FunctionalUnitLatencies()
        self.north = ResourceTimeline("north-port")
        self.south = ResourceTimeline("south-port")
        self.load_pipe = ResourceTimeline("load-pipe")
        self.store_pipe = ResourceTimeline("store-pipe")
        # a gather stalled on its index register must not block younger
        # independent accesses from using the (out-of-order) generators
        self.addr_gen = CalendarTimeline("address-generators")
        self.counters = Counter()

    def occupancy(self, vl: int, timing: TimingClass) -> float:
        """Port-busy cycles for an arithmetic instruction of length vl."""
        if vl <= 0:
            return 1.0
        base = ceil_div(vl, N_LANES)
        if timing is TimingClass.FP_DIV:
            return base * self.latencies.fp_div_interval
        if timing is TimingClass.FP_SQRT:
            return base * self.latencies.fp_sqrt_interval
        return float(base)

    def latency(self, timing: TimingClass) -> float:
        """Pipe latency from issue to first result."""
        if timing is TimingClass.INT:
            return self.latencies.int_alu
        if timing is TimingClass.FP:
            return self.latencies.fp
        if timing is TimingClass.FP_DIV:
            return self.latencies.fp_div_latency
        if timing is TimingClass.FP_SQRT:
            return self.latencies.fp_sqrt_latency
        if timing is TimingClass.CTRL:
            return self.latencies.ctrl
        raise ConfigError(f"no arithmetic latency for {timing}")

    def issue_arithmetic(self, earliest: float, vl: int,
                         timing: TimingClass) -> tuple[float, float]:
        """Launch onto the earlier-free of the two ports.

        Returns ``(start, complete)`` where ``complete`` is when the
        last element's result is written (port busy + pipe latency).
        """
        busy = self.occupancy(vl, timing)
        t_north = self.north.peek(earliest)
        t_south = self.south.peek(earliest)
        if t_north == t_south:
            # break ties by accumulated load so both ports share work
            port = self.north if self.north.busy_cycles <= \
                self.south.busy_cycles else self.south
        else:
            port = self.north if t_north < t_south else self.south
        start = port.reserve(earliest, busy)
        self.counters.add(f"issue_{port.name}")
        return start, start + busy + self.latency(timing)
