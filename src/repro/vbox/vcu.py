"""VCU — the vector completion unit (section 3.3).

The Vbox-core interface is deliberately narrow: a 3-instruction bus
carries renamed instructions from the EV8 Pbox to the Vbox, the VCU
sends back completed instruction identifiers (3 x 9 bits), two 64-bit
buses carry scalar operands over, and a kill signal squashes
misspeculated work.  Final retirement happens in the EV8 core, which
reports any vector exceptions.

For timing, the interface contributes: at most 3 vector instructions
delivered per cycle (the rename bus), at most 3 completions reported
per cycle (the VCU bus), and a fixed scalar-operand transfer latency
(the 20-cycle round trip motivating mask registers, section 2).
"""

from __future__ import annotations

from repro.utils.bitops import ceil_div
from repro.utils.stats import Counter
from repro.utils.timeline import ResourceTimeline

#: instructions per cycle on the Pbox->Vbox rename bus
RENAME_BUS_WIDTH = 3
#: completion identifiers per cycle on the VCU->core bus
COMPLETION_BUS_WIDTH = 3


class CompletionUnit:
    """Models both directions of the narrow core<->Vbox interface."""

    def __init__(self) -> None:
        self._deliver_bus = ResourceTimeline("pbox-vbox-bus")
        self._complete_bus = ResourceTimeline("vcu-core-bus")
        self.counters = Counter()
        self.retired = 0

    def deliver(self, earliest: float, count: int = 1) -> float:
        """Send ``count`` renamed instructions to the Vbox; returns the
        cycle the last one arrives."""
        cycles = ceil_div(count, RENAME_BUS_WIDTH)
        start = self._deliver_bus.reserve(earliest, cycles)
        self.counters.add("delivered", count)
        return start + cycles

    def complete(self, earliest: float, count: int = 1) -> float:
        """Report ``count`` completions back to the EV8 core."""
        cycles = ceil_div(count, COMPLETION_BUS_WIDTH)
        start = self._complete_bus.reserve(earliest, cycles)
        self.counters.add("completed", count)
        self.retired += count
        return start + cycles
