"""CR box — conflict resolution for gather/scatter (section 3.4).

Gather and scatter addresses are arbitrary, so the reordering ROM does
not apply.  The CR box runs a *selection tournament*: as each group of
16 addresses comes out of the address generators, their bank identifiers
(bits <9:6>) are compared against whatever addresses were left over from
the previous round, and the largest conflict-free subset (one address
per bank, one element per register lane) is packed into a slice and sent
down the memory pipe.  Leftovers re-enter the next tournament.  In the
worst case — all 128 addresses in one bank — an instruction produces 128
single-address slices.

Self-conflicting strides (power-of-two factor too large for the
reordering theorem) are fed through the CR box exactly like gathers.

The tournament compares 16x16 bank ids per round; ``cycles_per_round``
models that multi-cycle selection logic and is the knob calibrated
against Table 4's RndCopy result (~4.3 addresses/cycle on uniformly
random streams).
"""

from __future__ import annotations

import numpy as np

from repro.utils.stats import Counter
from repro.vbox.slices import SLICE_SIZE, Slice

N_BANKS = 16

#: Module-level memo of tournament *groupings* keyed by the raw
#: element/address bytes.  The grouping depends only on the address
#: stream (lines/banks/lanes), not on the box instance or its
#: ``cycles_per_round``, and CR streams repeat exactly across the
#: cold/warm runs of a benchmark instance while the boxes themselves die
#: with each run — so a process-wide memo turns the warm run's
#: tournaments into fancy-index replays.
_PACK_MEMO: dict[tuple[bytes, bytes], tuple[list[np.ndarray], int]] = {}
_PACK_MEMO_MAX = 4096


def clear_pack_memo() -> None:
    """Drop the cross-run tournament memo (cold-measurement hygiene)."""
    _PACK_MEMO.clear()


class ConflictResolutionBox:
    """Packs arbitrary address streams into conflict-free slices."""

    def __init__(self, cycles_per_round: float = 4.0) -> None:
        self.cycles_per_round = cycles_per_round
        self.counters = Counter()
        self._next_slice_id = 0

    def _tournament(self, pending: list[int], lines: list[int],
                    banks: list[int], lanes: list[int]) -> list[int]:
        """One selection round over ``pending`` (stream positions).

        Greedy first-come selection in arrival order, honoring bank and
        lane conflict-freedom; returns indices into ``pending``.  Two
        addresses in the *same cache line* do not conflict — the bank
        reads the line once and the crossbar routes a quadword to each
        lane — so the bank check is per distinct line.  Line/bank/lane
        ids are precomputed once per stream by :meth:`pack`.
        """
        taken_lines: dict[int, int] = {}   # line -> bank already cycling
        taken_banks: set[int] = set()
        taken_lanes: set[int] = set()
        chosen: list[int] = []
        for pos, p in enumerate(pending):
            lane = lanes[p]
            if lane in taken_lanes:
                continue
            line = lines[p]
            bank = banks[p]
            if bank in taken_banks and taken_lines.get(line) != bank:
                continue
            taken_lines[line] = bank
            taken_banks.add(bank)
            taken_lanes.add(lane)
            chosen.append(pos)
            if len(chosen) == SLICE_SIZE:
                break
        return chosen

    def pack(self, elements: np.ndarray, addresses: np.ndarray,
             tag: str = "") -> tuple[list[Slice], float]:
        """Sort a gather/scatter address stream into slices.

        Returns ``(slices, cr_cycles)`` where ``cr_cycles`` is the total
        tournament time: addresses arrive 16 per round (the 16 address
        generators), each round costs :attr:`cycles_per_round`, and
        rounds repeat until the pending pool drains.
        """
        elems64 = np.ascontiguousarray(elements, dtype=np.int64)
        addrs64 = np.ascontiguousarray(addresses, dtype=np.uint64)
        n = len(addrs64)
        key = (elems64.tobytes(), addrs64.tobytes())
        memo = _PACK_MEMO.get(key)
        if memo is None:
            elems = elems64.tolist()
            addrs = addrs64.tolist()
            lines = [a >> 6 for a in addrs]
            banks = [ln & 0xF for ln in lines]
            lanes = [e % SLICE_SIZE for e in elems]
            groups: list[np.ndarray] = []
            pending: list[int] = []   # stream positions awaiting selection
            rounds = 0
            cursor = 0
            while cursor < n or pending:
                # up to 16 new addresses join the tournament each round
                nxt = min(cursor + SLICE_SIZE, n)
                pending.extend(range(cursor, nxt))
                cursor = nxt
                rounds += 1
                chosen = self._tournament(pending, lines, banks, lanes)
                if not chosen:  # pragma: no cover - nonempty always yields
                    raise RuntimeError("CR tournament selected nothing")
                groups.append(np.array([pending[i] for i in chosen],
                                       dtype=np.intp))
                for i in reversed(chosen):   # chosen ascends by construction
                    pending.pop(i)
            if len(_PACK_MEMO) >= _PACK_MEMO_MAX:
                _PACK_MEMO.clear()
            _PACK_MEMO[key] = (groups, rounds)
        else:
            groups, rounds = memo
        slices: list[Slice] = []
        for group in groups:
            slices.append(Slice(
                slice_id=self._next_slice_id,
                elements=elems64[group],
                addresses=addrs64[group],
                tag=tag,
            ))
            self._next_slice_id += 1
        self.counters.add("tournaments", rounds)
        self.counters.add("cr_slices", len(slices))
        self.counters.add("cr_addresses", n)
        return slices, rounds * self.cycles_per_round
