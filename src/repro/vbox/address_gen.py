"""Address generators: turn one memory instruction into slices.

Each of the 16 lanes has an address generator (Fig. 3); collectively
they emit 16 addresses per cycle.  The generators pick one of three
paths per instruction (section 3.4):

* **pump** — stride-1 (``vs`` == 8): emit the starting addresses of the
  16 (17 when misaligned) cache lines covered, set the pump bit;
* **reordered** — other strides whose bank histogram is uniform: emit
  the ROM-scheduled 8 conflict-free slices, paying the full 8 cycles of
  address generation regardless of ``vl`` (the paper's stated downside);
* **CR box** — gathers, scatters and self-conflicting strides: feed the
  conflict-resolution tournament.

Every path first translates through the vector TLB.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.isa.instructions import Group, Instruction
from repro.isa.registers import MVL, ArchState
from repro.isa.semantics import indexed_addresses, strided_addresses
from repro.utils.bitops import line_address
from repro.utils.stats import Counter
from repro.vbox.crbox import ConflictResolutionBox
from repro.vbox.reorder import conflict_free_schedule, is_reorderable
from repro.vbox.slices import SLICE_SIZE, Slice
from repro.vbox.vtlb import VectorTLB

LINE_BYTES = 64


@dataclass
class AccessPlan:
    """Everything the memory pipeline needs to time one instruction."""

    kind: str                      # 'pump' | 'reordered' | 'cr' | 'empty'
    is_write: bool
    is_prefetch: bool
    slices: list[Slice] = field(default_factory=list)
    #: total address-generation (+ CR tournament) cycles
    addr_gen_cycles: float = 1.0
    #: PALcode TLB refill penalty, cycles
    tlb_penalty: float = 0.0
    #: data quadwords moved (valid elements)
    quadwords: int = 0
    #: physical quadword addresses touched (for memory-dependence checks)
    touched: tuple = ()


class AddressGenerators:
    """The 16 per-lane address generators plus the CR box front end."""

    def __init__(self, vtlb: VectorTLB | None = None,
                 crbox: ConflictResolutionBox | None = None,
                 pump_enabled: bool = True) -> None:
        self.vtlb = vtlb or VectorTLB()
        self.crbox = crbox or ConflictResolutionBox()
        self.pump_enabled = pump_enabled
        self.counters = Counter()
        self._next_slice_id = 0

    # -- helpers ---------------------------------------------------------

    def _new_slice(self, elements, addresses, **kw) -> Slice:
        s = Slice(self._next_slice_id, elements, addresses, **kw)
        self._next_slice_id += 1
        return s

    @staticmethod
    def _valid_elements(instr: Instruction, state: ArchState) -> np.ndarray:
        return np.nonzero(state.active_mask(instr.masked))[0]

    # -- the three paths ----------------------------------------------------

    def _plan_pump(self, instr, valid, paddrs, is_write, tlb_penalty,
                   tag: str) -> AccessPlan:
        addrs = paddrs[valid]
        lines = np.unique(addrs >> np.uint64(6)) << np.uint64(6)
        coverage = {int(line): 0 for line in lines}
        for addr in addrs:
            coverage[int(line_address(int(addr)))] += 1
        per_line = LINE_BYTES // 8
        slices: list[Slice] = []
        line_list = [int(line) for line in lines]
        # misaligned stride-1 spans 17 lines -> two pump slices (note 3)
        for start in range(0, len(line_list), SLICE_SIZE):
            group = line_list[start:start + SLICE_SIZE]
            qw = sum(coverage[line] for line in group)
            full = is_write and all(coverage[line] == per_line for line in group)
            slices.append(self._new_slice(
                np.arange(len(group)), np.array(group, dtype=np.uint64),
                pump=True, full_line_write=full, quadwords=qw, tag=tag))
        self.counters.add("pump_plans")
        return AccessPlan("pump", is_write, False, slices,
                          addr_gen_cycles=float(len(slices)),
                          tlb_penalty=tlb_penalty, quadwords=len(addrs))

    def _plan_reordered(self, instr, state, valid, paddrs, is_write,
                        tlb_penalty, tag: str) -> AccessPlan:
        base = int(paddrs[0])
        stride = state.ctrl.vs
        schedule = conflict_free_schedule(base, stride)
        valid_set = set(int(v) for v in valid)
        slices = []
        for group in schedule:
            keep = np.array([e for e in group if int(e) in valid_set],
                            dtype=np.int64)
            if len(keep) == 0:
                continue
            slices.append(self._new_slice(keep, paddrs[keep],
                                          quadwords=len(keep), tag=tag))
        self.counters.add("reordered_plans")
        # short vectors still pay the full 8 address-generation cycles
        return AccessPlan("reordered", is_write, False, slices,
                          addr_gen_cycles=float(MVL // SLICE_SIZE),
                          tlb_penalty=tlb_penalty, quadwords=len(valid))

    def _plan_cr(self, instr, valid, paddrs, is_write, tlb_penalty,
                 tag: str) -> AccessPlan:
        slices, cr_cycles = self.crbox.pack(valid, paddrs[valid], tag=tag)
        # renumber to keep slice ids unique across both allocators
        for s in slices:
            s.slice_id = self._next_slice_id
            self._next_slice_id += 1
        self.counters.add("cr_plans")
        return AccessPlan("cr", is_write, False, slices,
                          addr_gen_cycles=max(cr_cycles, 1.0),
                          tlb_penalty=tlb_penalty, quadwords=len(valid))

    # -- entry point ------------------------------------------------------------

    def plan(self, instr: Instruction, state: ArchState) -> AccessPlan:
        """Build the slice plan for one SM/RM instruction."""
        d = instr.definition
        if not d.is_memory or d.group not in (Group.SM, Group.RM):
            raise ValueError(f"plan() needs a vector memory instruction, "
                             f"got {instr.op}")
        valid = self._valid_elements(instr, state)
        is_write = d.is_store
        if len(valid) == 0:
            return AccessPlan("empty", is_write, instr.is_prefetch)

        if d.is_indexed:
            vaddrs = indexed_addresses(instr, state)
        else:
            vaddrs = strided_addresses(instr, state)
        # only the active elements' addresses are generated and translated;
        # page size (512 MB) >> bank period, so translation never changes
        # bank bits and the reorder classification can use virtual addresses
        paddrs = vaddrs.copy()
        translated, tlb_penalty = self.vtlb.translate_elements(
            valid, vaddrs[valid], ignore_misses=instr.is_prefetch)
        paddrs[valid] = translated

        tag = instr.tag
        if d.is_indexed:
            plan = self._plan_cr(instr, valid, paddrs, is_write,
                                 tlb_penalty, tag)
        elif state.ctrl.vs == 8 and self.pump_enabled:
            plan = self._plan_pump(instr, valid, paddrs, is_write,
                                   tlb_penalty, tag)
        elif is_reorderable(int(vaddrs[0]), state.ctrl.vs):
            plan = self._plan_reordered(instr, state, valid, paddrs,
                                        is_write, tlb_penalty, tag)
        else:
            # self-conflicting stride: run through the CR box like a gather
            self.counters.add("self_conflicting_strides")
            plan = self._plan_cr(instr, valid, paddrs, is_write,
                                 tlb_penalty, tag)
        plan.is_prefetch = instr.is_prefetch
        plan.touched = tuple(int(a) for a in paddrs[valid])
        return plan
