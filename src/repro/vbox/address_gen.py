"""Address generators: turn one memory instruction into slices.

Each of the 16 lanes has an address generator (Fig. 3); collectively
they emit 16 addresses per cycle.  The generators pick one of three
paths per instruction (section 3.4):

* **pump** — stride-1 (``vs`` == 8): emit the starting addresses of the
  16 (17 when misaligned) cache lines covered, set the pump bit;
* **reordered** — other strides whose bank histogram is uniform: emit
  the ROM-scheduled 8 conflict-free slices, paying the full 8 cycles of
  address generation regardless of ``vl`` (the paper's stated downside);
* **CR box** — gathers, scatters and self-conflicting strides: feed the
  conflict-resolution tournament.

Every path first translates through the vector TLB.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.isa.instructions import Group, Instruction
from repro.isa.registers import MVL, ArchState
from repro.isa.semantics import indexed_addresses, strided_addresses
from repro.utils.bitops import line_address
from repro.utils.stats import Counter
from repro.vbox.crbox import ConflictResolutionBox
from repro.vbox.reorder import BANK_PERIOD, conflict_free_schedule, \
    is_reorderable
from repro.vbox.slices import SLICE_SIZE, Slice
from repro.vbox.vtlb import VectorTLB

LINE_BYTES = 64

_M64 = (1 << 64) - 1
#: plan-kind -> the counter the build path bumps (replayed on cache hits)
_KIND_COUNTER = {"pump": "pump_plans", "reordered": "reordered_plans"}
#: plan-cache entry bound; cleared wholesale when exceeded (hot keys
#: repopulate within one loop iteration).  Sized so a whole blocked
#: kernel's working set fits: the key includes vl and base % BANK_PERIOD,
#: and e.g. linpack's column sweep walks ~2.5k distinct (vl, residue)
#: pairs — with the trace JIT batching the functional work, plan
#: *replays* dominate the remaining timing cost, so thrashing here is
#: directly visible in wall-clock.
_PLAN_CACHE_MAX = 8192


@dataclass
class AccessPlan:
    """Everything the memory pipeline needs to time one instruction."""

    kind: str                      # 'pump' | 'reordered' | 'cr' | 'empty'
    is_write: bool
    is_prefetch: bool
    slices: list[Slice] = field(default_factory=list)
    #: total address-generation (+ CR tournament) cycles
    addr_gen_cycles: float = 1.0
    #: PALcode TLB refill penalty, cycles
    tlb_penalty: float = 0.0
    #: data quadwords moved (valid elements)
    quadwords: int = 0
    #: physical quadword addresses touched (for memory-dependence checks)
    touched: tuple = ()


@dataclass
class _CachedPlan:
    """A reusable strided plan, rebased on hit by ``base - entry.base``.

    Only fast-path translations are cached (identity mapping, zero TLB
    penalty), and only pump/reordered kinds (the CR box is stateful).
    The slice/bank structure of a strided access depends on the base
    only through ``base % BANK_PERIOD`` (which is part of the cache
    key), so a hit at a different base shifts every address by a
    multiple of the bank period — line splits, bank schedule and
    full-line-write classification are all preserved.
    """

    kind: str
    is_write: bool
    is_prefetch: bool
    base: int                       # virtual base the entry was built at
    n_valid: int                    # active elements (vtlb hit replication)
    addr_gen_cycles: float
    quadwords: int
    touched: np.ndarray             # uint64 copy of plan.touched
    touched_tuple: tuple            # the original tuple (delta == 0 reuse)
    slices: list                    # template Slice objects at `base`
    slice_lines: list               # template line_addresses() per slice


class AddressGenerators:
    """The 16 per-lane address generators plus the CR box front end."""

    def __init__(self, vtlb: VectorTLB | None = None,
                 crbox: ConflictResolutionBox | None = None,
                 pump_enabled: bool = True) -> None:
        self.vtlb = vtlb or VectorTLB()
        self.crbox = crbox or ConflictResolutionBox()
        self.pump_enabled = pump_enabled
        self.counters = Counter()
        self._next_slice_id = 0
        #: keyed plan cache for strided accesses (see _CachedPlan);
        #: invalidated explicitly on setvl/setvs/setvm
        self._plan_cache: dict[tuple, _CachedPlan] = {}
        #: keys pre-loaded from a compiled trace's plan store rather
        #: than built here: their *first* replay counts as the miss the
        #: build path would have produced, so plan-cache telemetry is
        #: independent of whether an earlier run harvested the plans
        self._seeded: set = set()
        #: when set to a list, plan() appends ``(instr, plan.touched)``
        #: for every planned access (build and cache-replay paths alike);
        #: the vmem soundness suite uses this as the timing-side trace
        self.trace: list[tuple[Instruction, tuple]] | None = None

    # -- helpers ---------------------------------------------------------

    def _new_slice(self, elements, addresses, **kw) -> Slice:
        s = Slice(self._next_slice_id, elements, addresses, **kw)
        self._next_slice_id += 1
        return s

    @staticmethod
    def _valid_elements(instr: Instruction, state: ArchState) -> np.ndarray:
        return state.active_indices(instr.masked)

    # -- the three paths ----------------------------------------------------

    def _plan_pump(self, instr, valid, paddrs, is_write, tlb_penalty,
                   tag: str) -> AccessPlan:
        addrs = paddrs[valid]
        # addresses ascend (stride-1, valid indices ascending), so a
        # single python walk yields the sorted distinct lines + counts
        line_list: list[int] = []
        counts: list[int] = []
        prev = -1
        for a in addrs.tolist():
            ln = a >> 6
            if ln != prev:
                line_list.append(ln << 6)
                counts.append(1)
                prev = ln
            else:
                counts[-1] += 1
        per_line = LINE_BYTES // 8
        slices: list[Slice] = []
        # misaligned stride-1 spans 17 lines -> two pump slices (note 3)
        for start in range(0, len(line_list), SLICE_SIZE):
            group = line_list[start:start + SLICE_SIZE]
            group_counts = counts[start:start + SLICE_SIZE]
            qw = sum(group_counts)
            full = is_write and all(c == per_line for c in group_counts)
            s = self._new_slice(
                np.arange(len(group)), np.array(group, dtype=np.uint64),
                pump=True, full_line_write=full, quadwords=qw, tag=tag)
            # pump addresses *are* sorted distinct line starts
            s._line_addrs = group
            slices.append(s)
        self.counters.add("pump_plans")
        return AccessPlan("pump", is_write, False, slices,
                          addr_gen_cycles=float(len(slices)),
                          tlb_penalty=tlb_penalty, quadwords=len(addrs))

    def _plan_reordered(self, instr, state, valid, paddrs, is_write,
                        tlb_penalty, tag: str) -> AccessPlan:
        base = int(paddrs[0])
        stride = state.ctrl.vs
        schedule = conflict_free_schedule(base, stride)
        valid_mask = np.zeros(MVL, dtype=bool)
        valid_mask[valid] = True
        slices = []
        for group in schedule:
            keep = group[valid_mask[group]]
            if len(keep) == 0:
                continue
            slices.append(self._new_slice(keep, paddrs[keep],
                                          quadwords=len(keep), tag=tag))
        self.counters.add("reordered_plans")
        # short vectors still pay the full 8 address-generation cycles
        return AccessPlan("reordered", is_write, False, slices,
                          addr_gen_cycles=float(MVL // SLICE_SIZE),
                          tlb_penalty=tlb_penalty, quadwords=len(valid))

    def _plan_cr(self, instr, valid, paddrs, is_write, tlb_penalty,
                 tag: str) -> AccessPlan:
        slices, cr_cycles = self.crbox.pack(valid, paddrs[valid], tag=tag)
        # renumber to keep slice ids unique across both allocators
        for s in slices:
            s.slice_id = self._next_slice_id
            self._next_slice_id += 1
        self.counters.add("cr_plans")
        return AccessPlan("cr", is_write, False, slices,
                          addr_gen_cycles=max(cr_cycles, 1.0),
                          tlb_penalty=tlb_penalty, quadwords=len(valid))

    # -- the plan cache ---------------------------------------------------------

    def invalidate_plans(self) -> None:
        """Drop every cached plan (setvl/setvs/setvm executed).

        The cache key includes vl/vs/vm so stale hits are impossible
        even without this, but explicit invalidation keeps the cache
        from accumulating dead keys across control-register phases.
        """
        if self._plan_cache:
            self._plan_cache.clear()
            self._seeded.clear()
            self.counters.add("plan_cache_invalidations")

    def _plan_key(self, instr: Instruction, state: ArchState,
                  base: int) -> tuple:
        return (instr.op, instr.tag, instr.is_prefetch, instr.masked,
                state.ctrl.vl, state.ctrl.vs, base % BANK_PERIOD,
                state.ctrl.vm.tobytes() if instr.masked else None)

    def _replay_plan(self, entry: _CachedPlan, base: int) -> AccessPlan | None:
        """Rebase a cached plan to ``base``; None if no longer valid.

        Validity is exactly the vtlb fast-path condition the entry was
        built under: every page the rebased access touches must still be
        identity-mapped and resident in every lane.  Anything else (TLB
        shootdown, page-table holes) falls back to the build path.
        """
        hot = self.vtlb._hot_identity_vpns
        if not hot:
            return None
        delta = base - entry.base
        if delta == 0:
            touched_arr = entry.touched
        else:
            touched_arr = entry.touched + np.uint64(delta & _M64)
        shift = self.vtlb.page_table.page_shift
        lo_page = int(touched_arr[0]) >> shift
        hi_page = int(touched_arr[-1]) >> shift
        if lo_page == hi_page:
            # strided addresses are monotonic, so first/last bound the
            # span; one page (512 MB pages!) is the overwhelming case
            if lo_page not in hot:
                return None
        elif not {a >> shift for a in touched_arr.tolist()} <= hot:
            return None
        # replicate the counters the build path would have produced
        # (hit/miss accounting happens in plan(), which knows whether
        # the entry was seeded)
        self.counters.add(_KIND_COUNTER[entry.kind])
        self.vtlb.counters.add("hits", entry.n_valid)
        if delta == 0:
            slices = entry.slices
            touched = entry.touched_tuple
        else:
            du = np.uint64(delta & _M64)
            slices = []
            for tmpl, lines in zip(entry.slices, entry.slice_lines):
                # bypass the dataclass ctor: the template was validated
                # when built, and rebasing only shifts the addresses
                s = object.__new__(Slice)
                s.slice_id = tmpl.slice_id
                s.elements = tmpl.elements
                s.addresses = tmpl.addresses + du
                s.pump = tmpl.pump
                s.full_line_write = tmpl.full_line_write
                s.quadwords = tmpl.quadwords
                s.tag = tmpl.tag
                s._line_addrs = [line + delta for line in lines]
                slices.append(s)
            touched = tuple(touched_arr.tolist())
        return AccessPlan(entry.kind, entry.is_write, entry.is_prefetch,
                          slices, addr_gen_cycles=entry.addr_gen_cycles,
                          tlb_penalty=0.0, quadwords=entry.quadwords,
                          touched=touched)

    def _store_plan(self, key: tuple, plan: AccessPlan, base: int,
                    n_valid: int) -> None:
        if len(self._plan_cache) >= _PLAN_CACHE_MAX:
            self._plan_cache.clear()
            self._seeded.clear()
        self._seeded.discard(key)
        self._plan_cache[key] = _CachedPlan(
            plan.kind, plan.is_write, plan.is_prefetch, base, n_valid,
            plan.addr_gen_cycles, plan.quadwords,
            np.array(plan.touched, dtype=np.uint64), plan.touched,
            list(plan.slices), [s.line_addresses() for s in plan.slices])

    # -- entry point ------------------------------------------------------------

    def plan(self, instr: Instruction, state: ArchState) -> AccessPlan:
        """Build (or replay) the slice plan for one SM/RM instruction."""
        d = instr.definition
        if not d.is_memory or d.group not in (Group.SM, Group.RM):
            raise ValueError(f"plan() needs a vector memory instruction, "
                             f"got {instr.op}")
        key = None
        if not d.is_indexed:
            base = (state.sregs.read(instr.rb) + instr.disp) & _M64
            key = self._plan_key(instr, state, base)
            entry = self._plan_cache.get(key)
            if entry is not None:
                plan = self._replay_plan(entry, base)
                if plan is not None:
                    if key in self._seeded:
                        # first use of a cross-run seeded entry: count
                        # the miss the build path would have produced
                        self._seeded.discard(key)
                        self.counters.add("plan_cache_misses")
                    else:
                        self.counters.add("plan_cache_hits")
                    if self.trace is not None:
                        self.trace.append((instr, plan.touched))
                    return plan
            self.counters.add("plan_cache_misses")
        valid = self._valid_elements(instr, state)
        is_write = d.is_store
        if len(valid) == 0:
            if self.trace is not None:
                self.trace.append((instr, ()))
            return AccessPlan("empty", is_write, instr.is_prefetch)

        if d.is_indexed:
            vaddrs = indexed_addresses(instr, state)
        else:
            vaddrs = strided_addresses(instr, state)
        # only the active elements' addresses are generated and translated;
        # page size (512 MB) >> bank period, so translation never changes
        # bank bits and the reorder classification can use virtual addresses
        paddrs = vaddrs.copy()
        translated, tlb_penalty = self.vtlb.translate_elements(
            valid, vaddrs[valid], ignore_misses=instr.is_prefetch)
        paddrs[valid] = translated

        tag = instr.tag
        if d.is_indexed:
            plan = self._plan_cr(instr, valid, paddrs, is_write,
                                 tlb_penalty, tag)
        elif state.ctrl.vs == 8 and self.pump_enabled:
            plan = self._plan_pump(instr, valid, paddrs, is_write,
                                   tlb_penalty, tag)
        elif is_reorderable(int(vaddrs[0]), state.ctrl.vs):
            plan = self._plan_reordered(instr, state, valid, paddrs,
                                        is_write, tlb_penalty, tag)
        else:
            # self-conflicting stride: run through the CR box like a gather
            self.counters.add("self_conflicting_strides")
            plan = self._plan_cr(instr, valid, paddrs, is_write,
                                 tlb_penalty, tag)
        plan.is_prefetch = instr.is_prefetch
        plan.touched = tuple(paddrs[valid].tolist())
        if key is not None and plan.kind in _KIND_COUNTER \
                and plan.tlb_penalty == 0.0 and self.vtlb.last_fast_path:
            self._store_plan(key, plan, base, len(valid))
        if self.trace is not None:
            self.trace.append((instr, plan.touched))
        return plan
