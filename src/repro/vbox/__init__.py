"""Vbox: the 16-lane vector execution engine and its memory front end."""

from repro.vbox.address_gen import AccessPlan, AddressGenerators
from repro.vbox.crbox import ConflictResolutionBox
from repro.vbox.issue import FunctionalUnitLatencies, VboxIssue
from repro.vbox.lanes import LaneConfig, N_LANES, lane_of_element
from repro.vbox.rename import RenameAllocator
from repro.vbox.reorder import (
    bank_pattern,
    conflict_free_schedule,
    is_reorderable,
    schedule_cache_info,
)
from repro.vbox.slices import SLICE_SIZE, Slice
from repro.vbox.vcu import CompletionUnit
from repro.vbox.vtlb import LaneTLB, RefillStrategy, VectorTLB

__all__ = [
    "AccessPlan",
    "AddressGenerators",
    "CompletionUnit",
    "ConflictResolutionBox",
    "FunctionalUnitLatencies",
    "LaneConfig",
    "LaneTLB",
    "N_LANES",
    "RefillStrategy",
    "RenameAllocator",
    "SLICE_SIZE",
    "Slice",
    "VboxIssue",
    "VectorTLB",
    "bank_pattern",
    "conflict_free_schedule",
    "is_reorderable",
    "lane_of_element",
    "schedule_cache_info",
]
