"""Slices: the unit of the whole vector memory pipeline (section 3.4).

A slice is a group of up to 16 addresses that is *L2-bank conflict-free*
(at most one per bank, so the 16 banks can cycle in parallel) and
*register-lane conflict-free* (at most one element per Vbox lane, so the
returned quadwords write the register file without port conflicts).
Slices are tagged when created by the address generators and tracked by
that tag through the memory pipe; addresses within one may be invalid
(``vl`` < 128 or masked-off elements).

Stride-1 slices set the *pump* bit: they carry 16 cache-line requests
rather than 16 element addresses and stream whole lines through the
PUMP (Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.bitops import line_address

#: Addresses per slice == number of L2 banks == number of Vbox lanes.
SLICE_SIZE = 16


@dataclass
class Slice:
    """One conflict-free request group walking the memory pipe."""

    slice_id: int
    #: element indices within the vector instruction (defines the lanes)
    elements: np.ndarray
    #: byte addresses, parallel to ``elements``
    addresses: np.ndarray
    #: pump bit: addresses are cache-line starts, streamed via the PUMP
    pump: bool = False
    #: pump stores that overwrite full lines (directory-transition path)
    full_line_write: bool = False
    #: quadwords of data this slice moves (for streaming occupancy)
    quadwords: int = 0
    tag: str = field(default="", compare=False)
    #: memoized line_addresses() result — slices are immutable once built
    _line_addrs: list | None = field(default=None, init=False, repr=False,
                                     compare=False)

    def __post_init__(self) -> None:
        self.elements = np.asarray(self.elements, dtype=np.int64)
        self.addresses = np.asarray(self.addresses, dtype=np.uint64)
        if self.elements.shape != self.addresses.shape:
            raise ValueError("slice elements/addresses length mismatch")
        if len(self.addresses) > SLICE_SIZE:
            raise ValueError(
                f"slice holds {len(self.addresses)} addresses > {SLICE_SIZE}")
        if not self.quadwords:
            self.quadwords = len(self.addresses)

    @property
    def valid_count(self) -> int:
        return len(self.addresses)

    def lanes(self) -> np.ndarray:
        """Vbox lane of each element (element index mod 16)."""
        return self.elements % SLICE_SIZE

    def banks(self) -> np.ndarray:
        """L2 bank of each address (bits <9:6>)."""
        return (self.addresses >> np.uint64(6)) & np.uint64(0xF)

    def line_addresses(self) -> list[int]:
        """Distinct cache-line addresses this slice touches (memoized,
        sorted ascending)."""
        lines = self._line_addrs
        if lines is None:
            lines = sorted({a >> 6 for a in self.addresses.tolist()})
            for i, line in enumerate(lines):
                lines[i] = line << 6
            self._line_addrs = lines
        return lines

    def is_bank_conflict_free(self) -> bool:
        banks = self.banks()
        # two addresses in the same *line* cycle the same bank once, so
        # only distinct lines count toward conflicts
        lines = self.addresses >> np.uint64(6)
        pairs = {(int(line), int(bank)) for line, bank in zip(lines, banks)}
        distinct_banks = {bank for _, bank in pairs}
        return len(distinct_banks) == len(pairs)

    def is_lane_conflict_free(self) -> bool:
        lanes = self.lanes()
        return len(np.unique(lanes)) == len(lanes)

    def is_conflict_free(self) -> bool:
        return self.is_bank_conflict_free() and self.is_lane_conflict_free()
