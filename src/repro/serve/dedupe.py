"""In-flight request deduplication, keyed by spec content digest.

A burst of identical submissions — the same sweep launched from many
clients, a retry storm, a dashboard refresh — must cost one simulation,
not N.  The :class:`~repro.harness.engine.ResultCache` already collapses
*completed* duplicates; this registry collapses the window the cache
cannot see: specs that are accepted but not yet finished.

The key is :func:`~repro.harness.engine.spec_digest` — the content
address of everything the result depends on — so two submissions that
*simulate the same cell* share one :class:`~repro.serve.jobs.Job` even
when they arrived as distinct JSON.  All observers get the same job id
and therefore the same result bytes; the chaos oracle asserts the
engine-side cache records exactly one miss per unique digest no matter
how many duplicates were accepted.

Single-threaded by design: every method runs on the asyncio loop
thread, between awaits, so check-and-register is atomic without a lock.
"""

from __future__ import annotations

from typing import Optional

from repro.serve.jobs import Job

__all__ = ["InFlightDedupe"]


class InFlightDedupe:
    """digest -> the one live :class:`Job` simulating that content."""

    def __init__(self) -> None:
        self._live: dict[str, Job] = {}
        #: submissions that attached to an existing in-flight job
        self.shared = 0

    def __len__(self) -> int:
        return len(self._live)

    def attach(self, digest: str) -> Optional[Job]:
        """The in-flight job for ``digest``, or None.

        A hit means the new submission rides the existing execution;
        the caller answers with the existing job id.
        """
        job = self._live.get(digest)
        if job is not None:
            self.shared += 1
        return job

    def register(self, job: Job) -> None:
        """Make ``job`` the live execution for its digest.

        Must be called in the same no-await critical section as the
        failed :meth:`attach` probe — that ordering is what makes the
        dedupe window airtight.
        """
        assert job.digest not in self._live, \
            f"digest {job.digest} already in flight"
        self._live[job.digest] = job

    def resolve(self, job: Job) -> None:
        """Drop ``job`` from the in-flight window (it completed).

        From here on, duplicates are the result cache's business.
        Tolerates a job that was never registered (expired before
        registration, or resolved twice on a drain race).
        """
        live = self._live.get(job.digest)
        if live is job:
            del self._live[job.digest]
