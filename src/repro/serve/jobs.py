"""Job model and admission control for the simulation server.

The serve layer's unit of work is a :class:`Job`: one accepted
:class:`~repro.harness.engine.ExperimentSpec` plus the bookkeeping a
multi-tenant server needs — who submitted it, at what priority, under
what deadline, and where its result payload ends up.  Three pieces live
here because they are pure data structures the rest of the package
(and the chaos oracle) can exercise without a socket:

* :func:`spec_from_json` — the untrusted-input boundary: a JSON object
  becomes a validated ``ExperimentSpec`` or a structured
  :class:`ServeError` (HTTP 400), never a traceback;
* :func:`outcome_payload` — the canonical JSON-able rendering of a
  :class:`~repro.harness.engine.RunOutcome` or
  :class:`~repro.harness.engine.CellFailure`; the chaos oracle asserts
  these bytes are identical to a serial fault-free ``execute()``;
* :class:`JobQueue` — a bounded, per-tenant fair, priority-ordered
  queue with explicit admission control: ``offer`` returns ``False``
  when full (the server answers 429 + ``Retry-After``) instead of ever
  growing without bound.

The queue is the only object shared between the asyncio loop thread
(admission) and the executor thread (dispatch); it is internally
locked, and queue membership — not ``Job.state`` — is the ownership
truth: a job popped by ``take_batch`` belongs to the executor, a job
popped by ``remove_expired`` belongs to the reaper, and nothing is ever
popped twice.  See docs/SERVE.md.
"""

from __future__ import annotations

import heapq
import itertools
import math
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigError
from repro.harness.engine import ExperimentSpec

__all__ = [
    "Job",
    "JobQueue",
    "ServeError",
    "outcome_payload",
    "spec_from_json",
]

#: JSON keys a spec object may carry; everything else is a 400
SPEC_FIELDS = ("kernel", "config", "scale", "overrides", "check",
               "drain_dirty", "warm", "apply_l2_hint", "mode", "fault")

#: job lifecycle states, in order of progress
STATES = ("queued", "running", "done", "failed", "expired")


class ServeError(Exception):
    """A request problem with an HTTP status and a client-safe message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def spec_from_json(obj) -> ExperimentSpec:
    """Validate one untrusted JSON spec object into an ExperimentSpec.

    Every rejection is a :class:`ServeError` with status 400 and a
    message safe to echo to the client — including the registry's
    difflib spelling suggestions for a mistyped kernel — so malformed
    load never takes the server down or leaks a traceback.
    """
    from repro.workloads.registry import get

    if not isinstance(obj, dict):
        raise ServeError(400, f"spec must be a JSON object, got "
                         f"{type(obj).__name__}")
    unknown = sorted(set(obj) - set(SPEC_FIELDS))
    if unknown:
        raise ServeError(400, f"unknown spec field(s): {', '.join(unknown)}; "
                         f"known: {', '.join(SPEC_FIELDS)}")
    if "kernel" not in obj:
        raise ServeError(400, "spec is missing the required 'kernel' field")
    kernel = obj["kernel"]
    if not isinstance(kernel, str):
        raise ServeError(400, "'kernel' must be a string")
    try:
        get(kernel)
    except KeyError as exc:
        raise ServeError(400, exc.args[0]) from None
    scale = obj.get("scale", 1.0)
    if not isinstance(scale, (int, float)) or isinstance(scale, bool) \
            or not math.isfinite(scale) or scale <= 0:
        raise ServeError(400, f"'scale' must be a positive finite number, "
                         f"got {scale!r}")
    overrides = obj.get("overrides", {})
    if not isinstance(overrides, dict):
        raise ServeError(400, "'overrides' must be an object of "
                         "MachineConfig field -> value")
    for name in ("check", "drain_dirty", "warm", "apply_l2_hint"):
        if name in obj and not isinstance(obj[name], bool):
            raise ServeError(400, f"{name!r} must be a boolean")
    fault = obj.get("fault", ())
    if fault and (not isinstance(fault, (list, tuple)) or len(fault) != 2):
        raise ServeError(400, "'fault' must be a [site, seed] pair")
    try:
        return ExperimentSpec(
            kernel=kernel,
            config=obj.get("config", "T"),
            scale=float(scale),
            overrides=tuple(overrides.items()),
            check=obj.get("check", True),
            drain_dirty=obj.get("drain_dirty", False),
            warm=obj.get("warm", True),
            apply_l2_hint=obj.get("apply_l2_hint", True),
            mode=obj.get("mode", "auto"),
            fault=tuple(fault) if fault else ())
    except (ConfigError, TypeError, ValueError) as exc:
        raise ServeError(400, str(exc)) from None


def outcome_payload(outcome) -> dict:
    """The canonical client-facing rendering of one cell outcome.

    Stable fields only — the chaos oracle compares
    ``json.dumps(payload, sort_keys=True)`` against a serial fault-free
    run, so anything nondeterministic (tracebacks, host timings, object
    reprs) stays out.  Failures keep the same shape the engine's
    :class:`~repro.harness.engine.CellFailure` carries: a degraded cell
    is a structured payload, never a dropped connection.
    """
    if getattr(outcome, "failed", False):
        return {
            "failed": True,
            "kernel": outcome.kernel,
            "config": outcome.config_name,
            "error_type": outcome.error_type,
            "message": outcome.message,
            "trap_pc": outcome.trap_pc,
            "attempts": outcome.attempts,
        }
    return {
        "failed": False,
        "kernel": outcome.kernel,
        "config": outcome.config_name,
        "cycles": outcome.cycles,
        "core_ghz": outcome.core_ghz,
        "seconds": outcome.seconds,
        "opc": outcome.opc,
        "fpc": outcome.fpc,
        "mpc": outcome.mpc,
        "other_pc": outcome.other_pc,
        "streams_mbytes_per_s": outcome.streams_mbytes_per_s,
        "raw_mbytes_per_s": outcome.raw_mbytes_per_s,
        "verified": outcome.verified,
    }


@dataclass
class Job:
    """One accepted spec moving through the server.

    ``state`` is written by whichever thread owns the job at that
    moment (see :class:`JobQueue`); ``payload`` is set exactly once, by
    the loop thread, together with ``done_event`` — long-polling GET
    handlers wait on the event, so completion never requires the client
    to hold a connection open through the simulation.
    """

    id: str
    tenant: str
    spec: ExperimentSpec
    digest: str
    priority: int = 0
    #: absolute time.monotonic() deadline while queued; None = none
    deadline: Optional[float] = None
    state: str = "queued"
    payload: Optional[dict] = None
    created: float = field(default_factory=time.monotonic)
    finished: Optional[float] = None
    #: set by the loop thread when payload lands (asyncio.Event)
    done_event: object = None

    @property
    def done(self) -> bool:
        return self.state in ("done", "failed", "expired")

    def describe(self) -> dict:
        """The GET /jobs/<id> body (payload only once done)."""
        out = {
            "id": self.id,
            "tenant": self.tenant,
            "kernel": self.spec.kernel,
            "config": self.spec.config,
            "digest": self.digest,
            "priority": self.priority,
            "state": self.state,
        }
        if self.payload is not None:
            out["result"] = self.payload
        return out


class JobQueue:
    """Bounded, per-tenant fair, priority-ordered admission queue.

    * **bounded** — ``offer`` refuses (returns ``False``) once ``limit``
      jobs are queued; the server turns that into HTTP 429 with a
      ``Retry-After`` estimate.  Memory use is therefore capped no
      matter how bursty the load.
    * **fair** — ``take_batch`` round-robins across tenants, one job
      per tenant per turn, so one tenant's thousand-spec sweep cannot
      starve another's single interactive request.
    * **prioritized** — within a tenant, higher ``priority`` first,
      FIFO within a priority (a monotonic sequence number breaks ties).

    Thread-safe: admission runs on the asyncio loop thread, dispatch on
    the executor thread, expiry on the reaper — all through one lock.
    """

    def __init__(self, limit: int) -> None:
        if limit <= 0:
            raise ValueError(f"queue limit must be positive, got {limit!r}")
        self.limit = limit
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        #: tenant -> heap of (-priority, seq, job)
        self._tenants: dict[str, list] = {}
        #: round-robin order; rotated by take_batch
        self._rotation: list[str] = []
        self._seq = itertools.count()
        self._size = 0

    def __len__(self) -> int:
        with self._lock:
            return self._size

    def depths(self) -> dict[str, int]:
        with self._lock:
            return {tenant: len(heap)
                    for tenant, heap in self._tenants.items() if heap}

    def offer(self, job: Job) -> bool:
        """Admit ``job``, or return False when the queue is full."""
        with self._lock:
            if self._size >= self.limit:
                return False
            heap = self._tenants.get(job.tenant)
            if heap is None:
                heap = self._tenants[job.tenant] = []
                self._rotation.append(job.tenant)
            heapq.heappush(heap, (-job.priority, next(self._seq), job))
            self._size += 1
            self._not_empty.notify()
            return True

    def take_batch(self, max_n: int, timeout: Optional[float] = None
                   ) -> list[Job]:
        """Pop up to ``max_n`` jobs, fairly; block up to ``timeout``.

        One job per tenant per rotation turn until the batch is full or
        the queue empties.  Returns ``[]`` on timeout.
        """
        with self._not_empty:
            if self._size == 0 and timeout:
                self._not_empty.wait(timeout)
            batch: list[Job] = []
            while self._size > 0 and len(batch) < max_n:
                progressed = False
                for _ in range(len(self._rotation)):
                    tenant = self._rotation.pop(0)
                    self._rotation.append(tenant)
                    heap = self._tenants.get(tenant)
                    if not heap:
                        continue
                    _, _, job = heapq.heappop(heap)
                    self._size -= 1
                    batch.append(job)
                    progressed = True
                    if len(batch) >= max_n:
                        break
                if not progressed:  # defensive: size/heap disagreement
                    break
            return batch

    def remove_expired(self, now: float) -> list[Job]:
        """Pop every queued job whose deadline has passed.

        The caller (the loop's reaper task) owns the returned jobs and
        finishes them with a structured Timeout payload — an expired
        request degrades into data, it does not silently vanish.
        """
        with self._lock:
            expired: list[Job] = []
            for tenant, heap in self._tenants.items():
                keep = []
                for entry in heap:
                    job = entry[2]
                    if job.deadline is not None and job.deadline <= now:
                        expired.append(job)
                    else:
                        keep.append(entry)
                if len(keep) != len(heap):
                    heapq.heapify(keep)
                    self._tenants[tenant] = keep
            self._size -= len(expired)
            return expired
