"""Simulation-as-a-service: the asyncio HTTP job server.

``python -m repro serve`` turns the experiment engine into a
long-running, crash-tolerant service: clients POST single or batched
:class:`~repro.harness.engine.ExperimentSpec` JSON, the server executes
them on a :class:`~repro.harness.pool.ProcessPool` through the same
:func:`~repro.harness.engine.execute_many` fault budget every other
grid consumer uses, and results come back as stable JSON payloads —
byte-identical to a serial fault-free ``execute()`` of the same spec,
which ``repro chaos --layer serve`` proves under load.

Robustness is the design center, not the HTTP surface:

* **admission control** — a bounded :class:`~repro.serve.jobs.JobQueue`
  with per-tenant fair scheduling; a full queue answers 429 with a
  ``Retry-After`` estimate, never unbounded memory;
* **in-flight dedupe** — identical concurrent submissions share one
  execution (:mod:`repro.serve.dedupe`, keyed by ``spec_digest``) and
  completed ones hit the content-addressed result cache at admission;
* **degradation, not disconnection** — per-cell timeouts, batch
  deadlines, queued-request deadlines and worker crashes all degrade
  into structured ``CellFailure`` payloads; the connection never just
  drops;
* **worker-crash survival** — the pool's preserve-on-break path keeps
  completed cells across a worker death, and a dirtied pool is
  replaced between batches;
* **graceful drain** — SIGTERM/SIGINT stops admission (503), finishes
  every accepted job, closes the pool, and exits 0 with the
  crash-safe cache fully flushed.

The server is one asyncio loop thread (HTTP, admission, dedupe, job
bookkeeping) plus one executor thread (batch dispatch into
``execute_many``); the :class:`~repro.serve.jobs.JobQueue` is the only
shared structure.  Everything is stdlib.  See docs/SERVE.md for the
API and the drain/fault semantics, and ``repro.faults.chaos_serve``
for the oracle that drills all of it.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import json
import math
import signal
import sys
import threading
import time
import warnings
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional
from urllib.parse import parse_qs, urlsplit

from repro.harness.engine import (
    CACHE_DIR,
    STATS,
    ResultCache,
    cache_key,
    execute_many,
    spec_digest,
)
from repro.harness.pool import Pool, PoolPolicy, ProcessPool, SerialPool
from repro.serve.dedupe import InFlightDedupe
from repro.serve.jobs import (
    Job,
    JobQueue,
    ServeError,
    outcome_payload,
    spec_from_json,
)

__all__ = ["ReproServer", "ServeConfig", "ServeStats", "ServerThread",
           "serve_main"]

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 408: "Request Timeout",
            413: "Payload Too Large", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable"}


@dataclass(frozen=True)
class ServeConfig:
    """Everything one server process runs under (CLI flags map 1:1)."""

    host: str = "127.0.0.1"
    #: 0 = let the kernel pick (the bound port is reported at startup)
    port: int = 8537
    #: pool worker processes
    jobs: int = 2
    #: bounded queue: admissions past this answer 429
    queue_limit: int = 256
    #: max specs dispatched per engine batch; 0 = 2x jobs
    batch_max: int = 0
    #: per-cell wall-clock budget (None = none; needs process workers)
    timeout: Optional[float] = None
    #: per-batch grid deadline (None = none)
    deadline: Optional[float] = None
    #: per-cell retry budget inside the engine
    retries: int = 1
    backoff_seed: int = 0
    #: result-cache root; None disables caching
    cache_dir: Optional[str] = str(CACHE_DIR)
    #: finished jobs kept addressable by GET /jobs/<id>
    history_limit: int = 4096
    max_body_bytes: int = 1 << 20
    max_batch_specs: int = 256
    #: cap on GET /jobs/<id>?wait=S long-polls
    max_wait_s: float = 60.0
    #: idle keep-alive connections are dropped after this
    idle_timeout_s: float = 60.0
    default_tenant: str = "anonymous"

    def __post_init__(self) -> None:
        if self.queue_limit <= 0:
            raise ValueError("queue_limit must be positive")
        if self.jobs <= 0:
            raise ValueError("jobs must be positive")
        # surface bad budgets at configuration, not mid-batch
        self.policy()

    def policy(self) -> PoolPolicy:
        return PoolPolicy(timeout=self.timeout, deadline=self.deadline,
                          retries=self.retries,
                          backoff_seed=self.backoff_seed)

    @property
    def effective_batch_max(self) -> int:
        return self.batch_max if self.batch_max > 0 else 2 * self.jobs


@dataclass
class ServeStats:
    """Serve-layer counters (the engine's live in ``engine.STATS``)."""

    submissions: int = 0
    accepted: int = 0
    deduped: int = 0
    cache_hits: int = 0
    rejected_full: int = 0
    rejected_invalid: int = 0
    rejected_draining: int = 0
    completed: int = 0
    failed: int = 0
    expired: int = 0
    batches: int = 0
    batch_errors: int = 0
    pools_built: int = 0
    internal_errors: int = 0

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


def _expiry_payload(job: Job, where: str) -> dict:
    """Structured Timeout payload for a job whose deadline passed."""
    return {
        "failed": True,
        "kernel": job.spec.kernel,
        "config": job.spec.config,
        "error_type": "Timeout",
        "message": f"request deadline exceeded {where}",
        "trap_pc": None,
        "attempts": 0,
    }


class ReproServer:
    """The server object; see the module docstring for the model.

    ``pool_factory`` (chaos drills inject a
    :class:`~repro.faults.chaos_pool.ChaosPool` wrapper here) builds
    the execution backend; it is called again whenever the previous
    pool was dirtied by a break, kill or abandoned timeout.
    ``cache_factory`` returns the ``(probe, execute)`` cache pair —
    two views of one root, so admission-probe and executor traffic
    keep separate counters.
    """

    def __init__(self, config: ServeConfig,
                 pool_factory: Optional[Callable[[], Pool]] = None,
                 cache_factory: Optional[Callable[[], tuple]] = None) -> None:
        self.config = config
        self.stats = ServeStats()
        self.draining = False
        self.stopped: Optional[asyncio.Event] = None
        self.host = config.host
        self.port = config.port
        self._pool_factory = pool_factory or self._default_pool_factory
        self._cache_factory = cache_factory or self._default_cache_factory
        self._started = time.monotonic()
        self._job_seq = itertools.count(1)
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._digest_futures: dict = {}
        self._drain_task = None
        self._drain_requested = False
        #: completed-batch (cells, wall_s) ring for Retry-After estimates
        self._batch_wall: list = []

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.stopped = asyncio.Event()
        self.queue = JobQueue(self.config.queue_limit)
        self.dedupe = InFlightDedupe()
        self._probe_cache, self._exec_cache = self._cache_factory()
        self._digest_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-digest")
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port)
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        self._reaper_task = self._loop.create_task(self._reaper())
        self._executor_thread = threading.Thread(
            target=self._executor_loop, name="serve-executor", daemon=True)
        self._executor_thread.start()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT begin a graceful drain (main thread only)."""
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(sig, self.begin_drain)
            except (NotImplementedError, RuntimeError, ValueError):
                pass

    def begin_drain(self) -> None:
        """Idempotent; callable from a signal handler on the loop."""
        if self._drain_task is None:
            self._drain_task = self._loop.create_task(self._drain())

    async def _drain(self) -> None:
        self.draining = True
        print(f"serve: draining — {len(self.queue)} queued job(s), "
              "admission closed", file=sys.stderr, flush=True)
        self._drain_requested = True
        # the executor exits once the queue is empty and the last batch
        # returned; joining it is the "finish in-flight jobs" barrier
        await self._loop.run_in_executor(None, self._executor_thread.join)
        self._reaper_task.cancel()
        self._server.close()
        await self._server.wait_closed()
        self._digest_pool.shutdown(wait=False)
        print(f"serve: drained — {self.stats.completed} completed, "
              f"{self.stats.failed} failed, {self.stats.expired} expired; "
              "cache flushed", file=sys.stderr, flush=True)
        self.stopped.set()

    # -- executor thread ---------------------------------------------------

    def _default_pool_factory(self) -> Pool:
        try:
            return ProcessPool(self.config.jobs)
        except (OSError, PermissionError, BrokenProcessPool) as err:
            STATS.pool_fallbacks += 1
            warnings.warn(
                f"serve: process pool unavailable ({type(err).__name__}: "
                f"{err}); executing serially", RuntimeWarning)
            return SerialPool()

    def _default_cache_factory(self) -> tuple:
        if self.config.cache_dir is None:
            return None, None
        root = Path(self.config.cache_dir)
        return ResultCache(root), ResultCache(root)

    def _executor_loop(self) -> None:
        pool: Optional[Pool] = None
        policy = self.config.policy()
        try:
            while True:
                batch = self.queue.take_batch(
                    self.config.effective_batch_max, timeout=0.1)
                if not batch:
                    if self._drain_requested and len(self.queue) == 0:
                        break
                    continue
                if pool is None or pool.dirty:
                    if pool is not None:
                        pool.close()
                    pool = self._pool_factory()
                    self.stats.pools_built += 1
                self._run_batch(pool, batch, policy)
        finally:
            if pool is not None:
                pool.close()

    def _run_batch(self, pool: Pool, batch: list, policy: PoolPolicy) -> None:
        for job in batch:
            job.state = "running"
        self.stats.batches += 1
        t0 = time.monotonic()
        try:
            with warnings.catch_warnings():
                # pool-break recovery is routine here, not an anomaly
                warnings.simplefilter("ignore", RuntimeWarning)
                outcomes = execute_many(
                    [job.spec for job in batch],
                    cache=self._exec_cache, policy=policy, pool=pool)
        except Exception as err:  # noqa: BLE001 - the batch boundary
            # an engine bug must degrade into per-job payloads, not
            # kill the serving thread
            self.stats.batch_errors += 1
            pool.mark_dirty()
            for job in batch:
                self._post_completion(job, {
                    "failed": True, "kernel": job.spec.kernel,
                    "config": job.spec.config,
                    "error_type": type(err).__name__,
                    "message": str(err), "trap_pc": None, "attempts": 0,
                }, failed=True)
            return
        self._batch_wall.append((len(batch), time.monotonic() - t0))
        del self._batch_wall[:-32]
        for job, outcome in zip(batch, outcomes):
            self._post_completion(job, outcome_payload(outcome),
                                  failed=getattr(outcome, "failed", False))

    def _post_completion(self, job: Job, payload: dict, failed: bool) -> None:
        state = "failed" if failed else "done"
        self._loop.call_soon_threadsafe(self._finish_job, job, payload, state)

    # -- loop-thread bookkeeping -------------------------------------------

    def _finish_job(self, job: Job, payload: dict, state: str) -> None:
        if job.done:
            return
        job.payload = payload
        job.state = state
        job.finished = time.monotonic()
        self.dedupe.resolve(job)
        if state == "done":
            self.stats.completed += 1
        elif state == "expired":
            self.stats.expired += 1
        else:
            self.stats.failed += 1
        job.done_event.set()
        self._trim_history()

    def _trim_history(self) -> None:
        while len(self._jobs) > self.config.history_limit:
            for jid, job in self._jobs.items():
                if job.done:
                    del self._jobs[jid]
                    break
            else:
                return                  # everything live: overshoot briefly

    async def _reaper(self) -> None:
        """Expire queued jobs whose request deadline passed."""
        while True:
            await asyncio.sleep(0.2)
            for job in self.queue.remove_expired(time.monotonic()):
                self._finish_job(job, _expiry_payload(job, "while queued"),
                                 "expired")

    # -- admission ---------------------------------------------------------

    def _new_job(self, tenant: str, spec, digest: str, priority: int,
                 deadline_s: Optional[float]) -> Job:
        job = Job(
            id=f"j{next(self._job_seq):08d}", tenant=tenant, spec=spec,
            digest=digest, priority=priority,
            deadline=(time.monotonic() + deadline_s
                      if deadline_s is not None else None))
        job.done_event = asyncio.Event()
        self._jobs[job.id] = job
        return job

    def _probe_sync(self, spec) -> tuple:
        """Digest (and cached payload, if any) for one spec — runs on
        the digest thread because the first build of a (kernel, scale)
        instance is expensive and must not stall the loop."""
        digest = spec_digest(spec)
        payload = None
        if self._probe_cache is not None:
            hit = self._probe_cache.get(cache_key(spec))
            if hit is not None:
                payload = outcome_payload(hit)
        return digest, payload

    async def _probe(self, spec) -> tuple:
        fut = self._digest_futures.get(spec)
        if fut is None:
            fut = self._loop.run_in_executor(
                self._digest_pool, self._probe_sync, spec)
            self._digest_futures[spec] = fut
            fut.add_done_callback(
                lambda _f: self._digest_futures.pop(spec, None))
        try:
            return await asyncio.shield(fut)
        except ServeError:
            raise
        except Exception as exc:  # noqa: BLE001 - untrusted spec boundary
            raise ServeError(
                400, f"spec rejected: {type(exc).__name__}: {exc}") from None

    def _retry_after(self) -> int:
        """Seconds a 429'd client should wait: queue depth x the recent
        per-cell wall clock, over the worker count."""
        cells = sum(c for c, _ in self._batch_wall)
        wall = sum(w for _, w in self._batch_wall)
        avg = (wall / cells) if cells else 1.0
        est = (len(self.queue) + 1) * avg / max(1, self.config.jobs)
        return max(1, min(60, int(math.ceil(est))))

    async def _submit(self, body: bytes) -> tuple:
        self.stats.submissions += 1
        if self.draining:
            self.stats.rejected_draining += 1
            raise ServeError(503, "server is draining; resubmit elsewhere "
                             "or after restart")
        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self.stats.rejected_invalid += 1
            raise ServeError(400, f"body is not valid JSON: {exc}") from None
        if isinstance(data, dict) and "specs" in data:
            specs_json = data["specs"]
            meta = data
        elif isinstance(data, dict):
            specs_json = [data]
            meta = {}
        else:
            self.stats.rejected_invalid += 1
            raise ServeError(400, "body must be a spec object or "
                             "{'specs': [...]}")
        if not isinstance(specs_json, list) or not specs_json:
            self.stats.rejected_invalid += 1
            raise ServeError(400, "'specs' must be a non-empty array")
        if len(specs_json) > self.config.max_batch_specs:
            self.stats.rejected_invalid += 1
            raise ServeError(413, f"batch of {len(specs_json)} specs exceeds "
                             f"the {self.config.max_batch_specs}-spec limit")
        tenant = meta.get("tenant", self.config.default_tenant)
        if not isinstance(tenant, str) or not tenant or len(tenant) > 64:
            self.stats.rejected_invalid += 1
            raise ServeError(400, "'tenant' must be a 1-64 char string")
        priority = meta.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool) \
                or abs(priority) > 1000:
            self.stats.rejected_invalid += 1
            raise ServeError(400, "'priority' must be an integer in "
                             "[-1000, 1000]")
        deadline_s = meta.get("deadline_s")
        if deadline_s is not None and (
                not isinstance(deadline_s, (int, float))
                or isinstance(deadline_s, bool)
                or not math.isfinite(deadline_s) or deadline_s <= 0):
            self.stats.rejected_invalid += 1
            raise ServeError(400, "'deadline_s' must be a positive number")
        # validate everything before admitting anything: a malformed
        # batch has no partial effect
        try:
            specs = [spec_from_json(obj) for obj in specs_json]
        except ServeError:
            self.stats.rejected_invalid += 1
            raise

        results = []
        rejected = 0
        for spec in specs:
            digest, cached = await self._probe(spec)
            if self.draining:           # drain began during the probe
                self.stats.rejected_draining += 1
                raise ServeError(503, "server is draining")
            # no awaits below: attach/offer/register must be atomic
            live = self.dedupe.attach(digest)
            if live is not None:
                self.stats.deduped += 1
                results.append({"id": live.id, "digest": digest,
                                "deduped": True})
                continue
            job = self._new_job(tenant, spec, digest, priority, deadline_s)
            if cached is not None:
                self.stats.cache_hits += 1
                self._finish_job(job, cached, "done")
                self.stats.completed -= 1  # not a serve-side completion
                results.append({"id": job.id, "digest": digest,
                                "cached": True})
                continue
            if not self.queue.offer(job):
                rejected += 1
                self.stats.rejected_full += 1
                del self._jobs[job.id]
                results.append({"digest": digest, "error": "queue full"})
                continue
            self.dedupe.register(job)
            self.stats.accepted += 1
            results.append({"id": job.id, "digest": digest})
        status = 429 if rejected else 202
        headers = {"Retry-After": str(self._retry_after())} if rejected \
            else {}
        return status, {"jobs": results, "rejected": rejected}, headers

    # -- read side ---------------------------------------------------------

    async def _job_status(self, job_id: str, query: dict) -> tuple:
        job = self._jobs.get(job_id)
        if job is None:
            raise ServeError(404, f"unknown job {job_id!r}")
        wait = query.get("wait", [None])[0]
        if wait is not None:
            try:
                wait_s = float(wait)
            except ValueError:
                raise ServeError(400, "'wait' must be a number of seconds") \
                    from None
            if wait_s > 0 and not job.done:
                try:
                    await asyncio.wait_for(
                        job.done_event.wait(),
                        min(wait_s, self.config.max_wait_s))
                except asyncio.TimeoutError:
                    pass
        return 200, job.describe(), {}

    @staticmethod
    def _jit_payload() -> dict:
        """Trace-JIT visibility for operators (docs/PERF.md).

        ``enabled`` is the server process's live setting (what pool
        workers inherit via ``REPRO_JIT``); the counters are this
        process's own, so they stay zero when every simulation runs in
        pool workers — they light up for in-process execution.
        """
        from repro import jit

        return {"enabled": jit.enabled(), **jit.STATS.as_dict()}

    def _stats_payload(self) -> dict:
        cache = None
        if self._probe_cache is not None:
            cache = {
                "root": str(self._probe_cache.root),
                "probe": {"hits": self._probe_cache.hits,
                          "misses": self._probe_cache.misses},
                "execute": {"hits": self._exec_cache.hits,
                            "misses": self._exec_cache.misses,
                            "stores": self._exec_cache.stores,
                            "corrupt": self._exec_cache.corrupt},
            }
        return {
            "uptime_s": round(time.monotonic() - self._started, 3),
            "draining": self.draining,
            "queue": {"depth": len(self.queue), "limit": self.queue.limit,
                      "tenants": self.queue.depths()},
            "serve": self.stats.as_dict(),
            "dedupe": {"in_flight": len(self.dedupe),
                       "shared": self.dedupe.shared},
            "engine": dataclasses.asdict(STATS),
            "jit": self._jit_payload(),
            "cache": cache,
            "pool": {"workers": self.config.jobs,
                     "batch_max": self.config.effective_batch_max},
        }

    # -- HTTP plumbing -----------------------------------------------------

    async def _dispatch(self, method: str, path: str, query: dict,
                        body: bytes) -> tuple:
        if path == "/jobs" and method == "POST":
            return await self._submit(body)
        if path.startswith("/jobs/") and method == "GET":
            return await self._job_status(path[len("/jobs/"):], query)
        if path == "/healthz" and method == "GET":
            return 200, {"ok": True, "draining": self.draining,
                         "queued": len(self.queue)}, {}
        if path == "/stats" and method == "GET":
            return 200, self._stats_payload(), {}
        if path in ("/jobs", "/healthz", "/stats") \
                or path.startswith("/jobs/"):
            raise ServeError(405, f"{method} not allowed on {path}")
        raise ServeError(404, f"no such endpoint: {path}")

    async def _read_request(self, reader) -> Optional[tuple]:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1", "replace").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise ServeError(400, "malformed request line")
        method, target = parts[0], parts[1]
        headers = {}
        while True:
            hline = await reader.readline()
            if hline in (b"\r\n", b"\n", b""):
                break
            if len(headers) >= 100 or len(hline) > 8192:
                raise ServeError(400, "header section too large")
            name, sep, value = hline.decode("latin-1", "replace") \
                .partition(":")
            if not sep:
                raise ServeError(400, f"malformed header line {name!r}")
            headers[name.strip().lower()] = value.strip()
        raw_len = headers.get("content-length", "0") or "0"
        try:
            length = int(raw_len)
        except ValueError:
            raise ServeError(400, f"bad Content-Length {raw_len!r}") from None
        if length < 0:
            raise ServeError(400, "negative Content-Length")
        if length > self.config.max_body_bytes:
            raise ServeError(413, f"body of {length} bytes exceeds the "
                             f"{self.config.max_body_bytes}-byte limit")
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        return method, split.path, parse_qs(split.query), headers, body

    @staticmethod
    async def _respond(writer, status: int, payload: dict, keep: bool,
                       headers: Optional[dict] = None) -> None:
        blob = json.dumps(payload, sort_keys=True).encode() + b"\n"
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Status')}",
                 "Content-Type: application/json",
                 f"Content-Length: {len(blob)}",
                 f"Connection: {'keep-alive' if keep else 'close'}"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + blob)
        await writer.drain()

    async def _handle_conn(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader),
                        timeout=self.config.idle_timeout_s)
                except (asyncio.TimeoutError, asyncio.IncompleteReadError):
                    break
                except ServeError as err:
                    # could not even parse the request: answer and close
                    await self._respond(writer, err.status,
                                        {"error": err.message}, keep=False)
                    break
                if request is None:
                    break
                method, path, query, headers, body = request
                keep = headers.get("connection", "").lower() != "close"
                try:
                    status, payload, extra = await self._dispatch(
                        method, path, query, body)
                except ServeError as err:
                    status, payload, extra = err.status, \
                        {"error": err.message}, {}
                except Exception as err:  # noqa: BLE001 - never leak
                    self.stats.internal_errors += 1
                    status, payload, extra = 500, \
                        {"error": f"internal error: {type(err).__name__}"}, {}
                await self._respond(writer, status, payload, keep,
                                    headers=extra)
                if not keep:
                    break
        except (ConnectionError, BrokenPipeError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (Exception, asyncio.CancelledError):
                # peer already gone, or the loop is tearing down idle
                # keep-alive tasks at shutdown — end the task quietly
                pass


# -- embedding and the CLI entry -------------------------------------------


class ServerThread:
    """Run a :class:`ReproServer` on a private loop in a daemon thread.

    The embedding surface tests, the chaos oracle and the load bench
    share: ``start()`` blocks until the port is bound (or raises the
    startup error), ``drain()`` performs the same graceful drain
    SIGTERM triggers, and the context-manager form guarantees cleanup.
    """

    def __init__(self, config: ServeConfig, pool_factory=None,
                 cache_factory=None) -> None:
        self.server = ReproServer(config, pool_factory=pool_factory,
                                  cache_factory=cache_factory)
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="serve-loop")

    def start(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._error is not None:
            raise self._error
        if not self._ready.is_set():
            raise RuntimeError("server did not start within 30s")
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as err:  # noqa: BLE001 - surfaced to start()
            self._error = err
            self._ready.set()

    async def _amain(self) -> None:
        try:
            await self.server.start()
        except BaseException as err:  # noqa: BLE001
            self._error = err
            self._ready.set()
            return
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await self.server.stopped.wait()

    @property
    def base_url(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def drain(self, timeout: float = 120.0) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.server.begin_drain)
            self._thread.join(timeout)
            if self._thread.is_alive():
                raise RuntimeError("server drain did not finish in time")

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.drain()


async def _serve_async(config: ServeConfig) -> int:
    server = ReproServer(config)
    await server.start()
    server.install_signal_handlers()
    print(f"serve: listening on http://{server.host}:{server.port} "
          f"(jobs={config.jobs} queue={config.queue_limit} "
          f"cache={config.cache_dir or 'off'})", file=sys.stderr, flush=True)
    await server.stopped.wait()
    return 0


def serve_main(config: ServeConfig) -> int:
    """Run the server until a drain completes; exits 0 on SIGTERM."""
    try:
        return asyncio.run(_serve_async(config))
    except KeyboardInterrupt:
        # signal handler not installable (e.g. non-main thread): still
        # exit cleanly rather than traceback
        return 0
