"""Minimal stdlib HTTP client for the simulation server.

Everything that talks to a running server — the chaos oracle, the load
bench, the CI smoke step, the tests — goes through this one wrapper so
the request/response conventions (JSON bodies, job-id handling,
long-poll waits) live in a single place.  It is deliberately thin:
``http.client`` over a keep-alive connection, no retries and no
cleverness, because the *server* is the component under test and a
smart client would mask its failures.  ``raw_request`` exists
precisely so drills can send malformed bytes the typed helpers refuse
to construct.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Optional

from repro.serve.jobs import ServeError

__all__ = ["ServeClient"]


class ServeClient:
    """A keep-alive JSON client bound to one ``host:port``."""

    def __init__(self, host: str, port: int, timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing ----------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def raw_request(self, method: str, path: str,
                    body: Optional[bytes] = None,
                    content_type: str = "application/json") -> tuple:
        """One request, raw bytes in, ``(status, headers, json_body)``
        out.  Retries once on a dropped keep-alive connection."""
        headers = {"Content-Type": content_type} if body is not None else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                resp = conn.getresponse()
                blob = resp.read()
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                if attempt:
                    raise
        try:
            payload = json.loads(blob.decode("utf-8")) if blob else None
        except (UnicodeDecodeError, json.JSONDecodeError):
            payload = {"error": f"non-JSON body: {blob[:200]!r}"}
        return resp.status, dict(resp.getheaders()), payload

    def _json(self, method: str, path: str, obj=None,
              ok: tuple = (200,)) -> dict:
        body = json.dumps(obj).encode() if obj is not None else None
        status, _headers, payload = self.raw_request(method, path, body)
        if status not in ok:
            message = payload.get("error", repr(payload)) \
                if isinstance(payload, dict) else repr(payload)
            raise ServeError(status, message)
        return payload

    # -- API ---------------------------------------------------------------

    def submit(self, spec_json: dict) -> dict:
        """POST one spec; returns its entry from the ``jobs`` array."""
        return self._json("POST", "/jobs", spec_json, ok=(202,))["jobs"][0]

    def submit_batch(self, specs: list, *, tenant: Optional[str] = None,
                     priority: Optional[int] = None,
                     deadline_s: Optional[float] = None,
                     ok: tuple = (202,)) -> dict:
        """POST a batch envelope; returns the full response payload.

        Pass ``ok=(202, 429)`` to observe admission rejections instead
        of raising on them.
        """
        envelope: dict = {"specs": specs}
        if tenant is not None:
            envelope["tenant"] = tenant
        if priority is not None:
            envelope["priority"] = priority
        if deadline_s is not None:
            envelope["deadline_s"] = deadline_s
        return self._json("POST", "/jobs", envelope, ok=ok)

    def job(self, job_id: str, wait: Optional[float] = None) -> dict:
        path = f"/jobs/{job_id}"
        if wait is not None:
            path += f"?wait={wait}"
        return self._json("GET", path)

    def wait_result(self, job_id: str, timeout: float = 120.0) -> dict:
        """Long-poll until the job is done; returns its result payload."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"job {job_id} not done within "
                                   f"{timeout}s")
            body = self.job(job_id, wait=min(remaining, 10.0))
            if body["state"] in ("done", "failed", "expired"):
                return body["result"]

    def healthz(self) -> dict:
        return self._json("GET", "/healthz")

    def stats(self) -> dict:
        return self._json("GET", "/stats")
