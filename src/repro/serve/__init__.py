"""Simulation-as-a-service: crash-tolerant HTTP access to the engine.

``python -m repro serve`` exposes the experiment engine as a
long-running job server: clients POST ExperimentSpec JSON, a bounded
per-tenant-fair queue admits it (or answers 429), an in-flight dedupe
plus the content-addressed result cache collapse duplicate work, and a
process pool executes batches under the same
:class:`~repro.harness.pool.PoolPolicy` fault budget every other grid
consumer uses.  Worker crashes, timeouts and deadlines degrade into
structured payloads; SIGTERM drains gracefully.  The layer's oracle is
``repro chaos --layer serve`` (:mod:`repro.faults.chaos_serve`).

Layout: :mod:`~repro.serve.jobs` (validation, payloads, the queue),
:mod:`~repro.serve.dedupe` (in-flight collapse),
:mod:`~repro.serve.server` (the asyncio server and CLI entry),
:mod:`~repro.serve.client` (the stdlib client the drills use).
See docs/SERVE.md.
"""

from repro.serve.client import ServeClient
from repro.serve.dedupe import InFlightDedupe
from repro.serve.jobs import (
    Job,
    JobQueue,
    ServeError,
    outcome_payload,
    spec_from_json,
)
from repro.serve.server import (
    ReproServer,
    ServeConfig,
    ServerThread,
    ServeStats,
    serve_main,
)

__all__ = [
    "InFlightDedupe",
    "Job",
    "JobQueue",
    "ReproServer",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeStats",
    "ServerThread",
    "outcome_payload",
    "serve_main",
    "spec_from_json",
]
