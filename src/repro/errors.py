"""Exception hierarchy for the Tarantula reproduction.

Every error raised by the library derives from :class:`ReproError`, so
downstream users can catch one type.  The architectural trap types mirror
the paper's precise-exception model (section 2): a faulting vector
instruction reports its PC but not the faulting element.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A machine configuration is inconsistent or out of range."""


class AssemblerError(ReproError):
    """Source text could not be assembled into a program."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class ProgramError(ReproError):
    """A program object is malformed (bad operands, undefined labels...)."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""


class ArchitecturalTrap(ReproError):
    """Base class for precise architectural traps.

    Per the paper (section 2), Tarantula reports the PC of the faulting
    instruction but gives no information about which vector element
    faulted.  ``pc`` is the instruction index within the running program.
    """

    def __init__(self, message: str, pc: int | None = None):
        self.pc = pc
        if pc is not None:
            message = f"pc={pc}: {message}"
        super().__init__(message)

    def attribute(self, pc: int) -> "ArchitecturalTrap":
        """Attach the faulting instruction index to an in-flight trap.

        Deep raise sites (memory, page table, TLB) do not know the
        program counter; the simulators catch the trap at the step
        boundary and attribute it before re-raising, so every trap that
        escapes a run carries its precise PC (section 2's contract).
        Attribution is idempotent: an already-attributed trap keeps its
        original PC.
        """
        if self.pc is None:
            self.pc = pc
            message = self.args[0] if self.args else ""
            self.args = (f"pc={pc}: {message}",)
        return self


class TLBMissTrap(ArchitecturalTrap):
    """A vector memory instruction touched an unmapped page.

    Raised only when PALcode-style refill is disabled; normally the
    simulator services the miss transparently (section 3.4).
    """


class AlignmentTrap(ArchitecturalTrap):
    """A quadword access was not 8-byte aligned."""


class InvalidAddressTrap(ArchitecturalTrap):
    """An access fell outside the simulated physical address space."""


class ArithmeticTrap(ArchitecturalTrap):
    """Integer divide-by-zero or similar faults inside a vector op."""


class MachineCheckTrap(ArchitecturalTrap):
    """An access touched a poisoned cache line.

    Raised by the fault-injection subsystem (docs/FAULTS.md): poisoned
    lines model uncorrectable data errors; precise-trap recovery scrubs
    the line and restarts the faulting instruction.
    """
