"""SpecFP2000 surrogates: swim, art, sixtrack (Table 2, "SpecFP2000").

The SPEC reference inputs are proprietary, so these are *surrogates*
(DESIGN.md substitution 2): kernels with the same loop structure,
operation mix and access patterns as the benchmarks' documented hot
loops, at simulator-friendly sizes.

* ``swim`` — shallow-water model: 5-point finite-difference stencils
  over three coupled 2-D fields.  Comes in a *tiled* variant (the three
  field updates fused per row band, following Song & Li [17], as the
  paper's version was) and an *untiled* variant (three separate
  full-grid sweeps) for the section-6 ablation ("the non-tiled version
  was almost 2X slower").  The +-1-column stencil terms make misaligned
  stride-1 accesses (the 17-line pump case) a steady diet here.
* ``art`` — neural-network image recognition: the F1 layer is a
  weights-matrix times input-vector product with per-neuron sum
  reductions, followed by a winner-take-all scan and a weight update of
  the winning row.
* ``sixtrack`` — high-energy physics particle tracking: a 4-D symplectic
  map (rotation + sextupole kick) applied per particle per turn, with
  per-turn scalar bookkeeping — the least vectorizable of the suite
  (Table 2: 93.7%).
"""

from __future__ import annotations

import math

import numpy as np

from repro.isa.builder import KernelBuilder
from repro.scalar.loopmodel import AccessPattern, MemStream, ScalarLoopBody
from repro.workloads.base import Arena, Workload, WorkloadInstance

SWIM_NX = 512           # columns at scale=1.0 (multiple of 128)
SWIM_NY = 64            # rows at scale=1.0
SWIM_C1, SWIM_C2 = 0.12, 0.08

ART_F1 = 512            # input dimension (vectorized)
ART_F2 = 48             # output neurons
ART_LR = 0.05

SIX_PARTICLES = 2048
SIX_TURNS = 8
SIX_K2 = 0.002


class SwimSurrogate(Workload):
    name = "swim"
    description = "Shallow Water Model surrogate (5-point stencils)"
    category = "SpecFP2000"
    inputs = "Reference (surrogate grid)"
    comments = "Tiled following Song & Li"
    uses_prefetch = True
    uses_drainm = False
    paper_vectorization_pct = 99.5
    surrogate = True

    def __init__(self, tiled: bool = True) -> None:
        self.tiled = tiled
        if not tiled:
            self.name = "swim.untiled"
            self.comments = "Naive non-tiled variant (section 6 ablation)"

    def build(self, scale: float = 1.0) -> WorkloadInstance:
        nx = max(int(SWIM_NX * math.sqrt(scale)) // 128 * 128, 256)
        ny = max(int(SWIM_NY * math.sqrt(scale)), 8)
        rng = np.random.default_rng(0x5117)
        u0 = rng.standard_normal((ny, nx))
        v0 = rng.standard_normal((ny, nx))
        p0 = rng.standard_normal((ny, nx))

        arena = Arena()
        addr = {name: arena.alloc_f64(name, ny * nx)
                for name in ("u", "v", "p", "un", "vn", "pn")}
        row = nx * 8

        def at(i: int, j: int) -> int:
            return i * row + j * 8

        # numpy reference over the interior block region
        un, vn, pn = np.zeros_like(u0), np.zeros_like(v0), np.zeros_like(p0)
        i_range = range(1, ny - 1)
        # one-element column halo; blocks start misaligned (j=8) on
        # purpose so the 17-line pump case is exercised constantly
        j_lo = 8
        j_hi = j_lo + 128 * ((nx - 2 * j_lo) // 128)
        s = np.s_[1:ny - 1, j_lo:j_hi]

        def sten(f):
            return (f[1:ny - 1, j_lo - 1:j_hi - 1] -
                    f[1:ny - 1, j_lo + 1:j_hi + 1])

        def vert(f):
            return (f[0:ny - 2, j_lo:j_hi] + f[2:ny, j_lo:j_hi] -
                    2.0 * f[1:ny - 1, j_lo:j_hi])

        un[s] = u0[s] + SWIM_C1 * sten(p0) + SWIM_C2 * vert(v0)
        vn[s] = v0[s] + SWIM_C1 * sten(u0) + SWIM_C2 * vert(p0)
        pn[s] = p0[s] + SWIM_C1 * sten(v0) + SWIM_C2 * vert(u0)

        kb = KernelBuilder(self.name)
        regs = {"u": 1, "v": 2, "p": 3, "un": 4, "vn": 5, "pn": 6}
        for name, reg in regs.items():
            kb.lda(reg, addr[name])
        kb.setvl(128)
        kb.setvs(8)
        flops = 0

        def emit_update(dst: str, src: str, lateral: str, vertical: str,
                        i: int, j: int) -> None:
            nonlocal flops
            kb.vloadq(10, rb=regs[src], disp=at(i, j))
            kb.vloadq(11, rb=regs[lateral], disp=at(i, j - 1))
            kb.vloadq(12, rb=regs[lateral], disp=at(i, j + 1))
            kb.vvsubt(13, 11, 12)
            kb.vsmult(13, 13, imm=SWIM_C1)
            kb.vloadq(14, rb=regs[vertical], disp=at(i - 1, j))
            kb.vloadq(15, rb=regs[vertical], disp=at(i + 1, j))
            kb.vvaddt(16, 14, 15)
            kb.vloadq(17, rb=regs[vertical], disp=at(i, j))
            kb.vsmult(17, 17, imm=-2.0)
            kb.vvaddt(16, 16, 17)
            kb.vsmult(16, 16, imm=SWIM_C2)
            kb.vvaddt(18, 10, 13)
            kb.vvaddt(18, 18, 16)
            kb.vstoreq(18, rb=regs[dst], disp=at(i, j))
            flops += 8 * 128

        updates = [("un", "u", "p", "v"), ("vn", "v", "u", "p"),
                   ("pn", "p", "v", "u")]
        j_blocks = range(j_lo, j_hi, 128)
        if self.tiled:
            # fused: all three fields per (row, block) — one pass of reuse
            for i in i_range:
                for j in j_blocks:
                    for dst, src, lat, vrt in updates:
                        emit_update(dst, src, lat, vrt, i, j)
        else:
            # naive: three separate whole-grid sweeps
            for dst, src, lat, vrt in updates:
                for i in i_range:
                    for j in j_blocks:
                        emit_update(dst, src, lat, vrt, i, j)

        def setup(mem):
            mem.write_f64(addr["u"], u0.ravel())
            mem.write_f64(addr["v"], v0.ravel())
            mem.write_f64(addr["p"], p0.ravel())

        def check(mem):
            for name, ref in (("un", un), ("vn", vn), ("pn", pn)):
                got = mem.read_f64(addr[name], ny * nx).reshape(ny, nx)
                np.testing.assert_allclose(got[s], ref[s], rtol=1e-10)

        # paper regime: the reference swim grid (1335^2 doubles x many
        # fields) streams from memory on every machine
        grid_bytes = ny * nx * 8
        paper_grids = 14 * 1335 * 1335 * 8
        read_factor = 6.0 if self.tiled else 6.0 * 3  # reuse lost untiled
        loop = ScalarLoopBody(
            name=self.name, flops=24.0, int_ops=6.0, loads=18.0, stores=3.0,
            streams=[MemStream("grids",
                               read_bytes_per_iter=read_factor * 8,
                               write_bytes_per_iter=3 * 8.0,
                               footprint_bytes=paper_grids)],
            iterations=(ny - 2) * (j_hi - j_lo))

        return WorkloadInstance(
            name=self.name, program=kb.build(), scalar_loop=loop,
            setup=setup, check=check,
            workload_bytes=6 * grid_bytes,
            flops_expected=flops,
            buffers=arena.declare_buffers())


class ArtSurrogate(Workload):
    name = "art"
    description = "Image Recognition / Neural Networks surrogate (F1 layer)"
    category = "SpecFP2000"
    inputs = "Reference (surrogate network)"
    uses_prefetch = False
    paper_vectorization_pct = 99.9
    surrogate = True

    def build(self, scale: float = 1.0) -> WorkloadInstance:
        f1 = max(int(ART_F1 * scale) // 128 * 128, 128)
        f2 = ART_F2
        rng = np.random.default_rng(0xA27)
        w0 = rng.standard_normal((f2, f1))
        x0 = rng.standard_normal(f1)
        y_ref = w0 @ x0
        winner = int(np.argmax(y_ref))
        w_expected = w0.copy()
        w_expected[winner] += ART_LR * x0

        arena = Arena()
        w_addr = arena.alloc_f64("W", f2 * f1)
        x_addr = arena.alloc_f64("x", f1)
        y_addr = arena.alloc_f64("y", f2)
        row = f1 * 8

        kb = KernelBuilder(self.name)
        kb.lda(1, w_addr)
        kb.lda(2, x_addr)
        kb.lda(3, y_addr)
        kb.setvl(128)
        kb.setvs(8)
        flops = 0
        # register-tiled over 4 neurons: the x block is loaded once and
        # reused by four weight rows (more registers -> more reuse)
        for j0 in range(0, f2, 4):
            rows_here = min(4, f2 - j0)
            for r in range(rows_here):
                kb.vvxor(10 + r, 10 + r, 10 + r)
            for blk in range(f1 // 128):
                off = blk * 128 * 8
                kb.vloadq(5, rb=2, disp=off)               # x block
                for r in range(rows_here):
                    kb.vloadq(4, rb=1, disp=(j0 + r) * row + off)
                    kb.vvmult(6, 4, 5)
                    kb.vvaddt(10 + r, 10 + r, 6)
                    flops += 2 * 128
            for r in range(rows_here):
                kb.vsumt(20, 10 + r)   # y[j], reduce tree
                flops += 128
                kb.stq(20, rb=3, disp=(j0 + r) * 8)
        # winner-take-all scan (scalar, f2 is small) ... the winner's row
        # update is emitted for the reference winner; the scalar compare
        # loop is modeled as ldq ops
        for j in range(f2):
            kb.ldq(12, rb=3, disp=j * 8)
        for blk in range(f1 // 128):
            off = blk * 128 * 8
            kb.vloadq(4, rb=2, disp=off)
            kb.vsmult(4, 4, imm=ART_LR)
            kb.vloadq(5, rb=1, disp=winner * row + off)
            kb.vvaddt(5, 5, 4)
            kb.vstoreq(5, rb=1, disp=winner * row + off)
            flops += 2 * 128

        def setup(mem):
            mem.write_f64(w_addr, w0.ravel())
            mem.write_f64(x_addr, x0)

        def check(mem):
            y_got = mem.read_f64(y_addr, f2)
            np.testing.assert_allclose(y_got, y_ref, rtol=1e-9)
            w_got = mem.read_f64(w_addr, f2 * f1).reshape(f2, f1)
            np.testing.assert_allclose(w_got, w_expected, rtol=1e-9)

        loop = ScalarLoopBody(
            name=self.name, flops=2.0, int_ops=2.0, loads=2.0, stores=1.0 / f1,
            streams=[
                MemStream("W", read_bytes_per_iter=8.0,
                          footprint_bytes=f2 * f1 * 8),
                MemStream("x", read_bytes_per_iter=8.0,
                          footprint_bytes=f1 * 8,
                          pattern=AccessPattern.RESIDENT),
            ],
            iterations=f2 * f1)

        return WorkloadInstance(
            name=self.name, program=kb.build(), scalar_loop=loop,
            setup=setup, check=check,
            workload_bytes=(f2 * f1 + f1 + f2) * 8,
            # the network is small and re-walked every training pass
            warm_ranges=[(x_addr, f1 * 8), (w_addr, f2 * f1 * 8)],
            flops_expected=flops,
            buffers=arena.declare_buffers())


class SixtrackSurrogate(Workload):
    name = "sixtrack"
    description = "High Energy Nuclear Physics surrogate (particle tracking)"
    category = "SpecFP2000"
    inputs = "Reference (surrogate lattice)"
    uses_prefetch = False
    paper_vectorization_pct = 93.7
    surrogate = True

    def build(self, scale: float = 1.0) -> WorkloadInstance:
        n = max(int(SIX_PARTICLES * scale) // 128 * 128, 128)
        turns = SIX_TURNS
        rng = np.random.default_rng(0x517)
        cos_a, sin_a = math.cos(0.31), math.sin(0.31)
        state0 = {k: rng.standard_normal(n) * 0.01
                  for k in ("x", "px", "y", "py")}

        # numpy reference: rotation + sextupole kick per turn
        ref = {k: v.copy() for k, v in state0.items()}
        for _ in range(turns):
            x, px = ref["x"], ref["px"]
            y, py = ref["y"], ref["py"]
            xr = cos_a * x + sin_a * px
            pxr = -sin_a * x + cos_a * px
            yr = cos_a * y + sin_a * py
            pyr = -sin_a * y + cos_a * py
            pxr = pxr + SIX_K2 * (xr * xr - yr * yr)
            pyr = pyr - 2.0 * SIX_K2 * xr * yr
            ref["x"], ref["px"], ref["y"], ref["py"] = xr, pxr, yr, pyr

        arena = Arena()
        addr = {k: arena.alloc_f64(k, n) for k in ("x", "px", "y", "py")}
        scratch = arena.alloc_f64("scratch", 8)
        regs = {"x": 1, "px": 2, "y": 3, "py": 4}

        kb = KernelBuilder(self.name)
        for k, reg in regs.items():
            kb.lda(reg, addr[k])
        kb.lda(5, scratch)
        kb.setvl(128)
        kb.setvs(8)
        flops = 0
        for turn in range(turns):
            # per-turn scalar bookkeeping (closed-orbit accounting): this
            # is what keeps sixtrack the least-vectorized of the suite
            for b in range(6):
                kb.ldq(10, rb=5, disp=(b % 8) * 8)
                kb.addq(10, 10, imm=1)
                kb.stq(10, rb=5, disp=(b % 8) * 8)
            for blk in range(n // 128):
                off = blk * 128 * 8
                kb.vloadq(10, rb=1, disp=off)   # x
                kb.vloadq(11, rb=2, disp=off)   # px
                kb.vloadq(12, rb=3, disp=off)   # y
                kb.vloadq(13, rb=4, disp=off)   # py
                # rotation
                kb.vsmult(14, 10, imm=cos_a)
                kb.vsmult(15, 11, imm=sin_a)
                kb.vvaddt(14, 14, 15)           # xr
                kb.vsmult(16, 10, imm=-sin_a)
                kb.vsmult(17, 11, imm=cos_a)
                kb.vvaddt(16, 16, 17)           # pxr
                kb.vsmult(18, 12, imm=cos_a)
                kb.vsmult(19, 13, imm=sin_a)
                kb.vvaddt(18, 18, 19)           # yr
                kb.vsmult(20, 12, imm=-sin_a)
                kb.vsmult(21, 13, imm=cos_a)
                kb.vvaddt(20, 20, 21)           # pyr
                # sextupole kick
                kb.vvmult(22, 14, 14)           # xr^2
                kb.vvmult(23, 18, 18)           # yr^2
                kb.vvsubt(22, 22, 23)
                kb.vsmult(22, 22, imm=SIX_K2)
                kb.vvaddt(16, 16, 22)           # pxr += k2*(xr^2-yr^2)
                kb.vvmult(24, 14, 18)           # xr*yr
                kb.vsmult(24, 24, imm=-2.0 * SIX_K2)
                kb.vvaddt(20, 20, 24)           # pyr -= 2k2*xr*yr
                kb.vstoreq(14, rb=1, disp=off)
                kb.vstoreq(16, rb=2, disp=off)
                kb.vstoreq(18, rb=3, disp=off)
                kb.vstoreq(20, rb=4, disp=off)
                flops += 20 * 128

        def setup(mem):
            for k in regs:
                mem.write_f64(addr[k], state0[k])

        def check(mem):
            for k in regs:
                got = mem.read_f64(addr[k], n)
                np.testing.assert_allclose(got, ref[k], rtol=1e-9,
                                           err_msg=f"array {k}")

        loop = ScalarLoopBody(
            name=self.name, flops=20.0, int_ops=6.0, loads=4.0, stores=4.0,
            streams=[MemStream("particles", read_bytes_per_iter=32.0,
                               write_bytes_per_iter=32.0,
                               footprint_bytes=4 * n * 8,
                               pattern=AccessPattern.RESIDENT)],
            iterations=n * turns)

        return WorkloadInstance(
            name=self.name, program=kb.build(), scalar_loop=loop,
            setup=setup, check=check,
            workload_bytes=8 * n * 8 * turns,
            warm_ranges=[(addr[k], n * 8) for k in regs],
            flops_expected=flops,
            buffers=arena.declare_buffers())
