"""LU decomposition and the two Linpack variants (Table 2, "Algebra").

All three kernels factor a dense column-major matrix in place with
right-looking Gaussian elimination (no pivoting; inputs are made
diagonally dominant, which is how vector-machine kernels were typically
benchmarked).  The differences mirror the paper's:

* ``lu`` — register-tiled: the pivot-column chunk is loaded once and
  reused across a 4-column update strip ("we performed register tiling
  for LU ... thus reducing LU's memory demands", section 6);
* ``linpacktpp`` — same elimination, *no* register tiling: the pivot
  column is reloaded for every updated column, so it sustains more
  memory operations per cycle for the same arithmetic (the paper's
  LinpackTPP-vs-LU contrast);
* ``linpack100`` — a fixed 100x100 problem, "no code reorganization":
  vector lengths never exceed 99 and shrink as elimination proceeds, the
  paper's demonstration of short-vector overheads.

Because the trailing-submatrix height shrinks with ``k``, these kernels
exercise ``setvl``-driven partial vectors heavily.
"""

from __future__ import annotations

import numpy as np

from repro.isa.builder import KernelBuilder
from repro.scalar.loopmodel import AccessPattern, MemStream, ScalarLoopBody
from repro.workloads.base import Arena, Workload, WorkloadInstance

BASE_N = 96       # matrix dimension at scale=1.0 (paper: 519x603 / 1000)
SEED = 0x1DF


def _lu_reference(a: np.ndarray) -> np.ndarray:
    """Right-looking LU without pivoting, in place, numpy per step."""
    a = a.copy()
    n = a.shape[0]
    for k in range(n - 1):
        a[k + 1:, k] /= a[k, k]
        a[k + 1:, k + 1:] -= np.outer(a[k + 1:, k], a[k, k + 1:])
    return a


def _build_lu(name: str, n: int, column_tile: int) -> WorkloadInstance:
    rng = np.random.default_rng(SEED)
    a0 = rng.standard_normal((n, n)) + n * np.eye(n)
    expected = _lu_reference(a0)

    arena = Arena()
    # column-major so column operations are unit-stride
    a_addr = arena.alloc_f64("A", n * n)
    ones_addr = arena.alloc_f64("ones", 128)
    col_bytes = n * 8

    def elem(row: int, col: int) -> int:
        return col * col_bytes + row * 8

    kb = KernelBuilder(name)
    kb.lda(1, a_addr)
    kb.lda(9, ones_addr)
    kb.setvs(8)
    kb.setvl(128)
    kb.vloadq(1, rb=9)                    # v1 = all-ones constant
    flops = 0
    for k in range(n - 1):
        below = n - k - 1
        # reciprocal of the pivot, broadcast: v3 = ones / A[k,k]
        kb.ldq(10, rb=1, disp=elem(k, k))
        kb.vsdivt(3, 1, ra=10)
        flops += 128
        # scale the pivot column: A[k+1:, k] *= 1/akk
        for c0 in range(0, below, 128):
            vl = min(128, below - c0)
            kb.setvl(vl)
            disp = elem(k + 1 + c0, k)
            kb.vloadq(4, rb=1, disp=disp)
            kb.vvmult(4, 4, 3)
            kb.vstoreq(4, rb=1, disp=disp)
            flops += vl
        # trailing update: A[k+1:, j] -= A[k, j] * A[k+1:, k]
        for j0 in range(k + 1, n, column_tile):
            jcols = range(j0, min(j0 + column_tile, n))
            for c0 in range(0, below, 128):
                vl = min(128, below - c0)
                kb.setvl(vl)
                # pivot-column chunk loaded once per (tile, chunk)
                kb.vloadq(4, rb=1, disp=elem(k + 1 + c0, k))
                for j in jcols:
                    kb.ldq(10, rb=1, disp=elem(k, j))     # A[k, j]
                    disp = elem(k + 1 + c0, j)
                    kb.vloadq(5, rb=1, disp=disp)
                    kb.vsmult(6, 4, ra=10)
                    kb.vvsubt(5, 5, 6)
                    kb.vstoreq(5, rb=1, disp=disp)
                    flops += 2 * vl
        kb.setvl(128)

    def setup(mem):
        mem.write_f64(a_addr, a0.ravel(order="F"))
        mem.write_f64(ones_addr, np.ones(128))

    def check(mem):
        got = mem.read_f64(a_addr, n * n).reshape(n, n, order="F")
        np.testing.assert_allclose(got, expected, rtol=1e-9)

    # scalar loop: the trailing update dominates (2 flops per element)
    loop = ScalarLoopBody(
        name=name, flops=2.0, int_ops=3.0,
        loads=2.0 if column_tile == 1 else 1.0 + 1.0 / column_tile,
        stores=1.0,
        streams=[MemStream("A", read_bytes_per_iter=16.0,
                           write_bytes_per_iter=8.0,
                           footprint_bytes=n * n * 8,
                           pattern=AccessPattern.RESIDENT)],
        iterations=int(n * (n - 1) * (2 * n - 1) / 6))

    return WorkloadInstance(
        name=name, program=kb.build(), scalar_loop=loop,
        setup=setup, check=check,
        workload_bytes=3 * n * n * 8,
        warm_ranges=[(a_addr, n * n * 8)],
        flops_expected=flops,
        buffers=arena.declare_buffers())


class LU(Workload):
    name = "lu"
    description = "Lower-Upper matrix decomposition (register-tiled)"
    category = "Algebra"
    inputs = "519x603 (scaled)"
    comments = "Tiled Version"
    uses_prefetch = True
    paper_vectorization_pct = 98.6

    def build(self, scale: float = 1.0) -> WorkloadInstance:
        n = max(int(BASE_N * scale ** (1 / 3)), 24)
        return _build_lu(self.name, n, column_tile=4)


class Linpack100(Workload):
    name = "linpack100"
    description = "Dense linear equation solver, 100x100, untiled"
    category = "Algebra"
    inputs = "100x100"
    comments = "No code reorganization"
    uses_prefetch = False
    paper_vectorization_pct = 85.5

    def build(self, scale: float = 1.0) -> WorkloadInstance:
        # the defining property is the FIXED small size (short vectors)
        return _build_lu(self.name, 100, column_tile=1)


class LinpackTPP(Workload):
    name = "linpacktpp"
    description = "Dense linear equation solver, TPP rules (tiled data, "\
                  "no register tiling)"
    category = "Algebra"
    inputs = "1000x1000 (scaled)"
    comments = "Tiled"
    uses_prefetch = True
    paper_vectorization_pct = 96.5

    def build(self, scale: float = 1.0) -> WorkloadInstance:
        n = max(int(1.5 * BASE_N * scale ** (1 / 3)), 32)
        return _build_lu(self.name, n, column_tile=1)
