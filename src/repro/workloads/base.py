"""Workload framework.

Each Table 2 benchmark is a :class:`Workload` that can instantiate
itself at any problem scale into a :class:`WorkloadInstance` holding:

* the **hand-vectorized Tarantula program** (built with
  :class:`~repro.isa.builder.KernelBuilder`, mirroring the paper's
  hand-coded assembly);
* the **scalar loop descriptor** for the EV8/EV8+ baseline model;
* ``setup``/``check`` callbacks — the instance initializes main memory
  and verifies the kernel's output against a numpy reference, so every
  benchmark run is also a correctness test;
* accounting metadata (bytes the STREAMS method would count, regions to
  pre-warm into the L2, Table 2 attributes).

Problem sizes: the paper's reference inputs are impractical for a pure
Python cycle model (and the SpecFP inputs are proprietary), so every
workload exposes ``scale`` — tests run tiny instances, the benchmark
harness runs instances big enough to reach each kernel's regime
(L2-resident or memory-resident); EXPERIMENTS.md records the sizes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ConfigError
from repro.isa.program import Program
from repro.mem.memory import MainMemory
from repro.scalar.loopmodel import ScalarLoopBody

#: STREAMS-style inter-array padding (Table 2: "Padding=65856 bytes")
STREAMS_PADDING = 65856


class Arena:
    """Sequential address-space allocator for workload arrays."""

    def __init__(self, base: int = 0x10_0000,
                 padding: int = STREAMS_PADDING) -> None:
        self._cursor = base
        self.padding = padding
        self.regions: dict[str, tuple[int, int]] = {}

    def alloc(self, name: str, nbytes: int, align: int = 64) -> int:
        """Reserve ``nbytes`` (aligned); returns the base address."""
        if name in self.regions:
            raise ConfigError(f"arena region {name!r} already allocated")
        self._cursor = (self._cursor + align - 1) & ~(align - 1)
        base = self._cursor
        self._cursor += nbytes + self.padding
        self.regions[name] = (base, nbytes)
        return base

    def alloc_f64(self, name: str, count: int) -> int:
        return self.alloc(name, count * 8)

    def region(self, name: str) -> tuple[int, int]:
        return self.regions[name]

    def declare_buffers(self) -> dict[str, tuple[int, int]]:
        """Snapshot of every allocated region, ``name -> (base, nbytes)``.

        Workloads pass this as ``WorkloadInstance.buffers`` so the vmem
        analyzer (:mod:`repro.analysis.vmem`) can bounds-check every
        statically-resolvable footprint against the arrays the kernel
        is actually entitled to touch.  Call it after the last
        ``alloc`` — it is a copy, not a live view.
        """
        return dict(self.regions)


@dataclass
class WorkloadInstance:
    """One concrete, runnable problem instance."""

    name: str
    program: Program
    scalar_loop: ScalarLoopBody
    setup: Callable[[MainMemory], None]
    check: Callable[[MainMemory], None]
    #: bytes the STREAMS accounting counts as useful traffic
    workload_bytes: int = 0
    #: (base, nbytes) ranges to preload into the L2 ("prefetched into L2")
    warm_ranges: list[tuple[int, int]] = field(default_factory=list)
    #: override for the modeled L2 capacity: scaled-down instances set
    #: this to preserve the paper's footprint/L2 ratio (DESIGN.md
    #: substitution 6); None keeps the machine's configured L2
    l2_bytes_hint: Optional[int] = None
    flops_expected: int = 0
    notes: str = ""
    #: declared array extents (``name -> (base, nbytes)``) for the vmem
    #: bounds check; usually ``arena.declare_buffers()``.  Empty means
    #: "no declaration": the analyzer skips bounds checking.
    buffers: dict[str, tuple[int, int]] = field(default_factory=dict)


class Workload(abc.ABC):
    """A Table 2 benchmark: metadata + instance factory."""

    #: Table 2 columns
    name: str = ""
    description: str = ""
    inputs: str = ""
    category: str = ""
    comments: str = ""
    uses_prefetch: bool = False
    uses_drainm: bool = False
    #: the paper's measured dynamic vectorization percentage
    paper_vectorization_pct: Optional[float] = None
    #: True when the kernel is a surrogate for a proprietary benchmark
    surrogate: bool = False

    #: scale=1.0 problem size used by the benchmark harness
    default_scale: float = 1.0

    @abc.abstractmethod
    def build(self, scale: float = 1.0) -> WorkloadInstance:
        """Create a runnable instance at the given problem scale."""

    def build_small(self) -> WorkloadInstance:
        """A test-sized instance (fast enough for the unit-test suite)."""
        return self.build(scale=0.05)

    def __repr__(self) -> str:
        return f"<Workload {self.name}>"


def run_functional(instance: WorkloadInstance) -> "OperationCounts":
    """Execute an instance on the functional simulator and verify it.

    Returns the dynamic operation counts.  Raises AssertionError when
    the kernel's output does not match the numpy reference.
    """
    from repro.core.functional import FunctionalSimulator

    sim = FunctionalSimulator()
    instance.setup(sim.memory)
    counts = sim.run(instance.program)
    instance.check(sim.memory)
    return counts
