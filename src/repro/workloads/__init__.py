"""The Table 2 benchmark suite: hand-vectorized kernels + scalar models."""

from repro.workloads.base import (
    Arena,
    STREAMS_PADDING,
    Workload,
    WorkloadInstance,
    run_functional,
)
from repro.workloads.registry import FIGURE_SUITE, REGISTRY, TABLE4_SUITE, get

__all__ = [
    "Arena",
    "FIGURE_SUITE",
    "REGISTRY",
    "STREAMS_PADDING",
    "TABLE4_SUITE",
    "Workload",
    "WorkloadInstance",
    "get",
    "run_functional",
]
