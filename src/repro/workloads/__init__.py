"""The benchmark suites: hand-vectorized kernels + scalar models.

Workloads register by name in :data:`REGISTRY`; named collections of
them (:class:`Suite`) and machine families (:class:`InstanceFamily`)
live in :mod:`repro.workloads.suite` and expand into engine spec grids
via :class:`Matrix` — see docs/WORKLOADS.md.
"""

from repro.workloads.base import (
    Arena,
    STREAMS_PADDING,
    Workload,
    WorkloadInstance,
    run_functional,
)
from repro.workloads.registry import (
    FIGURE_SUITE,
    REGISTRY,
    RIVEC_SUITE,
    TABLE4_SUITE,
    TARANTULA_SUITE,
    get,
)
from repro.workloads.suite import (
    FAMILIES,
    SUITES,
    Instance,
    InstanceFamily,
    Matrix,
    Suite,
    get_family,
    get_suite,
    list_families,
    list_suites,
    register_family,
    register_suite,
)

__all__ = [
    "Arena",
    "FAMILIES",
    "FIGURE_SUITE",
    "Instance",
    "InstanceFamily",
    "Matrix",
    "REGISTRY",
    "RIVEC_SUITE",
    "STREAMS_PADDING",
    "SUITES",
    "Suite",
    "TABLE4_SUITE",
    "TARANTULA_SUITE",
    "Workload",
    "WorkloadInstance",
    "get",
    "get_family",
    "get_suite",
    "list_families",
    "list_suites",
    "register_family",
    "register_suite",
    "run_functional",
]
