"""Dense linear algebra: dgemm and dtrmm (Table 2, "Algebra").

Both kernels are hand-vectorized along matrix rows (unit stride) with
register tiling over a 4-row strip: one vector load of a ``B`` block is
reused by four multiply-accumulate pairs — exactly the "many more
registers available, which turns into more data reuse" effect section 6
credits for super-8x speedups.

Matrices are row-major with the vectorized dimension padded to a
multiple of 128.
"""

from __future__ import annotations

import numpy as np

from repro.isa.builder import KernelBuilder
from repro.scalar.loopmodel import AccessPattern, MemStream, ScalarLoopBody
from repro.workloads.base import Arena, Workload, WorkloadInstance

ROW_TILE = 4  # register-tiled rows per strip


def _dims(scale: float, base: int = 128) -> tuple[int, int]:
    """(M=K, N) matrix dimensions for a given scale (flops ~ scale)."""
    s = max(scale, 1e-3) ** (1.0 / 3.0)
    mk = max(int(base * s) // ROW_TILE * ROW_TILE, 2 * ROW_TILE)
    n = max(int(base * s) // 128 * 128, 128)
    return mk, n


class DGEMM(Workload):
    name = "dgemm"
    description = "Dense, tiled, matrix multiply: C += A @ B"
    category = "Algebra"
    inputs = "640x640 (scaled)"
    comments = "Dense, Tiled"
    uses_prefetch = True
    paper_vectorization_pct = 99.0

    def build(self, scale: float = 1.0) -> WorkloadInstance:
        mk, n = _dims(scale)
        return _build_matmul(self.name, mk, n, triangular=False)


class DTRMM(Workload):
    name = "dtrmm"
    description = "Triangular matrix multiply: C += tril(A) @ B"
    category = "Algebra"
    inputs = "519x603 (scaled)"
    comments = ""
    uses_prefetch = True
    paper_vectorization_pct = 98.9

    def build(self, scale: float = 1.0) -> WorkloadInstance:
        mk, n = _dims(scale)
        return _build_matmul(self.name, mk, n, triangular=True)


def _build_matmul(name: str, mk: int, n: int,
                  triangular: bool) -> WorkloadInstance:
    rng = np.random.default_rng(0xD6E3)
    a0 = rng.standard_normal((mk, mk))
    if triangular:
        a0 = np.tril(a0)
    b0 = rng.standard_normal((mk, n))
    c0 = rng.standard_normal((mk, n))

    arena = Arena()
    a_addr = arena.alloc_f64("A", mk * mk)
    b_addr = arena.alloc_f64("B", mk * n)
    c_addr = arena.alloc_f64("C", mk * n)

    row_bytes = n * 8
    kb = KernelBuilder(name)
    kb.lda(1, a_addr)
    kb.lda(2, b_addr)
    kb.lda(3, c_addr)
    kb.setvl(128)
    kb.setvs(8)

    def k_limit(i: int) -> int:
        return (i + 1) if triangular else mk

    flops = 0
    for i0 in range(0, mk, ROW_TILE):
        rows = min(ROW_TILE, mk - i0)
        for jb in range(n // 128):
            joff = jb * 128 * 8
            # load the C accumulators for this strip
            for r in range(rows):
                kb.vloadq(10 + r, rb=3, disp=(i0 + r) * row_bytes + joff)
            kmax = max(k_limit(i0 + r) for r in range(rows))
            for k in range(kmax):
                kb.vloadq(1, rb=2, disp=k * row_bytes + joff)  # B[k, jb]
                for r in range(rows):
                    if k >= k_limit(i0 + r):
                        continue
                    i = i0 + r
                    kb.ldq(20 + r, rb=1, disp=(i * mk + k) * 8)  # a(i,k)
                    kb.vsmult(2, 1, ra=20 + r)
                    kb.vvaddt(10 + r, 10 + r, 2)
                    flops += 2 * 128
            for r in range(rows):
                kb.vstoreq(10 + r, rb=3, disp=(i0 + r) * row_bytes + joff)

    expected = c0 + a0 @ b0

    def setup(mem):
        mem.write_f64(a_addr, a0.ravel())
        mem.write_f64(b_addr, b0.ravel())
        mem.write_f64(c_addr, c0.ravel())

    def check(mem):
        got = mem.read_f64(c_addr, mk * n).reshape(mk, n)
        np.testing.assert_allclose(got, expected, rtol=1e-10)

    # paper regime: 640x640 matrices (3.3 MB), cache-blocked -> the
    # scalar baseline is flop-bound, not memory-bound; accumulator
    # chains unroll into partial sums, so no recurrence
    paper_mat = 640 * 640 * 8
    k_avg = (mk + 1) / 2 if triangular else mk
    loop = ScalarLoopBody(
        name=name,
        # register-blocked scalar gemm: ~1 load per multiply-add pair
        flops=2.0, int_ops=1.5, loads=1.125, stores=1.0 / max(k_avg, 1),
        streams=[
            MemStream("B", read_bytes_per_iter=8.0, footprint_bytes=paper_mat,
                      pattern=AccessPattern.RESIDENT),
            MemStream("C", read_bytes_per_iter=8.0 / max(k_avg, 1),
                      write_bytes_per_iter=8.0 / max(k_avg, 1),
                      footprint_bytes=paper_mat,
                      pattern=AccessPattern.RESIDENT),
        ],
        iterations=int(mk * k_avg * n))

    return WorkloadInstance(
        name=name, program=kb.build(), scalar_loop=loop,
        setup=setup, check=check,
        workload_bytes=(mk * mk + 2 * mk * n) * 8,
        warm_ranges=[(b_addr, mk * n * 8)],
        flops_expected=flops,
        buffers=arena.declare_buffers())
