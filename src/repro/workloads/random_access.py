"""Random-access microkernels: RndCopy and RndMemScale (Table 2/4).

* ``RndCopy`` — ``B(i) = A(index(i))``: a gather feeding a unit-stride
  store, with every array prefetched into the L2 — it measures pure
  CR-box gather bandwidth from cache (Table 4: 73.4 GB/s, ~4.3
  addresses/cycle).
* ``RndMemScale`` — ``B(index(i)) = B(index(i)) + 1``: gather + add +
  scatter with all data coming from memory — it measures random RAMBUS
  bandwidth, paying 2.5x the row activates of a streaming kernel.

Indices are a random permutation so every element is touched exactly
once (making the scatter well-defined and the numpy reference exact).
"""

from __future__ import annotations

import numpy as np

from repro.isa.builder import KernelBuilder
from repro.scalar.loopmodel import AccessPattern, MemStream, ScalarLoopBody
from repro.workloads.base import Arena, Workload, WorkloadInstance

RNDCOPY_BASE = 1 << 16       # elements at scale=1.0 (paper: 4 096 000)
RNDMEMSCALE_BASE = 1 << 16   # paper: 512 000, all data from memory
SEED = 0x7A7A


def _permutation(n: int) -> np.ndarray:
    return np.random.default_rng(SEED).permutation(n).astype(np.uint64)


class RndCopy(Workload):
    name = "rndcopy"
    description = "B(i) = A(index(i)) — gather bandwidth from L2"
    category = "MicroKernels"
    inputs = "A,B=4096000 elements (scaled)"
    comments = "Prefetched into L2"
    uses_prefetch = True
    paper_vectorization_pct = 99.9

    def build(self, scale: float = 1.0) -> WorkloadInstance:
        n = max(int(RNDCOPY_BASE * scale) // 128 * 128, 128)
        arena = Arena()
        a = arena.alloc_f64("A", n)
        b = arena.alloc_f64("B", n)
        idx_addr = arena.alloc("index", n * 8)
        index = _permutation(n)
        values = np.arange(n, dtype=np.float64) * 0.5 + 1.0

        kb = KernelBuilder(self.name)
        kb.lda(1, a)
        kb.lda(2, b)
        kb.lda(3, idx_addr)
        kb.setvl(128)
        kb.setvs(8)
        for blk in range(n // 128):
            off = blk * 128 * 8
            kb.vloadq(4, rb=3, disp=off)       # index block
            kb.vssll(5, 4, imm=3)              # byte offsets
            kb.vgathq(6, 5, rb=1)              # A(index(i))
            kb.vstoreq(6, rb=2, disp=off)      # B(i)

        def setup(mem):
            mem.write_f64(a, values)
            mem.write_array(idx_addr, index)

        def check(mem):
            got = mem.read_f64(b, n)
            np.testing.assert_allclose(got, values[index])

        paper_elems = 4_096_000 * 8   # the paper's A/B footprint
        loop = ScalarLoopBody(
            name=self.name, flops=0.0, int_ops=3.0, loads=2.0, stores=1.0,
            streams=[
                MemStream("index", read_bytes_per_iter=8.0,
                          footprint_bytes=paper_elems),
                MemStream("A", read_bytes_per_iter=8.0,
                          footprint_bytes=paper_elems,
                          pattern=AccessPattern.RANDOM),
                MemStream("B", write_bytes_per_iter=8.0,
                          footprint_bytes=paper_elems,
                          full_line_writes=True),
            ],
            iterations=n)

        return WorkloadInstance(
            name=self.name, program=kb.build(), scalar_loop=loop,
            setup=setup, check=check,
            workload_bytes=16 * n,  # 8 read + 8 written per element
            warm_ranges=[(a, n * 8), (b, n * 8), (idx_addr, n * 8)],
            buffers=arena.declare_buffers())


class RndMemScale(Workload):
    name = "rndmemscale"
    description = "B(index(i)) = B(index(i)) + 1 — random RAMBUS bandwidth"
    category = "MicroKernels"
    inputs = "B=512000 elements (scaled)"
    comments = "All data from memory"
    uses_prefetch = False
    paper_vectorization_pct = 99.9

    def build(self, scale: float = 1.0) -> WorkloadInstance:
        n = max(int(RNDMEMSCALE_BASE * scale) // 128 * 128, 128)
        arena = Arena()
        b = arena.alloc_f64("B", n)
        idx_addr = arena.alloc("index", n * 8)
        index = _permutation(n)
        values = np.linspace(0.0, 10.0, n)

        kb = KernelBuilder(self.name)
        kb.lda(1, b)
        kb.lda(2, idx_addr)
        kb.setvl(128)
        kb.setvs(8)
        for blk in range(n // 128):
            off = blk * 128 * 8
            kb.vloadq(4, rb=2, disp=off)         # index block
            kb.vssll(5, 4, imm=3)                # byte offsets
            kb.vgathq(6, 5, rb=1)                # B(index(i))
            kb.vsaddt(7, 6, imm=1.0)             # + 1
            kb.vscatq(7, 5, rb=1)                # B(index(i)) = ...

        def setup(mem):
            mem.write_f64(b, values)
            mem.write_array(idx_addr, index)

        def check(mem):
            np.testing.assert_allclose(mem.read_f64(b, n), values + 1.0)

        loop = ScalarLoopBody(
            name=self.name, flops=1.0, int_ops=3.0, loads=2.0, stores=1.0,
            streams=[
                MemStream("index", read_bytes_per_iter=8.0, footprint_bytes=n * 8),
                MemStream("B", read_bytes_per_iter=8.0,
                          write_bytes_per_iter=8.0, footprint_bytes=n * 8,
                          pattern=AccessPattern.RANDOM),
            ],
            iterations=n)

        return WorkloadInstance(
            name=self.name, program=kb.build(), scalar_loop=loop,
            setup=setup, check=check,
            workload_bytes=16 * n,
            buffers=arena.declare_buffers())
