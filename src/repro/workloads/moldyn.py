"""moldyn — molecular dynamics (Table 2, "Bioinformatics").

Lennard-Jones force evaluation over a precomputed *full* neighbor list
(each interacting pair appears once per endpoint, so forces accumulate
only to the first index — the standard vector-machine formulation that
makes scatter targets within a batch unique).

The kernel is the paper's showcase for vector masks ("by executing
under mask, Tarantula avoids hard-to-predict branches"): the cutoff
test is a vector FP compare feeding ``setvm``, and the force evaluation
and scatter-accumulate run under mask.  Batches are built so the target
index ``i`` is unique within each 128-pair group (round-robin over
molecules), making the masked scatter-accumulate exact.
"""

from __future__ import annotations

import numpy as np

from repro.isa.builder import KernelBuilder
from repro.scalar.loopmodel import AccessPattern, MemStream, ScalarLoopBody
from repro.workloads.base import Arena, Workload, WorkloadInstance

BASE_MOLECULES = 512       # paper: 500 molecule system
NEIGHBORS = 16             # candidate neighbors per molecule
#: fraction of candidate pairs inside the cutoff (a tuned neighbor list
#: keeps acceptance high; the cutoff is set at this r^2 quantile)
ACCEPT_FRACTION = 0.45
SEED = 0x30D


class Moldyn(Workload):
    name = "moldyn"
    description = "Molecular Dynamics (Lennard-Jones under mask)"
    category = "Bioinformatics"
    inputs = "500 molecule system (scaled)"
    uses_prefetch = False
    paper_vectorization_pct = 99.5

    def build(self, scale: float = 1.0) -> WorkloadInstance:
        n = max(int(BASE_MOLECULES * scale) // 128 * 128, 128)
        rng = np.random.default_rng(SEED)
        pos = {axis: rng.uniform(0.0, 4.0, n) for axis in "xyz"}

        # full neighbor list: molecule i paired with NEIGHBORS others;
        # batches iterate i round-robin so each 128-batch has distinct i
        pairs_i = np.repeat(np.arange(n), NEIGHBORS)
        pairs_j = rng.integers(0, n, n * NEIGHBORS)
        same = pairs_i == pairs_j
        pairs_j[same] = (pairs_j[same] + 1) % n
        # interleave so consecutive 128 entries carry distinct i values
        pairs_i = pairs_i.reshape(n, NEIGHBORS).T.ravel()
        pairs_j = pairs_j.reshape(n, NEIGHBORS).T.ravel()
        npairs = len(pairs_i)

        # numpy reference
        fref = {axis: np.zeros(n) for axis in "xyz"}
        dx = pos["x"][pairs_i] - pos["x"][pairs_j]
        dy = pos["y"][pairs_i] - pos["y"][pairs_j]
        dz = pos["z"][pairs_i] - pos["z"][pairs_j]
        r2 = dx * dx + dy * dy + dz * dz
        cutoff2 = float(np.quantile(r2, ACCEPT_FRACTION))
        active = r2 < cutoff2
        with np.errstate(divide="ignore"):
            inv = np.where(active, 1.0 / r2, 0.0)
        inv3 = inv * inv * inv
        fmag = np.where(active, (48.0 * inv3 * inv3 - 24.0 * inv3) * inv, 0.0)
        for axis, d in (("x", dx), ("y", dy), ("z", dz)):
            np.add.at(fref[axis], pairs_i, np.where(active, fmag * d, 0.0))

        arena = Arena()
        addr = {}
        for axis in "xyz":
            addr[axis] = arena.alloc_f64(axis, n)
            addr["f" + axis] = arena.alloc_f64("f" + axis, n)
        jlist = arena.alloc("jlist", npairs * 8)
        ones = arena.alloc_f64("ones", 128)

        kb = KernelBuilder(self.name)
        regs = {"x": 1, "y": 2, "z": 3, "fx": 4, "fy": 5, "fz": 6}
        for name, reg in regs.items():
            kb.lda(reg, addr[name])
        kb.lda(8, jlist)
        kb.lda(9, ones)
        kb.setvl(128)
        kb.setvs(8)
        kb.vloadq(1, rb=9)                      # v1 = ones
        flops = 0
        # pair (i, j) with i = blk*128 + lane: the i-side accesses are
        # unit-stride by construction (the hand-tuned layout); only the
        # j side needs gathers
        for blk in range(npairs // 128):
            off = blk * 128 * 8
            ioff = (blk % (n // 128)) * 128 * 8  # molecule block for i
            kb.vloadq(3, rb=8, disp=off)        # j indices
            kb.vssll(3, 3, imm=3)
            # dx, dy, dz
            kb.vloadq(10, rb=regs["x"], disp=ioff)
            kb.vgathq(11, 3, rb=regs["x"])
            kb.vvsubt(10, 10, 11)               # dx
            kb.vloadq(12, rb=regs["y"], disp=ioff)
            kb.vgathq(13, 3, rb=regs["y"])
            kb.vvsubt(12, 12, 13)               # dy
            kb.vloadq(14, rb=regs["z"], disp=ioff)
            kb.vgathq(15, 3, rb=regs["z"])
            kb.vvsubt(14, 14, 15)               # dz
            kb.vvmult(16, 10, 10)
            kb.vvmult(17, 12, 12)
            kb.vvaddt(16, 16, 17)
            kb.vvmult(17, 14, 14)
            kb.vvaddt(16, 16, 17)               # r2
            flops += 8 * 128
            # cutoff mask: vm = r2 < cutoff2 (no scalar round trip!)
            kb.vscmptlt(20, 16, imm=cutoff2)
            kb.setvm(20)
            # force magnitude, under mask
            kb.vvdivt(21, 1, 16, masked=True)               # 1/r2
            kb.vvmult(22, 21, 21, masked=True)
            kb.vvmult(22, 22, 21, masked=True)              # inv3
            kb.vvmult(23, 22, 22, masked=True)              # inv6
            kb.vsmult(23, 23, imm=48.0, masked=True)
            kb.vsmult(24, 22, imm=24.0, masked=True)
            kb.vvsubt(23, 23, 24, masked=True)
            kb.vvmult(23, 23, 21, masked=True)              # fmag
            flops += 8 * 128
            # accumulate forces on i: unit-stride masked read-modify-write
            for axis, dreg in (("fx", 10), ("fy", 12), ("fz", 14)):
                kb.vvmult(25, 23, dreg, masked=True)        # f*component
                kb.vloadq(26, rb=regs[axis], disp=ioff, masked=True)
                kb.vvaddt(26, 26, 25, masked=True)
                kb.vstoreq(26, rb=regs[axis], disp=ioff, masked=True)
                flops += 2 * 128

        def setup(mem):
            for axis in "xyz":
                mem.write_f64(addr[axis], pos[axis])
            mem.write_array(jlist, pairs_j.astype(np.uint64))
            mem.write_f64(ones, np.ones(128))

        def check(mem):
            for axis in "xyz":
                got = mem.read_f64(addr["f" + axis], n)
                np.testing.assert_allclose(got, fref[axis], rtol=1e-8,
                                           err_msg=f"force {axis}")

        # the cutoff test is taken ~ACCEPT_FRACTION of the time: a
        # hard-to-predict branch (its avoidance via vector masks is the
        # paper's stated source of moldyn's extra speedup)
        p = ACCEPT_FRACTION
        loop = ScalarLoopBody(
            name=self.name, flops=19.0 * p + 8.0, int_ops=6.0,
            loads=8.0, stores=3.0 * p,
            branches=2.0,
            mispredicts_per_iter=2.0 * p * (1.0 - p),
            streams=[
                MemStream("pairs", read_bytes_per_iter=16.0,
                          footprint_bytes=2 * npairs * 8),
                MemStream("positions", read_bytes_per_iter=48.0,
                          footprint_bytes=3 * n * 8,
                          pattern=AccessPattern.RANDOM),
                MemStream("forces", read_bytes_per_iter=24.0,
                          write_bytes_per_iter=24.0,
                          footprint_bytes=3 * n * 8,
                          pattern=AccessPattern.RANDOM),
            ],
            iterations=npairs)

        return WorkloadInstance(
            name=self.name, program=kb.build(), scalar_loop=loop,
            setup=setup, check=check,
            workload_bytes=(2 * npairs + 12 * npairs) * 8,
            warm_ranges=[(addr[a], n * 8) for a in
                         ("x", "y", "z", "fx", "fy", "fz")],
            flops_expected=flops,
            buffers=arena.declare_buffers())
