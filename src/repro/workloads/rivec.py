"""RiVEC benchmark family, part 1: axpy, pathfinder, blackscholes, jacobi-2d.

A second benchmark family ported from the RiVEC vectorized suite of
"A RISC-V Simulator and Benchmark Suite for Designing and Evaluating
Vector Architectures" (PAPERS.md), hand-vectorized against the
Tarantula ISA through :class:`~repro.isa.builder.KernelBuilder` exactly
like the Table 2 kernels.  The port proves the Suite/Instance matrix
abstraction (docs/WORKLOADS.md): none of the harness knows these
kernels exist beyond their ``rivec`` suite registration.

The four kernels here are the dense half of the family:

* ``rivec.axpy`` — BLAS-1 ``y = a*x + y``, software-prefetched;
* ``rivec.pathfinder`` — dynamic-programming grid walk,
  ``dst[j] = wall[i][j] + min3(src[j-1..j+1])``, double-buffered rows
  with +inf column halos;
* ``rivec.blackscholes`` — Black-Scholes-style per-element map: a
  polynomial-CDF option-pricing surrogate (the ISA has no exp/log, so
  the CDF is the classic odd-polynomial approximation; the numpy
  reference computes the identical formula);
* ``rivec.jacobi2d`` — PolyBench-style 5-point Jacobi stencil, two
  alternating A->B / B->A sweeps over a halo-padded grid.

Sparse and clustering kernels live in
:mod:`repro.workloads.rivec_sparse`.
"""

from __future__ import annotations

import numpy as np

from repro.isa.builder import KernelBuilder
from repro.scalar.loopmodel import MemStream, ScalarLoopBody
from repro.workloads.base import Arena, Workload, WorkloadInstance

#: provenance string shared by every kernel of the family
RIVEC_SOURCE = ("RiVEC vectorized suite — A RISC-V Simulator and Benchmark "
                "Suite for Designing and Evaluating Vector Architectures")

#: column halo value pathfinder uses so edge lanes never win the min
HALO = 1.0e30

AXPY_BASE = 1 << 15          # elements at scale=1.0
AXPY_A = 2.5
PATHFINDER_BASE_ROWS = 64
PATHFINDER_BASE_COLS = 256   # interior columns (multiple of 128)
BLACKSCHOLES_BASE = 4096
JACOBI_BASE_ROWS = 34
JACOBI_BASE_COLS = 256       # interior columns (multiple of 128)
JACOBI_SWEEPS = 2
SEED = 0x51BEC


class _RivecKernel(Workload):
    """Shared Table 2-style metadata for the RiVEC family."""

    category = "RiVEC"
    comments = "RiVEC port"
    surrogate = False
    paper_vectorization_pct = None


class RivecAxpy(_RivecKernel):
    name = "rivec.axpy"
    description = "BLAS-1 axpy: y(i) = a*x(i) + y(i)"
    inputs = "32768 elements (scaled)"
    uses_prefetch = True

    def build(self, scale: float = 1.0) -> WorkloadInstance:
        n = max(int(AXPY_BASE * scale) // 128 * 128, 128)
        arena = Arena()
        x_addr = arena.alloc_f64("x", n)
        y_addr = arena.alloc_f64("y", n)
        rng = np.random.default_rng(SEED)
        x0 = rng.standard_normal(n)
        y0 = rng.standard_normal(n)

        kb = KernelBuilder(self.name)
        kb.lda(1, x_addr)
        kb.lda(2, y_addr)
        kb.setvl(128)
        kb.setvs(8)
        blocks = n // 128
        for blk in range(blocks):
            off = blk * 128 * 8
            if blk + 2 < blocks:
                pf = (blk + 2) * 128 * 8
                kb.vprefetch(1, disp=pf)
                kb.vprefetch(2, disp=pf)
            kb.vloadq(4, rb=1, disp=off)
            kb.vloadq(5, rb=2, disp=off)
            kb.vsmult(6, 4, imm=AXPY_A)
            kb.vvaddt(7, 5, 6)
            kb.vstoreq(7, rb=2, disp=off)

        def setup(mem):
            mem.write_f64(x_addr, x0)
            mem.write_f64(y_addr, y0)

        def check(mem):
            np.testing.assert_allclose(mem.read_f64(y_addr, n),
                                       y0 + AXPY_A * x0, rtol=1e-12)

        paper_footprint = 2_000_000 * 8   # RiVEC runs axpy memory-resident
        loop = ScalarLoopBody(
            name=self.name, flops=2.0, int_ops=2.0, loads=2.0, stores=1.0,
            prefetches=0.25,
            streams=[
                MemStream("x", read_bytes_per_iter=8.0,
                          footprint_bytes=paper_footprint),
                MemStream("y", read_bytes_per_iter=8.0,
                          write_bytes_per_iter=8.0,
                          footprint_bytes=paper_footprint),
            ],
            iterations=n)

        return WorkloadInstance(
            name=self.name, program=kb.build(), scalar_loop=loop,
            setup=setup, check=check,
            workload_bytes=3 * 8 * n,
            flops_expected=2 * n,
            buffers=arena.declare_buffers())


class RivecPathfinder(_RivecKernel):
    name = "rivec.pathfinder"
    description = "Pathfinder DP: dst(j) = wall(i,j) + min3(src(j-1..j+1))"
    inputs = "64x256 grid (scaled)"
    uses_prefetch = False

    def _shape(self, scale: float) -> tuple[int, int]:
        rows = max(int(PATHFINDER_BASE_ROWS * scale), 8)
        cols = max(int(PATHFINDER_BASE_COLS * scale) // 128 * 128, 128)
        return rows, cols

    def build(self, scale: float = 1.0) -> WorkloadInstance:
        rows, cols = self._shape(scale)
        rng = np.random.default_rng(SEED + 1)
        wall = rng.uniform(1.0, 10.0, (rows, cols))

        # numpy reference: row-by-row DP with +inf sentinels at the edges
        src = wall[0].copy()
        for i in range(1, rows):
            padded = np.concatenate(([HALO], src, [HALO]))
            src = wall[i] + np.minimum(
                np.minimum(padded[:-2], padded[1:-1]), padded[2:])
        expected = src

        arena = Arena()
        wall_addr = arena.alloc_f64("wall", rows * cols)
        # double buffers carry one halo element on each side
        buf_a = arena.alloc_f64("bufA", cols + 2)
        buf_b = arena.alloc_f64("bufB", cols + 2)

        kb = KernelBuilder(self.name)
        kb.lda(1, wall_addr)
        kb.lda(2, buf_a)
        kb.lda(3, buf_b)
        kb.setvl(128)
        kb.setvs(8)
        for i in range(1, rows):
            src_reg = 2 if i % 2 == 1 else 3
            dst_reg = 3 if i % 2 == 1 else 2
            for blk in range(cols // 128):
                # interior element j0 = 128*blk lives at slot j0+1
                off = (blk * 128 + 1) * 8
                kb.vloadq(4, rb=src_reg, disp=off - 8)    # src[j-1]
                kb.vloadq(5, rb=src_reg, disp=off)        # src[j]
                kb.vloadq(6, rb=src_reg, disp=off + 8)    # src[j+1]
                kb.vvmint(7, 4, 5)
                kb.vvmint(7, 7, 6)
                kb.vloadq(8, rb=1, disp=(i * cols + blk * 128) * 8)
                kb.vvaddt(9, 8, 7)
                kb.vstoreq(9, rb=dst_reg, disp=off)

        final = buf_a if (rows - 1) % 2 == 0 else buf_b

        def setup(mem):
            mem.write_f64(wall_addr, wall.ravel())
            halo_row = np.full(cols + 2, HALO)
            row0 = halo_row.copy()
            row0[1:-1] = wall[0]
            mem.write_f64(buf_a, row0)
            mem.write_f64(buf_b, halo_row)

        def check(mem):
            got = mem.read_f64(final + 8, cols)
            np.testing.assert_allclose(got, expected, rtol=1e-12)

        loop = ScalarLoopBody(
            name=self.name, flops=3.0, int_ops=3.0, loads=4.0, stores=1.0,
            streams=[
                MemStream("wall", read_bytes_per_iter=8.0,
                          footprint_bytes=rows * cols * 8),
                MemStream("rows", read_bytes_per_iter=24.0,
                          write_bytes_per_iter=8.0,
                          footprint_bytes=2 * (cols + 2) * 8),
            ],
            iterations=(rows - 1) * cols)

        return WorkloadInstance(
            name=self.name, program=kb.build(), scalar_loop=loop,
            setup=setup, check=check,
            workload_bytes=(rows - 1) * cols * 8 * 5,
            warm_ranges=[(buf_a, (cols + 2) * 8), (buf_b, (cols + 2) * 8)],
            flops_expected=3 * (rows - 1) * cols,
            buffers=arena.declare_buffers())


#: odd-polynomial CDF approximation coefficients (the kernel and the
#: numpy reference evaluate the identical Horner form)
BS_C1 = 0.39894228
BS_C3 = -0.06649038
BS_C5 = 0.00997356


class RivecBlackscholes(_RivecKernel):
    name = "rivec.blackscholes"
    description = "Black-Scholes-style map: polynomial-CDF option pricing"
    inputs = "4096 options (scaled)"
    uses_prefetch = True

    def build(self, scale: float = 1.0) -> WorkloadInstance:
        n = max(int(BLACKSCHOLES_BASE * scale) // 128 * 128, 128)
        rng = np.random.default_rng(SEED + 2)
        spot = rng.uniform(50.0, 150.0, n)
        strike = rng.uniform(60.0, 140.0, n)
        time = rng.uniform(0.25, 2.0, n)

        def cdf(x):
            x2 = x * x
            poly = ((BS_C5 * x2 + BS_C3) * x2 + BS_C1) * x
            return poly + 0.5

        def reference():
            sqrt_t = np.sqrt(time)
            m = spot / strike
            d1 = (m - 1.0) / sqrt_t
            d2 = d1 - sqrt_t
            return spot * cdf(d1) - strike * cdf(d2)

        expected = reference()

        arena = Arena()
        s_addr = arena.alloc_f64("spot", n)
        k_addr = arena.alloc_f64("strike", n)
        t_addr = arena.alloc_f64("time", n)
        p_addr = arena.alloc_f64("price", n)

        kb = KernelBuilder(self.name)
        kb.lda(1, s_addr)
        kb.lda(2, k_addr)
        kb.lda(3, t_addr)
        kb.lda(4, p_addr)
        kb.setvl(128)
        kb.setvs(8)
        blocks = n // 128
        for blk in range(blocks):
            off = blk * 128 * 8
            if blk + 2 < blocks:
                pf = (blk + 2) * 128 * 8
                for reg in (1, 2, 3):
                    kb.vprefetch(reg, disp=pf)
            kb.vloadq(4, rb=1, disp=off)            # S
            kb.vloadq(5, rb=2, disp=off)            # K
            kb.vloadq(6, rb=3, disp=off)            # T
            kb.vsqrtt(7, 6)                         # sqrt(T)
            kb.vvdivt(8, 4, 5)                      # m = S/K
            kb.vsaddt(8, 8, imm=-1.0)               # m - 1
            kb.vvdivt(9, 8, 7)                      # d1
            kb.vvsubt(10, 9, 7)                     # d2 = d1 - sqrt(T)
            for dreg, creg in ((9, 12), (10, 13)):  # cdf(d1), cdf(d2)
                kb.vvmult(11, dreg, dreg)           # x2
                kb.vsmult(creg, 11, imm=BS_C5)
                kb.vsaddt(creg, creg, imm=BS_C3)
                kb.vvmult(creg, creg, 11)
                kb.vsaddt(creg, creg, imm=BS_C1)
                kb.vvmult(creg, creg, dreg)
                kb.vsaddt(creg, creg, imm=0.5)
            kb.vvmult(14, 4, 12)                    # S*cdf(d1)
            kb.vvmult(15, 5, 13)                    # K*cdf(d2)
            kb.vvsubt(16, 14, 15)
            kb.vstoreq(16, rb=4, disp=off)

        def setup(mem):
            mem.write_f64(s_addr, spot)
            mem.write_f64(k_addr, strike)
            mem.write_f64(t_addr, time)

        def check(mem):
            np.testing.assert_allclose(mem.read_f64(p_addr, n), expected,
                                       rtol=1e-12)

        loop = ScalarLoopBody(
            name=self.name, flops=20.0, int_ops=3.0, loads=3.0, stores=1.0,
            prefetches=0.375,
            streams=[
                MemStream(name, read_bytes_per_iter=8.0,
                          footprint_bytes=n * 8)
                for name in ("spot", "strike", "time")
            ] + [MemStream("price", write_bytes_per_iter=8.0,
                           footprint_bytes=n * 8, full_line_writes=True)],
            iterations=n)

        return WorkloadInstance(
            name=self.name, program=kb.build(), scalar_loop=loop,
            setup=setup, check=check,
            workload_bytes=4 * 8 * n,
            warm_ranges=[(s_addr, n * 8), (k_addr, n * 8), (t_addr, n * 8)],
            flops_expected=20 * n,
            buffers=arena.declare_buffers())


class RivecJacobi2D(_RivecKernel):
    name = "rivec.jacobi2d"
    description = "Jacobi 2D 5-point stencil, alternating A/B sweeps"
    inputs = "34x256 grid, 2 sweeps (scaled)"
    uses_prefetch = False

    def _shape(self, scale: float) -> tuple[int, int]:
        rows = max(int(JACOBI_BASE_ROWS * scale), 6)
        cols = max(int(JACOBI_BASE_COLS * scale) // 128 * 128, 128)
        return rows, cols

    def build(self, scale: float = 1.0) -> WorkloadInstance:
        rows, cols = self._shape(scale)
        width = cols + 2                      # column halo on each side
        rng = np.random.default_rng(SEED + 3)
        grid0 = rng.uniform(0.0, 1.0, (rows, width))

        # reference: interior-only updates, alternating grids
        a = grid0.copy()
        b = grid0.copy()
        for _ in range(JACOBI_SWEEPS):
            b[1:-1, 1:-1] = 0.2 * (a[1:-1, 1:-1] + a[1:-1, :-2] +
                                   a[1:-1, 2:] + a[:-2, 1:-1] + a[2:, 1:-1])
            a, b = b, a
        expected = a

        arena = Arena()
        a_addr = arena.alloc_f64("A", rows * width)
        b_addr = arena.alloc_f64("B", rows * width)
        row_bytes = width * 8

        kb = KernelBuilder(self.name)
        kb.lda(1, a_addr)
        kb.lda(2, b_addr)
        kb.setvl(128)
        kb.setvs(8)
        for sweep in range(JACOBI_SWEEPS):
            src_reg = 1 if sweep % 2 == 0 else 2
            dst_reg = 2 if sweep % 2 == 0 else 1
            for i in range(1, rows - 1):
                for blk in range(cols // 128):
                    off = i * row_bytes + (blk * 128 + 1) * 8
                    kb.vloadq(4, rb=src_reg, disp=off)              # center
                    kb.vloadq(5, rb=src_reg, disp=off - 8)          # west
                    kb.vvaddt(4, 4, 5)
                    kb.vloadq(5, rb=src_reg, disp=off + 8)          # east
                    kb.vvaddt(4, 4, 5)
                    kb.vloadq(5, rb=src_reg, disp=off - row_bytes)  # north
                    kb.vvaddt(4, 4, 5)
                    kb.vloadq(5, rb=src_reg, disp=off + row_bytes)  # south
                    kb.vvaddt(4, 4, 5)
                    kb.vsmult(4, 4, imm=0.2)
                    kb.vstoreq(4, rb=dst_reg, disp=off)

        result_addr = a_addr if JACOBI_SWEEPS % 2 == 0 else b_addr

        def setup(mem):
            mem.write_f64(a_addr, grid0.ravel())
            mem.write_f64(b_addr, grid0.ravel())

        def check(mem):
            got = mem.read_f64(result_addr, rows * width).reshape(rows, width)
            np.testing.assert_allclose(got, expected, rtol=1e-12)

        interior = (rows - 2) * cols
        loop = ScalarLoopBody(
            name=self.name, flops=5.0, int_ops=4.0, loads=5.0, stores=1.0,
            streams=[
                MemStream("A", read_bytes_per_iter=24.0,
                          write_bytes_per_iter=4.0,
                          footprint_bytes=rows * width * 8),
                MemStream("B", read_bytes_per_iter=16.0,
                          write_bytes_per_iter=4.0,
                          footprint_bytes=rows * width * 8),
            ],
            iterations=JACOBI_SWEEPS * interior)

        return WorkloadInstance(
            name=self.name, program=kb.build(), scalar_loop=loop,
            setup=setup, check=check,
            workload_bytes=JACOBI_SWEEPS * interior * 8 * 6,
            warm_ranges=[(a_addr, rows * row_bytes),
                         (b_addr, rows * row_bytes)],
            flops_expected=5 * JACOBI_SWEEPS * interior,
            buffers=arena.declare_buffers())
