"""Batched radix-4 FFT (Table 2: 5120 FFTs of 1024 elements each).

Many independent transforms make the classic vector formulation: lay
the data out position-major with the *batch* contiguous, so every
butterfly operand is a unit-stride vector over 128 simultaneous
transforms, and twiddle factors are scalar immediates shared by the
whole batch.  Even the radix-4 digit-reversal permutation becomes plain
block copies (position p's 128 transforms are contiguous), so the whole
kernel is stride-1 — fft is the paper's showcase for ILP-heavy code
where EV8 would burn issue slots on loop overhead (section 6).

Complex data is stored as separate real/imaginary arrays (split
format), the standard choice for vector FFTs.
"""

from __future__ import annotations

import math

import numpy as np

from repro.isa.builder import KernelBuilder
from repro.scalar.loopmodel import MemStream, ScalarLoopBody
from repro.workloads.base import Arena, Workload, WorkloadInstance

BASE_N = 64          # transform length at scale=1.0 (paper: 1024); 4^k
BASE_BATCH = 256     # simultaneous transforms (paper: 5120)
SEED = 0xFF7


def digit_reverse_base4(n: int) -> np.ndarray:
    """Radix-4 digit-reversal permutation of positions 0..n-1."""
    digits = int(round(math.log(n, 4)))
    if 4 ** digits != n:
        raise ValueError(f"FFT length {n} is not a power of 4")
    perm = np.zeros(n, dtype=np.int64)
    for i in range(n):
        x, r = i, 0
        for _ in range(digits):
            r = (r << 2) | (x & 3)
            x >>= 2
        perm[i] = r
    return perm


class BatchFFT(Workload):
    name = "fft"
    description = "Radix-4 FFT, batched across transforms"
    category = "Algebra"
    inputs = "5120 FFTs, 1024 elements per FFT (scaled)"
    comments = "1024 elements per FFT"
    uses_prefetch = True
    paper_vectorization_pct = 98.7

    def build(self, scale: float = 1.0) -> WorkloadInstance:
        # scale area: batch grows linearly, n stays a power of 4
        batch = max(int(BASE_BATCH * scale) // 128 * 128, 128)
        n = BASE_N
        rng = np.random.default_rng(SEED)
        xr = rng.standard_normal((n, batch))
        xi = rng.standard_normal((n, batch))
        expected = np.fft.fft(xr + 1j * xi, axis=0)

        arena = Arena()
        in_re = arena.alloc_f64("in_re", n * batch)
        in_im = arena.alloc_f64("in_im", n * batch)
        w_re = arena.alloc_f64("w_re", n * batch)
        w_im = arena.alloc_f64("w_im", n * batch)

        kb = KernelBuilder(self.name)
        kb.lda(1, in_re)
        kb.lda(2, in_im)
        kb.lda(3, w_re)
        kb.lda(4, w_im)
        kb.setvl(128)
        kb.setvs(8)

        row = batch * 8  # bytes per position row
        blocks = batch // 128
        perm = digit_reverse_base4(n)
        flops = 0

        def pos(p: int, blk: int) -> int:
            return p * row + blk * 128 * 8

        # 1. digit-reversal: block copies in(perm[p]) -> work(p)
        for p in range(n):
            for blk in range(blocks):
                kb.vloadq(10, rb=1, disp=pos(int(perm[p]), blk))
                kb.vstoreq(10, rb=3, disp=pos(p, blk))
                kb.vloadq(11, rb=2, disp=pos(int(perm[p]), blk))
                kb.vstoreq(11, rb=4, disp=pos(p, blk))

        # 2. radix-4 stages over the work arrays
        # register map per butterfly: v10..v17 = a,b,c,d (re,im),
        # v18..v25 = temps
        length = 4
        while length <= n:
            quarter = length // 4
            for j in range(quarter):
                ang = -2.0 * math.pi * j / length
                w1 = complex(math.cos(ang), math.sin(ang))
                w2, w3 = w1 * w1, w1 * w1 * w1
                for base in range(0, n, length):
                    p0, p1 = base + j, base + j + quarter
                    p2, p3 = base + j + 2 * quarter, base + j + 3 * quarter
                    for blk in range(blocks):
                        flops += self._emit_butterfly(
                            kb, blk, (p0, p1, p2, p3), (w1, w2, w3), pos)
            length *= 4

        def setup(mem):
            mem.write_f64(in_re, xr.ravel())
            mem.write_f64(in_im, xi.ravel())

        def check(mem):
            got_re = mem.read_f64(w_re, n * batch).reshape(n, batch)
            got_im = mem.read_f64(w_im, n * batch).reshape(n, batch)
            np.testing.assert_allclose(got_re, expected.real, atol=1e-8)
            np.testing.assert_allclose(got_im, expected.imag, atol=1e-8)

        n_butterflies = (n // 4) * int(round(math.log(n, 4)))
        # the scalar butterfly drags heavy index/twiddle bookkeeping —
        # the paper: "none would be left to execute loop-related control
        # instructions" if EV8 filled its flop and memory slots
        loop = ScalarLoopBody(
            name=self.name, flops=34.0 / 4, int_ops=10.0, loads=3.5,
            stores=2.0,
            streams=[
                MemStream("data", read_bytes_per_iter=16.0,
                          write_bytes_per_iter=16.0,
                          footprint_bytes=2 * n * batch * 8),
            ],
            iterations=n_butterflies * batch)

        return WorkloadInstance(
            name=self.name, program=kb.build(), scalar_loop=loop,
            setup=setup, check=check,
            workload_bytes=4 * n * batch * 8,
            warm_ranges=[(in_re, n * batch * 8), (in_im, n * batch * 8),
                         (w_re, n * batch * 8), (w_im, n * batch * 8)],
            flops_expected=flops,
            buffers=arena.declare_buffers())

    @staticmethod
    def _emit_butterfly(kb: KernelBuilder, blk: int, positions, twiddles,
                        pos) -> int:
        """One radix-4 DIT butterfly over a 128-transform block.

        Returns the flops emitted (per 128 elements).
        """
        p0, p1, p2, p3 = positions
        w1, w2, w3 = twiddles
        flops = 0

        # load a (no twiddle)
        kb.vloadq(10, rb=3, disp=pos(p0, blk))   # a.re
        kb.vloadq(11, rb=4, disp=pos(p0, blk))   # a.im

        def load_twiddled(dst_re, dst_im, p, w):
            """dst = w * work[p] (complex scalar x vector)."""
            nonlocal flops
            kb.vloadq(26, rb=3, disp=pos(p, blk))   # x.re
            kb.vloadq(27, rb=4, disp=pos(p, blk))   # x.im
            if w == 1.0 + 0.0j:
                kb.vvbis(dst_re, 26, 26)  # move
                kb.vvbis(dst_im, 27, 27)
                return
            kb.vsmult(28, 26, imm=w.real)           # wr*xr
            kb.vsmult(29, 27, imm=w.imag)           # wi*xi
            kb.vvsubt(dst_re, 28, 29)               # re = wr*xr - wi*xi
            kb.vsmult(28, 26, imm=w.imag)           # wi*xr
            kb.vsmult(29, 27, imm=w.real)           # wr*xi
            kb.vvaddt(dst_im, 28, 29)               # im = wi*xr + wr*xi
            flops += 6 * 128

        load_twiddled(12, 13, p1, w1)   # b
        load_twiddled(14, 15, p2, w2)   # c
        load_twiddled(16, 17, p3, w3)   # d

        # t0 = a + c ; t1 = a - c ; t2 = b + d ; t3 = b - d
        kb.vvaddt(18, 10, 14)   # t0.re
        kb.vvaddt(19, 11, 15)   # t0.im
        kb.vvsubt(20, 10, 14)   # t1.re
        kb.vvsubt(21, 11, 15)   # t1.im
        kb.vvaddt(22, 12, 16)   # t2.re
        kb.vvaddt(23, 13, 17)   # t2.im
        kb.vvsubt(24, 12, 16)   # t3.re
        kb.vvsubt(25, 13, 17)   # t3.im
        flops += 8 * 128

        # y0 = t0 + t2 ; y2 = t0 - t2
        kb.vvaddt(10, 18, 22)
        kb.vvaddt(11, 19, 23)
        kb.vstoreq(10, rb=3, disp=pos(p0, blk))
        kb.vstoreq(11, rb=4, disp=pos(p0, blk))
        kb.vvsubt(10, 18, 22)
        kb.vvsubt(11, 19, 23)
        kb.vstoreq(10, rb=3, disp=pos(p2, blk))
        kb.vstoreq(11, rb=4, disp=pos(p2, blk))
        # y1 = t1 - i*t3 = (t1.re + t3.im, t1.im - t3.re)
        kb.vvaddt(10, 20, 25)
        kb.vvsubt(11, 21, 24)
        kb.vstoreq(10, rb=3, disp=pos(p1, blk))
        kb.vstoreq(11, rb=4, disp=pos(p1, blk))
        # y3 = t1 + i*t3 = (t1.re - t3.im, t1.im + t3.re)
        kb.vvsubt(10, 20, 25)
        kb.vvaddt(11, 21, 24)
        kb.vstoreq(10, rb=3, disp=pos(p3, blk))
        kb.vstoreq(11, rb=4, disp=pos(p3, blk))
        flops += 8 * 128
        return flops
