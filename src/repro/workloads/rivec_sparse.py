"""RiVEC benchmark family, part 2: SpMV CSR/ELL and streamcluster.

The irregular half of the RiVEC port (see :mod:`repro.workloads.rivec`
for the dense half and the family's provenance):

* ``rivec.spmv.csr`` — classic CSR sparse matrix-vector product: one
  ``setvl(nnz[row])`` per row, unit-stride value/index loads, an ``x``
  gather, and a ``vsumt`` dot-product reduction collected back into a
  vector register with ``vinsq`` (one store per 128-row group).
  The per-row vector-length changes deliberately stress the timing
  model's address-plan cache (every row invalidates the plan), which
  is exactly the regime the ELLPACK layout exists to avoid;
* ``rivec.spmv.ell`` — ELLPACK with *mask-based* ragged-row handling:
  where ``sparsemxv`` pads short rows with zero values, this variant
  computes a ``rowlen > k`` mask per diagonal and runs the whole
  value/gather/accumulate chain under ``vm`` — the other classic
  vector-SpMV idiom, and the registry's heaviest masked-memory user;
* ``rivec.streamcluster`` — the assign phase of streamcluster: for
  every point, squared Euclidean distance to K centers (coordinates
  baked as scalar immediates, SoA dimension arrays), tracking the
  running minimum and the argmin under a ``dist < best`` mask.
"""

from __future__ import annotations

import numpy as np

from repro.isa.builder import KernelBuilder
from repro.scalar.loopmodel import AccessPattern, MemStream, ScalarLoopBody
from repro.workloads.base import Arena, Workload, WorkloadInstance
from repro.workloads.rivec import _RivecKernel

SEED = 0x51BEC

CSR_BASE_ROWS = 512
CSR_NNZ_LO, CSR_NNZ_HI = 8, 33     # rng.integers bounds: nnz in [8, 32]
ELL_BASE_ROWS = 512
ELL_WIDTH = 16
SC_BASE_POINTS = 2048
SC_DIMS = 4
SC_CENTERS = 8


class RivecSpmvCSR(_RivecKernel):
    name = "rivec.spmv.csr"
    description = "SpMV y = A @ x, CSR layout: setvl(nnz) per row + vsumt"
    inputs = "512 rows, 8-32 nnz/row (scaled)"
    uses_prefetch = False

    def build(self, scale: float = 1.0) -> WorkloadInstance:
        rows = max(int(CSR_BASE_ROWS * scale), 16)
        # rectangular at tiny scales: keep enough columns that a row's
        # nonzeroes (up to 32 distinct columns) always fit
        ncols = max(rows, 2 * CSR_NNZ_HI)
        rng = np.random.default_rng(SEED + 4)
        nnz = rng.integers(CSR_NNZ_LO, CSR_NNZ_HI, rows)
        ptr = np.concatenate(([0], np.cumsum(nnz)))
        total = int(ptr[-1])
        cols = np.empty(total, dtype=np.int64)
        vals = rng.standard_normal(total)
        for r in range(rows):
            cols[ptr[r]:ptr[r + 1]] = rng.choice(ncols, size=int(nnz[r]),
                                                 replace=False)
        x0 = rng.standard_normal(ncols)

        # reference in the kernel's exact order: vsumt is np.sum over
        # the row's products, one row at a time
        expected = np.array([
            float(np.sum(vals[ptr[r]:ptr[r + 1]] * x0[cols[ptr[r]:ptr[r + 1]]]))
            for r in range(rows)])

        arena = Arena()
        val_addr = arena.alloc_f64("vals", total)
        colb_addr = arena.alloc("colbytes", total * 8)
        x_addr = arena.alloc_f64("x", ncols)
        y_addr = arena.alloc_f64("y", rows)

        kb = KernelBuilder(self.name)
        kb.lda(1, val_addr)
        kb.lda(2, colb_addr)
        kb.lda(3, x_addr)
        kb.lda(4, y_addr)
        kb.setvs(8)
        # row sums collect into v9 via vinsq (one vector store per group
        # of 128 rows): a scalar stq per row would need a drainm before
        # every subsequent gather (section 3.4) because the gather's
        # footprint is statically unbounded
        for base in range(0, rows, 128):
            group = min(128, rows - base)
            kb.setvl(128)
            kb.vvxor(9, 9, 9)                   # y block = 0
            for i in range(group):
                r = base + i
                off = int(ptr[r]) * 8
                kb.setvl(int(nnz[r]))           # invalidates the plan cache
                kb.vloadq(5, rb=1, disp=off)    # row values
                kb.vloadq(6, rb=2, disp=off)    # column byte offsets
                kb.vgathq(7, 6, rb=3)           # x[col]
                kb.vvmult(8, 5, 7)
                kb.vsumt(5, 8)                  # r5 <- IEEE bits of the dot
                kb.vinsq(9, 5, i)               # y block[i] <- dot
            kb.setvl(group)
            kb.vstoreq(9, rb=4, disp=base * 8)

        def setup(mem):
            mem.write_f64(val_addr, vals)
            mem.write_array(colb_addr, (cols * 8).astype(np.uint64))
            mem.write_f64(x_addr, x0)

        def check(mem):
            np.testing.assert_allclose(mem.read_f64(y_addr, rows), expected,
                                       rtol=1e-9)

        mean_nnz = total / rows
        loop = ScalarLoopBody(
            name=self.name, flops=2.0, int_ops=3.0, loads=3.0,
            stores=1.0 / mean_nnz,
            streams=[
                MemStream("vals", read_bytes_per_iter=8.0,
                          footprint_bytes=total * 8),
                MemStream("cols", read_bytes_per_iter=8.0,
                          footprint_bytes=total * 8),
                MemStream("x", read_bytes_per_iter=8.0,
                          footprint_bytes=ncols * 8,
                          pattern=AccessPattern.RANDOM),
            ],
            iterations=total)

        return WorkloadInstance(
            name=self.name, program=kb.build(), scalar_loop=loop,
            setup=setup, check=check,
            workload_bytes=(2 * total + rows * 8 + ncols) * 8,
            warm_ranges=[(x_addr, ncols * 8)],
            flops_expected=2 * total,
            buffers=arena.declare_buffers())


class RivecSpmvELL(_RivecKernel):
    name = "rivec.spmv.ell"
    description = "SpMV y = A @ x, ELLPACK with rowlen>k masks (no padding)"
    inputs = "512x512, <=16 nnz/row (scaled)"
    uses_prefetch = False

    def build(self, scale: float = 1.0) -> WorkloadInstance:
        rows = max(int(ELL_BASE_ROWS * scale) // 128 * 128, 128)
        width = ELL_WIDTH
        rng = np.random.default_rng(SEED + 5)
        rowlen = rng.integers(4, width + 1, rows)
        cols = np.zeros((width, rows), dtype=np.int64)
        vals = np.zeros((width, rows), dtype=np.float64)
        for r in range(rows):
            k = int(rowlen[r])
            cols[:k, r] = rng.choice(rows, size=k, replace=False)
            vals[:k, r] = rng.standard_normal(k)
        x0 = rng.standard_normal(rows)

        # reference mirrors the masked accumulate, diagonal by diagonal
        expected = np.zeros(rows)
        for k in range(width):
            active = rowlen > k
            expected = np.where(active,
                                expected + vals[k] * x0[cols[k]], expected)

        arena = Arena()
        val_addr = arena.alloc_f64("vals", width * rows)
        colb_addr = arena.alloc("colbytes", width * rows * 8)
        len_addr = arena.alloc_f64("rowlen", rows)
        x_addr = arena.alloc_f64("x", rows)
        y_addr = arena.alloc_f64("y", rows)

        kb = KernelBuilder(self.name)
        kb.lda(1, val_addr)
        kb.lda(2, colb_addr)
        kb.lda(3, x_addr)
        kb.lda(4, y_addr)
        kb.lda(5, len_addr)
        kb.setvl(128)
        kb.setvs(8)
        row_bytes = rows * 8
        for blk in range(rows // 128):
            roff = blk * 128 * 8
            kb.vloadq(2, rb=5, disp=roff)           # rowlen (as doubles)
            kb.vvxor(10, 10, 10)                    # acc = 0
            for k in range(width):
                koff = k * row_bytes + roff
                kb.vscmptle(3, 2, imm=float(k))     # rowlen <= k ...
                kb.vnot(3, 3)                       # ... negated: rowlen > k
                kb.setvm(3)
                kb.vloadq(5, rb=1, disp=koff, masked=True)
                kb.vloadq(6, rb=2, disp=koff, masked=True)
                kb.vgathq(7, 6, rb=3, masked=True)  # x[col]
                kb.vvmult(8, 5, 7, masked=True)
                kb.vvaddt(10, 10, 8, masked=True)
            kb.vstoreq(10, rb=4, disp=roff)

        def setup(mem):
            mem.write_f64(val_addr, vals.ravel())
            mem.write_array(colb_addr, (cols.ravel() * 8).astype(np.uint64))
            mem.write_f64(len_addr, rowlen.astype(np.float64))
            mem.write_f64(x_addr, x0)

        def check(mem):
            np.testing.assert_allclose(mem.read_f64(y_addr, rows), expected,
                                       rtol=1e-9)

        nnz_total = int(rowlen.sum())
        loop = ScalarLoopBody(
            name=self.name, flops=2.0, int_ops=4.0, loads=3.0,
            stores=1.0 / width,
            mispredicts_per_iter=0.05,          # the rowlen>k cutoff
            streams=[
                MemStream("vals", read_bytes_per_iter=8.0,
                          footprint_bytes=width * rows * 8),
                MemStream("cols", read_bytes_per_iter=8.0,
                          footprint_bytes=width * rows * 8),
                MemStream("x", read_bytes_per_iter=8.0,
                          footprint_bytes=rows * 8,
                          pattern=AccessPattern.RANDOM),
            ],
            iterations=nnz_total)

        return WorkloadInstance(
            name=self.name, program=kb.build(), scalar_loop=loop,
            setup=setup, check=check,
            workload_bytes=(2 * nnz_total + 3 * rows) * 8,
            warm_ranges=[(x_addr, rows * 8), (len_addr, rows * 8)],
            flops_expected=2 * nnz_total,
            buffers=arena.declare_buffers())


class RivecStreamcluster(_RivecKernel):
    name = "rivec.streamcluster"
    description = "Streamcluster assign: nearest of K centers per point"
    inputs = "2048 points x 4 dims, 8 centers (scaled)"
    uses_prefetch = False

    def build(self, scale: float = 1.0) -> WorkloadInstance:
        n = max(int(SC_BASE_POINTS * scale) // 128 * 128, 128)
        rng = np.random.default_rng(SEED + 6)
        points = rng.uniform(-1.0, 1.0, (SC_DIMS, n))       # SoA
        centers = rng.uniform(-1.0, 1.0, (SC_CENTERS, SC_DIMS))

        def dist_to(k):
            acc = (points[0] - centers[k, 0]) * (points[0] - centers[k, 0])
            for d in range(1, SC_DIMS):
                diff = points[d] - centers[k, d]
                acc = acc + diff * diff
            return acc

        # reference tracks the kernel's strict-less-than argmin update
        best = dist_to(0)
        idx = np.zeros(n)
        for k in range(1, SC_CENTERS):
            dist = dist_to(k)
            closer = dist < best
            idx = np.where(closer, float(k), idx)
            best = np.minimum(best, dist)

        arena = Arena()
        dim_addrs = [arena.alloc_f64(f"dim{d}", n) for d in range(SC_DIMS)]
        mind_addr = arena.alloc_f64("mindist", n)
        assign_addr = arena.alloc_f64("assign", n)

        kb = KernelBuilder(self.name)
        for d, addr in enumerate(dim_addrs):
            kb.lda(d + 1, addr)                 # r1..r4
        kb.lda(5, mind_addr)
        kb.lda(6, assign_addr)
        kb.setvl(128)
        kb.setvs(8)
        for blk in range(n // 128):
            off = blk * 128 * 8
            for d in range(SC_DIMS):
                kb.vloadq(1 + d, rb=1 + d, disp=off)        # v1..v4
            kb.vvxor(11, 11, 11)                            # idx = 0.0
            for k in range(SC_CENTERS):
                dest = 10 if k == 0 else 9                  # best | candidate
                kb.vssubt(8, 1, imm=float(centers[k, 0]))
                kb.vvmult(dest, 8, 8)
                for d in range(1, SC_DIMS):
                    kb.vssubt(8, 1 + d, imm=float(centers[k, d]))
                    kb.vvmult(8, 8, 8)
                    kb.vvaddt(dest, dest, 8)
                if k > 0:
                    kb.vvcmptlt(12, 9, 10)      # dist < best, before update
                    kb.setvm(12)
                    kb.vsmult(11, 11, imm=0.0, masked=True)
                    kb.vsaddt(11, 11, imm=float(k), masked=True)
                    kb.vvmint(10, 10, 9)
            kb.vstoreq(10, rb=5, disp=off)
            kb.vstoreq(11, rb=6, disp=off)

        def setup(mem):
            for addr, dim in zip(dim_addrs, points):
                mem.write_f64(addr, dim)

        def check(mem):
            np.testing.assert_allclose(mem.read_f64(mind_addr, n), best,
                                       rtol=1e-12)
            np.testing.assert_allclose(mem.read_f64(assign_addr, n), idx)

        flops_per_point = SC_CENTERS * (3 * SC_DIMS) + (SC_CENTERS - 1) * 2
        loop = ScalarLoopBody(
            name=self.name, flops=float(flops_per_point),
            int_ops=6.0, loads=float(SC_DIMS), stores=2.0,
            mispredicts_per_iter=0.3,           # the argmin update branch
            streams=[
                MemStream(f"dim{d}", read_bytes_per_iter=8.0,
                          footprint_bytes=n * 8)
                for d in range(SC_DIMS)
            ] + [
                MemStream("out", write_bytes_per_iter=16.0,
                          footprint_bytes=2 * n * 8, full_line_writes=True),
            ],
            iterations=n)

        return WorkloadInstance(
            name=self.name, program=kb.build(), scalar_loop=loop,
            setup=setup, check=check,
            workload_bytes=(SC_DIMS + 2) * 8 * n,
            warm_ranges=[(addr, n * 8) for addr in dim_addrs],
            flops_expected=flops_per_point * n,
            buffers=arena.declare_buffers())
