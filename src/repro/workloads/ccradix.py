"""ccradix — tiled integer radix sort (Table 2, from Jimenez-Gonzalez
et al.), the paper's gather/scatter stress test ("a speedup of almost 3X
over EV8 and 15 sustained operations per cycle").

The vectorization follows the classic vector radix sort (Zagha &
Blelloch): each of the 128 vector element *slots* owns a contiguous
chunk of the key array and a private histogram row, so

* the counting phase's gather-increment-scatter touches the unique
  address ``(slot, digit)`` and never collides inside a batch;
* the per-(slot,digit) starting offsets, combined slot-major, make the
  permutation *stable*, which is what lets the LSD passes compose.

Keys live in a 128-row layout with one element of row padding so the
inter-row stride is an odd multiple of 8 bytes — a bank-conflict-free
stride for the reorder ROM (a self-conflicting power-of-two stride here
would funnel every key load through the CR box one address at a time;
padding the rows is exactly the kind of tuning the paper's hand-coded
benchmarks applied).  Permutation ranks are converted to padded
addresses with shift/mask vector arithmetic (the row count is a power
of two).

This kernel leans on every gather/scatter path at once: stride-1 and
odd-stride loads, CR-box gathers and scatters for histograms and the
permutation — and stride-1 still matters (Figure 9 notes ccradix loses
performance without the pump).
"""

from __future__ import annotations

import math

import numpy as np

from repro.isa.builder import KernelBuilder
from repro.scalar.loopmodel import MemStream, ScalarLoopBody
from repro.workloads.base import Arena, Workload, WorkloadInstance

BASE_KEYS = 1 << 15        # paper: 2 000 000 elements
RADIX_BITS = 8
DIGITS = 1 << RADIX_BITS
KEY_BITS = 16              # two passes of radix-256
SLOTS = 128
SEED = 0xCC4


class CCRadix(Workload):
    name = "ccradix"
    description = "Tiled Integer Sort (vectorized radix sort)"
    category = "Integer"
    inputs = "2000000 elements (scaled)"
    comments = "From Jimenez-Gonzalez et al."
    uses_prefetch = True
    uses_drainm = True
    paper_vectorization_pct = 98.0

    def build(self, scale: float = 1.0) -> WorkloadInstance:
        # keys per slot must be a power of two (rank->address uses shifts)
        cols = max(1 << round(math.log2(max(BASE_KEYS * scale, 256) / SLOTS)), 2)
        n = SLOTS * cols
        row = cols + 1 if cols % 2 == 0 else cols   # odd stride, in elements
        lc = int(math.log2(cols))
        rng = np.random.default_rng(SEED)
        keys0 = rng.integers(0, 1 << KEY_BITS, n).astype(np.uint64)

        arena = Arena()
        buf = [arena.alloc("keysA", SLOTS * row * 8),
               arena.alloc("keysB", SLOTS * row * 8)]
        count_addr = arena.alloc("count", SLOTS * DIGITS * 8)
        start_addr = arena.alloc("start", SLOTS * DIGITS * 8)
        totals_addr = arena.alloc("totals", DIGITS * 8)

        kb = KernelBuilder(self.name)
        kb.lda(3, count_addr)
        kb.lda(4, start_addr)
        kb.lda(5, totals_addr)
        kb.setvl(128)
        kb.viota(20)                          # v20 = slot ids 0..127
        kb.vssll(21, 20, imm=3 + RADIX_BITS)  # slot*2048: histogram row

        for p in range(KEY_BITS // RADIX_BITS):
            shift = p * RADIX_BITS
            kb.lda(1, buf[p % 2])
            kb.lda(2, buf[(p + 1) % 2])
            self._emit_pass(kb, cols, row, lc, shift)

        expected = np.sort(keys0)

        def pad(arr: np.ndarray) -> np.ndarray:
            out = np.zeros(SLOTS * row, dtype=np.uint64)
            grid = out.reshape(SLOTS, row)
            grid[:, :cols] = arr.reshape(SLOTS, cols)
            return out

        def unpad(flat: np.ndarray) -> np.ndarray:
            return flat.reshape(SLOTS, row)[:, :cols].ravel()

        def setup(mem):
            mem.write_array(buf[0], pad(keys0))

        def check(mem):
            got = unpad(mem.read_array(buf[0], SLOTS * row))
            np.testing.assert_array_equal(got, expected)

        # scalar radix sort baseline: the 256-entry histogram lives in
        # L1 and the cache-conscious tiling keeps each pass's scatters
        # inside the L2 tile — but the key array itself (16 MB in the
        # paper) streams through memory on every pass, reads and
        # write-allocated writes both.  That stream is what keeps the
        # EV8 result within ~3x of Tarantula rather than a blowout.
        passes = KEY_BITS // RADIX_BITS
        paper_keys = 2_000_000 * 8
        loop = ScalarLoopBody(
            name=self.name, flops=0.0, int_ops=8.0 * passes,
            loads=3.0 * passes, stores=2.0 * passes, branches=1.0 * passes,
            streams=[
                MemStream("keys", read_bytes_per_iter=8.0 * passes,
                          write_bytes_per_iter=8.0 * passes,
                          footprint_bytes=paper_keys),
            ],
            iterations=n)

        return WorkloadInstance(
            name=self.name, program=kb.build(), scalar_loop=loop,
            setup=setup, check=check,
            workload_bytes=4 * n * 8 * passes,
            warm_ranges=[(buf[0], SLOTS * row * 8), (buf[1], SLOTS * row * 8),
                         (count_addr, SLOTS * DIGITS * 8),
                         (start_addr, SLOTS * DIGITS * 8)],
            buffers=arena.declare_buffers())

    @staticmethod
    def _emit_pass(kb: KernelBuilder, cols: int, row: int, lc: int,
                   shift: int) -> None:
        """One stable radix-256 pass: count, scan, permute.

        Register map: v11 keys/digits, v12 histogram offsets, v13
        counts/ranks, v18 key copy, v20/21 slot constants.
        """
        row_bytes = DIGITS * 8

        # zero the per-slot histogram (count[slot][digit] = 0)
        kb.setvs(8)
        kb.vvxor(10, 10, 10)
        for off in range(0, SLOTS * row_bytes, 128 * 8):
            kb.vstoreq(10, rb=3, disp=off)

        # counting: batch b loads element (slot, b) of each slot's chunk
        kb.setvs(row * 8)
        for b in range(cols):
            kb.vloadq(11, rb=1, disp=b * 8)
            if shift:
                kb.vssrl(11, 11, imm=shift)
            kb.vsand(11, 11, imm=DIGITS - 1)          # digit
            kb.vssll(12, 11, imm=3)
            kb.vvaddq(12, 12, 21)                     # (slot, digit) offset
            kb.vgathq(13, 12, rb=3)
            kb.vsaddq(13, 13, imm=1)
            kb.vscatq(13, 12, rb=3)

        # column totals: totals[digit] = sum over slots of count[s][digit]
        kb.setvs(8)
        for db in range(DIGITS // 128):
            doff = db * 128 * 8
            kb.vvxor(14, 14, 14)
            for s in range(SLOTS):
                kb.vloadq(15, rb=3, disp=s * row_bytes + doff)
                kb.vvaddq(14, 14, 15)
            kb.vstoreq(14, rb=5, disp=doff)

        # global exclusive prefix over the 256 digit totals (scalar)
        kb.lda(10, 0)
        for d in range(DIGITS):
            kb.ldq(11, rb=5, disp=d * 8)
            kb.stq(10, rb=5, disp=d * 8)
            kb.addq(10, 10, rb=11)
        # the prefix is re-read by vector loads below, but the scalar
        # stores sit in EV8's write buffer / L1 — the one coherency
        # direction section 3.4 does NOT make transparent.  drainm
        # purges the write buffer and updates the P-bits first.
        kb.drainm()

        # per-slot starts: start[0][d] = prefix[d];
        # start[s][d] = start[s-1][d] + count[s-1][d]   (slot-major order
        # over contiguous chunks is what makes the pass stable)
        for db in range(DIGITS // 128):
            doff = db * 128 * 8
            kb.vloadq(16, rb=5, disp=doff)
            kb.vstoreq(16, rb=4, disp=doff)
            for s in range(1, SLOTS):
                kb.vloadq(17, rb=3, disp=(s - 1) * row_bytes + doff)
                kb.vvaddq(16, 16, 17)
                kb.vstoreq(16, rb=4, disp=s * row_bytes + doff)

        # permutation: dst[pad(rank[slot][digit]++)] = key
        kb.setvs(row * 8)
        for b in range(cols):
            kb.vloadq(11, rb=1, disp=b * 8)
            kb.vvbis(18, 11, 11)                      # key copy
            if shift:
                kb.vssrl(11, 11, imm=shift)
            kb.vsand(11, 11, imm=DIGITS - 1)
            kb.vssll(12, 11, imm=3)
            kb.vvaddq(12, 12, 21)
            kb.vgathq(13, 12, rb=4)                   # rank
            # rank -> padded address: ((rank>>lc)*row + (rank&(cols-1)))*8
            kb.vssrl(15, 13, imm=lc)
            kb.vsmulq(15, 15, imm=row)
            kb.vsand(16, 13, imm=cols - 1)
            kb.vvaddq(15, 15, 16)
            kb.vssll(15, 15, imm=3)
            kb.vscatq(18, 15, rb=2)                   # place the key
            kb.vsaddq(13, 13, imm=1)
            kb.vscatq(13, 12, rb=4)                   # rank++
