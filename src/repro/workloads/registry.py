"""Workload registry: every benchmark and every named suite.

The registry maps Table 2 names to :class:`Workload` factories; the
suite registry (:mod:`repro.workloads.suite`) groups those names into
the collections the harness iterates:

* ``tarantula`` — the paper's 19 benchmarks, sorted by name.  Table 2
  and ``repro bench`` pin themselves to this suite (NOT the whole
  registry) so their output stays byte-stable as new families land.
* ``figures`` — the 12 application benchmarks of Figures 6-8, in the
  paper's bar-chart order (also exported as ``FIGURE_SUITE``).
* ``table4`` — the memory-system microkernels of Table 4 (also
  exported as ``TABLE4_SUITE``).
* ``rivec`` — the RiVEC vectorized-suite port
  (:mod:`repro.workloads.rivec`, :mod:`repro.workloads.rivec_sparse`).

``FIGURE_SUITE``/``TABLE4_SUITE`` stay importable as before — a
:class:`Suite` *is* a tuple of names, so legacy consumers notice no
difference.
"""

from __future__ import annotations

import difflib

from repro.workloads.algebra import DGEMM, DTRMM
from repro.workloads.base import Workload
from repro.workloads.ccradix import CCRadix
from repro.workloads.fft import BatchFFT
from repro.workloads.lu import LU, Linpack100, LinpackTPP
from repro.workloads.moldyn import Moldyn
from repro.workloads.random_access import RndCopy, RndMemScale
from repro.workloads.rivec import RIVEC_SOURCE, RivecAxpy, RivecBlackscholes, \
    RivecJacobi2D, RivecPathfinder
from repro.workloads.rivec_sparse import RivecSpmvCSR, RivecSpmvELL, \
    RivecStreamcluster
from repro.workloads.sparse import SparseMxV
from repro.workloads.specfp import ArtSurrogate, SixtrackSurrogate, \
    SwimSurrogate
from repro.workloads.streams import StreamsAdd, StreamsCopy, StreamsScale, \
    StreamsTriad
from repro.workloads.suite import Suite, register_suite

#: the paper's own benchmarks (Table 2), in registration order
_TARANTULA_WORKLOADS: tuple[Workload, ...] = (
    StreamsCopy(), StreamsScale(), StreamsAdd(), StreamsTriad(),
    RndCopy(), RndMemScale(),
    SwimSurrogate(tiled=True), SwimSurrogate(tiled=False),
    ArtSurrogate(), SixtrackSurrogate(),
    DGEMM(), DTRMM(), SparseMxV(), BatchFFT(),
    LU(), Linpack100(), LinpackTPP(),
    Moldyn(),
    CCRadix(),
)

#: the RiVEC port (suite order: dense kernels first, then irregular)
_RIVEC_WORKLOADS: tuple[Workload, ...] = (
    RivecAxpy(), RivecBlackscholes(), RivecJacobi2D(), RivecPathfinder(),
    RivecSpmvCSR(), RivecSpmvELL(), RivecStreamcluster(),
)


def _build_registry() -> dict[str, Workload]:
    return {w.name: w for w in _TARANTULA_WORKLOADS + _RIVEC_WORKLOADS}


#: every benchmark, keyed by name
REGISTRY: dict[str, Workload] = _build_registry()

#: the paper's 19 benchmarks, sorted — the byte-stable Table 2 order
TARANTULA_SUITE = register_suite(Suite(
    "tarantula", sorted(w.name for w in _TARANTULA_WORKLOADS),
    title="Tarantula paper suite (Table 2)",
    source="Tarantula: A Vector Extension to the Alpha Architecture, "
           "ISCA 2002, Table 2"))

#: the application benchmarks plotted in Figures 6-8 (paper order)
FIGURE_SUITE = register_suite(Suite(
    "figures",
    ("swim", "art", "sixtrack",
     "dgemm", "dtrmm", "sparsemxv", "fft", "lu",
     "linpack100", "linpacktpp",
     "moldyn", "ccradix"),
    title="Figure 6-8 application benchmarks",
    source="Tarantula ISCA 2002, Figures 6-8 (paper bar-chart order)"))

#: the memory-system microkernels of Table 4
TABLE4_SUITE = register_suite(Suite(
    "table4",
    ("streams.copy", "streams.scale", "streams.add", "streams.triad",
     "rndcopy", "rndmemscale"),
    title="Table 4 memory-system microkernels",
    source="Tarantula ISCA 2002, Table 4"))

#: the ported RiVEC vectorized suite
RIVEC_SUITE = register_suite(Suite(
    "rivec", tuple(w.name for w in _RIVEC_WORKLOADS),
    title="RiVEC vectorized-suite port",
    source=RIVEC_SOURCE))

for _suite in (TARANTULA_SUITE, FIGURE_SUITE, TABLE4_SUITE, RIVEC_SUITE):
    _suite.validate(REGISTRY)


def get(name: str) -> Workload:
    """Look up one workload by its Table 2 name.

    Misses raise ``KeyError`` with difflib close-match suggestions —
    the same courtesy the lint CLI extends to mistyped targets.
    """
    try:
        return REGISTRY[name]
    except KeyError:
        lines = [f"unknown workload {name!r}"]
        close = difflib.get_close_matches(name, sorted(REGISTRY), n=3)
        if close:
            lines.append(f"did you mean: {', '.join(close)}?")
        lines.append("known: " + ", ".join(sorted(REGISTRY)))
        raise KeyError("; ".join(lines)) from None
