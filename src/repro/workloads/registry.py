"""Workload registry: the Table 2 benchmark suite, by name.

The registry is what the harness iterates to regenerate Figures 6-9.
``FIGURE_SUITE`` lists the benchmarks the paper's bar charts show;
``swim.untiled`` participates only in the section-6 tiling ablation.
"""

from __future__ import annotations

from repro.workloads.algebra import DGEMM, DTRMM
from repro.workloads.base import Workload
from repro.workloads.ccradix import CCRadix
from repro.workloads.fft import BatchFFT
from repro.workloads.lu import LU, Linpack100, LinpackTPP
from repro.workloads.moldyn import Moldyn
from repro.workloads.random_access import RndCopy, RndMemScale
from repro.workloads.sparse import SparseMxV
from repro.workloads.specfp import ArtSurrogate, SixtrackSurrogate, \
    SwimSurrogate
from repro.workloads.streams import StreamsAdd, StreamsCopy, StreamsScale, \
    StreamsTriad


def _build_registry() -> dict[str, Workload]:
    workloads = [
        StreamsCopy(), StreamsScale(), StreamsAdd(), StreamsTriad(),
        RndCopy(), RndMemScale(),
        SwimSurrogate(tiled=True), SwimSurrogate(tiled=False),
        ArtSurrogate(), SixtrackSurrogate(),
        DGEMM(), DTRMM(), SparseMxV(), BatchFFT(),
        LU(), Linpack100(), LinpackTPP(),
        Moldyn(),
        CCRadix(),
    ]
    return {w.name: w for w in workloads}


#: every benchmark, keyed by name
REGISTRY: dict[str, Workload] = _build_registry()

#: the application benchmarks plotted in Figures 6-8 (paper order)
FIGURE_SUITE: tuple[str, ...] = (
    "swim", "art", "sixtrack",
    "dgemm", "dtrmm", "sparsemxv", "fft", "lu",
    "linpack100", "linpacktpp",
    "moldyn", "ccradix",
)

#: the memory-system microkernels of Table 4
TABLE4_SUITE: tuple[str, ...] = (
    "streams.copy", "streams.scale", "streams.add", "streams.triad",
    "rndcopy", "rndmemscale",
)


def get(name: str) -> Workload:
    """Look up one workload by its Table 2 name."""
    try:
        return REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None
