"""Sparse matrix-vector product (Table 2: 24696x24696, 887937 non-zeroes).

The kernel uses the ELLPACK layout classic to vector machines: values
and column indices are stored column-major over a 128-row block, so the
value/index loads are unit-stride and only the ``x`` accesses are
gathers.  Rows shorter than the block's maximum are padded with a zero
value pointing at column 0 — the padded lanes contribute ``0 * x[0]``
and need no mask.

This is the paper's canonical gather-bound benchmark: performance is
limited by CR-box bank conflicts, and (Figure 9) stride-1 performance
still matters because the value/index streams are unit-stride.
"""

from __future__ import annotations

import math

import numpy as np

from repro.isa.builder import KernelBuilder
from repro.scalar.loopmodel import AccessPattern, MemStream, ScalarLoopBody
from repro.workloads.base import Arena, Workload, WorkloadInstance

BASE_ROWS = 2048          # paper: 24696
NNZ_PER_ROW = 36          # paper: 887937 / 24696 ~ 36
SEED = 0x59A3


class SparseMxV(Workload):
    name = "sparsemxv"
    description = "Sparse matrix-vector product y = A @ x (ELLPACK)"
    category = "Algebra"
    inputs = "24696x24696, 887937 non-zeroes (scaled)"
    comments = "887937 non-zeroes"
    uses_prefetch = True
    paper_vectorization_pct = 99.3

    def build(self, scale: float = 1.0) -> WorkloadInstance:
        rows = max(int(BASE_ROWS * scale) // 128 * 128, 128)
        rng = np.random.default_rng(SEED)
        # ragged rows: nnz varies a bit around the mean, like a real matrix
        nnz = rng.integers(NNZ_PER_ROW - 8, NNZ_PER_ROW + 9, rows)
        width = int(nnz.max())
        cols = np.zeros((width, rows), dtype=np.int64)
        vals = np.zeros((width, rows), dtype=np.float64)
        for r in range(rows):
            k = int(nnz[r])
            # unsorted within the row: sorting would correlate the k-th
            # column across adjacent rows and artificially serialize the
            # gather's bank distribution
            cols[:k, r] = rng.choice(rows, size=k, replace=False)
            vals[:k, r] = rng.standard_normal(k)
        x0 = rng.standard_normal(rows)
        expected = np.einsum("kr,kr->r", vals, x0[cols])

        arena = Arena()
        val_addr = arena.alloc_f64("vals", width * rows)
        colb_addr = arena.alloc("colbytes", width * rows * 8)
        x_addr = arena.alloc_f64("x", rows)
        y_addr = arena.alloc_f64("y", rows)

        kb = KernelBuilder(self.name)
        kb.lda(1, val_addr)
        kb.lda(2, colb_addr)
        kb.lda(3, x_addr)
        kb.lda(4, y_addr)
        kb.setvl(128)
        kb.setvs(8)
        row_bytes = rows * 8
        for rb in range(rows // 128):
            roff = rb * 128 * 8
            kb.vvxor(10, 10, 10)                        # acc = 0
            for k in range(width):
                koff = k * row_bytes + roff
                kb.vloadq(5, rb=1, disp=koff)           # vals[k, block]
                kb.vloadq(6, rb=2, disp=koff)           # col byte offsets
                kb.vgathq(7, 6, rb=3)                   # x[col]
                kb.vvmult(8, 5, 7)
                kb.vvaddt(10, 10, 8)
            kb.vstoreq(10, rb=4, disp=roff)             # y[block]

        def setup(mem):
            mem.write_f64(val_addr, vals.ravel())
            mem.write_array(colb_addr, (cols.ravel() * 8).astype(np.uint64))
            mem.write_f64(x_addr, x0)

        def check(mem):
            got = mem.read_f64(y_addr, rows)
            np.testing.assert_allclose(got, expected, rtol=1e-9)

        # paper regime: 887937 nonzeroes -> values+indices ~14 MB, which
        # exceeds EV8's 4 MB L2 (streamed from memory) but fits
        # Tarantula's 16 MB; x (~200 KB) is randomly touched
        paper_nnz_bytes = 887_937 * 8
        loop = ScalarLoopBody(
            name=self.name, flops=2.0, int_ops=3.0, loads=3.0, stores=1.0 / width,
            streams=[
                MemStream("vals", read_bytes_per_iter=8.0,
                          footprint_bytes=paper_nnz_bytes),
                MemStream("cols", read_bytes_per_iter=8.0,
                          footprint_bytes=paper_nnz_bytes),
                MemStream("x", read_bytes_per_iter=8.0,
                          footprint_bytes=24_696 * 8,
                          pattern=AccessPattern.RANDOM),
            ],
            iterations=width * rows)

        # the paper's matrix (~14.2 MB) is a marginal fit in the 16 MB
        # L2 (ratio ~0.89): mostly resident, but capacity misses keep a
        # real memory stream alive — which is exactly why sparsemxv
        # stops scaling with frequency in Figure 8.  The scaled instance
        # preserves that ratio via the L2 hint.
        matrix_bytes = 2 * width * rows * 8
        l2_hint = 1 << max(int(math.floor(math.log2(matrix_bytes / 0.89))), 17)
        return WorkloadInstance(
            name=self.name, program=kb.build(), scalar_loop=loop,
            setup=setup, check=check,
            workload_bytes=(2 * width * rows + 2 * rows) * 8,
            warm_ranges=[(x_addr, rows * 8),
                         (val_addr, width * rows * 8),
                         (colb_addr, width * rows * 8)],
            l2_bytes_hint=l2_hint,
            flops_expected=2 * width * rows,
            buffers=arena.declare_buffers())
