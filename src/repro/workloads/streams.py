"""STREAMS microkernels: Copy, Scale, Add, Triad (Table 2 / Table 4).

McCalpin's four loops, hand-vectorized.  Every store overwrites whole
cache lines, so the pump-store path takes the directory-transition
allocation (the ``wh64`` accounting of section 6); software prefetch
runs two 128-element blocks ahead, as the paper's "Pref? yes" column
indicates.
"""

from __future__ import annotations

import numpy as np

from repro.isa.builder import KernelBuilder
from repro.scalar.loopmodel import MemStream, ScalarLoopBody
from repro.workloads.base import Arena, Workload, WorkloadInstance

#: elements per array at scale=1.0
BASE_ELEMENTS = 1 << 18
#: software prefetch distance in 128-element blocks
PREFETCH_BLOCKS = 2

SCALE_FACTOR = 3.0


class _StreamsKernel(Workload):
    """Common scaffolding for the four STREAMS loops."""

    category = "MicroKernels"
    inputs = "Reference"
    comments = "Padding=65856 bytes"
    uses_prefetch = True
    uses_drainm = False
    paper_vectorization_pct = 99.5

    #: subclasses fill these
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    flops_per_element: int = 0

    def _elements(self, scale: float) -> int:
        n = max(int(BASE_ELEMENTS * scale), 128)
        return (n // 128) * 128

    def _emit_block(self, kb: KernelBuilder, regs: dict[str, int],
                    off: int) -> None:
        raise NotImplementedError

    def _reference(self, a, b, c):
        raise NotImplementedError

    def build(self, scale: float = 1.0) -> WorkloadInstance:
        n = self._elements(scale)
        arena = Arena()
        addr = {name: arena.alloc_f64(name, n) for name in ("a", "b", "c")}
        regs = {"a": 1, "b": 2, "c": 3}

        kb = KernelBuilder(self.name)
        for name, reg in regs.items():
            kb.lda(reg, addr[name])
        kb.setvl(128)
        kb.setvs(8)
        blocks = n // 128
        for blk in range(blocks):
            off = blk * 128 * 8
            pf_blk = blk + PREFETCH_BLOCKS
            if pf_blk < blocks:
                for name in self.reads:
                    kb.vprefetch(regs[name], disp=pf_blk * 128 * 8)
            self._emit_block(kb, regs, off)

        a0 = np.sin(np.arange(n) * 0.1) + 1.5
        b0 = np.cos(np.arange(n) * 0.05) + 2.0
        c0 = np.linspace(0.5, 1.5, n)

        def setup(mem):
            mem.write_f64(addr["a"], a0)
            mem.write_f64(addr["b"], b0)
            mem.write_f64(addr["c"], c0)

        def check(mem):
            expect = {"a": a0.copy(), "b": b0.copy(), "c": c0.copy()}
            self._reference(expect["a"], expect["b"], expect["c"])
            for name in self.writes + self.reads:
                got = mem.read_f64(addr[name], n)
                np.testing.assert_allclose(got, expect[name], rtol=1e-12,
                                           err_msg=f"array {name}")

        # the scalar baseline is evaluated in the paper's regime: STREAMS
        # arrays (2M elements) never fit any cache
        paper_footprint = 2_000_000 * 8
        streams = []
        for name in self.reads:
            streams.append(MemStream(name, read_bytes_per_iter=8.0,
                                     footprint_bytes=paper_footprint))
        for name in self.writes:
            streams.append(MemStream(name, write_bytes_per_iter=8.0,
                                     footprint_bytes=paper_footprint,
                                     full_line_writes=True))
        loop = ScalarLoopBody(
            name=self.name,
            flops=float(self.flops_per_element),
            int_ops=2.0, loads=float(len(self.reads)),
            stores=float(len(self.writes)),
            prefetches=float(len(self.reads)) / 8.0,  # one per line
            streams=streams, iterations=n)

        return WorkloadInstance(
            name=self.name, program=kb.build(), scalar_loop=loop,
            setup=setup, check=check,
            workload_bytes=(len(self.reads) + len(self.writes)) * 8 * n,
            flops_expected=self.flops_per_element * n,
            buffers=arena.declare_buffers())


class StreamsCopy(_StreamsKernel):
    name = "streams.copy"
    description = "STREAMS Copy kernel: c(i) = a(i)"
    reads = ("a",)
    writes = ("c",)
    flops_per_element = 0

    def _emit_block(self, kb, regs, off):
        kb.vloadq(4, rb=regs["a"], disp=off)
        kb.vstoreq(4, rb=regs["c"], disp=off)

    def _reference(self, a, b, c):
        c[:] = a


class StreamsScale(_StreamsKernel):
    name = "streams.scale"
    description = "STREAMS Scale kernel: b(i) = s * c(i)"
    reads = ("c",)
    writes = ("b",)
    flops_per_element = 1

    def _emit_block(self, kb, regs, off):
        kb.vloadq(4, rb=regs["c"], disp=off)
        kb.vsmult(5, 4, imm=SCALE_FACTOR)
        kb.vstoreq(5, rb=regs["b"], disp=off)

    def _reference(self, a, b, c):
        b[:] = SCALE_FACTOR * c


class StreamsAdd(_StreamsKernel):
    name = "streams.add"
    description = "STREAMS Add kernel: c(i) = a(i) + b(i)"
    reads = ("a", "b")
    writes = ("c",)
    flops_per_element = 1

    def _emit_block(self, kb, regs, off):
        kb.vloadq(4, rb=regs["a"], disp=off)
        kb.vloadq(5, rb=regs["b"], disp=off)
        kb.vvaddt(6, 4, 5)
        kb.vstoreq(6, rb=regs["c"], disp=off)

    def _reference(self, a, b, c):
        c[:] = a + b


class StreamsTriad(_StreamsKernel):
    name = "streams.triad"
    description = "STREAMS Triad kernel: a(i) = b(i) + s * c(i)"
    reads = ("b", "c")
    writes = ("a",)
    flops_per_element = 2

    def _emit_block(self, kb, regs, off):
        kb.vloadq(4, rb=regs["b"], disp=off)
        kb.vloadq(5, rb=regs["c"], disp=off)
        kb.vsmult(6, 5, imm=SCALE_FACTOR)
        kb.vvaddt(7, 4, 6)
        kb.vstoreq(7, rb=regs["a"], disp=off)

    def _reference(self, a, b, c):
        a[:] = b + SCALE_FACTOR * c
