"""Suite x Instance matrix: the declarative shape of an evaluation.

The paper's evaluation is one fixed set of 19 kernels run on a handful
of machines.  This module lifts that shape into first-class objects so
new benchmark families and machine families compose without forking the
harness (ROADMAP item 4, mirroring the ``target.py``/``instance.py``
split of instrumentation-infra):

* :class:`Suite` — a named, ordered, duplicate-free collection of
  workload *names* with provenance metadata.  It subclasses ``tuple``,
  so every consumer of the old module-level name tuples
  (``FIGURE_SUITE``, ``TABLE4_SUITE``) keeps working unchanged.
* :class:`Instance` — one named machine point: a base
  :class:`~repro.core.config.MachineConfig` name plus overrides and a
  problem-scale factor.
* :class:`InstanceFamily` — a named, ordered collection of instances
  (the machine axis of a sweep: baselines, frequency scaling, ...).
* :class:`Matrix` — suite x family, expanded into the frozen
  :class:`~repro.harness.engine.ExperimentSpec` grid the engine
  already executes, in deterministic workload-major order.

Registries (:data:`SUITES`, :data:`FAMILIES`) let the CLI enumerate
what exists (``repro list-suites``) and resolve ``--suite``/
``--instances`` flags; ``repro.workloads.registry`` registers the
shipped suites at import time.  docs/WORKLOADS.md documents the model.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional, Union

from repro.core.config import CONFIGURATIONS
from repro.errors import ConfigError


class Suite(tuple):
    """A named, ordered collection of workload names.

    ``Suite`` *is* a tuple of names — iteration, indexing, ``in``,
    ``len`` and equality all behave exactly like the bare tuples the
    harness used to hard-code, which is what keeps the refactor
    byte-identical — plus a name, a human title and provenance (where
    the suite's composition comes from).
    """

    name: str
    title: str
    source: str

    def __new__(cls, name: str, workloads: Iterable[str],
                title: str = "", source: str = "") -> "Suite":
        names = tuple(workloads)
        seen: set[str] = set()
        for w in names:
            if w in seen:
                raise ConfigError(f"suite {name!r}: duplicate workload {w!r}")
            seen.add(w)
        if not names:
            raise ConfigError(f"suite {name!r}: no workloads")
        self = super().__new__(cls, names)
        self.name = name
        self.title = title or name
        self.source = source
        return self

    @property
    def workloads(self) -> tuple[str, ...]:
        return tuple(self)

    def validate(self, registry: Mapping[str, object]) -> "Suite":
        """Check every member is a registered workload; returns self."""
        for w in self:
            if w not in registry:
                raise ConfigError(
                    f"suite {self.name!r}: unknown workload {w!r}")
        return self

    def __repr__(self) -> str:
        return f"<Suite {self.name}: {len(self)} workload(s)>"

    def __reduce__(self):
        return (Suite, (self.name, tuple(self), self.title, self.source))


@dataclass(frozen=True)
class Instance:
    """One machine/config/scale point of the instance axis.

    ``config`` names a base :class:`MachineConfig`; ``overrides`` are
    ``(field, value)`` replacements (the engine's only sanctioned way to
    vary a machine); ``scale_factor`` multiplies every workload's
    problem scale, so one family can hold e.g. an L2-resident and a
    4x memory-resident point of the same machine.
    """

    name: str
    config: str = "T"
    scale_factor: float = 1.0
    overrides: tuple = ()
    apply_l2_hint: bool = True

    def __post_init__(self) -> None:
        if self.config not in CONFIGURATIONS:
            known = ", ".join(sorted(CONFIGURATIONS))
            raise ConfigError(
                f"instance {self.name!r}: unknown configuration "
                f"{self.config!r}; known: {known}")
        if self.scale_factor <= 0:
            raise ConfigError(
                f"instance {self.name!r}: scale_factor must be positive")


class InstanceFamily(tuple):
    """A named, ordered collection of :class:`Instance` points."""

    name: str
    description: str

    def __new__(cls, name: str, instances: Iterable[Instance],
                description: str = "") -> "InstanceFamily":
        members = tuple(instances)
        if not members:
            raise ConfigError(f"instance family {name!r}: no instances")
        seen: set[str] = set()
        for inst in members:
            if not isinstance(inst, Instance):
                raise ConfigError(
                    f"instance family {name!r}: {inst!r} is not an Instance")
            if inst.name in seen:
                raise ConfigError(
                    f"instance family {name!r}: duplicate instance "
                    f"{inst.name!r}")
            seen.add(inst.name)
        self = super().__new__(cls, members)
        self.name = name
        self.description = description
        return self

    @classmethod
    def of_configs(cls, name: str, configs: Iterable[str],
                   description: str = "") -> "InstanceFamily":
        """A family with one default instance per named configuration."""
        return cls(name, (Instance(cfg, config=cfg) for cfg in configs),
                   description=description)

    @property
    def instance_names(self) -> tuple[str, ...]:
        return tuple(inst.name for inst in self)

    def __repr__(self) -> str:
        return f"<InstanceFamily {self.name}: {self.instance_names}>"

    def __reduce__(self):
        return (InstanceFamily, (self.name, tuple(self), self.description))


#: per-kernel problem scale, a uniform scale, or None (workload default)
Scales = Union[None, float, Mapping[str, float]]


@dataclass
class Matrix:
    """Suite x InstanceFamily, expanded to the engine's spec grid.

    Expansion is deterministic and workload-major: all instances of the
    suite's first workload, then all instances of the second, ... — the
    exact order the figure generators have always used, so parallel and
    serial grid runs stay byte-identical.

    ``scales`` resolves each workload's problem scale: a mapping gives
    per-kernel scales (missing names fall back to the workload's
    ``default_scale``), a float applies uniformly, ``None`` uses every
    workload's default.  The instance's ``scale_factor`` and the
    ``quick`` quarter-factor multiply on top.
    """

    suite: Suite
    family: InstanceFamily
    scales: Scales = None
    quick: bool = False
    check: bool = False
    mode: str = "auto"
    #: optional per-cell spec customization: ``(spec, workload, instance)
    #: -> spec`` applied after expansion (Table 4 uses it for drain
    #: accounting and footprint-ratio overrides)
    adjust: Optional[Callable] = field(default=None, repr=False)

    def scale_for(self, workload: str, instance: Instance) -> float:
        if isinstance(self.scales, Mapping):
            base = self.scales.get(workload)
        elif self.scales is not None:
            base = float(self.scales)
        else:
            base = None
        if base is None:
            from repro.workloads.registry import get

            base = get(workload).default_scale
        return base * instance.scale_factor * (0.25 if self.quick else 1.0)

    def cells(self) -> list[tuple[str, Instance, "ExperimentSpec"]]:
        """The expanded grid: ``(workload, instance, spec)`` triples."""
        from repro.harness.engine import ExperimentSpec

        out = []
        for workload in self.suite:
            for instance in self.family:
                spec = ExperimentSpec(
                    workload, instance.config,
                    self.scale_for(workload, instance),
                    overrides=instance.overrides, check=self.check,
                    apply_l2_hint=instance.apply_l2_hint, mode=self.mode)
                if self.adjust is not None:
                    spec = self.adjust(spec, workload, instance)
                out.append((workload, instance, spec))
        return out

    def specs(self) -> list["ExperimentSpec"]:
        return [spec for _, _, spec in self.cells()]

    def run(self, jobs: int = 1, cache=None, pool=None,
            policy=None) -> dict[str, dict[str, object]]:
        """Execute the grid; returns ``outcome[workload][instance.name]``.

        Dispatches through :func:`repro.harness.engine.execute_many`,
        so deduplication, process fan-out, caching and cell-failure
        capture all apply.  ``pool``/``policy`` pass straight through —
        a prebuilt backend (chaos drills) and a
        :class:`~repro.harness.pool.PoolPolicy` fault budget.
        """
        from repro.harness.engine import execute_many

        cells = self.cells()
        outcomes = execute_many([spec for _, _, spec in cells],
                                jobs=jobs, cache=cache, pool=pool,
                                policy=policy)
        table: dict[str, dict[str, object]] = {}
        for (workload, instance, _), outcome in zip(cells, outcomes):
            table.setdefault(workload, {})[instance.name] = outcome
        return table


# -- registries ------------------------------------------------------------


#: every registered suite, keyed by name (registration order preserved)
SUITES: dict[str, Suite] = {}

#: every registered instance family, keyed by name
FAMILIES: dict[str, InstanceFamily] = {}


def register_suite(suite: Suite) -> Suite:
    """Add ``suite`` to :data:`SUITES`; re-registering a name is an error."""
    if suite.name in SUITES:
        raise ConfigError(f"suite {suite.name!r} already registered")
    SUITES[suite.name] = suite
    return suite


def register_family(family: InstanceFamily) -> InstanceFamily:
    if family.name in FAMILIES:
        raise ConfigError(f"instance family {family.name!r} already registered")
    FAMILIES[family.name] = family
    return family


def _suggest(name: str, known: Iterable[str], kind: str) -> KeyError:
    lines = [f"unknown {kind} {name!r}"]
    close = difflib.get_close_matches(name, sorted(known), n=3)
    if close:
        lines.append(f"did you mean: {', '.join(close)}?")
    lines.append(f"known {kind}s: " + ", ".join(sorted(known)))
    return KeyError("; ".join(lines))


def get_suite(name: str) -> Suite:
    """Look up one registered suite; misses suggest close matches."""
    try:
        return SUITES[name]
    except KeyError:
        raise _suggest(name, SUITES, "suite") from None


def get_family(name: str) -> InstanceFamily:
    """Look up one registered instance family, with suggestions."""
    try:
        return FAMILIES[name]
    except KeyError:
        raise _suggest(name, FAMILIES, "instance family") from None


def list_suites() -> list[Suite]:
    """Every registered suite, in registration order."""
    return list(SUITES.values())


def list_families() -> list[InstanceFamily]:
    return list(FAMILIES.values())


# -- the shipped instance families -----------------------------------------

register_family(InstanceFamily(
    "default", (Instance("T", config="T"),),
    description="the Tarantula machine at each workload's default scale"))

register_family(InstanceFamily.of_configs(
    "baselines", ("T", "EV8", "EV8+"),
    description="Tarantula vs the scalar EV8/EV8+ baselines (Figure 7)"))

register_family(InstanceFamily.of_configs(
    "scaling", ("T", "T4", "T10"),
    description="frequency scaling: 2.13 / 4.8 / 10.66 GHz (Figure 8)"))

register_family(InstanceFamily.of_configs(
    "pump", ("T", "T-nopump"),
    description="stride-1 double-bandwidth PUMP ablation (Figure 9)"))
