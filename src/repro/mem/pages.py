"""Virtual-memory pages.

Tarantula adopted a 512 MByte page size (section 3.4, "Virtual Memory")
to keep the per-lane TLBs small.  The simulator's page table maps
virtual page numbers to physical page numbers; kernels normally run
identity-mapped, but tests construct scrambled mappings to exercise TLB
refill and the forward-progress guarantee for giant strides.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TLBMissTrap
from repro.utils.bitops import is_power_of_two, log2_exact

#: Tarantula's virtual-memory page size (section 3.4).
PAGE_BYTES = 512 << 20


class PageTable:
    """VPN -> PFN map with configurable page size.

    ``identity=True`` (the default) lazily maps every page to itself,
    which is how the benchmark harness runs; explicit tables are used by
    the TLB tests.
    """

    def __init__(self, page_bytes: int = PAGE_BYTES, identity: bool = True) -> None:
        if not is_power_of_two(page_bytes):
            raise ValueError(f"page size must be a power of two, got {page_bytes}")
        self.page_bytes = page_bytes
        self.page_shift = log2_exact(page_bytes)
        self.identity = identity
        self._map: dict[int, int] = {}
        self.walks = 0  # number of page-table walks (refill cost metric)
        #: vpns with a deliberately punched hole: they fault even under
        #: identity mapping (fault-injection seam, docs/FAULTS.md)
        self._holes: set[int] = set()

    def map(self, vpn: int, pfn: int) -> None:
        """Install an explicit translation."""
        self._map[vpn] = pfn

    def unmap(self, vpn: int) -> None:
        self._map.pop(vpn, None)

    def punch_hole(self, vpn: int) -> None:
        """Force ``vpn`` to fault on the next walk, even under identity.

        The fault injector uses holes to provoke a :class:`TLBMissTrap`
        that PALcode cannot service transparently — the OS-has-paged-it-
        out case the precise-trap contract exists for.
        """
        self._holes.add(vpn)

    def fill_hole(self, vpn: int) -> None:
        """Service a hole: the page is mapped again on the next walk."""
        self._holes.discard(vpn)

    def vpn_of(self, vaddr: int) -> int:
        return vaddr >> self.page_shift

    def translate_page(self, vpn: int) -> int:
        """PFN for ``vpn``; walks the table (counted) or identity-maps."""
        self.walks += 1
        if vpn in self._holes:
            raise TLBMissTrap(f"vpn {vpn:#x} unmapped (hole)")
        pfn = self._map.get(vpn)
        if pfn is None:
            if not self.identity:
                raise TLBMissTrap(f"no translation for vpn {vpn:#x}")
            pfn = vpn
        return pfn

    def translate(self, vaddr: int) -> int:
        """Full virtual -> physical translation of a byte address."""
        pfn = self.translate_page(self.vpn_of(vaddr))
        return (pfn << self.page_shift) | (vaddr & (self.page_bytes - 1))

    def translate_many(self, vaddrs: np.ndarray) -> np.ndarray:
        """Vectorized translation (one walk per distinct page touched)."""
        vaddrs = np.ascontiguousarray(vaddrs, dtype=np.uint64)
        vpns = vaddrs >> np.uint64(self.page_shift)
        out = vaddrs.copy()
        for vpn in np.unique(vpns):
            pfn = self.translate_page(int(vpn))
            if pfn != int(vpn):
                sel = vpns == vpn
                offset = vaddrs[sel] & np.uint64(self.page_bytes - 1)
                out[sel] = (np.uint64(pfn) << np.uint64(self.page_shift)) | offset
        return out
