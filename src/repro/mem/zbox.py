"""Zbox: the on-chip memory controller.

Tarantula reuses EV8's Zbox design with more ports (section 3.1).  The
Zbox owns the RAMBUS array and the in-memory coherence directory; every
line it moves is one RAMBUS transaction, and directory state transitions
that need memory reads (the ``wh64`` Invalid->Dirty transition the
STREAMS copy loop relies on) are modeled as explicit ``dirread``
transactions — this is what splits Table 4's "Raw BW" from the useful
"Streams BW".
"""

from __future__ import annotations

from repro.mem.rambus import RambusConfig, RambusSystem
from repro.utils.bitops import line_address
from repro.utils.stats import Counter


class Zbox:
    """Memory controller: line fills, writebacks, directory transitions."""

    def __init__(self, rambus_config: RambusConfig | None = None) -> None:
        self.rambus = RambusSystem(rambus_config)
        self.counters = Counter()

    @property
    def config(self) -> RambusConfig:
        return self.rambus.config

    def fill_line(self, addr: int, earliest: float) -> float:
        """Read a 64-byte line from memory; returns data-at-L2 time."""
        finish = self.rambus.transaction(line_address(addr), "read", earliest)
        self.counters.add("fills")
        return finish + self.config.access_latency

    def writeback_line(self, addr: int, earliest: float) -> float:
        """Write a dirty line back to memory; returns port-drain time."""
        finish = self.rambus.transaction(line_address(addr), "write", earliest)
        self.counters.add("writebacks")
        return finish

    def dirty_transition(self, addr: int, earliest: float) -> float:
        """Directory Invalid->Dirty read for a full-line write allocate
        (the ``wh64`` / pump full-line store path); returns ready time."""
        finish = self.rambus.transaction(line_address(addr), "dirread", earliest)
        self.counters.add("dirty_transitions")
        return finish + self.config.access_latency

    # -- reporting -----------------------------------------------------------

    def raw_bytes(self) -> int:
        return self.rambus.raw_bytes()

    def useful_bytes(self) -> int:
        return self.rambus.useful_bytes()

    def stats(self) -> Counter:
        merged = Counter()
        merged.merge(self.counters)
        merged.merge(self.rambus.counters, prefix="rambus.")
        return merged
