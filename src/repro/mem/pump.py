"""PUMP — the stride-1 double-bandwidth structure (section 3.4, Fig. 4).

Stride-1 instructions whose 128 quadwords fall in 16 cache lines set the
"pump" bit: the 16 full lines are latched into one of the four 16x512-bit
PUMP registers at the banks' outputs, and a per-bank sequencer streams
two quadwords per cycle to the Vbox — 32 qw/cycle for the whole L2, with
an independent, symmetric path for writes (the accumulate register on
the store side).  Together, 64 qw/cycle sustained (section 3.4).

In the timing model the PUMP is two streaming buses (read and write),
each occupied ``128 / 32 = 4`` cycles per full pump slice, plus a
register-count limit of four in-flight pump slices per direction.
Disabling the PUMP (Figure 9's experiment) makes stride-1 instructions
take the ordinary 8-slice reordered path at 16 qw/cycle and multiplies
MAF occupancy by 8.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.utils.stats import Counter
from repro.utils.timeline import CalendarTimeline, MultiPortTimeline

#: quadwords streamed per cycle in each direction (32 read + 32 write)
PUMP_QW_PER_CYCLE = 32
#: PUMP registers per direction (Fig. 4 shows four 16x512-bit registers)
PUMP_REGISTERS = 4


class PumpUnit:
    """Streaming read/write paths between the L2 banks and the Vbox."""

    def __init__(self, enabled: bool = True,
                 qw_per_cycle: int = PUMP_QW_PER_CYCLE) -> None:
        if qw_per_cycle < 1:
            raise ConfigError("pump must stream at least 1 qw/cycle")
        self.enabled = enabled
        self.qw_per_cycle = qw_per_cycle
        # hit data must not queue behind a miss's much-later stream, so
        # the streaming buses backfill earlier idle slots
        self._read_bus = CalendarTimeline("pump-read")
        self._write_bus = CalendarTimeline("pump-write")
        # the four registers bound how many pump slices can be in flight
        self._read_regs = MultiPortTimeline(PUMP_REGISTERS, "pump-read-regs")
        self._write_regs = MultiPortTimeline(PUMP_REGISTERS, "pump-write-regs")
        self.counters = Counter()

    def stream(self, quadwords: int, is_write: bool, earliest: float) -> float:
        """Reserve the streaming path for ``quadwords``; returns finish.

        A full 128-element slice occupies the bus for 4 cycles; shorter
        vector lengths stream proportionally fewer cycles (rounded up).
        """
        if not self.enabled:
            raise ConfigError("pump disabled: stride-1 must use slice path")
        cycles = -(-quadwords // self.qw_per_cycle)
        bus = self._write_bus if is_write else self._read_bus
        regs = self._write_regs if is_write else self._read_regs
        # a register must be free to latch the lines, then the bus streams
        reg_start = regs.peek(earliest)
        start = bus.reserve(reg_start, cycles)
        regs.reserve(start, cycles)
        self.counters.add("pump_writes" if is_write else "pump_reads")
        self.counters.add("pump_quadwords", quadwords)
        return start + cycles
