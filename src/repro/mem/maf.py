"""MAF — the Miss Address File (section 3.4, "Servicing Vector Misses").

A vector slice whose lookup misses is treated as an *atomic entity*: it
is put to sleep in the MAF with one "waiting" bit per missing address,
wakes when the last fill arrives, moves to the Retry Queue, and walks
the L2 pipe again.  A replay-threshold counter guards against livelock:
past the threshold the MAF enters "panic mode" and NACKs competing
requests until the slice completes.

In the reservation-based timing model the MAF contributes:

* an *entry count* limit — a slice that cannot get an entry stalls until
  one frees (this is why disabling the PUMP multiplies MAF pressure by
  8x, Figure 9);
* the sleep/wake bookkeeping and replay/panic counters, which the
  fault-injection tests exercise directly.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.utils.stats import Counter


@dataclass
class MafEntry:
    """One sleeping slice."""

    slice_id: int
    waiting: set[int] = field(default_factory=set)   # missing line addrs
    replays: int = 0
    allocated_at: float = 0.0
    wake_at: float = 0.0


class MissAddressFile:
    """Entry-limited sleep/wake tracker for vector miss slices."""

    def __init__(self, entries: int = 32, replay_threshold: int = 8,
                 nack_retry_cycles: float = 16.0) -> None:
        if entries < 1:
            raise ConfigError("MAF needs at least one entry")
        self.capacity = entries
        self.replay_threshold = replay_threshold
        self.nack_retry_cycles = nack_retry_cycles
        self.counters = Counter()
        self.panic_mode = False
        #: slice_id of the entry that tripped panic mode (None otherwise)
        self.panic_owner: int | None = None
        self._next_id = 0
        #: min-heap of (free_time, entry_id) for occupied entries
        self._occupied: list[tuple[float, int]] = []
        self._live: dict[int, MafEntry] = {}
        self.peak_occupancy = 0

    def occupancy_at(self, time: float) -> int:
        """Entries still held at ``time`` (drains the free heap)."""
        while self._occupied and self._occupied[0][0] <= time:
            _, eid = heapq.heappop(self._occupied)
            self._live.pop(eid, None)
        return len(self._occupied)

    def earliest_entry(self, time: float) -> float:
        """Earliest cycle >= ``time`` at which an entry is available.

        While panic mode is active every *competing* allocation request
        is NACKed: the requester is told to retry ``nack_retry_cycles``
        later, keeping the L2 pipe clear for the offending slice
        (section 3.4's livelock escape hatch).
        """
        self.occupancy_at(time)
        if len(self._occupied) < self.capacity:
            t = time
        else:
            t = self._occupied[0][0]
        if self.panic_mode:
            self.counters.add("nacks")
            t = max(t, time + self.nack_retry_cycles)
        return t

    def allocate(self, time: float, missing_lines: set[int]) -> MafEntry:
        """Take an entry (caller must have honored :meth:`earliest_entry`)."""
        self.occupancy_at(time)
        if len(self._occupied) >= self.capacity:
            raise ConfigError("MAF allocate() called while full")
        entry = MafEntry(self._next_id, set(missing_lines), allocated_at=time)
        self._next_id += 1
        self._live[entry.slice_id] = entry
        self.counters.add("allocations")
        self.counters.add("missing_lines", len(missing_lines))
        return entry

    def sleep_until(self, entry: MafEntry, wake_at: float) -> None:
        """Record the wake time; the entry frees when the slice retires."""
        entry.wake_at = wake_at
        self.counters.add("sleeps")

    def record_replay(self, entry: MafEntry) -> bool:
        """Count a replay; returns True if this trips panic mode."""
        entry.replays += 1
        self.counters.add("replays")
        if entry.replays > self.replay_threshold and not self.panic_mode:
            self.panic_mode = True
            self.panic_owner = entry.slice_id
            self.counters.add("panic_entries")
            return True
        return False

    def release(self, entry: MafEntry, time: float) -> None:
        """Free the entry at ``time`` (slice completed its retry)."""
        heapq.heappush(self._occupied, (time, entry.slice_id))
        occupancy = len(self._occupied)
        if occupancy > self.peak_occupancy:
            self.peak_occupancy = occupancy
        if self.panic_mode and entry.replays > self.replay_threshold:
            # the offending slice was finally serviced: resume normal mode
            self.panic_mode = False
            self.panic_owner = None
            self.counters.add("panic_exits")
        self.counters.add("releases")
