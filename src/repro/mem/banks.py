"""Set-associative tag arrays and L2 bank geometry.

The L2 is physically organized as 128 independent banks (8 ways x 16
banks per way) in EV8's design; architecturally what matters for the
vector pipeline is the 16-way *address interleaving* on bits <9:6>
(section 3.4).  :class:`SetAssocCache` is the tag model shared by the L1
and L2 (the L2 adds the per-line P-bit of the scalar-vector coherency
protocol); :func:`bank_of` and :func:`quadrant_of` expose the floorplan
mapping of section 4 (quadrants on bits <7:6>, lanes on <9:8>).

Two interchangeable tag models are provided:

* :class:`SetAssocCache` — tags, LRU stamps and dirty/P-bits live in
  dense ``(n_sets, ways)`` numpy arrays, with a flat ``line -> slot``
  dict index over them.  Probes are O(1) dict lookups (a vector slice's
  <=16 line probes never pay per-call numpy dispatch overhead) while
  whole-cache operations (``flush``) stay vectorized over the arrays.
  This is the default production model.
* :class:`SetAssocCacheReference` — the original dict-of-MRU-lists
  model, kept verbatim as the golden reference for the differential
  cycle-exactness suite (`tests/mem/test_tag_model_differential.py`).

Both models expose the identical API and must produce *bit-identical*
timing: same hit/miss/eviction sequences, same eviction order inside a
batch (writeback scheduling order affects cycles), same ``flush()``
ordering (set first-touch order, MRU-first within a set — the dict
insertion order of the reference model).  See docs/PERF.md.

Model selection goes through :func:`make_tag_cache`; tests flip it with
the :func:`use_tag_model` context manager.
"""

from __future__ import annotations

import bisect
import contextlib
import os
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.utils.bitops import is_power_of_two, log2_exact
from repro.utils.stats import Counter

LINE_BYTES = 64
N_BANKS = 16

#: Sentinel stored in invalid ways of the array model.  Physical
#: addresses are 48-bit, so no real tag can ever equal it.
_TAG_SENTINEL = np.uint64(0xFFFF_FFFF_FFFF_FFFF)


def bank_of(addr: int) -> int:
    """L2 bank of a byte address: bits <9:6>."""
    return (addr >> 6) & 0xF


def quadrant_of(addr: int) -> int:
    """Floorplan quadrant: bits <7:6> (section 4)."""
    return (addr >> 6) & 0x3


def cache_lane_of(addr: int) -> int:
    """Cache lane within the quadrant: bits <9:8> (section 4)."""
    return (addr >> 8) & 0x3


@dataclass
class Line:
    """One resident cache line's metadata."""

    tag: int
    dirty: bool = False
    pbit: bool = False  # "presence" bit: line was touched by the EV8 core


@dataclass
class Eviction:
    """Result of a line replacement."""

    addr: int
    dirty: bool
    pbit: bool


class _LineView:
    """Mutable view of one resident line in the array-backed model.

    Quacks like :class:`Line` (``tag``/``dirty``/``pbit``) but reads and
    writes the backing numpy arrays, so ``lookup(addr).pbit = True``
    behaves exactly as it does on the reference model.
    """

    __slots__ = ("_cache", "_index", "_way")

    def __init__(self, cache: "SetAssocCache", index: int, way: int) -> None:
        self._cache = cache
        self._index = index
        self._way = way

    @property
    def tag(self) -> int:
        return int(self._cache._tags[self._index, self._way])

    @property
    def dirty(self) -> bool:
        return bool(self._cache._dirty[self._index, self._way])

    @dirty.setter
    def dirty(self, value: bool) -> None:
        self._cache._dirty[self._index, self._way] = value

    @property
    def pbit(self) -> bool:
        return bool(self._cache._pbit[self._index, self._way])

    @pbit.setter
    def pbit(self, value: bool) -> None:
        cache = self._cache
        cache._pbit[self._index, self._way] = value
        line_num = (int(cache._tags[self._index, self._way])
                    << cache._set_bits) | self._index
        if value:
            cache._pbit_set.add(line_num)
        else:
            cache._pbit_set.discard(line_num)

    def __repr__(self) -> str:
        return f"Line(tag={self.tag}, dirty={self.dirty}, pbit={self.pbit})"


class SetAssocCache:
    """An LRU set-associative tag array (no data — data lives in
    :class:`~repro.mem.memory.MainMemory`; caches only track residency).

    Tags, LRU stamps and dirty/P-bits live in dense ``(n_sets, ways)``
    numpy arrays.  A ``line-number -> flat slot`` dict index over those
    arrays makes the hot probe path O(1): a hit is one dict lookup plus
    one stamp write, and a miss picks its way from a per-set allocation
    cursor (plus a sorted free-list for ways punched out by
    ``invalidate``), falling back to a numpy ``argmin`` over the set's
    stamps only when the set is full and a victim must be chosen.
    Behavior is bit-identical to :class:`SetAssocCacheReference`
    (enforced by the differential suite): replacement is true LRU via a
    monotonic access clock, and :meth:`flush` reproduces the reference
    model's dict ordering through a per-set first-touch sequence number.
    """

    def __init__(self, capacity_bytes: int, ways: int,
                 line_bytes: int = LINE_BYTES, name: str = "cache") -> None:
        if capacity_bytes % (ways * line_bytes):
            raise ConfigError(
                f"{name}: capacity {capacity_bytes} not divisible by "
                f"ways*line ({ways}x{line_bytes})")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.n_sets = capacity_bytes // (ways * line_bytes)
        if not is_power_of_two(self.n_sets):
            raise ConfigError(f"{name}: set count {self.n_sets} not a power of two")
        self._line_shift = log2_exact(line_bytes)
        self._set_bits = log2_exact(self.n_sets)
        self._set_mask = self.n_sets - 1
        self._tag_shift = self._line_shift + self._set_bits
        self._tags = np.full((self.n_sets, ways), _TAG_SENTINEL, dtype=np.uint64)
        self._dirty = np.zeros((self.n_sets, ways), dtype=bool)
        self._pbit = np.zeros((self.n_sets, ways), dtype=bool)
        #: monotonic access clock; larger stamp == more recently used
        self._stamp = np.zeros((self.n_sets, ways), dtype=np.int64)
        self._clock = 0
        # flat (n_sets*ways,) views sharing the 2-D arrays' memory, so
        # the dict-indexed scalar paths address one slot without tuple
        # indexing overhead
        self._flat_tags = self._tags.reshape(-1)
        self._flat_dirty = self._dirty.reshape(-1)
        self._flat_pbit = self._pbit.reshape(-1)
        self._flat_stamp = self._stamp.reshape(-1)
        #: resident line number (addr >> line_shift) -> flat slot index
        self._pos: dict[int, int] = {}
        #: per-set count of ways ever allocated contiguously from way 0;
        #: together with _holes this names the first invalid way without
        #: scanning the tag row
        self._alloc: list[int] = [0] * self.n_sets
        #: set index -> sorted ways freed by invalidate() (rare)
        self._holes: dict[int, list[int]] = {}
        #: order each set was first accessed (reference-model dict
        #: insertion order); -1 == never touched.  Drives flush() order.
        self._first_touch = np.full(self.n_sets, -1, dtype=np.int64)
        self._touch_seq = 0
        #: line numbers currently resident with the P-bit set — lets
        #: pbit_lines() run as set membership (pure vector workloads
        #: keep it empty and never pay a scan)
        self._pbit_set: set[int] = set()
        self.counters = Counter()

    # -- address plumbing ---------------------------------------------------

    def set_index(self, addr: int) -> int:
        return (addr >> self._line_shift) & self._set_mask

    def tag_of(self, addr: int) -> int:
        return addr >> self._tag_shift

    def line_addr(self, set_index: int, tag: int) -> int:
        return ((tag << self._set_bits) | set_index) << self._line_shift

    # -- tag operations ------------------------------------------------------

    def lookup(self, addr: int) -> Optional[_LineView]:
        """Probe without changing LRU state (a tag *peek*)."""
        slot = self._pos.get(addr >> self._line_shift)
        if slot is None:
            return None
        return _LineView(self, slot // self.ways, slot % self.ways)

    def access(self, addr: int, is_write: bool = False,
               from_core: bool = False) -> tuple[bool, Optional[Eviction]]:
        """Reference a line: returns (hit, eviction-on-miss).

        On a miss the line is allocated immediately (the caller models
        the fill latency); LRU is updated; ``from_core`` sets the P-bit
        (EV8-core touch, section 3.4 "Scalar-Vector Coherency").
        """
        line_num = addr >> self._line_shift
        stamp = self._clock
        self._clock = stamp + 1
        slot = self._pos.get(line_num)
        if slot is not None:
            if is_write:
                self._flat_dirty[slot] = True
            if from_core:
                self._flat_pbit[slot] = True
                self._pbit_set.add(line_num)
            self._flat_stamp[slot] = stamp
            self.counters.add("hits")
            return True, None
        self.counters.add("misses")
        index = line_num & self._set_mask
        evicted = None
        holes = self._holes.get(index)
        if holes:
            # lowest invalidated way first (the "first invalid way" rule)
            way = holes.pop(0)
            if not holes:
                del self._holes[index]
        elif self._alloc[index] < self.ways:
            way = self._alloc[index]
            self._alloc[index] = way + 1
        else:
            way = int(self._stamp[index].argmin())
            slot = index * self.ways + way
            old_tag = int(self._flat_tags[slot])
            old_line = (old_tag << self._set_bits) | index
            evicted = Eviction(old_line << self._line_shift,
                               bool(self._flat_dirty[slot]),
                               bool(self._flat_pbit[slot]))
            del self._pos[old_line]
            self._pbit_set.discard(old_line)
            self.counters.add("evictions")
            if evicted.dirty:
                self.counters.add("writebacks")
        slot = index * self.ways + way
        self._flat_tags[slot] = line_num >> self._set_bits
        self._flat_dirty[slot] = is_write
        self._flat_pbit[slot] = from_core
        if from_core:
            self._pbit_set.add(line_num)
        self._flat_stamp[slot] = stamp
        self._pos[line_num] = slot
        if self._first_touch[index] < 0:
            self._first_touch[index] = self._touch_seq
            self._touch_seq += 1
        return False, evicted

    def access_many(self, addrs,
                    is_write: bool = False, from_core: bool = False,
                    ) -> tuple[list, list[Optional[Eviction]]]:
        """Batched :meth:`access` over line addresses.

        Returns ``(hits, evictions)`` aligned with the input order;
        ``evictions[i]`` is the line displaced by input ``i`` (or None).
        Semantically a strict sequential walk (the :meth:`access` body
        inlined, counter updates batched), so batches whose lines
        collide on a set (where one probe's victim is another probe's
        target) need no special casing.
        """
        if isinstance(addrs, np.ndarray):
            addrs = addrs.tolist()
        n = len(addrs)
        if n == 0:
            return [], []
        pos = self._pos
        tags, dirty = self._flat_tags, self._flat_dirty
        pbit, stamps = self._flat_pbit, self._flat_stamp
        alloc, all_holes = self._alloc, self._holes
        pset = self._pbit_set
        ways, set_mask = self.ways, self._set_mask
        set_bits, line_shift = self._set_bits, self._line_shift
        stamp = self._clock
        if not from_core:
            # all-hit fast path (the steady state of a warmed cache):
            # stamps ascend in input order exactly as the general walk
            # assigns them, dirty bits are ORed in bulk, and nothing
            # else changes on a hit
            try:
                slots = [pos[addr >> line_shift] for addr in addrs]
            except KeyError:
                pass
            else:
                stamps[slots] = np.arange(stamp, stamp + n)
                if is_write:
                    dirty[slots] = True
                self._clock = stamp + n
                self.counters.add("hits", n)
                return [True] * n, [None] * n
        hit_list = [False] * n
        evictions: list[Optional[Eviction]] = [None] * n
        hits = evicted_n = writebacks = 0
        for i, addr in enumerate(addrs):
            line_num = addr >> line_shift
            slot = pos.get(line_num)
            if slot is not None:
                if is_write:
                    dirty[slot] = True
                if from_core:
                    pbit[slot] = True
                    pset.add(line_num)
                stamps[slot] = stamp
                stamp += 1
                hit_list[i] = True
                hits += 1
                continue
            index = line_num & set_mask
            holes = all_holes.get(index)
            if holes:
                way = holes.pop(0)
                if not holes:
                    del all_holes[index]
            elif alloc[index] < ways:
                way = alloc[index]
                alloc[index] = way + 1
            else:
                way = int(self._stamp[index].argmin())
                slot = index * ways + way
                old_tag = int(tags[slot])
                old_line = (old_tag << set_bits) | index
                ev = Eviction(old_line << line_shift, bool(dirty[slot]),
                              bool(pbit[slot]))
                del pos[old_line]
                pset.discard(old_line)
                evictions[i] = ev
                evicted_n += 1
                if ev.dirty:
                    writebacks += 1
            slot = index * ways + way
            tags[slot] = line_num >> set_bits
            dirty[slot] = is_write
            pbit[slot] = from_core
            if from_core:
                pset.add(line_num)
            stamps[slot] = stamp
            stamp += 1
            pos[line_num] = slot
            if self._first_touch[index] < 0:
                self._first_touch[index] = self._touch_seq
                self._touch_seq += 1
        self._clock = stamp
        counters = self.counters
        if hits:
            counters.add("hits", hits)
        if hits != n:
            counters.add("misses", n - hits)
        if evicted_n:
            counters.add("evictions", evicted_n)
            if writebacks:
                counters.add("writebacks", writebacks)
        return hit_list, evictions

    def access_all_hit(self, addrs, is_write: bool = False) -> bool:
        """Apply :meth:`access_many`'s all-hit fast path, or do nothing.

        Returns True when every line was resident and the access was
        applied (stamps/dirty/counters updated exactly as the batched
        walk would); False leaves all state untouched so the caller can
        fall back to the general path.  Never sets P-bits (vector side
        only, ``from_core=False``).
        """
        pos, shift = self._pos, self._line_shift
        try:
            slots = [pos[addr >> shift] for addr in addrs]
        except KeyError:
            return False
        n = len(slots)
        stamp = self._clock
        self._flat_stamp[slots] = np.arange(stamp, stamp + n)
        if is_write:
            self._flat_dirty[slots] = True
        self._clock = stamp + n
        self.counters.add("hits", n)
        return True

    # -- batched peeks (no LRU / counter effects) -----------------------------

    def resident_many(self, addrs) -> np.ndarray:
        """Bool per address: is its line resident?  (LRU untouched.)"""
        if isinstance(addrs, np.ndarray):
            addrs = addrs.tolist()
        pos, shift = self._pos, self._line_shift
        return np.fromiter(((int(a) >> shift) in pos for a in addrs),
                           dtype=bool, count=len(addrs))

    def missing_of(self, addrs: Sequence[int]) -> list[int]:
        """The subset of ``addrs`` not resident, in input order."""
        pos, shift = self._pos, self._line_shift
        return [addr for addr in addrs if (int(addr) >> shift) not in pos]

    def pbit_lines(self, addrs: Sequence[int]) -> list[int]:
        """The subset of ``addrs`` resident with the P-bit set, in order."""
        pset = self._pbit_set
        if not pset:
            return []
        shift = self._line_shift
        return [addr for addr in addrs if (int(addr) >> shift) in pset]

    def clear_pbits(self, addrs: Sequence[int]) -> None:
        """Clear the P-bit on each resident line of ``addrs``."""
        pos, shift, pbit = self._pos, self._line_shift, self._flat_pbit
        pset = self._pbit_set
        for addr in addrs:
            line_num = int(addr) >> shift
            slot = pos.get(line_num)
            if slot is not None:
                pbit[slot] = False
                pset.discard(line_num)

    # -- the rest of the reference API ---------------------------------------

    def invalidate(self, addr: int) -> Optional[Line]:
        """Remove a line (L1 invalidate command); returns it if present."""
        line_num = addr >> self._line_shift
        slot = self._pos.pop(line_num, None)
        if slot is None:
            return None
        line = Line(int(self._flat_tags[slot]),
                    bool(self._flat_dirty[slot]),
                    bool(self._flat_pbit[slot]))
        self._flat_tags[slot] = _TAG_SENTINEL
        self._flat_dirty[slot] = False
        self._flat_pbit[slot] = False
        self._pbit_set.discard(line_num)
        index, way = slot // self.ways, slot % self.ways
        bisect.insort(self._holes.setdefault(index, []), way)
        self.counters.add("invalidates")
        return line

    def contains(self, addr: int) -> bool:
        return (addr >> self._line_shift) in self._pos

    @property
    def resident_lines(self) -> int:
        return len(self._pos)

    def flush(self) -> list[Eviction]:
        """Evict everything (returns dirty lines for writeback).

        Ordering matters downstream (writebacks reserve memory ports in
        emission order): sets drain in first-touch order and lines
        within a set drain MRU-first, matching the reference model's
        dict iteration exactly.
        """
        sets, ways = (self._tags != _TAG_SENTINEL).nonzero()
        out = []
        if sets.size:
            order = np.lexsort((-self._stamp[sets, ways],
                                self._first_touch[sets]))
            sets, ways = sets[order], ways[order]
            dirty = self._dirty[sets, ways]
            tags = self._tags[sets, ways]
            pbits = self._pbit[sets, ways]
            for k in dirty.nonzero()[0]:
                out.append(Eviction(self.line_addr(int(sets[k]), int(tags[k])),
                                    True, bool(pbits[k])))
        self._tags.fill(_TAG_SENTINEL)
        self._dirty.fill(False)
        self._pbit.fill(False)
        self._stamp.fill(0)
        self._first_touch.fill(-1)
        self._pbit_set.clear()
        self._pos.clear()
        self._holes.clear()
        self._alloc = [0] * self.n_sets
        return out


class SetAssocCacheReference:
    """The original dict-of-MRU-lists tag model (golden reference).

    Sets are dicts of MRU-ordered lists, which keeps lookups O(ways) and
    allocates storage only for touched sets.  Kept bit-for-bit as it
    shipped so the differential suite can prove :class:`SetAssocCache`
    equivalent; the batched methods below are plain loops over the
    scalar ones.
    """

    def __init__(self, capacity_bytes: int, ways: int,
                 line_bytes: int = LINE_BYTES, name: str = "cache") -> None:
        if capacity_bytes % (ways * line_bytes):
            raise ConfigError(
                f"{name}: capacity {capacity_bytes} not divisible by "
                f"ways*line ({ways}x{line_bytes})")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.n_sets = capacity_bytes // (ways * line_bytes)
        if not is_power_of_two(self.n_sets):
            raise ConfigError(f"{name}: set count {self.n_sets} not a power of two")
        self._line_shift = log2_exact(line_bytes)
        self._set_mask = self.n_sets - 1
        self._sets: dict[int, list[Line]] = {}
        self.counters = Counter()

    # -- address plumbing ---------------------------------------------------

    def set_index(self, addr: int) -> int:
        return (addr >> self._line_shift) & self._set_mask

    def tag_of(self, addr: int) -> int:
        return addr >> self._line_shift >> log2_exact(self.n_sets)

    def line_addr(self, set_index: int, tag: int) -> int:
        return ((tag << log2_exact(self.n_sets)) | set_index) << self._line_shift

    # -- tag operations ------------------------------------------------------

    def lookup(self, addr: int) -> Optional[Line]:
        """Probe without changing LRU state (a tag *peek*)."""
        lines = self._sets.get(self.set_index(addr))
        if not lines:
            return None
        tag = self.tag_of(addr)
        for line in lines:
            if line.tag == tag:
                return line
        return None

    def access(self, addr: int, is_write: bool = False,
               from_core: bool = False) -> tuple[bool, Optional[Eviction]]:
        """Reference a line: returns (hit, eviction-on-miss)."""
        index = self.set_index(addr)
        tag = self.tag_of(addr)
        lines = self._sets.setdefault(index, [])
        for pos, line in enumerate(lines):
            if line.tag == tag:
                if pos:
                    lines.insert(0, lines.pop(pos))
                line.dirty = line.dirty or is_write
                line.pbit = line.pbit or from_core
                self.counters.add("hits")
                return True, None
        self.counters.add("misses")
        evicted = None
        if len(lines) >= self.ways:
            victim = lines.pop()
            evicted = Eviction(self.line_addr(index, victim.tag),
                               victim.dirty, victim.pbit)
            self.counters.add("evictions")
            if victim.dirty:
                self.counters.add("writebacks")
        lines.insert(0, Line(tag, dirty=is_write, pbit=from_core))
        return False, evicted

    def access_many(self, addrs,
                    is_write: bool = False, from_core: bool = False,
                    ) -> tuple[list, list[Optional[Eviction]]]:
        """Batched :meth:`access`: a plain sequential loop."""
        if isinstance(addrs, np.ndarray):
            addrs = addrs.tolist()
        n = len(addrs)
        hit_list = [False] * n
        evictions: list[Optional[Eviction]] = [None] * n
        for i, addr in enumerate(addrs):
            hit, ev = self.access(int(addr), is_write=is_write,
                                  from_core=from_core)
            hit_list[i] = hit
            evictions[i] = ev
        return hit_list, evictions

    # -- batched peeks (no LRU / counter effects) -----------------------------

    def resident_many(self, addrs) -> np.ndarray:
        return np.fromiter((self.lookup(int(a)) is not None for a in addrs),
                           dtype=bool, count=len(addrs))

    def missing_of(self, addrs: Sequence[int]) -> list[int]:
        return [addr for addr in addrs if self.lookup(addr) is None]

    def pbit_lines(self, addrs: Sequence[int]) -> list[int]:
        out = []
        for addr in addrs:
            resident = self.lookup(addr)
            if resident is not None and resident.pbit:
                out.append(addr)
        return out

    def clear_pbits(self, addrs: Sequence[int]) -> None:
        for addr in addrs:
            resident = self.lookup(addr)
            if resident is not None:
                resident.pbit = False

    # -- the rest of the shared API ------------------------------------------

    def invalidate(self, addr: int) -> Optional[Line]:
        """Remove a line (L1 invalidate command); returns it if present."""
        index = self.set_index(addr)
        lines = self._sets.get(index)
        if not lines:
            return None
        tag = self.tag_of(addr)
        for pos, line in enumerate(lines):
            if line.tag == tag:
                self.counters.add("invalidates")
                return lines.pop(pos)
        return None

    def contains(self, addr: int) -> bool:
        return self.lookup(addr) is not None

    @property
    def resident_lines(self) -> int:
        return sum(len(lines) for lines in self._sets.values())

    def flush(self) -> list[Eviction]:
        """Evict everything (returns dirty lines for writeback)."""
        out = []
        for index, lines in self._sets.items():
            for line in lines:
                if line.dirty:
                    out.append(Eviction(self.line_addr(index, line.tag),
                                        True, line.pbit))
        self._sets.clear()
        return out


# -- tag-model selection seam -------------------------------------------------

_TAG_MODELS = {
    "numpy": SetAssocCache,
    "reference": SetAssocCacheReference,
}

#: Active model name; `REPRO_TAG_MODEL=reference` flips the default
#: process-wide (the differential bench/CLI paths use this).
_active_tag_model = os.environ.get("REPRO_TAG_MODEL", "numpy")
if _active_tag_model not in _TAG_MODELS:
    _active_tag_model = "numpy"


def active_tag_model() -> str:
    """Name of the tag model new caches will use ('numpy'/'reference')."""
    return _active_tag_model


def make_tag_cache(capacity_bytes: int, ways: int,
                   line_bytes: int = LINE_BYTES, name: str = "cache"):
    """Construct a tag array using the active model."""
    return _TAG_MODELS[_active_tag_model](capacity_bytes, ways,
                                          line_bytes, name)


@contextlib.contextmanager
def use_tag_model(model: str) -> Iterator[None]:
    """Temporarily select the tag model for new caches.

    >>> with use_tag_model("reference"):
    ...     proc = TarantulaProcessor(...)   # dict-of-lists tags
    """
    global _active_tag_model
    if model not in _TAG_MODELS:
        raise ConfigError(f"unknown tag model {model!r} "
                          f"(have {sorted(_TAG_MODELS)})")
    previous = _active_tag_model
    _active_tag_model = model
    try:
        yield
    finally:
        _active_tag_model = previous
