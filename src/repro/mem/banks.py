"""Set-associative tag arrays and L2 bank geometry.

The L2 is physically organized as 128 independent banks (8 ways x 16
banks per way) in EV8's design; architecturally what matters for the
vector pipeline is the 16-way *address interleaving* on bits <9:6>
(section 3.4).  :class:`SetAssocCache` is the tag model shared by the L1
and L2 (the L2 adds the per-line P-bit of the scalar-vector coherency
protocol); :func:`bank_of` and :func:`quadrant_of` expose the floorplan
mapping of section 4 (quadrants on bits <7:6>, lanes on <9:8>).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.utils.bitops import is_power_of_two, log2_exact
from repro.utils.stats import Counter

LINE_BYTES = 64
N_BANKS = 16


def bank_of(addr: int) -> int:
    """L2 bank of a byte address: bits <9:6>."""
    return (addr >> 6) & 0xF


def quadrant_of(addr: int) -> int:
    """Floorplan quadrant: bits <7:6> (section 4)."""
    return (addr >> 6) & 0x3


def cache_lane_of(addr: int) -> int:
    """Cache lane within the quadrant: bits <9:8> (section 4)."""
    return (addr >> 8) & 0x3


@dataclass
class Line:
    """One resident cache line's metadata."""

    tag: int
    dirty: bool = False
    pbit: bool = False  # "presence" bit: line was touched by the EV8 core


@dataclass
class Eviction:
    """Result of a line replacement."""

    addr: int
    dirty: bool
    pbit: bool


class SetAssocCache:
    """An LRU set-associative tag array (no data — data lives in
    :class:`~repro.mem.memory.MainMemory`; caches only track residency).

    Sets are dicts of MRU-ordered lists, which keeps lookups O(ways) and
    allocates storage only for touched sets — important for the 32K-set
    L2 at 16 MB.
    """

    def __init__(self, capacity_bytes: int, ways: int,
                 line_bytes: int = LINE_BYTES, name: str = "cache") -> None:
        if capacity_bytes % (ways * line_bytes):
            raise ConfigError(
                f"{name}: capacity {capacity_bytes} not divisible by "
                f"ways*line ({ways}x{line_bytes})")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.n_sets = capacity_bytes // (ways * line_bytes)
        if not is_power_of_two(self.n_sets):
            raise ConfigError(f"{name}: set count {self.n_sets} not a power of two")
        self._line_shift = log2_exact(line_bytes)
        self._set_mask = self.n_sets - 1
        self._sets: dict[int, list[Line]] = {}
        self.counters = Counter()

    # -- address plumbing ---------------------------------------------------

    def set_index(self, addr: int) -> int:
        return (addr >> self._line_shift) & self._set_mask

    def tag_of(self, addr: int) -> int:
        return addr >> self._line_shift >> log2_exact(self.n_sets)

    def line_addr(self, set_index: int, tag: int) -> int:
        return ((tag << log2_exact(self.n_sets)) | set_index) << self._line_shift

    # -- tag operations ------------------------------------------------------

    def lookup(self, addr: int) -> Optional[Line]:
        """Probe without changing LRU state (a tag *peek*)."""
        lines = self._sets.get(self.set_index(addr))
        if not lines:
            return None
        tag = self.tag_of(addr)
        for line in lines:
            if line.tag == tag:
                return line
        return None

    def access(self, addr: int, is_write: bool = False,
               from_core: bool = False) -> tuple[bool, Optional[Eviction]]:
        """Reference a line: returns (hit, eviction-on-miss).

        On a miss the line is allocated immediately (the caller models
        the fill latency); LRU is updated; ``from_core`` sets the P-bit
        (EV8-core touch, section 3.4 "Scalar-Vector Coherency").
        """
        index = self.set_index(addr)
        tag = self.tag_of(addr)
        lines = self._sets.setdefault(index, [])
        for pos, line in enumerate(lines):
            if line.tag == tag:
                if pos:
                    lines.insert(0, lines.pop(pos))
                line.dirty = line.dirty or is_write
                line.pbit = line.pbit or from_core
                self.counters.add("hits")
                return True, None
        self.counters.add("misses")
        evicted = None
        if len(lines) >= self.ways:
            victim = lines.pop()
            evicted = Eviction(self.line_addr(index, victim.tag),
                               victim.dirty, victim.pbit)
            self.counters.add("evictions")
            if victim.dirty:
                self.counters.add("writebacks")
        lines.insert(0, Line(tag, dirty=is_write, pbit=from_core))
        return False, evicted

    def invalidate(self, addr: int) -> Optional[Line]:
        """Remove a line (L1 invalidate command); returns it if present."""
        index = self.set_index(addr)
        lines = self._sets.get(index)
        if not lines:
            return None
        tag = self.tag_of(addr)
        for pos, line in enumerate(lines):
            if line.tag == tag:
                self.counters.add("invalidates")
                return lines.pop(pos)
        return None

    def contains(self, addr: int) -> bool:
        return self.lookup(addr) is not None

    @property
    def resident_lines(self) -> int:
        return sum(len(lines) for lines in self._sets.values())

    def flush(self) -> list[Eviction]:
        """Evict everything (returns dirty lines for writeback)."""
        out = []
        for index, lines in self._sets.items():
            for line in lines:
                if line.dirty:
                    out.append(Eviction(self.line_addr(index, line.tag),
                                        True, line.pbit))
        self._sets.clear()
        return out
