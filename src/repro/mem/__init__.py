"""Memory-system substrates: main memory, caches, MAF, PUMP, Zbox.

The functional path uses :class:`MainMemory` only; the timing path
composes :class:`BankedL2` (tags + MAF + PUMP) over :class:`Zbox`
(directory + RAMBUS ports), with :class:`L1DataCache` on the scalar
side for the P-bit / DrainM coherency protocol.
"""

from repro.mem.banks import (Eviction, Line, SetAssocCache,
                             SetAssocCacheReference, bank_of, make_tag_cache,
                             quadrant_of, use_tag_model)
from repro.mem.l1cache import L1DataCache, PendingStore
from repro.mem.l2cache import BankedL2, L2Config
from repro.mem.maf import MafEntry, MissAddressFile
from repro.mem.memory import ADDRESS_LIMIT, CHUNK_BYTES, MainMemory
from repro.mem.pages import PAGE_BYTES, PageTable
from repro.mem.pump import PUMP_QW_PER_CYCLE, PumpUnit
from repro.mem.rambus import RambusConfig, RambusSystem
from repro.mem.zbox import Zbox

__all__ = [
    "ADDRESS_LIMIT",
    "BankedL2",
    "CHUNK_BYTES",
    "Eviction",
    "L1DataCache",
    "L2Config",
    "Line",
    "MafEntry",
    "MainMemory",
    "MissAddressFile",
    "PAGE_BYTES",
    "PUMP_QW_PER_CYCLE",
    "PageTable",
    "PendingStore",
    "PumpUnit",
    "RambusConfig",
    "RambusSystem",
    "SetAssocCache",
    "SetAssocCacheReference",
    "Zbox",
    "bank_of",
    "make_tag_cache",
    "quadrant_of",
    "use_tag_model",
]
