"""Flat, sparse main memory backing the functional simulator.

The memory is a 48-bit physical byte-address space stored as a sparse
dictionary of fixed-size chunks, so multi-gigabyte layouts cost only the
pages actually touched.  All quadword access paths are vectorized with
numpy because vector loads/stores move up to 128 elements at once.

Reads of never-written memory return zeros (convenient for simulation;
the timing model does not care about data values).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.errors import AlignmentTrap, InvalidAddressTrap, MachineCheckTrap

#: Chunk size in bytes (1 MiB); must be a power of two and multiple of 8.
CHUNK_BYTES = 1 << 20
CHUNK_QUADS = CHUNK_BYTES // 8
#: Highest valid byte address + 1 (48-bit physical space).
ADDRESS_LIMIT = 1 << 48
#: Cache-line granularity of poisoned-line tracking.
LINE_BYTES = 64
#: Pattern a poisoned line reads as while the fault is armed.
POISON_QUAD = 0xBADC_0FFE_BADC_0FFE


@dataclass
class MemorySnapshot:
    """Deep copy of memory contents (fault-recovery checkpointing)."""

    chunks: dict[int, np.ndarray]
    bytes_allocated: int
    poisoned: dict[int, np.ndarray]


class MainMemory:
    """Sparse 48-bit byte-addressable memory with quadword primitives."""

    def __init__(self) -> None:
        self._chunks: dict[int, np.ndarray] = {}
        self.bytes_allocated = 0
        #: poisoned line base address -> the original 8 quadwords
        self._poisoned: dict[int, np.ndarray] = {}

    # -- chunk plumbing ---------------------------------------------------

    def _chunk(self, chunk_id: int) -> np.ndarray:
        chunk = self._chunks.get(chunk_id)
        if chunk is None:
            chunk = np.zeros(CHUNK_QUADS, dtype=np.uint64)
            self._chunks[chunk_id] = chunk
            self.bytes_allocated += CHUNK_BYTES
        return chunk

    @staticmethod
    def _check_addresses(addrs: np.ndarray) -> None:
        if addrs.size == 0:
            return
        # one reduction answers both checks: low bits set <=> some address
        # misaligned, bits >=48 set <=> some address beyond the limit
        combined = int(np.bitwise_or.reduce(addrs))
        if combined & 7:
            bad = int(addrs[np.nonzero(addrs & np.uint64(7))[0][0]])
            raise AlignmentTrap(f"unaligned quadword address {bad:#x}")
        if combined >> 48:
            bad = int(addrs[np.nonzero(addrs >= np.uint64(ADDRESS_LIMIT))[0][0]])
            raise InvalidAddressTrap(f"address {bad:#x} beyond 48-bit space")

    def _check_poison(self, addrs: np.ndarray) -> None:
        if not self._poisoned:
            return
        lines = addrs & ~np.uint64(LINE_BYTES - 1)
        for line in np.unique(lines):
            if int(line) in self._poisoned:
                raise MachineCheckTrap(
                    f"access touched poisoned line {int(line):#x}")

    # -- vector access ----------------------------------------------------

    def read_quads(self, addrs: np.ndarray) -> np.ndarray:
        """Read one quadword per byte address in ``addrs`` (uint64 array)."""
        addrs = np.ascontiguousarray(addrs, dtype=np.uint64)
        self._check_addresses(addrs)
        self._check_poison(addrs)
        if addrs.size == 0:
            return np.zeros(addrs.shape, dtype=np.uint64)
        chunk_ids = addrs >> np.uint64(20)
        offsets = (addrs & np.uint64(CHUNK_BYTES - 1)) >> np.uint64(3)
        cid0 = int(chunk_ids[0])
        if cid0 == int(chunk_ids.max()) and cid0 == int(chunk_ids.min()):
            chunk = self._chunks.get(cid0)
            if chunk is None:
                return np.zeros(addrs.shape, dtype=np.uint64)
            return chunk[offsets]
        out = np.zeros(addrs.shape, dtype=np.uint64)
        for cid in np.unique(chunk_ids):
            sel = chunk_ids == cid
            chunk = self._chunks.get(int(cid))
            if chunk is not None:
                out[sel] = chunk[offsets[sel]]
        return out

    def validate_quads(self, addrs: np.ndarray) -> None:
        """Raise exactly the trap :meth:`write_quads` would, without
        writing.  The trace JIT validates every batched store address
        up front so a trapping region can deoptimize to the interpreter
        with zero architectural mutation."""
        addrs = np.ascontiguousarray(addrs, dtype=np.uint64)
        self._check_addresses(addrs)
        self._check_poison(addrs)

    def write_quads(self, addrs: np.ndarray, values: np.ndarray) -> None:
        """Write one quadword per address; later entries win on duplicates."""
        addrs = np.ascontiguousarray(addrs, dtype=np.uint64)
        values = np.ascontiguousarray(values, dtype=np.uint64)
        if addrs.shape != values.shape:
            raise ValueError("write_quads: address/value shape mismatch")
        self._check_addresses(addrs)
        self._check_poison(addrs)
        if addrs.size == 0:
            return
        chunk_ids = addrs >> np.uint64(20)
        offsets = (addrs & np.uint64(CHUNK_BYTES - 1)) >> np.uint64(3)
        cid0 = int(chunk_ids[0])
        if cid0 == int(chunk_ids.max()) and cid0 == int(chunk_ids.min()):
            # numpy fancy-store applies in order, so duplicate addresses
            # resolve to the last (highest-index) value, our documented
            # deterministic stand-in for the paper's UNPREDICTABLE order.
            self._chunk(cid0)[offsets] = values
            return
        for cid in np.unique(chunk_ids):
            sel = chunk_ids == cid
            self._chunk(int(cid))[offsets[sel]] = values[sel]

    # -- scalar access ----------------------------------------------------

    def _check_scalar(self, addr: int) -> int:
        """Validate one byte address (uint64-wrapped); returns it."""
        addr = int(addr) & ((1 << 64) - 1)
        if addr & 7:
            raise AlignmentTrap(f"unaligned quadword address {addr:#x}")
        if addr >= ADDRESS_LIMIT:
            raise InvalidAddressTrap(f"address {addr:#x} beyond 48-bit space")
        if self._poisoned:
            line = addr & ~(LINE_BYTES - 1)
            if line in self._poisoned:
                raise MachineCheckTrap(
                    f"access touched poisoned line {line:#x}")
        return addr

    def read_quad(self, addr: int) -> int:
        """Scalar quadword read."""
        addr = self._check_scalar(addr)
        chunk = self._chunks.get(addr >> 20)
        if chunk is None:
            return 0
        return int(chunk[(addr & (CHUNK_BYTES - 1)) >> 3])

    def write_quad(self, addr: int, value: int) -> None:
        """Scalar quadword write."""
        addr = self._check_scalar(addr)
        self._chunk(addr >> 20)[(addr & (CHUNK_BYTES - 1)) >> 3] = \
            value & ((1 << 64) - 1)

    # -- block helpers (arrays, cache-line fills) --------------------------

    def read_array(self, addr: int, count: int) -> np.ndarray:
        """Read ``count`` consecutive quadwords starting at ``addr``."""
        addrs = np.uint64(addr) + np.uint64(8) * np.arange(count, dtype=np.uint64)
        return self.read_quads(addrs)

    def write_array(self, addr: int, values: np.ndarray) -> None:
        """Write consecutive quadwords starting at ``addr``."""
        values = np.ascontiguousarray(values)
        if values.dtype == np.float64:
            values = values.view(np.uint64)
        addrs = np.uint64(addr) + np.uint64(8) * np.arange(len(values), dtype=np.uint64)
        self.write_quads(addrs, values.astype(np.uint64, copy=False))

    def read_f64(self, addr: int, count: int) -> np.ndarray:
        """Read ``count`` quadwords and reinterpret as IEEE doubles."""
        return self.read_array(addr, count).view(np.float64)

    def write_f64(self, addr: int, values: np.ndarray) -> None:
        """Write IEEE doubles as raw quadwords."""
        self.write_array(addr, np.ascontiguousarray(values, dtype=np.float64))

    # -- fault injection: poisoned lines -----------------------------------

    def poison_line(self, addr: int) -> None:
        """Mark the 64-byte line holding ``addr`` as poisoned.

        Models an uncorrectable data error: the original quadwords are
        saved, the line reads as :data:`POISON_QUAD`, and any quadword
        access to it raises :class:`MachineCheckTrap` until the line is
        scrubbed.  The fault injector arms this seam (docs/FAULTS.md).
        """
        line = addr & ~(LINE_BYTES - 1)
        if line in self._poisoned:
            return
        original = self.read_array(line, LINE_BYTES // 8).copy()
        self.write_array(line, np.full(LINE_BYTES // 8, POISON_QUAD,
                                       dtype=np.uint64))
        self._poisoned[line] = original

    def scrub_line(self, addr: int) -> None:
        """Scrub a poisoned line: restore its data, clear the mark."""
        line = addr & ~(LINE_BYTES - 1)
        original = self._poisoned.pop(line, None)
        if original is not None:
            self.write_array(line, original)

    @property
    def poisoned_lines(self) -> tuple:
        """Base addresses of currently poisoned lines (sorted)."""
        return tuple(sorted(self._poisoned))

    # -- checkpoint / restore ----------------------------------------------

    def snapshot(self) -> MemorySnapshot:
        """Deep-copy the memory contents (checkpoint at a trap PC)."""
        return MemorySnapshot(
            chunks={cid: chunk.copy() for cid, chunk in self._chunks.items()},
            bytes_allocated=self.bytes_allocated,
            poisoned={line: quads.copy()
                      for line, quads in self._poisoned.items()})

    def restore(self, snap: MemorySnapshot) -> None:
        """Restore contents captured by :meth:`snapshot` (resume)."""
        self._chunks = {cid: chunk.copy() for cid, chunk in snap.chunks.items()}
        self.bytes_allocated = snap.bytes_allocated
        self._poisoned = {line: quads.copy()
                          for line, quads in snap.poisoned.items()}

    def content_digest(self) -> str:
        """SHA-256 over all non-zero chunks (all-zero chunks are skipped,
        so a restored memory digests identically to one that never
        allocated the untouched chunk)."""
        h = hashlib.sha256()
        for cid in sorted(self._chunks):
            chunk = self._chunks[cid]
            if chunk.any():
                h.update(str(cid).encode())
                h.update(chunk.tobytes())
        return h.hexdigest()
