"""Flat, sparse main memory backing the functional simulator.

The memory is a 48-bit physical byte-address space stored as a sparse
dictionary of fixed-size chunks, so multi-gigabyte layouts cost only the
pages actually touched.  All quadword access paths are vectorized with
numpy because vector loads/stores move up to 128 elements at once.

Reads of never-written memory return zeros (convenient for simulation;
the timing model does not care about data values).
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlignmentTrap, InvalidAddressTrap

#: Chunk size in bytes (1 MiB); must be a power of two and multiple of 8.
CHUNK_BYTES = 1 << 20
CHUNK_QUADS = CHUNK_BYTES // 8
#: Highest valid byte address + 1 (48-bit physical space).
ADDRESS_LIMIT = 1 << 48


class MainMemory:
    """Sparse 48-bit byte-addressable memory with quadword primitives."""

    def __init__(self) -> None:
        self._chunks: dict[int, np.ndarray] = {}
        self.bytes_allocated = 0

    # -- chunk plumbing ---------------------------------------------------

    def _chunk(self, chunk_id: int) -> np.ndarray:
        chunk = self._chunks.get(chunk_id)
        if chunk is None:
            chunk = np.zeros(CHUNK_QUADS, dtype=np.uint64)
            self._chunks[chunk_id] = chunk
            self.bytes_allocated += CHUNK_BYTES
        return chunk

    @staticmethod
    def _check_addresses(addrs: np.ndarray) -> None:
        if addrs.size == 0:
            return
        if np.any(addrs & np.uint64(7)):
            bad = int(addrs[np.nonzero(addrs & np.uint64(7))[0][0]])
            raise AlignmentTrap(f"unaligned quadword address {bad:#x}")
        if np.any(addrs >= np.uint64(ADDRESS_LIMIT)):
            bad = int(addrs[np.nonzero(addrs >= np.uint64(ADDRESS_LIMIT))[0][0]])
            raise InvalidAddressTrap(f"address {bad:#x} beyond 48-bit space")

    # -- vector access ----------------------------------------------------

    def read_quads(self, addrs: np.ndarray) -> np.ndarray:
        """Read one quadword per byte address in ``addrs`` (uint64 array)."""
        addrs = np.ascontiguousarray(addrs, dtype=np.uint64)
        self._check_addresses(addrs)
        out = np.zeros(addrs.shape, dtype=np.uint64)
        if addrs.size == 0:
            return out
        chunk_ids = addrs >> np.uint64(20)
        offsets = (addrs & np.uint64(CHUNK_BYTES - 1)) >> np.uint64(3)
        for cid in np.unique(chunk_ids):
            sel = chunk_ids == cid
            chunk = self._chunks.get(int(cid))
            if chunk is not None:
                out[sel] = chunk[offsets[sel]]
        return out

    def write_quads(self, addrs: np.ndarray, values: np.ndarray) -> None:
        """Write one quadword per address; later entries win on duplicates."""
        addrs = np.ascontiguousarray(addrs, dtype=np.uint64)
        values = np.ascontiguousarray(values, dtype=np.uint64)
        if addrs.shape != values.shape:
            raise ValueError("write_quads: address/value shape mismatch")
        self._check_addresses(addrs)
        if addrs.size == 0:
            return
        chunk_ids = addrs >> np.uint64(20)
        offsets = (addrs & np.uint64(CHUNK_BYTES - 1)) >> np.uint64(3)
        for cid in np.unique(chunk_ids):
            sel = chunk_ids == cid
            # numpy fancy-store applies in order, so duplicate addresses
            # resolve to the last (highest-index) value, our documented
            # deterministic stand-in for the paper's UNPREDICTABLE order.
            self._chunk(int(cid))[offsets[sel]] = values[sel]

    # -- scalar access ----------------------------------------------------

    def read_quad(self, addr: int) -> int:
        """Scalar quadword read."""
        return int(self.read_quads(np.array([addr], dtype=np.uint64))[0])

    def write_quad(self, addr: int, value: int) -> None:
        """Scalar quadword write."""
        self.write_quads(np.array([addr], dtype=np.uint64),
                         np.array([value & ((1 << 64) - 1)], dtype=np.uint64))

    # -- block helpers (arrays, cache-line fills) --------------------------

    def read_array(self, addr: int, count: int) -> np.ndarray:
        """Read ``count`` consecutive quadwords starting at ``addr``."""
        addrs = np.uint64(addr) + np.uint64(8) * np.arange(count, dtype=np.uint64)
        return self.read_quads(addrs)

    def write_array(self, addr: int, values: np.ndarray) -> None:
        """Write consecutive quadwords starting at ``addr``."""
        values = np.ascontiguousarray(values)
        if values.dtype == np.float64:
            values = values.view(np.uint64)
        addrs = np.uint64(addr) + np.uint64(8) * np.arange(len(values), dtype=np.uint64)
        self.write_quads(addrs, values.astype(np.uint64, copy=False))

    def read_f64(self, addr: int, count: int) -> np.ndarray:
        """Read ``count`` quadwords and reinterpret as IEEE doubles."""
        return self.read_array(addr, count).view(np.float64)

    def write_f64(self, addr: int, values: np.ndarray) -> None:
        """Write IEEE doubles as raw quadwords."""
        self.write_array(addr, np.ascontiguousarray(values, dtype=np.float64))
