"""Banked L2 cache: the heart of Tarantula's memory system (section 3.4).

The Vbox talks to the L2 in *slices* — groups of up to 16 addresses that
are bank-conflict-free, so the 16 banks can cycle in parallel and return
one quadword each per cycle.  Stride-1 slices set the "pump" bit and
move whole cache lines through the PUMP streaming registers instead.

This model tracks real tag state (so hit ratios, evictions, writebacks
and P-bit traffic are all emergent), and schedules time with resource
reservation:

* one slice lookup per cycle through the L2 pipe (``slice_port``);
* misses allocate a MAF entry, sleep until the Zbox delivers every
  missing line, then *retry* down the pipe (second tag walk);
* full-line pump stores take the directory Invalid->Dirty path instead
  of a read fill (the ``wh64``-style allocation STREAMS copy depends on);
* vector touches to P-bit lines trigger L1 invalidates (scalar-vector
  coherency, section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.mem.banks import make_tag_cache
from repro.mem.l1cache import L1DataCache
from repro.mem.maf import MissAddressFile
from repro.mem.pump import PumpUnit
from repro.mem.zbox import Zbox
from repro.utils.bitops import line_address
from repro.utils.stats import Counter
from repro.utils.timeline import CalendarTimeline

#: Hard bound on replay loops; the paper's panic mode guarantees forward
#: progress, so exceeding this means a model bug, not a workload property.
MAX_REPLAYS = 64


@dataclass
class L2Config:
    """L2 geometry and pipe latencies (Table 3 derived)."""

    capacity_bytes: int = 16 << 20
    ways: int = 8
    line_bytes: int = 64
    n_banks: int = 16
    #: cycles from slice lookup to data at the Vbox (hit)
    hit_latency: float = 20.0
    #: extra pipe cycles for the second (retry) tag walk
    retry_penalty: float = 4.0
    #: cycles to invalidate / write-through an L1 line on a P-bit hit
    l1_invalidate_penalty: float = 6.0
    maf_entries: int = 32
    replay_threshold: int = 8

    def __post_init__(self) -> None:
        if self.capacity_bytes % (self.ways * self.line_bytes):
            raise ConfigError("L2 capacity not divisible by ways*line")


class BankedL2:
    """The 16-bank L2 with MAF, PUMP and P-bit coherency."""

    def __init__(self, config: L2Config | None = None,
                 zbox: Zbox | None = None,
                 pump: PumpUnit | None = None,
                 l1: Optional[L1DataCache] = None) -> None:
        self.config = config or L2Config()
        self.zbox = zbox or Zbox()
        self.pump = pump or PumpUnit()
        self.l1 = l1
        self.tags = make_tag_cache(self.config.capacity_bytes, self.config.ways,
                                   self.config.line_bytes, name="L2")
        self.maf = MissAddressFile(self.config.maf_entries,
                                   self.config.replay_threshold)
        # slice lookups arrive out of order (retry walks wake long after
        # younger first walks), so the port must be able to backfill
        self.slice_port = CalendarTimeline("l2-slice-port")
        #: line address -> time its in-flight fill arrives; accesses that
        #: "hit" such a line sleep in the MAF until then (miss merging)
        self._fill_ready: dict[int, float] = {}
        #: latest arrival ever recorded in _fill_ready; once the clock
        #: passes it no entry can delay anything, so the per-line probe
        #: short-circuits (the steady state between miss bursts)
        self._fill_watermark = 0.0
        #: amortized pruning bound for _fill_ready; doubles whenever a
        #: prune fails to reclaim half the dict, so a large steady-state
        #: working set never degrades into an O(n) rebuild per slice
        self._fill_prune_threshold = 1 << 15
        #: bound fast-probe of the numpy tag model (None on the
        #: reference model, which then always takes the general path)
        self._tags_all_hit = getattr(self.tags, "access_all_hit", None)
        self.counters = Counter()

    # -- warmup helpers (no timing effects) ----------------------------------

    def warm(self, addrs: Iterable[int], dirty: bool = False,
             from_core: bool = False) -> None:
        """Preload lines into the tags (e.g. 'prefetched into L2')."""
        lines = np.fromiter((line_address(a) for a in addrs),
                            dtype=np.uint64)
        # chunked batched walk: consecutive-line warms stay conflict-free
        # inside a 4K chunk, anything stranger falls back sequentially
        # inside access_many
        chunk = 4096
        for start in range(0, lines.size, chunk):
            self.tags.access_many(lines[start:start + chunk],
                                  is_write=dirty, from_core=from_core)

    def warm_range(self, base: int, nbytes: int) -> None:
        """Warm every line overlapping [base, base+nbytes).

        Both bounds are line-aligned explicitly, so a non-line-aligned
        end still warms the final partially-covered line.
        """
        if nbytes <= 0:
            return
        line = self.config.line_bytes
        end = line_address(base + nbytes - 1) + line
        self.warm(range(line_address(base), end, line))

    # -- internal pieces -------------------------------------------------------

    def _handle_eviction(self, eviction, now: float) -> None:
        if eviction is None:
            return
        if eviction.pbit and self.l1 is not None:
            # evicting a P-bit line sends an invalidate to the EV8 core
            self.l1.invalidate(eviction.addr)
            self.counters.add("evict_invalidates")
        if eviction.dirty:
            self.zbox.writeback_line(eviction.addr, now)

    def _pbit_coherency(self, lines: list[int], now: float) -> float:
        """Vector touch of P-bit lines: L1 invalidate / write-through.

        Returns the extra delay added to this slice.
        """
        hot = self.tags.pbit_lines(lines)
        if not hot:
            return 0.0
        for addr in hot:
            self.counters.add("pbit_hits")
            if self.l1 is not None:
                self.l1.invalidate(addr)
        self.tags.clear_pbits(hot)
        return self.config.l1_invalidate_penalty

    def _probe(self, lines: list[int], is_write: bool,
               from_core: bool, now: float) -> list[int]:
        """Tag-walk all lines, allocating on miss; returns missing lines."""
        hits, evictions = self.tags.access_many(lines, is_write=is_write,
                                                from_core=from_core)
        for eviction in evictions:
            if eviction is not None:
                self._handle_eviction(eviction, now)
        missing = [addr for addr, hit in zip(lines, hits) if not hit]
        n_hits = len(lines) - len(missing)
        if n_hits:
            self.counters.add("line_hits", n_hits)
        if missing:
            self.counters.add("line_misses", len(missing))
        return missing

    def _fetch_missing(self, missing: list[int], full_line_write: bool,
                       earliest: float) -> float:
        """Schedule Zbox traffic for the missing lines; returns wake time.

        Each line's individual arrival time is recorded so later slices
        that touch a still-in-flight line sleep until it lands (the MAF
        miss-merge behavior) instead of hitting for free.
        """
        wake = earliest
        fills = self._fill_ready
        if full_line_write:
            for addr in missing:
                ready = self.zbox.dirty_transition(addr, earliest)
                fills[addr] = ready
                if ready > wake:
                    wake = ready
        else:
            for addr in missing:
                ready = self.zbox.fill_line(addr, earliest)
                fills[addr] = ready
                if ready > wake:
                    wake = ready
        if wake > self._fill_watermark:
            self._fill_watermark = wake
        if len(self._fill_ready) > self._fill_prune_threshold:
            before = len(self._fill_ready)
            self._fill_ready = {a: t for a, t in self._fill_ready.items()
                                if t > earliest}
            pruned = before - len(self._fill_ready)
            if pruned:
                self.counters.add("fill_ready_pruned", pruned)
            if len(self._fill_ready) > self._fill_prune_threshold >> 1:
                self._fill_prune_threshold <<= 1
        return wake

    def _pending_fills(self, lines: list[int], now: float) -> float:
        """Latest in-flight fill among ``lines`` arriving after ``now``."""
        fills = self._fill_ready
        if not fills or self._fill_watermark <= now:
            return now
        latest = now
        for addr in lines:
            t = fills.get(addr)
            if t is not None and t > latest:
                latest = t
        return latest

    # -- the vector slice path --------------------------------------------------

    def access_slice(self, line_addrs: Iterable[int], quadwords: int,
                     is_write: bool, earliest: float,
                     pump_bit: bool = False,
                     full_line_write: bool = False,
                     canonical: bool = False) -> float:
        """One slice walks the L2 pipe; returns data-delivered time.

        ``line_addrs`` are the (<=16, bank-conflict-free) line addresses
        the slice touches; ``quadwords`` is the element count it moves
        (used for PUMP streaming occupancy).  ``full_line_write`` marks
        pump stores that overwrite whole lines and may therefore take
        the directory-transition path instead of a read fill.
        ``canonical=True`` promises ``line_addrs`` is already a sorted
        list of distinct line-aligned addresses (what
        :meth:`~repro.vbox.slices.Slice.line_addresses` returns) and
        skips re-canonicalizing it.
        """
        if canonical:
            lines = line_addrs
        else:
            lines = sorted({line_address(a) for a in line_addrs})
        if len(lines) > self.config.n_banks:
            raise SimulationError(
                f"slice touches {len(lines)} lines > {self.config.n_banks} banks")
        self.counters.add("slices")
        if pump_bit:
            self.counters.add("pump_slices")

        t_lookup = self.slice_port.reserve(earliest, 1.0)
        # steady-state fast lane: no P-bit among these lines, no fill
        # still in flight, every line resident — one fused probe replaces
        # the pbit/probe/pending walk (bit-identical state and counters)
        fast = self._tags_all_hit
        if (fast is not None and self._fill_watermark <= t_lookup
                and not self.tags.pbit_lines(lines)
                and fast(lines, is_write)):
            self.counters.add("line_hits", len(lines))
            t_data = t_lookup + self.config.hit_latency
            if pump_bit and self.pump.enabled:
                return self.pump.stream(quadwords, is_write, t_data)
            return t_data
        delay = self._pbit_coherency(lines, t_lookup)
        missing = self._probe(lines, is_write, False, t_lookup)

        pending_until = self._pending_fills(lines, t_lookup)
        if missing or pending_until > t_lookup:
            t_entry = self.maf.earliest_entry(t_lookup)
            if t_entry > t_lookup:
                self.counters.add("maf_stalls")
            entry = self.maf.allocate(t_entry, set(missing))
            wake = self._fetch_missing(missing, full_line_write and is_write,
                                       t_entry)
            # merge with fills already in flight for lines we "hit"
            if pending_until > wake:
                wake = pending_until
            if not missing:
                self.counters.add("miss_merges")
            self.maf.sleep_until(entry, wake)
            # retry walk: the slice goes to the Retry Queue and looks up
            # the tags a second time (section 3.4)
            replays = 0
            t_retry = self.slice_port.reserve(wake, 1.0)
            while True:
                refetch = self.tags.missing_of(missing)
                if not refetch:
                    break
                # a competing access evicted one of our lines before the
                # retry: replay (and possibly panic)
                replays += 1
                if replays > MAX_REPLAYS:
                    raise SimulationError("slice replayed past hard bound")
                self.maf.record_replay(entry)
                for addr in refetch:
                    _, ev = self.tags.access(addr, is_write=is_write)
                    self._handle_eviction(ev, t_retry)
                wake = self._fetch_missing(refetch, False, t_retry)
                t_retry = self.slice_port.reserve(wake, 1.0)
            t_data = t_retry + self.config.retry_penalty + \
                self.config.hit_latency + delay
            self.maf.release(entry, t_data)
        else:
            t_data = t_lookup + self.config.hit_latency + delay

        if pump_bit and self.pump.enabled:
            return self.pump.stream(quadwords, is_write, t_data)
        return t_data

    # -- the scalar (EV8 core) path ------------------------------------------------

    def scalar_access(self, addr: int, is_write: bool,
                      earliest: float) -> tuple[bool, float]:
        """EV8-core load/store probe; sets the P-bit; returns (hit, ready)."""
        line = line_address(addr)
        t_lookup = self.slice_port.reserve(earliest, 1.0)
        hit, eviction = self.tags.access(line, is_write=is_write, from_core=True)
        self._handle_eviction(eviction, t_lookup)
        self.counters.add("scalar_hits" if hit else "scalar_misses")
        if hit:
            ready = max(t_lookup + self.config.hit_latency,
                        self._pending_fills([line], t_lookup))
            return True, ready
        ready = self.zbox.fill_line(line, t_lookup)
        self._fill_ready[line] = ready
        if ready > self._fill_watermark:
            self._fill_watermark = ready
        return False, ready

    def set_pbits(self, line_addrs: Iterable[int]) -> None:
        """DrainM path: mark drained store lines as core-touched."""
        for addr in line_addrs:
            resident = self.tags.lookup(line_address(addr))
            if resident is not None:
                resident.pbit = True
            else:
                # allocate through the normal path so state stays consistent
                _, ev = self.tags.access(line_address(addr), is_write=True,
                                         from_core=True)
                self._handle_eviction(ev, 0.0)
        self.counters.add("drain_pbit_updates")
