"""EV8 first-level data cache and write buffer.

The L1 matters to this reproduction for two reasons:

* the EV8 *baseline* runs its scalar loads/stores through it;
* the scalar-vector coherency protocol (section 3.4) hinges on what the
  L1 and the store queue / write buffer hide from the L2 — the P-bit
  invalidate path and the ``DrainM`` barrier are modeled against this
  structure (see :mod:`repro.core.coherency`).

Geometry follows Table 3: 2-way associative, 64-byte lines; capacity is
configurable (64 KB default, the EV8 design point).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mem.banks import make_tag_cache
from repro.utils.bitops import line_address
from repro.utils.stats import Counter


@dataclass
class PendingStore:
    """A retired store sitting in the write buffer, not yet in L2."""

    addr: int
    value_known: bool = True


class L1DataCache:
    """L1 tags + the write buffer that makes scalar stores 'invisible'.

    Scalar stores move from the store queue into the write buffer at
    retirement *without informing the L1 or L2* (section 3.4) — that gap
    is exactly the hazard ``DrainM`` exists to close.  ``drain()`` models
    the DrainM purge: it empties the buffer and returns the line
    addresses so the L2 can set their P-bits.
    """

    def __init__(self, capacity_bytes: int = 64 << 10, ways: int = 2,
                 line_bytes: int = 64, write_buffer_entries: int = 32) -> None:
        self.tags = make_tag_cache(capacity_bytes, ways, line_bytes, name="L1")
        self.write_buffer: list[PendingStore] = []
        self.write_buffer_entries = write_buffer_entries
        self.counters = Counter()

    def load(self, addr: int) -> bool:
        """Scalar load probe; returns hit. Allocates on miss."""
        hit, _ = self.tags.access(line_address(addr), is_write=False,
                                  from_core=True)
        self.counters.add("loads")
        return hit

    def store(self, addr: int) -> None:
        """Scalar store: enters the write buffer (invisible to L2)."""
        self.counters.add("stores")
        self.write_buffer.append(PendingStore(line_address(addr)))
        if len(self.write_buffer) > self.write_buffer_entries:
            # oldest entry spills to the cache hierarchy on overflow
            spilled = self.write_buffer.pop(0)
            self.tags.access(spilled.addr, is_write=True, from_core=True)
            self.counters.add("write_buffer_spills")

    def pending_lines(self) -> set[int]:
        """Line addresses with stores still hidden in the write buffer."""
        return {p.addr for p in self.write_buffer}

    def drain(self) -> list[int]:
        """DrainM purge: push all buffered stores into the hierarchy.

        Returns the drained line addresses (the caller updates L2 state
        and P-bits for each).
        """
        drained = [pending.addr for pending in self.write_buffer]
        if drained:
            # batched tag walk; duplicate lines (two stores to one line)
            # resolve sequentially inside access_many
            self.tags.access_many(drained, is_write=True, from_core=True)
        self.write_buffer.clear()
        self.counters.add("drains")
        self.counters.add("drained_stores", len(drained))
        return drained

    def invalidate(self, addr: int) -> bool:
        """L2-initiated invalidate (P-bit hit by a vector access).

        Returns True when the line was present and dirty (forcing a
        write-through to L2 per section 3.4).
        """
        line = self.tags.invalidate(line_address(addr))
        if line is None:
            return False
        self.counters.add("coherency_invalidates")
        return line.dirty
