"""Encoding and assembler round-trip lint.

Two invariants tie the ISA definition together, and this pass checks
both for every instruction of a program:

* ``decode(encode(i)) == i`` whenever ``i`` is representable in the
  32-bit encoding.  A mismatch means :mod:`repro.isa.encodings` would
  corrupt a stored trace — always an error.
* ``assemble(str(i)) == i``: every listing line must re-assemble to the
  same instruction, so listings are an exact interchange format.

Instructions the encoding *intentionally* cannot represent (float
immediates, literals wider than 5 bits, displacements outside the
8-byte-multiple [-512, 504] window — a real compiler materializes these
through registers) are aggregated into a single INFO note instead of a
per-instruction flood: an unrolled kernel has thousands of large
displacements and that is a documented property, not a finding.
"""

from __future__ import annotations

from repro.errors import AssemblerError
from repro.isa.assembler import assemble
from repro.isa.encodings import EncodingError, decode, encode
from repro.isa.program import Program

from repro.analysis.diagnostics import Code, LintReport


def _equivalent(a, b) -> bool:
    """Instruction equality modulo the metrics tag (compare=False)."""
    return a == b


def check_encodings(program: Program, report: LintReport) -> None:
    """Binary encode/decode round-trip for every instruction."""
    unencodable = 0
    first_example = None
    seen_ops: set[str] = set()
    for i, instr in enumerate(program):
        try:
            word = encode(instr)
        except EncodingError as exc:
            unencodable += 1
            if first_example is None:
                first_example = (i, str(exc))
            continue
        try:
            back = decode(word)
        except EncodingError as exc:
            if instr.op not in seen_ops:
                seen_ops.add(instr.op)
                report.add(Code.ENC_MISMATCH, i,
                           f"decode failed on own encoding: {exc}",
                           str(instr))
            continue
        if not _equivalent(instr, back):
            if instr.op not in seen_ops:
                seen_ops.add(instr.op)
                report.add(Code.ENC_MISMATCH, i,
                           f"round-trip produced {back!s}", str(instr))
    if unencodable:
        index, example = first_example
        report.add(Code.ENC_UNENCODABLE, index,
                   f"{unencodable} of {len(program)} instructions are not "
                   "representable in the 32-bit encoding (documented "
                   f"limitation; first: {example})")


def check_assembler_roundtrip(program: Program, report: LintReport) -> None:
    """``assemble(str(instr))`` must reproduce every instruction."""
    seen_ops: set[str] = set()   # gates reporting, not checking
    for i, instr in enumerate(program):
        text = str(instr)
        try:
            again = assemble(text)
        except AssemblerError as exc:
            if instr.op not in seen_ops:
                seen_ops.add(instr.op)
                report.add(Code.ASM_MISMATCH, i,
                           f"listing line failed to assemble: {exc}", text)
            continue
        if len(again) != 1 or not _equivalent(again[0], instr):
            if instr.op not in seen_ops:
                seen_ops.add(instr.op)
                got = str(again[0]) if len(again) == 1 \
                    else f"{len(again)} instrs"
                report.add(Code.ASM_MISMATCH, i,
                           f"re-assembled to {got}", text)
