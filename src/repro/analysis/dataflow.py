"""Control-state and def-use dataflow checks (one forward walk).

Programs are straight-line (loop control runs on the EV8 core, kernels
arrive fully unrolled), so a single pass over the instruction stream
visits every program point.  The walk threads the
:class:`~repro.analysis.lattice.ControlState` lattice for ``vl``/``vs``/
``vm`` and a per-register def-use state for the two register files.

Rules, in the order they can fire at one instruction (reads are checked
against the state *before* the instruction, writes update it after):

* ``VL_UNSET`` / ``VS_UNSET`` / ``VM_UNSET`` — element-wise, strided or
  masked execution under never-initialized control state;
* ``VM_STALE`` — masked execution under a mask computed at a different
  (statically known) ``vl``;
* ``VL_ZERO`` / ``VL_RANGE`` — suspicious ``setvl`` immediates;
* ``USE_BEFORE_DEF`` / ``ACC_UNINIT`` / ``MERGE_UNINIT`` — reads of
  never-written vector registers, classified by how they are read
  (true source, FMAC accumulator, masked merge).  The zero idioms
  (``vvxor v, v, d``) are definitions, not uses;
* ``SCALAR_USE_BEFORE_DEF`` — same for the EV8-side registers;
* ``DEAD_WRITE`` — a vector write that is overwritten (by a full,
  unmasked write) or reaches the end of the program without ever being
  read;
* ``ZERO_DEST`` — a non-load write to ``v31``, which the register file
  discards: only loads targeting ``v31`` mean something (prefetch).

Control-state and use-before-def findings are reported once per
register/resource — repeating them for every instruction of an unrolled
loop would bury the signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.isa.program import Program

from repro.analysis.diagnostics import Code, LintReport
from repro.analysis.effects import effects_of
from repro.analysis.lattice import ControlState


@dataclass
class _Def:
    """Last write to one vector register: where, and read since?"""

    index: int
    read: bool = False
    op: str = ""


def check_dataflow(program: Program, report: LintReport) -> None:
    """Run the control-state and def-use rules, appending to ``report``."""
    state = ControlState.initial()
    vdefs: dict[int, _Def] = {}
    sdefs: set[int] = set()
    reported: set[tuple[Code, object]] = set()

    def once(code: Code, key: object, index: int, message: str,
             instruction: str = "") -> None:
        if (code, key) not in reported:
            reported.add((code, key))
            report.add(code, index, message, instruction)

    for i, instr in enumerate(program):
        eff = effects_of(instr)
        text = str(instr)

        # -- control-state reads (against the incoming state) ----------
        if eff.reads_vl and state.vl.is_unset:
            once(Code.VL_UNSET, "vl", i,
                 "vector instruction executes with vl never set "
                 "(kernel relies on power-on/caller state)", text)
        if eff.reads_vs and state.vs.is_unset:
            once(Code.VS_UNSET, "vs", i,
                 "strided access executes with vs never set", text)
        if eff.reads_vm:
            if state.vm.is_unset:
                once(Code.VM_UNSET, "vm", i,
                     "masked instruction but no setvm precedes it", text)
            elif (state.vm.vl_at_def.is_known and state.vl.is_known
                  and state.vm.vl_at_def.value != state.vl.value):
                once(Code.VM_STALE, state.vm.set_at, i,
                     f"mask was computed at vl={state.vm.vl_at_def.value} "
                     f"but executes at vl={state.vl.value} "
                     f"(setvm at instruction {state.vm.set_at})", text)

        # -- setvl immediate sanity -------------------------------------
        if instr.op == "setvl" and isinstance(instr.imm, int):
            if instr.imm == 0:
                report.add(Code.VL_ZERO, i,
                           "vl=0 makes every vector instruction a no-op",
                           text)
            elif not 0 <= instr.imm <= 128:
                report.add(Code.VL_RANGE, i,
                           f"setvl {instr.imm} is clamped to [0, 128] "
                           "by the hardware", text)

        # -- vector register reads --------------------------------------
        def _read(reg: Optional[int], code: Code, note: str) -> None:
            if reg is None:
                return
            d = vdefs.get(reg)
            if d is None:
                once(code, reg, i, f"v{reg} {note}", text)
            else:
                d.read = True

        if not eff.is_zero_idiom:
            for reg in eff.vreg_sources:
                _read(reg, Code.USE_BEFORE_DEF,
                      "is read but never written before this point")
        _read(eff.vreg_acc, Code.ACC_UNINIT,
              "is accumulated into (reads_dest) but never initialized")
        _read(eff.vreg_merge, Code.MERGE_UNINIT,
              "merges inactive elements from a never-written register")

        # -- scalar register reads --------------------------------------
        for reg in eff.sreg_reads:
            if reg not in sdefs:
                once(Code.SCALAR_USE_BEFORE_DEF, reg, i,
                     f"r{reg} is read but never written before this point",
                     text)
                sdefs.add(reg)   # report each register once

        # -- writes -----------------------------------------------------
        for reg in eff.vreg_writes:
            prior = vdefs.get(reg)
            full = eff.vreg_merge != reg and eff.vreg_acc != reg
            if prior is not None and not prior.read and full:
                report.add(Code.DEAD_WRITE, prior.index,
                           f"v{reg} written here ({prior.op}) is "
                           f"overwritten at instruction {i} without "
                           "ever being read")
            vdefs[reg] = _Def(index=i, op=text)
        if eff.vreg_discard is not None:
            report.add(Code.ZERO_DEST, i,
                       "v31 is architectural zero; this write is "
                       "discarded (only loads to v31 prefetch)", text)
        sdefs.update(eff.sreg_writes)

        state = state.step(instr, i)

    # -- end of program: definitions that were never read ---------------
    for reg, d in sorted(vdefs.items()):
        if not d.read:
            report.add(Code.DEAD_WRITE, d.index,
                       f"v{reg} written here ({d.op}) is never read "
                       "before the program ends")
