"""Symbolic memory footprints for vector and scalar accesses.

A :class:`Footprint` is the static abstraction of "which bytes can this
instruction touch": a symbolic base address (:class:`~repro.analysis.
symbolic.SymExpr`), plus shape — a stride/length progression for strided
accesses, a relative byte-offset interval for gathers/scatters, or a
single quadword for scalar ``ldq``/``stq``.  Unknown components widen
monotonically: an unknown stride or offset interval means the access may
touch anything relative to its base, and an unknown base means it may
touch anything at all.

Three relations drive the analyzer:

* :meth:`Footprint.may_overlap` — *cannot prove disjoint*.  Used to
  create memory dependence edges and flag hazards; any widening makes
  it answer ``True``, so edges are conservative.
* :meth:`Footprint.must_overlap` — *provably shares a byte*.  Only
  answers ``True`` on concrete evidence (equal-stride congruence, dense
  interval intersection, scalar-in-progression), so "must" edges are
  trustworthy for scheduling.
* :meth:`Footprint.covers` — membership test for a single concrete
  address, used by the trace-differential soundness suite to check
  static ⊇ dynamic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.symbolic import SymExpr

#: quadword element size — every Tarantula memory op moves 8-byte data
ELEM = 8


@dataclass(frozen=True)
class Footprint:
    """The set of bytes one memory instruction may touch.

    ``kind`` is ``"strided"`` (SM group: base + i*stride for i < length),
    ``"indexed"`` (RM group: base + offset, offset in [off_lo, off_hi]),
    or ``"scalar"`` (one quadword at base).  ``base`` is ``None`` when
    the base register was widened to TOP; ``stride`` is ``None`` when
    ``vs`` was not statically known; ``off_lo``/``off_hi`` are ``None``
    when the index vector's bounds are unknown.
    """

    base: Optional[SymExpr]
    kind: str
    stride: Optional[int] = None
    length: int = 1
    off_lo: Optional[int] = None
    off_hi: Optional[int] = None
    elem: int = ELEM

    # -- shape ------------------------------------------------------------
    def span(self) -> Optional[tuple[int, int]]:
        """Byte extent relative to ``base`` as a half-open ``[lo, hi)``
        interval, or ``None`` when unbounded."""
        if self.kind == "scalar":
            return (0, self.elem)
        if self.kind == "strided":
            if self.stride is None:
                return None
            reach = self.stride * (self.length - 1)
            return (min(0, reach), max(0, reach) + self.elem)
        # indexed
        if self.off_lo is None or self.off_hi is None:
            return None
        return (self.off_lo, self.off_hi + self.elem)

    @property
    def is_bounded(self) -> bool:
        """True when both base and extent are statically known enough
        to give concrete absolute byte bounds."""
        return self.base is not None and self.span() is not None

    def abs_interval(self) -> Optional[tuple[int, int]]:
        """Absolute half-open byte interval when the base is a concrete
        constant and the span is bounded, else ``None``."""
        if self.base is None or not self.base.is_const:
            return None
        span = self.span()
        if span is None:
            return None
        return (self.base.const + span[0], self.base.const + span[1])

    # -- relations --------------------------------------------------------
    def may_overlap(self, other: "Footprint") -> bool:
        """False only when the two footprints are provably disjoint."""
        if self.base is None or other.base is None:
            return True
        delta = other.base.delta(self.base)
        if delta is None:
            # different symbolic bases: distinct arena regions in
            # practice, but nothing proves it — stay conservative
            return True
        a, b = self.span(), other.span()
        if a is None or b is None:
            return True
        # other occupies [delta+b0, delta+b1) relative to self.base
        lo, hi = delta + b[0], delta + b[1]
        if hi <= a[0] or lo >= a[1]:
            return False
        # the enclosing intervals intersect; equal positive strides can
        # still interleave disjointly if the phase gap clears an element
        # on both sides of every congruence class
        if (self.kind == "strided" and other.kind == "strided"
                and self.stride == other.stride
                and self.stride is not None
                and self.stride >= self.elem):
            gap = delta % self.stride
            if gap >= self.elem and self.stride - gap >= other.elem:
                return False
        return True

    def must_overlap(self, other: "Footprint") -> bool:
        """True only when the footprints provably share a byte."""
        if self.base is None or other.base is None:
            return False
        delta = other.base.delta(self.base)
        if delta is None:
            return False
        a, b = self.span(), other.span()
        if a is None or b is None:
            return False
        lo, hi = delta + b[0], delta + b[1]
        if hi <= a[0] or lo >= a[1]:
            return False
        # dense-vs-dense: enclosing interval intersection is exact
        if self._dense and other._dense:
            return True
        # scalar against a known progression: exact membership
        if other.kind == "scalar" and self.kind == "strided" \
                and self.stride:
            return self._hits_slot(delta, other.elem)
        if self.kind == "scalar" and other.kind == "strided" \
                and other.stride:
            return other._hits_slot(-delta, self.elem)
        # equal positive strides: base congruence plus interval
        # intersection guarantees a shared slot in the overlap range
        if (self.kind == "strided" and other.kind == "strided"
                and self.stride == other.stride
                and self.stride is not None and self.stride > 0
                and delta % self.stride == 0):
            return True
        return False

    @property
    def _dense(self) -> bool:
        """Touches every byte of its span (scalar, or stride == elem)."""
        if self.kind == "scalar":
            return True
        return self.kind == "strided" and \
            self.stride is not None and abs(self.stride) == self.elem

    def _hits_slot(self, offset: int, width: int) -> bool:
        """Does the strided progression touch [offset, offset+width)
        relative to its own base?  (Exact, for known stride.)"""
        for i in range(self.length):
            pos = i * self.stride
            if pos < offset + width and offset < pos + self.elem:
                return True
        return False

    def covers(self, addr: int) -> bool:
        """Can this footprint touch the quadword at concrete ``addr``?

        Only meaningful when ``base`` is a concrete constant (the
        soundness suite analyzes fully-concrete registry kernels); a
        symbolic base answers ``False`` so the differential test fails
        loudly rather than vacuously passing.
        """
        if self.base is None:
            return True        # widened to may-touch-anything
        if not self.base.is_const:
            return False
        rel = addr - self.base.const
        if self.kind == "scalar":
            return rel == 0
        if self.kind == "strided":
            if self.stride is None:
                return True
            if self.stride == 0:
                return rel == 0
            if rel % self.stride != 0:
                return False
            i = rel // self.stride
            return 0 <= i < self.length
        # indexed
        if self.off_lo is None or self.off_hi is None:
            return True
        return self.off_lo <= rel <= self.off_hi

    def describe(self) -> str:
        """Compact human-readable form for diagnostics."""
        base = "?" if self.base is None else str(self.base)
        if self.kind == "scalar":
            return f"[{base} +8]"
        if self.kind == "strided":
            stride = "?" if self.stride is None else self.stride
            return f"[{base} + i*{stride}, i<{self.length}]"
        if self.off_lo is None:
            return f"[{base} + ?]"
        return f"[{base} + ({self.off_lo}..{self.off_hi})]"


def interval_within(inner: tuple[int, int],
                    outer: tuple[int, int]) -> bool:
    """Half-open byte-interval containment."""
    return outer[0] <= inner[0] and inner[1] <= outer[1]
