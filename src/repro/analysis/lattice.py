"""Control-state lattice for ``vl`` / ``vs`` / ``vm``.

The linter abstract-interprets a program against a small lattice per
control register::

        UNKNOWN          (set, value not statically known)
       /       \\
   KNOWN(a)  KNOWN(b)    (set by an immediate)
       \\       /
         UNSET           (never written by the program)

``UNSET`` means the kernel is relying on whatever the control register
happened to hold — the paper's kernels never do this (they always
``setvl``/``setvs`` on entry), so reads of UNSET state are lint errors.
A ``setvl``/``setvs`` from a scalar register yields ``UNKNOWN``: set,
but with no statically known value.

Kernels are straight-line (no branches: loop control runs on the EV8
core and programs arrive fully unrolled), so today the interpretation
is a single forward walk.  ``join`` implements the lattice merge so the
same machinery works if control flow is ever added: joining with UNSET
stays UNSET (conservatively "maybe never set"), and disagreeing known
values join to UNKNOWN.

``vm`` additionally records *which* instruction produced it and the
abstract ``vl`` at that point: a masked instruction executing after
``vl`` changed is flagged stale, because a mask computed for one vector
length silently mis-covers another (the classic hand-vectorization slip
the paper's strip-mined loops invite).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

from repro.isa.instructions import Instruction

from repro.analysis.effects import effects_of


class _Kind(enum.Enum):
    UNSET = "unset"
    KNOWN = "known"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class AbstractValue:
    """One lattice element for a scalar control register."""

    kind: _Kind
    value: Optional[int] = None

    # -- constructors ---------------------------------------------------
    @classmethod
    def unset(cls) -> "AbstractValue":
        return cls(_Kind.UNSET)

    @classmethod
    def known(cls, value: int) -> "AbstractValue":
        return cls(_Kind.KNOWN, int(value))

    @classmethod
    def unknown(cls) -> "AbstractValue":
        return cls(_Kind.UNKNOWN)

    # -- queries --------------------------------------------------------
    @property
    def is_unset(self) -> bool:
        return self.kind is _Kind.UNSET

    @property
    def is_known(self) -> bool:
        return self.kind is _Kind.KNOWN

    def join(self, other: "AbstractValue") -> "AbstractValue":
        """Lattice merge of two control-flow paths."""
        if self == other:
            return self
        if self.is_unset or other.is_unset:
            return AbstractValue.unset()
        return AbstractValue.unknown()

    def __str__(self) -> str:
        if self.is_known:
            return f"known({self.value})"
        return self.kind.value


@dataclass(frozen=True)
class MaskState:
    """Abstract ``vm``: whether set, by which instruction, at which vl."""

    set_at: Optional[int] = None          # producing instruction index
    vl_at_def: AbstractValue = AbstractValue.unset()

    @property
    def is_unset(self) -> bool:
        return self.set_at is None

    def join(self, other: "MaskState") -> "MaskState":
        if self == other:
            return self
        if self.is_unset or other.is_unset:
            return MaskState()
        # both set by different producers: keep "set, unknown regime"
        return MaskState(set_at=min(self.set_at, other.set_at),
                         vl_at_def=self.vl_at_def.join(other.vl_at_def))


@dataclass(frozen=True)
class ControlState:
    """Abstract ``vl``/``vs``/``vm`` at one program point."""

    vl: AbstractValue = AbstractValue.unset()
    vs: AbstractValue = AbstractValue.unset()
    vm: MaskState = MaskState()

    @classmethod
    def initial(cls) -> "ControlState":
        """Program entry: nothing set.

        The architecture powers up with ``vl=128, vs=8, vm=all-ones``
        (:class:`~repro.isa.registers.ControlRegisters`), but a kernel
        that silently relies on those defaults breaks the moment it is
        called after another kernel — so the lattice starts UNSET and
        the linter insists on explicit initialization, exactly like the
        paper's hand-written prologues.
        """
        return cls()

    def step(self, instr: Instruction, index: int) -> "ControlState":
        """Transfer function: state after executing ``instr``."""
        eff = effects_of(instr)
        state = self
        if eff.writes_vl:
            value = (AbstractValue.known(instr.imm)
                     if instr.imm is not None and isinstance(instr.imm, int)
                     else AbstractValue.unknown())
            state = replace(state, vl=value)
        if eff.writes_vs:
            value = (AbstractValue.known(instr.imm)
                     if instr.imm is not None and isinstance(instr.imm, int)
                     else AbstractValue.unknown())
            state = replace(state, vs=value)
        if eff.writes_vm:
            state = replace(state, vm=MaskState(set_at=index,
                                                vl_at_def=state.vl))
        return state

    def join(self, other: "ControlState") -> "ControlState":
        return ControlState(vl=self.vl.join(other.vl),
                            vs=self.vs.join(other.vs),
                            vm=self.vm.join(other.vm))
