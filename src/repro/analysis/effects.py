"""Architectural read/write effects of one instruction.

Every analysis in this package (the control lattice, def-use, the
dependence graph) needs the same question answered: *which architectural
resources does this instruction read and write?*  This module derives
that from :class:`~repro.isa.instructions.InstructionDef` metadata in
one place, with the reads classified the way the lint rules need them:

* ``vreg_sources`` — true data sources (``va``/``vb``: operands, store
  data, gather/scatter indices).  ``v31`` reads are omitted — it is
  architectural zero, so reading it is always defined.
* ``vreg_acc`` — a ``reads_dest`` FMAC accumulator (``vd`` is also a
  source; the paper's section-5 extension).
* ``vreg_merge`` — a destination whose old value survives in inactive
  elements: masked writes merge under ``vm`` (Figure 1), and ``vinsq``
  preserves all elements but one.
* ``vreg_writes`` / ``vreg_discard`` — architected destination writes;
  a write to ``v31`` is discarded and reported separately (it is the
  prefetch idiom on loads, and a likely bug anywhere else).

Control-register effects follow the semantics module: every element-wise
vector instruction reads ``vl``; SM-group accesses read ``vs``; ``/m``
qualified instructions read ``vm``; ``setvl``/``setvs``/``setvm`` write
them.  ``viota``/``vextq``/``vinsq`` touch all 128 elements regardless
of ``vl`` (see :mod:`repro.isa.semantics`), so they do not read ``vl``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.isa.instructions import Group, Instruction

#: VV mnemonics whose result is independent of the source value when
#: both sources are the same register: the classic zero-idiom
#: (``vvxor v, v, d`` / ``vvsubq v, v, d``).  Def-use treats these as
#: pure definitions, not uses.
ZERO_IDIOMS = ("vvxor", "vvsubq")


@dataclass(frozen=True)
class Effects:
    """Resource read/write sets of one instruction."""

    vreg_sources: tuple[int, ...]
    vreg_acc: Optional[int]
    vreg_merge: Optional[int]
    vreg_writes: tuple[int, ...]
    vreg_discard: Optional[int]
    sreg_reads: tuple[int, ...]
    sreg_writes: tuple[int, ...]
    reads_vl: bool
    reads_vs: bool
    reads_vm: bool
    writes_vl: bool
    writes_vs: bool
    writes_vm: bool
    reads_mem: bool
    writes_mem: bool
    is_zero_idiom: bool

    @property
    def vreg_reads(self) -> tuple[int, ...]:
        """All vector-register reads (sources, accumulator, merge)."""
        reads = list(self.vreg_sources)
        if self.vreg_acc is not None:
            reads.append(self.vreg_acc)
        if self.vreg_merge is not None:
            reads.append(self.vreg_merge)
        return tuple(reads)


def effects_of(instr: Instruction) -> Effects:
    """Classify the architectural effects of ``instr``."""
    d = instr.definition
    op = instr.op

    sources: list[int] = []
    acc: Optional[int] = None
    merge: Optional[int] = None
    writes: list[int] = []
    discard: Optional[int] = None
    sreads: list[int] = []
    swrites: list[int] = []

    zero_idiom = op in ZERO_IDIOMS and instr.va == instr.vb

    # -- vector register operands ---------------------------------------
    for fld in ("va", "vb"):
        if fld in d.fields:
            v = getattr(instr, fld)
            if v is not None and v != 31:
                sources.append(v)
    if "vd" in d.fields and instr.vd is not None:
        if instr.vd == 31:
            if not d.is_load:
                discard = 31
        else:
            writes.append(instr.vd)
            if d.reads_dest:
                acc = instr.vd
            elif instr.masked or op == "vinsq":
                # inactive / unselected elements keep their old value
                merge = instr.vd

    # -- scalar register operands ---------------------------------------
    for reg in (instr.ra, instr.rb):
        if reg is not None and reg != 31:
            sreads.append(reg)
    if instr.rd is not None and instr.rd != 31:
        swrites.append(instr.rd)

    # -- control registers ----------------------------------------------
    elementwise = (d.group in (Group.VV, Group.VS, Group.SM, Group.RM)
                   or op in ("vsumq", "vsumt"))
    reads_vl = elementwise
    reads_vs = d.group is Group.SM
    reads_vm = instr.masked

    return Effects(
        vreg_sources=tuple(sources),
        vreg_acc=acc,
        vreg_merge=merge,
        vreg_writes=tuple(writes),
        vreg_discard=discard,
        sreg_reads=tuple(sreads),
        sreg_writes=tuple(swrites),
        reads_vl=reads_vl,
        reads_vs=reads_vs,
        reads_vm=reads_vm,
        writes_vl=op == "setvl",
        writes_vs=op == "setvs",
        writes_vm=d.writes_vm,
        reads_mem=d.is_load and not instr.is_prefetch,
        writes_mem=d.is_store,
        is_zero_idiom=zero_idiom,
    )
