"""Static analysis for hand-vectorized Tarantula kernels (``vlint``).

The paper's methodology rests on hand-written vector assembly, and the
reproduction mirrors it: every workload is authored through
:class:`~repro.isa.builder.KernelBuilder` with no compiler in the path
to catch authoring mistakes.  This package is the verification layer
between kernel authoring and the timing model — it abstract-interprets
a :class:`~repro.isa.program.Program` *without executing it* and reports
:class:`Diagnostic` findings:

* :mod:`repro.analysis.lattice` — a control-state lattice tracking
  ``vl``/``vs``/``vm`` through the straight-line instruction stream;
* :mod:`repro.analysis.dataflow` — def-use analysis over the 32 vector
  registers and the scalar operands (use-before-def, dead writes,
  uninitialized FMAC accumulators, writes to architectural zero);
* :mod:`repro.analysis.depgraph` — a RAW/WAR/WAW dependence-graph
  builder shared with the Vbox renamer tests;
* :mod:`repro.analysis.encoding_lint` — round-trips every instruction
  through :mod:`repro.isa.encodings` and every listing line through
  :mod:`repro.isa.assembler`;
* :mod:`repro.analysis.vmem` — the symbolic vector-memory analyzer:
  per-access :class:`Footprint` derivation over the affine scalar
  domain (:mod:`repro.analysis.symbolic`), precise memory dependences
  for :func:`build_dep_graph`, and the memory lint rules
  (missing ``drainm``, out-of-bounds, self-overlap, bank conflicts).

Entry points: :func:`lint_program` for one program, :func:`lint_registry`
for the whole Table 2 suite, and ``python -m repro lint`` on the command
line.  Diagnostic codes and severities are documented in
``docs/ANALYSIS.md``.
"""

from repro.analysis.diagnostics import (  # noqa: F401
    Code,
    Diagnostic,
    LintError,
    LintReport,
    Severity,
)
from repro.analysis.depgraph import (  # noqa: F401
    DepEdge,
    DepGraph,
    DepKind,
    build_dep_graph,
)
from repro.analysis.effects import Effects, effects_of  # noqa: F401
from repro.analysis.footprint import Footprint  # noqa: F401
from repro.analysis.lattice import AbstractValue, ControlState  # noqa: F401
from repro.analysis.linter import lint_program, lint_registry  # noqa: F401
from repro.analysis.symbolic import SymExpr, SymState  # noqa: F401
from repro.analysis.vmem import (  # noqa: F401
    MemAccess,
    VmemAnalysis,
    analyze_memory,
    check_memory,
    memory_dependences,
)
