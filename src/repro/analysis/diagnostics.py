"""Diagnostic model for the kernel linter.

A :class:`Diagnostic` is one finding, identified by a stable
:class:`Code` so tests can assert exactly which rule fired; a
:class:`LintReport` is the ordered collection produced by one lint run.
Severities follow compiler convention:

* ``ERROR`` — the kernel is wrong (or relies on unarchitected state);
  the ``lint=True`` hooks raise :class:`LintError` on these.
* ``WARNING`` — legal but suspicious (dead writes, stale masks).
* ``INFO`` — notes about documented limitations (e.g. instructions the
  32-bit encoding intentionally cannot represent).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import ReproError


class Severity(Enum):
    """How bad a finding is; ordered so ``max()`` picks the worst."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


class Code(Enum):
    """Stable diagnostic identifiers (documented in docs/ANALYSIS.md)."""

    # control-state lattice
    VL_UNSET = "vector instruction before any setvl"
    VL_ZERO = "setvl to a known zero length"
    VL_RANGE = "setvl immediate outside [0, 128] (hardware clamps)"
    VS_UNSET = "strided memory instruction before any setvs"
    VM_UNSET = "masked instruction but vm was never produced by setvm"
    VM_STALE = "masked instruction under a vm computed at a different vl"
    # def-use over the register files
    USE_BEFORE_DEF = "vector register read before any write"
    ACC_UNINIT = "FMAC accumulator (reads_dest) never initialized"
    MERGE_UNINIT = "masked merge reads a never-written destination"
    SCALAR_USE_BEFORE_DEF = "scalar register read before any write"
    DEAD_WRITE = "vector register write is never read"
    ZERO_DEST = "non-load write to v31 has no effect (not a prefetch)"
    # encoding / assembler round-trips
    ENC_MISMATCH = "encode/decode round-trip changed the instruction"
    ENC_UNENCODABLE = "not representable in the 32-bit encoding"
    ASM_MISMATCH = "listing line does not re-assemble to the instruction"
    # symbolic vector-memory analysis (repro.analysis.vmem)
    MEM_DRAIN_MISSING = ("scalar store may be read by a later vector load "
                         "with no drainm between")
    MEM_OOB = "memory footprint outside every declared buffer"
    MEM_STORE_SELF_OVERLAP = ("strided store overlaps its own elements "
                              "(|vs| < element size)")
    MEM_BANK_CONFLICT = "stride self-conflicts in the 16-bank L2"
    MEM_MISALIGNED = "memory base address not 8-byte aligned"
    MEM_SHORT_VL = "memory accesses running at sub-maximal vl"

    @property
    def default_severity(self) -> Severity:
        return _SEVERITIES[self]


_SEVERITIES = {
    Code.VL_UNSET: Severity.ERROR,
    Code.VL_ZERO: Severity.WARNING,
    Code.VL_RANGE: Severity.WARNING,
    Code.VS_UNSET: Severity.ERROR,
    Code.VM_UNSET: Severity.ERROR,
    Code.VM_STALE: Severity.WARNING,
    Code.USE_BEFORE_DEF: Severity.ERROR,
    Code.ACC_UNINIT: Severity.ERROR,
    Code.MERGE_UNINIT: Severity.INFO,
    Code.SCALAR_USE_BEFORE_DEF: Severity.ERROR,
    Code.DEAD_WRITE: Severity.WARNING,
    Code.ZERO_DEST: Severity.WARNING,
    Code.ENC_MISMATCH: Severity.ERROR,
    Code.ENC_UNENCODABLE: Severity.INFO,
    Code.ASM_MISMATCH: Severity.ERROR,
    Code.MEM_DRAIN_MISSING: Severity.ERROR,
    Code.MEM_OOB: Severity.ERROR,
    Code.MEM_STORE_SELF_OVERLAP: Severity.WARNING,
    Code.MEM_BANK_CONFLICT: Severity.INFO,
    Code.MEM_MISALIGNED: Severity.INFO,
    Code.MEM_SHORT_VL: Severity.INFO,
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule, where it fired, and a human explanation."""

    code: Code
    severity: Severity
    index: int                 # instruction index within the program
    message: str
    instruction: str = ""      # listing text of the offending instruction

    def __str__(self) -> str:
        loc = f"@{self.index}" if self.index >= 0 else ""
        text = f"[{self.severity}] {self.code.name}{loc}: {self.message}"
        if self.instruction:
            text += f"  ({self.instruction})"
        return text


@dataclass
class LintReport:
    """All diagnostics from linting one program."""

    program_name: str
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, code: Code, index: int, message: str,
            instruction: str = "", severity: Severity | None = None) -> None:
        self.diagnostics.append(Diagnostic(
            code=code, severity=severity or code.default_severity,
            index=index, message=message, instruction=instruction))

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def infos(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    def by_code(self, code: Code) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code is code]

    def codes(self) -> set[Code]:
        return {d.code for d in self.diagnostics}

    def summary(self) -> str:
        return (f"{self.program_name}: {len(self.errors)} error(s), "
                f"{len(self.warnings)} warning(s), "
                f"{len(self.infos)} note(s)")

    def format(self, *, min_severity: Severity = Severity.INFO) -> str:
        lines = [self.summary()]
        for d in self.diagnostics:
            if d.severity.value >= min_severity.value:
                lines.append(f"  {d}")
        return "\n".join(lines)

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)


class LintError(ReproError):
    """Raised by the ``lint=True`` hooks when a program has errors."""

    def __init__(self, report: LintReport):
        self.report = report
        detail = "; ".join(str(d) for d in report.errors[:5])
        more = len(report.errors) - 5
        if more > 0:
            detail += f"; and {more} more"
        super().__init__(f"lint failed for {report.program_name}: {detail}")
