"""Symbolic affine domain for scalar registers and vector value bounds.

The vector-memory analyzer (:mod:`repro.analysis.vmem`) needs to know,
*without executing the program*, what address every memory instruction
can touch.  Kernel address arithmetic is overwhelmingly affine — bases
come from ``lda``, and are adjusted by ``addq``/``subq``/``mulq``/``sll``
with constant operands — so scalar registers are tracked as
:class:`SymExpr`: an integer constant plus an integer-weighted sum of
opaque *parameters* (``base + sum(c_i * p_i)``).  A parameter is minted
wherever a statically unknown value is defined (a scalar load, a
``vextq``/``vsumq``/``vsumt`` round trip from the vector side, or a
register the program reads before writing).  Two expressions over the
same parameters differ by a known constant, which is exactly what
footprint disjointness proofs need: symbolic bases cancel and the
comparison becomes concrete interval arithmetic.

Vector registers get a much coarser domain, :data:`VecInterval`: either
``(lo, hi)`` concrete bounds on every element, or ``None`` (unknown).
Its only job is bounding gather/scatter byte offsets — the idiomatic
index pipelines (``viota``, masking with ``vsand``, shifts, adds with
constants) all preserve bounds, while loaded index vectors are unknown
and widen the footprint to a may-touch-anything interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: an affine expression is widened to TOP (represented as ``None`` at
#: use sites) beyond this many distinct parameters — kernels that
#: accumulate a fresh unknown per loop iteration stay linear to analyze
MAX_TERMS = 8


@dataclass(frozen=True)
class SymExpr:
    """``const + sum(coeff * param)`` with integer coefficients.

    ``terms`` is a canonically-sorted tuple of ``(param, coeff)`` pairs
    with every coefficient non-zero, so structural equality is semantic
    equality and hashing works.
    """

    const: int
    terms: tuple[tuple[str, int], ...] = ()

    # -- constructors ----------------------------------------------------
    @classmethod
    def constant(cls, value: int) -> "SymExpr":
        return cls(int(value))

    @classmethod
    def param(cls, name: str) -> "SymExpr":
        """A fresh opaque unknown (coefficient 1)."""
        return cls(0, ((name, 1),))

    # -- queries ---------------------------------------------------------
    @property
    def is_const(self) -> bool:
        return not self.terms

    def delta(self, other: "SymExpr") -> Optional[int]:
        """``self - other`` when it is a known constant, else ``None``.

        This is the workhorse of footprint comparison: accesses relative
        to the same (possibly unknown) base have equal term tuples, so
        their distance is concrete even when their addresses are not.
        """
        if self.terms == other.terms:
            return self.const - other.const
        return None

    # -- arithmetic (all total; return None to signal widening) ----------
    def shift(self, offset: int) -> "SymExpr":
        return SymExpr(self.const + int(offset), self.terms)

    def plus(self, other: "SymExpr") -> Optional["SymExpr"]:
        merged = dict(self.terms)
        for name, coeff in other.terms:
            merged[name] = merged.get(name, 0) + coeff
        terms = tuple(sorted((n, c) for n, c in merged.items() if c))
        if len(terms) > MAX_TERMS:
            return None
        return SymExpr(self.const + other.const, terms)

    def minus(self, other: "SymExpr") -> Optional["SymExpr"]:
        return self.plus(other.times(-1))

    def times(self, factor: int) -> "SymExpr":
        factor = int(factor)
        if factor == 0:
            return SymExpr(0)
        return SymExpr(self.const * factor,
                       tuple((n, c * factor) for n, c in self.terms))

    def lshift(self, bits: int) -> "SymExpr":
        return self.times(1 << int(bits))

    def __str__(self) -> str:
        parts = [str(self.const)] if self.const or not self.terms else []
        for name, coeff in self.terms:
            parts.append(name if coeff == 1 else f"{coeff}*{name}")
        return " + ".join(parts)


class SymState:
    """Abstract scalar register file: ``r0``..``r30`` -> affine expr.

    ``r31`` is architectural zero.  Registers read before any write get
    a stable entry parameter (``r{n}.entry``); statically unknown
    definitions mint a fresh parameter named after the defining
    instruction index, so two different loads never alias symbolically.
    """

    def __init__(self) -> None:
        self._regs: dict[int, Optional[SymExpr]] = {}

    def read(self, reg: int) -> Optional[SymExpr]:
        """The register's expression, or ``None`` when widened to TOP."""
        if reg == 31:
            return SymExpr.constant(0)
        if reg not in self._regs:
            self._regs[reg] = SymExpr.param(f"r{reg}.entry")
        return self._regs[reg]

    def write(self, reg: int, value: Optional[SymExpr]) -> None:
        if reg != 31:
            self._regs[reg] = value

    def write_unknown(self, reg: int, index: int) -> None:
        """Define ``reg`` with a fresh opaque parameter (e.g. a load)."""
        self.write(reg, SymExpr.param(f"p{index}"))


#: concrete per-element bounds ``(lo, hi)`` on a vector register, or
#: ``None`` when nothing is known (loaded data, untracked ops)
VecInterval = Optional[tuple[int, int]]


def interval_add(a: VecInterval, b: VecInterval) -> VecInterval:
    if a is None or b is None:
        return None
    return (a[0] + b[0], a[1] + b[1])


def interval_scale(a: VecInterval, factor: int) -> VecInterval:
    if a is None:
        return None
    lo, hi = a[0] * factor, a[1] * factor
    return (lo, hi) if factor >= 0 else (hi, lo)


def interval_and_mask(mask: int) -> VecInterval:
    """``x & mask`` for a non-negative constant mask bounds the result
    regardless of the input — the idiom that makes digit extraction
    (``vsand v, v, #255``) analyzable even on loaded keys."""
    if mask >= 0:
        return (0, mask)
    return None


def interval_rshift(a: VecInterval, bits: int) -> VecInterval:
    if a is None or a[0] < 0:
        return None
    return (a[0] >> bits, a[1] >> bits)
