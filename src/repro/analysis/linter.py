"""Linter entry points: one program, or the whole workload registry.

:func:`lint_program` runs every pass and returns a
:class:`~repro.analysis.diagnostics.LintReport`; :func:`lint_registry`
is the suite gate — it builds each Table 2 workload (at test scale by
default) and lints the generated kernel, which is what CI and
``python -m repro lint --all`` run before any simulated cycle.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.program import Program

from repro.analysis.dataflow import check_dataflow
from repro.analysis.diagnostics import LintReport
from repro.analysis.encoding_lint import (
    check_assembler_roundtrip,
    check_encodings,
)
from repro.analysis.vmem import check_memory


def lint_program(program: Program, *, encoding: bool = True,
                 roundtrip: bool = True, memory: bool = True,
                 buffers: Optional[dict[str, tuple[int, int]]] = None,
                 ) -> LintReport:
    """Statically verify ``program`` without executing it.

    ``encoding``/``roundtrip``/``memory`` switch off the slower passes;
    the dataflow rules always run.  ``buffers`` (region name ->
    ``(base, nbytes)``) enables the vmem bounds check — workloads
    declare theirs via ``WorkloadInstance.buffers``.
    """
    report = LintReport(program_name=program.name)
    check_dataflow(program, report)
    if encoding:
        check_encodings(program, report)
    if roundtrip:
        check_assembler_roundtrip(program, report)
    if memory:
        check_memory(program, report, buffers=buffers)
    return report


def lint_registry(scale: Optional[float] = None, *,
                  encoding: bool = True,
                  roundtrip: bool = True) -> dict[str, LintReport]:
    """Lint the hand-vectorized kernel of every registry workload.

    ``scale=None`` uses each workload's test-sized instance
    (``build_small``); pass an explicit scale to lint the kernels the
    benchmark harness actually runs.  Returns ``{name: report}`` in
    registry order.
    """
    from repro.workloads.registry import REGISTRY

    reports: dict[str, LintReport] = {}
    for name, workload in sorted(REGISTRY.items()):
        instance = (workload.build_small() if scale is None
                    else workload.build(scale))
        report = lint_program(instance.program, encoding=encoding,
                              roundtrip=roundtrip,
                              buffers=instance.buffers)
        report.program_name = name
        reports[name] = report
    return reports
