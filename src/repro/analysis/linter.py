"""Linter entry points: one program, or the whole workload registry.

:func:`lint_program` runs every pass and returns a
:class:`~repro.analysis.diagnostics.LintReport`; :func:`lint_registry`
is the suite gate — it builds each Table 2 workload (at test scale by
default) and lints the generated kernel, which is what CI and
``python -m repro lint --all`` run before any simulated cycle.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.program import Program

from repro.analysis.dataflow import check_dataflow
from repro.analysis.diagnostics import LintReport
from repro.analysis.encoding_lint import (
    check_assembler_roundtrip,
    check_encodings,
)
from repro.analysis.vmem import check_memory


def lint_program(program: Program, *, encoding: bool = True,
                 roundtrip: bool = True, memory: bool = True,
                 buffers: Optional[dict[str, tuple[int, int]]] = None,
                 ) -> LintReport:
    """Statically verify ``program`` without executing it.

    ``encoding``/``roundtrip``/``memory`` switch off the slower passes;
    the dataflow rules always run.  ``buffers`` (region name ->
    ``(base, nbytes)``) enables the vmem bounds check — workloads
    declare theirs via ``WorkloadInstance.buffers``.
    """
    report = LintReport(program_name=program.name)
    check_dataflow(program, report)
    if encoding:
        check_encodings(program, report)
    if roundtrip:
        check_assembler_roundtrip(program, report)
    if memory:
        check_memory(program, report, buffers=buffers)
    return report


def lint_registry(scale: Optional[float] = None, *,
                  encoding: bool = True,
                  roundtrip: bool = True) -> dict[str, LintReport]:
    """Lint the hand-vectorized kernel of every suite member.

    Iterates every registered suite (:data:`repro.workloads.SUITES`) —
    the union covers the whole registry, and a workload that belongs to
    several suites lints once.  ``scale=None`` uses each workload's
    test-sized instance (``build_small``); pass an explicit scale to
    lint the kernels the benchmark harness actually runs.  Returns
    ``{name: report}`` sorted by name.
    """
    from repro.workloads.registry import REGISTRY, get
    from repro.workloads.suite import SUITES

    names = {name for suite in SUITES.values() for name in suite}
    # suites are compositions of registered workloads; anything
    # registered but not in a suite still deserves the gate
    names.update(REGISTRY)
    reports: dict[str, LintReport] = {}
    for name in sorted(names):
        workload = get(name)
        instance = (workload.build_small() if scale is None
                    else workload.build(scale))
        report = lint_program(instance.program, encoding=encoding,
                              roundtrip=roundtrip,
                              buffers=instance.buffers)
        report.program_name = name
        reports[name] = report
    return reports
