"""RAW / WAR / WAW dependence graph over a straight-line program.

Nodes are instruction indices; a :class:`DepEdge` records the dependence
kind and the resource that carries it (``v0``..``v30``, ``r0``..``r30``,
``vl``/``vs``/``vm``, or the coarse ``mem`` token for load/store
ordering).  ``v31``/``r31`` are architectural zero and never carry a
dependence.

The graph serves two customers:

* the **linter**, which reports def-use anomalies found during the same
  walk (see :mod:`repro.analysis.dataflow`);
* the **Vbox renamer tests**: renaming eliminates exactly the WAR and
  WAW edges over vector registers and ``vm`` (section 2 of the paper
  notes ``vm`` is renamed so the next mask can be computed while the
  current one is in use), so the timing model must schedule two kernels
  identically when they differ only by false dependences — the graph is
  how the tests identify those pairs.

Masked and ``reads_dest`` instructions read their destination (the
inactive elements merge), so a masked write carries a RAW edge from the
previous writer, matching ``Instruction.vreg_reads``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.isa.program import Program

from repro.analysis.effects import effects_of


class DepKind(enum.Enum):
    RAW = "read-after-write"
    WAR = "write-after-read"
    WAW = "write-after-write"


@dataclass(frozen=True)
class DepEdge:
    """One dependence: ``src`` must precede ``dst`` because of ``resource``.

    ``may`` marks a memory edge whose footprints could not be proven to
    actually overlap (the analyzer failed to prove them disjoint, so the
    edge is kept conservatively).  Register and control edges are always
    exact and carry ``may=False``.
    """

    src: int
    dst: int
    kind: DepKind
    resource: str
    may: bool = False


@dataclass
class DepGraph:
    """Dependence edges over one program, with simple query helpers."""

    n_instructions: int
    edges: list[DepEdge] = field(default_factory=list)

    def by_kind(self, kind: DepKind) -> list[DepEdge]:
        return [e for e in self.edges if e.kind is kind]

    def predecessors(self, index: int) -> set[int]:
        return {e.src for e in self.edges if e.dst == index}

    def successors(self, index: int) -> set[int]:
        return {e.dst for e in self.edges if e.src == index}

    def on_resource(self, resource: str) -> list[DepEdge]:
        return [e for e in self.edges if e.resource == resource]

    def false_edges(self) -> list[DepEdge]:
        """WAR/WAW edges over renamed resources (vregs and ``vm``).

        These are exactly the dependences register renaming removes;
        the renamer tests assert the timing model does not serialize on
        them.
        """
        renamed = [e for e in self.edges
                   if e.kind in (DepKind.WAR, DepKind.WAW)]
        return [e for e in renamed
                if e.resource == "vm"
                or (e.resource[0] == "v" and e.resource[1:].isdigit())]

    def raw_critical_path(self) -> int:
        """Length (in instructions) of the longest RAW chain."""
        depth = [1] * self.n_instructions
        for edge in sorted(self.by_kind(DepKind.RAW), key=lambda e: e.dst):
            depth[edge.dst] = max(depth[edge.dst], depth[edge.src] + 1)
        return max(depth, default=0)


def _resources(eff) -> tuple[list[str], list[str]]:
    """(reads, writes) resource-token lists for one instruction."""
    reads = [f"v{r}" for r in eff.vreg_reads]
    reads += [f"r{r}" for r in eff.sreg_reads]
    if eff.reads_vl:
        reads.append("vl")
    if eff.reads_vs:
        reads.append("vs")
    if eff.reads_vm:
        reads.append("vm")
    writes = [f"v{r}" for r in eff.vreg_writes]
    writes += [f"r{r}" for r in eff.sreg_writes]
    if eff.writes_vl:
        writes.append("vl")
    if eff.writes_vs:
        writes.append("vs")
    if eff.writes_vm:
        writes.append("vm")
    return reads, writes


@dataclass(frozen=True)
class BlockDataflow:
    """Register dataflow of one straight-line block treated as a loop body.

    Built by the trace JIT (:mod:`repro.jit.compiler`) with the same
    last-writer walk as :func:`build_dep_graph`, but classifying each
    *read* of the block rather than materializing edges.  For slot ``m``
    reading register ``x``, ``vreg_kinds[m][x]`` (or ``sreg_kinds``) is:

    * ``"intra"`` — produced by an earlier slot of the same iteration
      (an ordinary RAW edge inside the block);
    * ``"invariant"`` — no slot of the block writes it, so when the
      block repeats the value is loop-invariant;
    * ``"carried"`` — written only by this slot or a later one, so when
      the block repeats the read observes the *previous iteration*
      (a loop-carried dependence — an accumulator when reader == writer).

    ``v31``/``r31`` are architectural zero and never appear.
    """

    vreg_kinds: tuple        # per slot: dict reg -> kind
    sreg_kinds: tuple
    vreg_writers: dict       # reg -> tuple of writing slots
    sreg_writers: dict


def block_dataflow(instructions) -> BlockDataflow:
    """Classify every register read of a straight-line block."""
    effs = [effects_of(ins) for ins in instructions]
    vwriters: dict[int, list] = {}
    swriters: dict[int, list] = {}
    for m, eff in enumerate(effs):
        for reg in eff.vreg_writes:
            vwriters.setdefault(reg, []).append(m)
        for reg in eff.sreg_writes:
            swriters.setdefault(reg, []).append(m)

    def classify(reg, seen_writers, all_writers):
        if reg in seen_writers:
            return "intra"
        if reg in all_writers:
            return "carried"
        return "invariant"

    vkinds = []
    skinds = []
    vseen: set = set()
    sseen: set = set()
    for eff in effs:
        vkinds.append({reg: classify(reg, vseen, vwriters)
                       for reg in eff.vreg_reads})
        skinds.append({reg: classify(reg, sseen, swriters)
                       for reg in eff.sreg_reads})
        vseen.update(eff.vreg_writes)
        sseen.update(eff.sreg_writes)
    return BlockDataflow(
        vreg_kinds=tuple(vkinds), sreg_kinds=tuple(skinds),
        vreg_writers={r: tuple(s) for r, s in vwriters.items()},
        sreg_writers={r: tuple(s) for r, s in swriters.items()})


def build_dep_graph(program: Program, *, memory: bool = False) -> DepGraph:
    """Build the dependence graph of ``program``.

    ``memory=True`` adds memory-carried edges (resource ``mem``) from
    the symbolic footprint analyzer (:mod:`repro.analysis.vmem`): two
    accesses are linked only when their footprints cannot be proven
    disjoint, with ``DepEdge.may`` distinguishing may- from must-alias
    pairs.  The default leaves memory disambiguation to the timing
    model, which follows the Alpha memory model and reorders freely
    (kernels that need ordering use ``drainm``).
    """
    graph = DepGraph(n_instructions=len(program))
    last_writer: dict[str, int] = {}
    readers_since: dict[str, list[int]] = {}

    for i, instr in enumerate(program):
        reads, writes = _resources(effects_of(instr))
        for res in reads:
            if res in last_writer:
                graph.edges.append(
                    DepEdge(last_writer[res], i, DepKind.RAW, res))
            readers_since.setdefault(res, []).append(i)
        for res in writes:
            if res in last_writer:
                graph.edges.append(
                    DepEdge(last_writer[res], i, DepKind.WAW, res))
            for reader in readers_since.get(res, ()):
                if reader != i:
                    graph.edges.append(
                        DepEdge(reader, i, DepKind.WAR, res))
            last_writer[res] = i
            readers_since[res] = []

    if memory:
        # precise memory-carried edges from the symbolic footprint
        # analyzer (imported lazily: vmem builds on effects/lattice,
        # which this module must not depend on cyclically)
        from repro.analysis.vmem import analyze_memory, memory_dependences

        for src, dst, kind, must in memory_dependences(
                analyze_memory(program)):
            graph.edges.append(
                DepEdge(src, dst, DepKind[kind], "mem", may=not must))
    return graph
