"""Symbolic vector-memory analyzer (the ``vmem`` pass).

A single forward walk abstract-interprets a straight-line kernel with
three cooperating domains:

* the existing :class:`~repro.analysis.lattice.ControlState` for
  ``vl``/``vs``/``vm``;
* :class:`~repro.analysis.symbolic.SymState` — scalar registers as
  affine expressions, so address arithmetic stays exact through
  ``lda``/``addq``/``mulq``/``sll`` chains;
* a per-vector-register value interval
  (:data:`~repro.analysis.symbolic.VecInterval`) that bounds
  gather/scatter byte offsets through the idiomatic ``viota`` →
  shift/mask/add index pipelines.

Every memory instruction yields a :class:`MemAccess` carrying its
:class:`~repro.analysis.footprint.Footprint`.  On top of the access
list sit:

* :func:`memory_dependences` — must/may RAW/WAR/WAW edges through
  memory, consumed by :func:`repro.analysis.depgraph.build_dep_graph`
  (``memory=True``) in place of the old all-pairs ``mem`` token;
* :func:`check_memory` — the lint pass: missing-``drainm`` hazards
  (scalar store later read by a vector load without the section-3.4
  barrier; the one coherency direction Tarantula does *not* keep
  transparent), self-overlapping strided stores, bounds checks against
  declared workload buffers, and bank/alignment/short-``vl``
  performance notes reusing :mod:`repro.vbox.reorder` classification.

Soundness contract: a footprint *over*-approximates the dynamic
address set (checked by the trace-differential suite in
``tests/analysis/test_vmem_soundness.py``).  Widening is always toward
"may touch more": unknown stride/offsets/base answer ``True`` to
overlap queries.  Prefetches (loads to ``v31``) are ignored — they
have no architectural effect and fault-suppress in hardware.  The
analyzer reasons in exact integers and ignores 64-bit address wrap,
which no kernel in the suite relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.isa.instructions import Group, Instruction
from repro.isa.program import Program
from repro.isa.registers import MVL
from repro.isa.semantics import float_to_bits

from repro.analysis.diagnostics import Code, LintReport
from repro.analysis.lattice import ControlState
from repro.analysis.symbolic import (
    SymExpr,
    SymState,
    VecInterval,
    interval_add,
    interval_and_mask,
    interval_rshift,
    interval_scale,
)
from repro.analysis.footprint import ELEM, Footprint, interval_within


@dataclass(frozen=True)
class MemAccess:
    """One memory instruction and the footprint it may touch."""

    index: int
    op: str
    is_load: bool
    is_store: bool
    is_scalar: bool            # SC-group ldq/stq (L1/write-buffer path)
    is_prefetch: bool
    masked: bool
    vl_known: bool
    footprint: Footprint
    text: str = ""


@dataclass
class VmemAnalysis:
    """Result of one analyzer walk: accesses in program order, plus the
    indices of ``drainm`` barriers."""

    program_name: str
    n_instructions: int
    accesses: list[MemAccess] = field(default_factory=list)
    drains: list[int] = field(default_factory=list)

    def footprint_at(self, index: int) -> Optional[Footprint]:
        for acc in self.accesses:
            if acc.index == index:
                return acc.footprint
        return None


def _scalar_operand(instr: Instruction, syms: SymState) -> Optional[int]:
    """Concrete value of a VS/VC scalar operand (imm or const register)."""
    if instr.ra is not None:
        expr = syms.read(instr.ra)
        if expr is not None and expr.is_const:
            return expr.const
        return None
    if isinstance(instr.imm, int):
        return instr.imm
    return None


def _step_scalar(instr: Instruction, index: int, syms: SymState) -> None:
    """Transfer function for SC-group register writes."""
    op = instr.op
    if op == "lda":
        base = syms.read(instr.rb) if instr.rb is not None \
            else SymExpr.constant(0)
        if isinstance(instr.imm, float):
            syms.write(instr.rd, SymExpr.constant(float_to_bits(instr.imm)))
        elif base is None:
            syms.write(instr.rd, None)
        else:
            syms.write(instr.rd, base.shift(int(instr.imm)))
        return
    if op in ("addq", "subq", "mulq", "sll"):
        a = syms.read(instr.ra)
        if a is None:
            syms.write(instr.rd, None)
            return
        if instr.imm is not None:
            b_const: Optional[int] = int(instr.imm)
            b_expr: Optional[SymExpr] = SymExpr.constant(b_const)
        else:
            b_expr = syms.read(instr.rb)
            b_const = b_expr.const if b_expr is not None and b_expr.is_const \
                else None
        if op == "addq":
            syms.write(instr.rd, a.plus(b_expr) if b_expr is not None else None)
        elif op == "subq":
            syms.write(instr.rd, a.minus(b_expr) if b_expr is not None else None)
        elif op == "mulq":
            if b_const is not None:
                syms.write(instr.rd, a.times(b_const))
            elif a.is_const and b_expr is not None:
                syms.write(instr.rd, b_expr.times(a.const))
            else:
                syms.write(instr.rd, None)
        else:  # sll
            syms.write(instr.rd, a.lshift(b_const & 63)
                       if b_const is not None else None)
        return
    if op == "ldq":
        syms.write_unknown(instr.rd, index)


#: VS-group integer ops with an interval transfer (suffix -> handler)
def _vs_interval(suffix: str, src: VecInterval,
                 scalar: Optional[int]) -> VecInterval:
    if suffix == "and":
        if scalar is not None:
            return interval_and_mask(scalar)
        return None
    if scalar is None:
        return None
    if suffix == "addq":
        return interval_add(src, (scalar, scalar))
    if suffix == "subq":
        return interval_add(src, (-scalar, -scalar))
    if suffix == "mulq":
        return interval_scale(src, scalar)
    if suffix == "sll":
        return interval_scale(src, 1 << (scalar & 63))
    if suffix == "srl":
        return interval_rshift(src, scalar & 63)
    return None


def _step_vector(instr: Instruction, syms: SymState,
                 vints: dict[int, VecInterval]) -> None:
    """Transfer function for vector-register value intervals."""
    d = instr.definition
    op = instr.op
    vd = instr.vd

    def read(v: Optional[int]) -> VecInterval:
        if v == 31:
            return (0, 0)
        return vints.get(v) if v is not None else None

    result: VecInterval = None
    if op == "viota":
        result = (0, MVL - 1)
    elif op in ("vvxor", "vvsubq") and instr.va == instr.vb:
        result = (0, 0)
    elif op == "vvbis" and instr.va == instr.vb:
        result = read(instr.va)       # register move idiom
    elif op == "vvaddq":
        result = interval_add(read(instr.va), read(instr.vb))
    elif op == "vvsubq":
        b = read(instr.vb)
        result = interval_add(read(instr.va),
                              (-b[1], -b[0]) if b is not None else None)
    elif d.group is Group.VS and op.startswith("vs"):
        result = _vs_interval(op[2:], read(instr.va),
                              _scalar_operand(instr, syms))
    elif op == "vinsq":
        old = read(vd)
        inserted: Optional[int]
        if instr.ra is not None:
            expr = syms.read(instr.ra)
            inserted = expr.const if expr is not None and expr.is_const \
                else None
        else:
            inserted = 0
        if old is not None and inserted is not None:
            result = (min(old[0], inserted), max(old[1], inserted))

    if vd is None or vd == 31 or "vd" not in d.fields:
        return
    if d.is_load:
        vints[vd] = None              # loaded data: unknown
        return
    if instr.masked or d.reads_dest:
        old = vints.get(vd)
        if result is None or old is None:
            result = None
        else:
            result = (min(result[0], old[0]), max(result[1], old[1]))
    vints[vd] = result


def analyze_memory(program: Program) -> VmemAnalysis:
    """Run the abstract interpreter; return every access's footprint."""
    analysis = VmemAnalysis(program_name=program.name,
                            n_instructions=len(program))
    ctrl = ControlState.initial()
    syms = SymState()
    vints: dict[int, VecInterval] = {}

    for i, instr in enumerate(program):
        d = instr.definition
        if instr.op == "drainm":
            analysis.drains.append(i)
        # record the access against the *pre*-state (addressing reads
        # registers before any write-back), mirroring the simulators
        if d.is_memory and not instr.is_prefetch:
            analysis.accesses.append(
                _make_access(instr, i, ctrl, syms, vints))
        # transfer functions
        ctrl = ctrl.step(instr, i)
        if d.group is Group.SC:
            _step_scalar(instr, i, syms)
        elif d.group is Group.VC and instr.op in ("vextq", "vsumq", "vsumt"):
            syms.write_unknown(instr.rd, i)
        if d.group in (Group.VV, Group.VS, Group.SM, Group.RM) \
                or d.group is Group.VC:
            _step_vector(instr, syms, vints)
    return analysis


def _make_access(instr: Instruction, index: int, ctrl: ControlState,
                 syms: SymState, vints: dict[int, VecInterval]) -> MemAccess:
    d = instr.definition
    base = syms.read(instr.rb)
    if base is not None:
        base = base.shift(instr.disp)
    vl_known = ctrl.vl.is_known
    length = ctrl.vl.value if vl_known else MVL

    if d.group is Group.SC:
        fp = Footprint(base=base, kind="scalar")
    elif d.is_indexed:
        offsets = vints.get(instr.vb) if instr.vb != 31 else (0, 0)
        fp = Footprint(base=base, kind="indexed", length=length,
                       off_lo=offsets[0] if offsets else None,
                       off_hi=offsets[1] if offsets else None)
    else:
        stride = ctrl.vs.value if ctrl.vs.is_known else None
        fp = Footprint(base=base, kind="strided", stride=stride,
                       length=max(length, 1))
    return MemAccess(index=index, op=instr.op, is_load=d.is_load,
                     is_store=d.is_store, is_scalar=d.group is Group.SC,
                     is_prefetch=instr.is_prefetch, masked=instr.masked,
                     vl_known=vl_known, footprint=fp, text=str(instr))


# -- memory-carried dependences ---------------------------------------------


def _contains(outer: Footprint, inner: Footprint) -> bool:
    """Provably: every byte ``inner`` can touch, ``outer`` writes.

    Used to stop the backward dependence scan — a containing store
    kills visibility of anything older (same role as ``last_writer``
    in the register walk).
    """
    if outer.base is None or inner.base is None:
        return False
    delta = inner.base.delta(outer.base)
    if delta is None:
        return False
    a, b = outer.span(), inner.span()
    if a is None or b is None:
        return False
    if outer._dense:
        return interval_within((delta + b[0], delta + b[1]), a)
    if outer.kind == "strided" and outer.stride and outer.stride > 0:
        if inner.kind == "scalar":
            return delta % outer.stride == 0 and \
                0 <= delta // outer.stride < outer.length
        if inner.kind == "strided" and inner.stride == outer.stride \
                and delta % outer.stride == 0:
            k = delta // outer.stride
            return 0 <= k and k + inner.length <= outer.length
    return False


def memory_dependences(
        analysis: VmemAnalysis) -> list[tuple[int, int, str, bool]]:
    """Memory-carried dependences as ``(src, dst, kind, must)`` tuples.

    ``kind`` is ``"RAW"``/``"WAR"``/``"WAW"``; ``must`` means the two
    footprints provably share a byte (a may-edge has ``must=False``).
    The backward scan stops at a store that provably covers the current
    access, exactly like the register walk stops at the last writer.
    """
    deps: list[tuple[int, int, str, bool]] = []
    stores: list[MemAccess] = []
    loads: list[MemAccess] = []
    for acc in [a for a in (analysis.accesses or []) if not a.is_prefetch]:
        fp = acc.footprint
        if acc.is_load:
            for prev in reversed(stores):
                if prev.footprint.may_overlap(fp):
                    deps.append((prev.index, acc.index, "RAW",
                                 prev.footprint.must_overlap(fp)))
                    if _contains(prev.footprint, fp):
                        break
            loads.append(acc)
        if acc.is_store:
            for prev in reversed(stores):
                if prev.footprint.may_overlap(fp):
                    deps.append((prev.index, acc.index, "WAW",
                                 prev.footprint.must_overlap(fp)))
                    if _contains(prev.footprint, fp):
                        break
            for prev in loads:
                if prev.index != acc.index and \
                        prev.footprint.may_overlap(fp):
                    deps.append((prev.index, acc.index, "WAR",
                                 prev.footprint.must_overlap(fp)))
            stores.append(acc)
    deps.sort(key=lambda e: (e[1], e[0]))
    return deps


# -- the lint pass -----------------------------------------------------------


def check_memory(program: Program, report: LintReport, *,
                 buffers: Optional[dict[str, tuple[int, int]]] = None,
                 analysis: Optional[VmemAnalysis] = None) -> VmemAnalysis:
    """Run every vmem lint rule, appending findings to ``report``.

    ``buffers`` maps region names to ``(base, nbytes)`` extents (see
    ``WorkloadInstance.buffers``); bounds checking only runs when it is
    provided, and only on footprints with concrete absolute bounds.
    """
    if analysis is None:
        analysis = analyze_memory(program)
    _check_drain_hazards(analysis, report)
    _check_self_overlap(analysis, report)
    if buffers:
        _check_bounds(analysis, report, buffers)
    _check_performance(analysis, report)
    return analysis


def _check_drain_hazards(analysis: VmemAnalysis, report: LintReport) -> None:
    """Scalar store → vector load without an intervening ``drainm``.

    Scalar stores retire through EV8's L1/write buffer; vector accesses
    go straight to L2.  Section 3.4's coherency protocol makes every
    direction transparent *except* this one — a vector load can read L2
    before the scalar store has drained to it.  The architectural fix
    is ``drainm``, so a may-overlapping pair with no barrier in between
    is flagged as an error.
    """
    pending: list[MemAccess] = []
    drains = list(analysis.drains)
    for acc in analysis.accesses:
        while drains and drains[0] < acc.index:
            pending.clear()
            drains.pop(0)
        if acc.is_scalar:
            if acc.is_store:
                pending.append(acc)
            continue
        if not acc.is_load:
            continue
        for store in pending:
            if store.footprint.may_overlap(acc.footprint):
                report.add(
                    Code.MEM_DRAIN_MISSING, acc.index,
                    f"vector load may read {acc.footprint.describe()} "
                    f"written by scalar store @{store.index} "
                    f"{store.footprint.describe()} with no drainm between "
                    "(scalar stores drain through the write buffer; "
                    "section 3.4)",
                    instruction=acc.text)
                break   # one finding per load is enough


def _check_self_overlap(analysis: VmemAnalysis, report: LintReport) -> None:
    """A strided store whose own elements collide (|vs| < 8, vl > 1)
    silently drops data under the paper's UNPREDICTABLE ordering."""
    for acc in analysis.accesses:
        fp = acc.footprint
        if acc.is_store and fp.kind == "strided" \
                and fp.stride is not None and abs(fp.stride) < ELEM \
                and fp.length > 1:
            report.add(
                Code.MEM_STORE_SELF_OVERLAP, acc.index,
                f"strided store with vs={fp.stride} overlaps its own "
                f"elements (quadwords need |vs| >= 8); element order is "
                "UNPREDICTABLE",
                instruction=acc.text)


def _check_bounds(analysis: VmemAnalysis, report: LintReport,
                  buffers: dict[str, tuple[int, int]]) -> None:
    extents = {name: (base, base + nbytes)
               for name, (base, nbytes) in buffers.items()}
    for acc in analysis.accesses:
        interval = acc.footprint.abs_interval()
        if interval is None:
            continue   # symbolic or unbounded: cannot check statically
        if any(interval_within(interval, ext) for ext in extents.values()):
            continue
        nearest = _nearest_buffer(interval, extents)
        report.add(
            Code.MEM_OOB, acc.index,
            f"access {acc.footprint.describe()} = "
            f"[{interval[0]:#x}, {interval[1]:#x}) is outside every "
            f"declared buffer{nearest}",
            instruction=acc.text)


def _nearest_buffer(interval: tuple[int, int],
                    extents: dict[str, tuple[int, int]]) -> str:
    for name, (lo, hi) in extents.items():
        if interval[0] < hi and interval[1] > lo:
            over = max(interval[1] - hi, lo - interval[0])
            return (f" (overlaps {name!r} [{lo:#x}, {hi:#x}) "
                    f"but overruns it by {over} bytes)")
    return ""


def _check_performance(analysis: VmemAnalysis, report: LintReport) -> None:
    """INFO-level notes: self-conflicting bank strides, misaligned
    bases, and sub-maximal ``vl`` regimes."""
    from repro.vbox.reorder import is_reorderable

    seen_strides: set[int] = set()
    misaligned: set[int] = set()
    short_vl: list[MemAccess] = []
    for acc in analysis.accesses:
        fp = acc.footprint
        if acc.is_scalar:
            continue
        if fp.kind == "strided" and fp.stride is not None \
                and fp.stride > ELEM and fp.length > 1:
            base = fp.base.const if fp.base is not None and fp.base.is_const \
                else 0
            if fp.stride not in seen_strides \
                    and not is_reorderable(base, fp.stride, n=fp.length):
                seen_strides.add(fp.stride)
                report.add(
                    Code.MEM_BANK_CONFLICT, acc.index,
                    f"stride {fp.stride} self-conflicts in the 16-bank L2 "
                    "(degenerate bank histogram): accesses serialize "
                    "through the conflict-resolution box",
                    instruction=acc.text)
        if fp.base is not None and fp.base.is_const \
                and fp.base.const % ELEM != 0 and acc.index not in misaligned:
            misaligned.add(acc.index)
            report.add(
                Code.MEM_MISALIGNED, acc.index,
                f"base address {fp.base.const:#x} is not 8-byte aligned",
                instruction=acc.text)
        if acc.vl_known and 0 < fp.length < MVL:
            short_vl.append(acc)
    if short_vl:
        first = short_vl[0]
        report.add(
            Code.MEM_SHORT_VL, first.index,
            f"{len(short_vl)} memory access(es) run at vl < {MVL} "
            f"(first: vl={first.footprint.length} @{first.index}); "
            "short vectors under-use the address generators",
            instruction=first.text)
