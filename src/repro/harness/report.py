"""Text rendering of regenerated tables/figures, paper-vs-measured.

Every renderer prints the same rows/series the paper reports, with the
published value (or approximate bar reading) alongside, so a run of the
benchmark harness doubles as the EXPERIMENTS.md evidence.
"""

from __future__ import annotations

from repro.harness import paper_data
from repro.harness.figures import (
    Figure6Row,
    Figure7Row,
    Figure8Row,
    Figure9Row,
)
from repro.harness.tables import Table2Row, Table4Row


def _bar(value: float, scale: float = 1.0, width: int = 40) -> str:
    if value != value:  # NaN: a failed cell draws no bar
        return ""
    n = max(0, min(width, int(round(value * scale))))
    return "#" * n


def _num(value: float, spec: str) -> str:
    """Format one metric; a failed cell's NaN renders as ``FAIL`` so
    partial grids still produce a readable table."""
    if value != value:
        width = spec.split(".")[0]
        return "FAIL".rjust(int(width)) if width.isdigit() else "FAIL"
    return format(value, spec)


def render_table1(rows: dict) -> str:
    lines = ["Table 1 — power and area estimates (65 nm, 2.5 GHz)",
             f"{'circuit':<14s} {'CMP-EV8':>16s} {'Tarantula':>16s}",
             f"{'':<14s} {'area%':>7s} {'W':>8s} {'area%':>7s} {'W':>8s}"]
    for name, row in rows.items():
        def fmt(v):
            return "" if v is None else f"{v:.1f}"
        lines.append(f"{name:<14s} {fmt(row['cmp_area_pct']):>7s} "
                     f"{fmt(row['cmp_watts']):>8s} "
                     f"{fmt(row['t_area_pct']):>7s} "
                     f"{fmt(row['t_watts']):>8s}")
    return "\n".join(lines)


def render_table2(rows: dict[str, Table2Row]) -> str:
    lines = ["Table 2 — benchmark suite (vectorization %: paper / measured)",
             f"{'benchmark':<14s} {'pref':>4s} {'drainM':>6s} "
             f"{'paper%':>7s} {'ours%':>7s}  description"]
    for name, row in rows.items():
        paper = "" if row.paper_vect_pct is None else f"{row.paper_vect_pct:.1f}"
        tag = " (surrogate)" if row.surrogate else ""
        lines.append(f"{name:<14s} {'yes' if row.uses_prefetch else '':>4s} "
                     f"{'yes' if row.uses_drainm else '':>6s} "
                     f"{paper:>7s} {_num(row.measured_vect_pct, '7.1f')}  "
                     f"{row.description}{tag}")
    return "\n".join(lines)


def render_table3(rows: dict[str, dict]) -> str:
    keys = ["core_ghz", "l2_mbytes", "l2_gbytes_per_s", "rambus_ports",
            "rambus_mhz", "rambus_gbytes_per_s", "peak_flops_per_cycle",
            "peak_ops_per_cycle", "scalar_load_use", "stride1_load_use",
            "odd_stride_load_use"]
    names = list(rows)
    lines = ["Table 3 — machine configurations",
             f"{'':<22s}" + "".join(f"{n:>9s}" for n in names)]
    for key in keys:
        cells = []
        for n in names:
            v = rows[n][key]
            cells.append(f"{'--' if v is None else v:>9}")
        lines.append(f"{key:<22s}" + "".join(cells))
    return "\n".join(lines)


def render_table4(rows: dict[str, Table4Row]) -> str:
    lines = ["Table 4 — sustained bandwidth (MB/s), measured vs paper",
             f"{'kernel':<14s} {'streams':>9s} {'paper':>9s} "
             f"{'raw':>9s} {'paper':>9s}"]
    for name, row in rows.items():
        paper = paper_data.TABLE4.get(name, {})
        p_s = paper.get("streams")
        p_r = paper.get("raw")
        lines.append(
            f"{name:<14s} {_num(row.streams_mbytes_per_s, '9.0f')} "
            f"{p_s if p_s else '--':>9} "
            f"{_num(row.raw_mbytes_per_s, '9.0f')} "
            f"{p_r if p_r else '--':>9}")
    return "\n".join(lines)


def render_figure6(rows: dict[str, Figure6Row]) -> str:
    lines = ["Figure 6 — sustained operations per cycle "
             "(FPC+MPC+Other; paper bar in parentheses)"]
    for name, row in rows.items():
        paper = paper_data.FIGURE6_OPC.get(name)
        note = f" (paper ~{paper:.0f})" if paper else ""
        lines.append(f"{name:<14s} OPC={_num(row.opc, '6.2f')}  "
                     f"FPC={_num(row.fpc, '6.2f')} "
                     f"MPC={_num(row.mpc, '6.2f')} "
                     f"Other={_num(row.other, '5.2f')}  "
                     f"|{_bar(row.opc, 0.6)}{note}")
    return "\n".join(lines)


def render_figure7(rows: dict[str, Figure7Row]) -> str:
    lines = ["Figure 7 — speedup over EV8 (paper bar in parentheses)"]
    total, counted = 0.0, 0
    for name, row in rows.items():
        paper = paper_data.FIGURE7_SPEEDUP_T.get(name)
        note = f" (paper ~{paper:.1f})" if paper else ""
        if row.speedup_tarantula == row.speedup_tarantula:
            total += row.speedup_tarantula
            counted += 1
        lines.append(f"{name:<14s} EV8+={_num(row.speedup_ev8_plus, '5.2f')}  "
                     f"T={_num(row.speedup_tarantula, '6.2f')}  "
                     f"|{_bar(row.speedup_tarantula, 2)}{note}")
    lines.append(f"{'average':<14s} T={total / max(counted, 1):6.2f}  "
                 f"(paper: ~5X average, 8X peak-flop ratio)")
    return "\n".join(lines)


def render_figure8(rows: dict[str, Figure8Row]) -> str:
    lines = ["Figure 8 — frequency scaling: speedup over T "
             "(T4 = 4.8 GHz, T10 = 10.66 GHz)"]
    for name, row in rows.items():
        lines.append(f"{name:<14s} T4={_num(row.speedup_t4, '5.2f')} "
                     f"T10={_num(row.speedup_t10, '5.2f')}  "
                     f"|{_bar(row.speedup_t10, 6)}")
    return "\n".join(lines)


def render_figure9(rows: dict[str, Figure9Row]) -> str:
    lines = ["Figure 9 — relative performance with the stride-1 "
             "double-bandwidth PUMP disabled"]
    for name, row in rows.items():
        hit = " <- hard hit" if name in paper_data.FIGURE9_HARD_HIT and \
            row.relative_performance < 0.9 else ""
        lines.append(f"{name:<14s} {_num(row.relative_performance, '5.2f')}  "
                     f"|{_bar(row.relative_performance, 30)}{hit}")
    return "\n".join(lines)


def render_matrix(suite, family, grid) -> str:
    """Generic suite x instance report (``repro report --suite NAME``).

    One line per (workload, instance) cell of a
    :class:`~repro.workloads.suite.Matrix` run: cycles, the operations/
    flops/memory-ops per cycle split, and whether the architectural
    output matched the numpy reference.  A failed cell prints its
    error type instead of metrics, like the paper tables do.
    """
    lines = [f"Suite {suite.name} — {suite.title} "
             f"({len(suite)} workloads x {len(family)} instance(s))"]
    if suite.source:
        lines.append(f"source: {suite.source}")
    lines.append(f"{'workload':<24s} {'instance':<10s} {'cycles':>12s} "
                 f"{'OPC':>6s} {'FPC':>6s} {'MPC':>6s}  check")
    for name in suite:
        for inst in family:
            out = grid[name][inst.name]
            if getattr(out, "failed", False):
                lines.append(f"{name:<24s} {inst.name:<10s} "
                             f"{'FAIL':>12s}  {out.error_type}")
                continue
            check = "ok" if out.verified else "-"
            lines.append(
                f"{name:<24s} {inst.name:<10s} {out.cycles:>12.0f} "
                f"{_num(out.opc, '6.2f')} {_num(out.fpc, '6.2f')} "
                f"{_num(out.mpc, '6.2f')}  {check}")
    return "\n".join(lines)
