"""Design-sensitivity sweeps: how robust are the paper's choices?

The paper fixes several magic numbers — 32 MAF entries, the CR box's
tournament, the 16 MB L2 — without sensitivity data.  These sweeps vary
one parameter at a time on a fixed workload and return (value, cycles)
curves, quantifying which choices sit on a cliff and which on a plateau.
Used by ``benchmarks/bench_ablation_sensitivity.py``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import MachineConfig, tarantula
from repro.core.processor import TarantulaProcessor
from repro.workloads.base import WorkloadInstance
from repro.workloads.registry import get


def _run(instance: WorkloadInstance, config: MachineConfig,
         crbox_cycles: float | None = None) -> float:
    proc = TarantulaProcessor(config)
    if crbox_cycles is not None:
        proc.addr_gens.crbox.cycles_per_round = crbox_cycles
    instance.setup(proc.functional.memory)
    for base, nbytes in instance.warm_ranges:
        proc.warm_l2(base, nbytes)
    for instr in instance.program:
        proc.step(instr)
    return proc.result(instance.name).cycles


def sweep_maf_entries(kernel: str = "streams.triad", scale: float = 0.25,
                      values=(2, 4, 8, 16, 32, 64)) -> dict[int, float]:
    """Cycles vs MAF size on a memory-streaming kernel.

    Figure 9's mechanism in isolation: too few entries throttle the
    number of miss slices in flight and bandwidth collapses.
    """
    workload = get(kernel)
    out: dict[int, float] = {}
    for entries in values:
        instance = workload.build(scale)
        config = replace(tarantula(), maf_entries=entries)
        out[entries] = _run(instance, config)
    return out


def sweep_cr_cost(kernel: str = "sparsemxv", scale: float = 0.25,
                  values=(1.0, 2.0, 4.0, 8.0)) -> dict[float, float]:
    """Cycles vs CR-box tournament cost on a gather-bound kernel.

    The knob our Table-4 calibration fixed at 4.0 cycles/round; the
    curve shows how directly gather-bound kernels ride on it.
    """
    workload = get(kernel)
    out: dict[float, float] = {}
    for cycles_per_round in values:
        instance = workload.build(scale)
        out[cycles_per_round] = _run(instance, tarantula(),
                                     crbox_cycles=cycles_per_round)
    return out


def sweep_l2_size(kernel: str = "sparsemxv", scale: float = 0.5,
                  values=(1 << 18, 1 << 19, 1 << 20, 1 << 21, 1 << 22)
                  ) -> dict[int, float]:
    """Cycles vs L2 capacity around a working-set cliff.

    The paper's L2-centric thesis in one curve: performance falls off a
    cliff when the working set stops fitting.
    """
    workload = get(kernel)
    out: dict[int, float] = {}
    for l2_bytes in values:
        instance = workload.build(scale)
        instance.l2_bytes_hint = None   # sweep overrides the hint
        config = replace(tarantula(), l2_bytes=l2_bytes)
        out[l2_bytes] = _run(instance, config)
    return out


def render_sweep(title: str, curve: dict, unit: str = "") -> str:
    """Text rendering of one sweep curve, normalized to its best point."""
    best = min(curve.values())
    lines = [title]
    for value, cycles in curve.items():
        rel = cycles / best
        bar = "#" * min(int(rel * 10), 60)
        label = f"{value}{unit}"
        lines.append(f"  {label:>10s}  {cycles:12.0f} cycles "
                     f"({rel:4.2f}x)  |{bar}")
    return "\n".join(lines)
