"""Design-sensitivity sweeps: how robust are the paper's choices?

The paper fixes several magic numbers — 32 MAF entries, the CR box's
tournament, the 16 MB L2 — without sensitivity data.  These sweeps vary
one parameter at a time on a fixed workload and return (value, cycles)
curves, quantifying which choices sit on a cliff and which on a plateau.
Used by ``benchmarks/bench_ablation_sensitivity.py``.

Each sweep is a grid of :class:`~repro.harness.engine.ExperimentSpec`
cells — one machine-field override per point — submitted to
``engine.execute_many``, so sweeps parallelize and cache like every
other harness consumer.  Sweeps study the *machine* axis, so the
workload's ``l2_bytes_hint`` is disabled: every point runs on exactly
the configured machine plus the one overridden field.
"""

from __future__ import annotations

from typing import Optional

from repro.harness.engine import ExperimentSpec, ResultCache, execute_many


def _sweep(kernel: str, scale: float, field: str, values,
           jobs: int = 1, cache: Optional[ResultCache] = None) -> dict:
    specs = [ExperimentSpec(kernel, "T", scale,
                            overrides=((field, value),),
                            check=False, apply_l2_hint=False)
             for value in values]
    outcomes = execute_many(specs, jobs=jobs, cache=cache)
    return {value: out.cycles for value, out in zip(values, outcomes)}


def sweep_maf_entries(kernel: str = "streams.triad", scale: float = 0.25,
                      values=(2, 4, 8, 16, 32, 64),
                      jobs: int = 1,
                      cache: Optional[ResultCache] = None) -> dict[int, float]:
    """Cycles vs MAF size on a memory-streaming kernel.

    Figure 9's mechanism in isolation: too few entries throttle the
    number of miss slices in flight and bandwidth collapses.
    """
    return _sweep(kernel, scale, "maf_entries", values, jobs, cache)


def sweep_cr_cost(kernel: str = "sparsemxv", scale: float = 0.25,
                  values=(1.0, 2.0, 4.0, 8.0),
                  jobs: int = 1,
                  cache: Optional[ResultCache] = None) -> dict[float, float]:
    """Cycles vs CR-box tournament cost on a gather-bound kernel.

    The knob our Table-4 calibration fixed at 4.0 cycles/round; the
    curve shows how directly gather-bound kernels ride on it.
    """
    return _sweep(kernel, scale, "crbox_cycles_per_round", values, jobs,
                  cache)


def sweep_l2_size(kernel: str = "sparsemxv", scale: float = 0.5,
                  values=(1 << 18, 1 << 19, 1 << 20, 1 << 21, 1 << 22),
                  jobs: int = 1,
                  cache: Optional[ResultCache] = None) -> dict[int, float]:
    """Cycles vs L2 capacity around a working-set cliff.

    The paper's L2-centric thesis in one curve: performance falls off a
    cliff when the working set stops fitting.
    """
    return _sweep(kernel, scale, "l2_bytes", values, jobs, cache)


def render_sweep(title: str, curve: dict, unit: str = "") -> str:
    """Text rendering of one sweep curve, normalized to its best point."""
    best = min(curve.values())
    lines = [title]
    for value, cycles in curve.items():
        rel = cycles / best
        bar = "#" * min(int(rel * 10), 60)
        label = f"{value}{unit}"
        lines.append(f"  {label:>10s}  {cycles:12.0f} cycles "
                     f"({rel:4.2f}x)  |{bar}")
    return "\n".join(lines)
