"""Harness: run workloads across machines, regenerate tables & figures."""

from repro.harness.figures import (
    DEFAULT_SCALES,
    figure6,
    figure7,
    figure8,
    figure9,
    tiling_ablation,
)
from repro.harness.engine import (
    ExperimentSpec,
    ResultCache,
    cache_key,
    execute,
    execute_many,
)
from repro.harness.pool import (
    Pool,
    PoolPolicy,
    ProcessPool,
    SerialPool,
)
from repro.harness.runner import RunOutcome, run, run_scalar, run_tarantula, \
    speedup
from repro.harness.tables import power_summary, table1, table2, table3, table4
from repro.harness.sweeps import (
    render_sweep,
    sweep_cr_cost,
    sweep_l2_size,
    sweep_maf_entries,
)
from repro.harness.trace import critical_summary, render_gantt, trace_program

__all__ = [
    "DEFAULT_SCALES",
    "ExperimentSpec",
    "Pool",
    "PoolPolicy",
    "ProcessPool",
    "ResultCache",
    "RunOutcome",
    "SerialPool",
    "cache_key",
    "execute",
    "execute_many",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "power_summary",
    "run",
    "run_scalar",
    "run_tarantula",
    "speedup",
    "table1",
    "table2",
    "table3",
    "table4",
    "tiling_ablation",
    "critical_summary",
    "render_gantt",
    "render_sweep",
    "sweep_cr_cost",
    "sweep_l2_size",
    "sweep_maf_entries",
    "trace_program",
]
