"""Pipeline traces: see *why* a kernel runs at the speed it does.

Attach a list to ``TarantulaProcessor.trace`` (or use
:func:`trace_program`) and every instruction records its dispatch and
completion cycles.  :func:`render_gantt` draws a text Gantt chart of a
window of the trace — the fastest way to spot a serialization (a
staircase) vs healthy overlap (a parallelogram), which is exactly how
the timing model itself was debugged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import MachineConfig
from repro.core.processor import TarantulaProcessor
from repro.isa.program import Program


@dataclass
class TraceEntry:
    index: int
    text: str
    dispatch: float
    complete: float

    @property
    def latency(self) -> float:
        return self.complete - self.dispatch


def trace_program(program: Program,
                  config: MachineConfig | None = None,
                  setup=None,
                  warm_ranges=()) -> tuple[list[TraceEntry], float]:
    """Run ``program`` with tracing on; returns (entries, total_cycles)."""
    proc = TarantulaProcessor(config)
    if setup is not None:
        setup(proc.functional.memory)
    for base, nbytes in warm_ranges:
        proc.warm_l2(base, nbytes)
    raw: list = []
    proc.trace = raw
    result = proc.run(program)
    entries = [TraceEntry(i, str(instr), t0, done)
               for i, instr, t0, done in raw]
    return entries, result.cycles


def render_gantt(entries: list[TraceEntry],
                 start: int = 0, count: int = 24,
                 width: int = 60) -> str:
    """Text Gantt chart of ``count`` instructions from ``start``.

    Each row shows the instruction and a bar from its dispatch to its
    completion, scaled to the window.
    """
    window = entries[start:start + count]
    if not window:
        return "(empty trace window)"
    t_lo = min(e.dispatch for e in window)
    t_hi = max(e.complete for e in window)
    span = max(t_hi - t_lo, 1e-9)
    lines = [f"cycles {t_lo:.0f}..{t_hi:.0f} "
             f"({span:.0f} cycles across {len(window)} instructions)"]
    for e in window:
        lo = int((e.dispatch - t_lo) / span * width)
        hi = max(int((e.complete - t_lo) / span * width), lo + 1)
        bar = " " * lo + "#" * (hi - lo)
        lines.append(f"{e.index:5d} {e.text[:30]:<30s} |{bar:<{width}s}|")
    return "\n".join(lines)


def critical_summary(entries: list[TraceEntry],
                     top: int = 5) -> list[TraceEntry]:
    """The ``top`` longest-latency instructions (latency hot spots)."""
    return sorted(entries, key=lambda e: e.latency, reverse=True)[:top]
