"""Harness runner: one workload on one machine configuration.

Tarantula configurations run the hand-vectorized program through the
full timing simulator (co-simulated functionally, output verified
against the numpy reference).  EV8/EV8+ run the workload's scalar loop
descriptor through the analytic model (DESIGN.md substitution 1).
Results come back in one shape either way, so the figure generators can
mix them freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import CONFIGURATIONS, MachineConfig
from repro.core.processor import TarantulaProcessor
from repro.scalar.ev8 import EV8Model
from repro.workloads.base import Workload, WorkloadInstance
from repro.workloads.registry import get


@dataclass
class RunOutcome:
    """Uniform result record across vector and scalar machines."""

    config_name: str
    kernel: str
    cycles: float
    core_ghz: float
    opc: float = 0.0
    fpc: float = 0.0
    mpc: float = 0.0
    other_pc: float = 0.0
    streams_mbytes_per_s: float = 0.0
    raw_mbytes_per_s: float = 0.0
    verified: bool = False
    detail: object = None

    @property
    def seconds(self) -> float:
        return self.cycles / (self.core_ghz * 1e9)


def _resolve(config) -> MachineConfig:
    if isinstance(config, str):
        return CONFIGURATIONS[config]()
    return config


def run_tarantula(workload: Workload, config="T", scale: float = 1.0,
                  check: bool = True,
                  instance: Optional[WorkloadInstance] = None,
                  drain_dirty: bool = False) -> RunOutcome:
    """Run the vector program on a Tarantula timing simulator.

    ``drain_dirty`` flushes dirty L2 lines through the Zbox at the end
    and counts the drain in both bytes *and* cycles — the steady-state
    accounting the bandwidth microkernels (Table 4) need.  Application
    kernels leave it off: their outputs legitimately stay cached.
    """
    cfg = _resolve(config)
    inst = instance if instance is not None else workload.build(scale)
    if inst.l2_bytes_hint is not None:
        from dataclasses import replace
        cfg = replace(cfg, l2_bytes=inst.l2_bytes_hint)
    proc = TarantulaProcessor(cfg)
    inst.setup(proc.functional.memory)
    for base, nbytes in inst.warm_ranges:
        proc.warm_l2(base, nbytes)
    for instr in inst.program:
        proc.step(instr)
    result = proc.result(inst.name, workload_bytes=inst.workload_bytes)
    if drain_dirty:
        drain_at = result.cycles
        for eviction in proc.l2.tags.flush():
            if eviction.dirty:
                proc.zbox.writeback_line(eviction.addr, drain_at)
        result.cycles = max(result.cycles, proc.zbox.rambus.last_finish())
        result.mem_raw_bytes = proc.zbox.raw_bytes()
        result.mem_useful_bytes = proc.zbox.useful_bytes()
    if check:
        inst.check(proc.functional.memory)
    return RunOutcome(
        config_name=cfg.name, kernel=inst.name, cycles=result.cycles,
        core_ghz=cfg.core_ghz, opc=result.opc, fpc=result.fpc,
        mpc=result.mpc, other_pc=result.other_pc,
        streams_mbytes_per_s=result.streams_mbytes_per_s,
        raw_mbytes_per_s=result.raw_mbytes_per_s,
        verified=check, detail=result)


def run_scalar(workload: Workload, config="EV8",
               scale: float = 1.0,
               instance: Optional[WorkloadInstance] = None) -> RunOutcome:
    """Run the scalar loop descriptor on the EV8/EV8+ analytic model."""
    cfg = _resolve(config)
    inst = instance if instance is not None else workload.build(scale)
    model = EV8Model(cfg)
    result = model.run(inst.scalar_loop)
    return RunOutcome(
        config_name=cfg.name, kernel=inst.name, cycles=result.cycles,
        core_ghz=cfg.core_ghz, opc=result.ops_per_cycle,
        fpc=result.flops_per_cycle, detail=result)


def run(workload_name: str, config="T", scale: float = 1.0,
        **kw) -> RunOutcome:
    """Convenience: run a registered workload by name on any machine."""
    workload = get(workload_name)
    cfg = _resolve(config)
    if cfg.has_vbox:
        return run_tarantula(workload, cfg, scale, **kw)
    return run_scalar(workload, cfg, scale)


def speedup(kernel: str, baseline: RunOutcome, contender: RunOutcome) -> float:
    """Wall-clock speedup of ``contender`` over ``baseline``."""
    if contender.seconds == 0:
        return float("inf")
    return baseline.seconds / contender.seconds
