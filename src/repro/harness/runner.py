"""Harness runner: one workload on one machine configuration.

Thin, workload-object-level wrappers over the unified experiment
engine (:mod:`repro.harness.engine`), kept for callers that already
hold a :class:`~repro.workloads.base.Workload` or a built
:class:`~repro.workloads.base.WorkloadInstance`.  Grid consumers
(tables, figures, sweeps, ``repro report``) build
:class:`~repro.harness.engine.ExperimentSpec` lists and submit them to
``engine.execute_many`` instead.

Tarantula configurations run the hand-vectorized program through the
full timing simulator (co-simulated functionally, output verified
against the numpy reference).  EV8/EV8+ run the workload's scalar loop
descriptor through the analytic model (DESIGN.md substitution 1).
Results come back in one shape either way, so the figure generators can
mix them freely.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.core.config import CONFIGURATIONS, MachineConfig
from repro.harness.engine import (
    RunOutcome,
    _run_scalar_instance,
    _run_vector_instance,
)
from repro.workloads.base import Workload, WorkloadInstance
from repro.workloads.registry import get

__all__ = ["RunOutcome", "run", "run_scalar", "run_tarantula", "speedup"]


def _resolve(config) -> MachineConfig:
    if isinstance(config, str):
        return CONFIGURATIONS[config]()
    return config


def run_tarantula(workload: Workload, config="T", scale: float = 1.0,
                  check: bool = True,
                  instance: Optional[WorkloadInstance] = None,
                  drain_dirty: bool = False) -> RunOutcome:
    """Run the vector program on a Tarantula timing simulator.

    See :func:`repro.harness.engine._run_vector_instance` for the
    ``drain_dirty`` semantics (Table 4's steady-state accounting).
    """
    cfg = _resolve(config)
    inst = instance if instance is not None else workload.build(scale)
    if inst.l2_bytes_hint is not None:
        cfg = replace(cfg, l2_bytes=inst.l2_bytes_hint)
    return _run_vector_instance(cfg, inst, check=check,
                                drain_dirty=drain_dirty)


def run_scalar(workload: Workload, config="EV8",
               scale: float = 1.0,
               instance: Optional[WorkloadInstance] = None) -> RunOutcome:
    """Run the scalar loop descriptor on the EV8/EV8+ analytic model."""
    cfg = _resolve(config)
    inst = instance if instance is not None else workload.build(scale)
    return _run_scalar_instance(cfg, inst)


def run(workload_name: str, config="T", scale: float = 1.0,
        **kw) -> RunOutcome:
    """Convenience: run a registered workload by name on any machine.

    Keyword arguments are forwarded to :func:`run_tarantula` /
    :func:`run_scalar` according to where the machine routes; passing
    one the resolved model does not accept (e.g. ``check=`` for a
    scalar machine) is an error, not a silent no-op.
    """
    workload = get(workload_name)
    cfg = _resolve(config)
    if cfg.has_vbox:
        allowed = {"check", "instance", "drain_dirty"}
        target = "run_tarantula"
    else:
        allowed = {"instance"}
        target = "run_scalar"
    unknown = sorted(set(kw) - allowed)
    if unknown:
        raise TypeError(
            f"run({workload_name!r}, config={cfg.name!r}): {target}() does "
            f"not accept {', '.join(unknown)} (accepts: "
            f"{', '.join(sorted(allowed))})")
    if cfg.has_vbox:
        return run_tarantula(workload, cfg, scale, **kw)
    return run_scalar(workload, cfg, scale, **kw)


def speedup(kernel: str, baseline: RunOutcome, contender: RunOutcome) -> float:
    """Wall-clock speedup of ``contender`` over ``baseline``."""
    if contender.seconds == 0:
        return float("inf")
    return baseline.seconds / contender.seconds
