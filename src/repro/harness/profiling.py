"""Per-component time profiling for the simulation commands.

``repro report --profile`` / ``repro chaos --profile`` wrap the whole
command in :func:`profiled`, which runs ``cProfile`` and aggregates the
flat function stats into *component buckets* — the simulator's own
layers (vbox, mem, core, isa, ...) plus numpy and "everything else" —
so a regression shows up as "the memory system got slower", not as 400
lines of pstats.  The table goes to **stderr**: stdout stays
byte-identical with and without ``--profile``, which is what lets the
report's output-diff contract (docs/PERF.md) coexist with diagnostics.
"""

from __future__ import annotations

import cProfile
import pstats
import sys
from contextlib import contextmanager

#: bucket name -> path fragment that claims a function for it; first
#: match wins, order matters (most specific first)
_BUCKETS: tuple[tuple[str, str], ...] = (
    ("jit", "/repro/jit/"),
    ("mem", "/repro/mem/"),
    ("vbox", "/repro/vbox/"),
    ("core", "/repro/core/"),
    ("isa", "/repro/isa/"),
    ("scalar", "/repro/scalar/"),
    ("faults", "/repro/faults/"),
    ("workloads", "/repro/workloads/"),
    ("harness", "/repro/harness/"),
    ("utils", "/repro/utils/"),
    ("numpy", "/numpy/"),
)


def bucket_of(filename: str) -> str:
    """Component bucket for a profiled function's source file."""
    path = filename.replace("\\", "/")
    for name, fragment in _BUCKETS:
        if fragment in path:
            return name
    return "other"


def aggregate(stats: pstats.Stats) -> dict[str, dict[str, float]]:
    """Fold flat pstats into per-bucket totals.

    Returns ``{bucket: {"tottime": s, "calls": n}}`` where ``tottime``
    is the *exclusive* time spent in the bucket's own functions — the
    buckets therefore sum to the profiled total and can be compared
    across runs without double counting (cumulative time would count a
    core->mem call in both layers).
    """
    out: dict[str, dict[str, float]] = {}
    for (filename, _lineno, _name), (_cc, ncalls, tottime, _cum, _callers) \
            in stats.stats.items():  # type: ignore[attr-defined]
        bucket = out.setdefault(bucket_of(filename),
                                {"tottime": 0.0, "calls": 0})
        bucket["tottime"] += tottime
        bucket["calls"] += ncalls
    return out


def render(buckets: dict[str, dict[str, float]], total: float) -> str:
    """Human-readable per-component table, widest consumer first."""
    lines = [f"profile: {total:.2f}s total (cProfile overhead included)",
             f"  {'component':<12s} {'time':>9s} {'share':>7s} {'calls':>12s}"]
    for name, agg in sorted(buckets.items(),
                            key=lambda kv: -kv[1]["tottime"]):
        share = 100.0 * agg["tottime"] / total if total else 0.0
        lines.append(f"  {name:<12s} {agg['tottime']:8.2f}s {share:6.1f}% "
                     f"{int(agg['calls']):>12d}")
    return "\n".join(lines)


@contextmanager
def profiled(stream=None):
    """Profile the enclosed block; print the component table on exit.

    The table goes to ``stream`` (default stderr) so the wrapped
    command's stdout is unchanged.  Exceptions propagate after the
    table prints — a slow *and* failing run still yields its profile.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler)
        total = stats.total_tt  # type: ignore[attr-defined]
        print(render(aggregate(stats), total),
              file=stream if stream is not None else sys.stderr)
