"""Figure regeneration: the data series behind Figures 6, 7, 8 and 9.

Each function returns plain dictionaries (kernel -> series) so the
benchmark harness can print them and tests can assert on shapes.  The
problem scales below were chosen so every kernel runs in its paper
regime (L2-resident vs memory-streaming) while staying simulable in
seconds; EXPERIMENTS.md records them.

Every figure is a grid of :class:`~repro.harness.engine.ExperimentSpec`
cells submitted to ``engine.execute_many`` in one batch — pass
``jobs``/``cache`` to fan the grid out over worker processes and to
reuse previously simulated cells (``python -m repro report`` does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.harness.engine import ExperimentSpec, ResultCache, execute_many
from repro.workloads.registry import FIGURE_SUITE
from repro.workloads.suite import InstanceFamily, Matrix, Suite

#: per-kernel problem scales used for the figure sweeps
DEFAULT_SCALES: dict[str, float] = {
    "swim": 1.0,
    "swim.untiled": 1.0,
    "art": 1.0,
    "sixtrack": 1.0,
    "dgemm": 0.5,
    "dtrmm": 0.5,
    "sparsemxv": 0.5,
    "fft": 1.0,
    "lu": 0.5,
    "linpack100": 1.0,
    "linpacktpp": 0.5,
    "moldyn": 1.0,
    "ccradix": 2.0,
}


def scale_for(kernel: str, quick: bool = False) -> float:
    scale = DEFAULT_SCALES.get(kernel, 1.0)
    return scale * (0.25 if quick else 1.0)


def _grid(kernels, configs, quick: bool, jobs: int,
          cache: Optional[ResultCache]) -> dict:
    """Run a (kernel x config) grid; returns outcome[kernel][config].

    A thin wrapper over :class:`~repro.workloads.suite.Matrix`: the
    kernel axis becomes a :class:`Suite` (unless one was passed in) and
    the config axis an :class:`InstanceFamily` with one default
    instance per configuration.  Matrix expansion is workload-major,
    the order this function has always used.
    """
    suite = kernels if isinstance(kernels, Suite) \
        else Suite("figure-grid", kernels)
    family = InstanceFamily.of_configs("figure-configs", configs)
    matrix = Matrix(suite, family, scales=DEFAULT_SCALES, quick=quick,
                    check=False)
    return matrix.run(jobs=jobs, cache=cache)


@dataclass
class Figure6Row:
    """One bar of Figure 6: OPC split into FPC / MPC / Other."""

    kernel: str
    opc: float
    fpc: float
    mpc: float
    other: float


def figure6(kernels=FIGURE_SUITE, quick: bool = False, config="T",
            jobs: int = 1,
            cache: Optional[ResultCache] = None) -> dict[str, Figure6Row]:
    """Sustained operations per cycle, per benchmark (Figure 6)."""
    grid = _grid(kernels, (config,), quick, jobs, cache)
    return {name: Figure6Row(name, out.opc, out.fpc, out.mpc, out.other_pc)
            for name, out in ((n, grid[n][config]) for n in kernels)}


@dataclass
class Figure7Row:
    """One group of Figure 7: EV8+ and Tarantula speedups over EV8."""

    kernel: str
    speedup_ev8_plus: float
    speedup_tarantula: float


def figure7(kernels=FIGURE_SUITE, quick: bool = False, jobs: int = 1,
            cache: Optional[ResultCache] = None) -> dict[str, Figure7Row]:
    """Speedup of EV8+ and Tarantula over EV8 (Figure 7)."""
    grid = _grid(kernels, ("T", "EV8", "EV8+"), quick, jobs, cache)
    rows: dict[str, Figure7Row] = {}
    for name in kernels:
        t, ev8, ev8p = (grid[name][c] for c in ("T", "EV8", "EV8+"))
        rows[name] = Figure7Row(
            name,
            speedup_ev8_plus=ev8.seconds / ev8p.seconds,
            speedup_tarantula=ev8.seconds / t.seconds)
    return rows


@dataclass
class Figure8Row:
    """One group of Figure 8: T4 and T10 speedup over T."""

    kernel: str
    speedup_t4: float
    speedup_t10: float


def figure8(kernels=FIGURE_SUITE, quick: bool = False, jobs: int = 1,
            cache: Optional[ResultCache] = None) -> dict[str, Figure8Row]:
    """Performance scaling at 4.8 GHz (T4) and 10.66 GHz (T10)."""
    grid = _grid(kernels, ("T", "T4", "T10"), quick, jobs, cache)
    rows: dict[str, Figure8Row] = {}
    for name in kernels:
        base, t4, t10 = (grid[name][c] for c in ("T", "T4", "T10"))
        rows[name] = Figure8Row(
            name,
            speedup_t4=base.seconds / t4.seconds,
            speedup_t10=base.seconds / t10.seconds)
    return rows


@dataclass
class Figure9Row:
    """One bar of Figure 9: relative performance, PUMP disabled."""

    kernel: str
    relative_performance: float   # no-pump time fraction (<= ~1.0)


def figure9(kernels=FIGURE_SUITE + ("swim.untiled",), quick: bool = False,
            jobs: int = 1,
            cache: Optional[ResultCache] = None) -> dict[str, Figure9Row]:
    """Slowdown from disabling stride-1 double-bandwidth mode."""
    grid = _grid(kernels, ("T", "T-nopump"), quick, jobs, cache)
    return {name: Figure9Row(
                name, grid[name]["T"].seconds / grid[name]["T-nopump"].seconds)
            for name in kernels}


def tiling_ablation(quick: bool = False, jobs: int = 1,
                    cache: Optional[ResultCache] = None) -> dict[str, float]:
    """Section 6's swim experiment: the non-tiled version is ~2X slower.

    The effect requires the grids to exceed the L2 (the reference swim
    grid is ~190 MB against 16 MB); at simulator-friendly grid sizes we
    preserve the grid/L2 ratio by shrinking the modeled L2 instead
    (DESIGN.md substitution 6).
    """
    scale = scale_for("swim", quick)
    # grids at these scales total ~0.2 MB (quick) / ~1.5 MB (full); an
    # L2 an order of magnitude smaller reproduces the paper's ratio
    overrides = (("l2_bytes", (1 << 15) if quick else (1 << 18)),)
    tiled, naive = execute_many(
        [ExperimentSpec("swim", "T", scale, overrides=overrides,
                        check=False),
         ExperimentSpec("swim.untiled", "T", scale, overrides=overrides,
                        check=False)],
        jobs=jobs, cache=cache)
    return {
        "tiled_cycles": tiled.cycles,
        "untiled_cycles": naive.cycles,
        "slowdown": naive.cycles / tiled.cycles,
    }
