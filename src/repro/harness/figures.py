"""Figure regeneration: the data series behind Figures 6, 7, 8 and 9.

Each function returns plain dictionaries (kernel -> series) so the
benchmark harness can print them and tests can assert on shapes.  The
problem scales below were chosen so every kernel runs in its paper
regime (L2-resident vs memory-streaming) while staying simulable in
seconds; EXPERIMENTS.md records them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.runner import run_scalar, run_tarantula
from repro.workloads.registry import FIGURE_SUITE, get

#: per-kernel problem scales used for the figure sweeps
DEFAULT_SCALES: dict[str, float] = {
    "swim": 1.0,
    "swim.untiled": 1.0,
    "art": 1.0,
    "sixtrack": 1.0,
    "dgemm": 0.5,
    "dtrmm": 0.5,
    "sparsemxv": 0.5,
    "fft": 1.0,
    "lu": 0.5,
    "linpack100": 1.0,
    "linpacktpp": 0.5,
    "moldyn": 1.0,
    "ccradix": 2.0,
}


def scale_for(kernel: str, quick: bool = False) -> float:
    scale = DEFAULT_SCALES.get(kernel, 1.0)
    return scale * (0.25 if quick else 1.0)


@dataclass
class Figure6Row:
    """One bar of Figure 6: OPC split into FPC / MPC / Other."""

    kernel: str
    opc: float
    fpc: float
    mpc: float
    other: float


def figure6(kernels=FIGURE_SUITE, quick: bool = False,
            config="T") -> dict[str, Figure6Row]:
    """Sustained operations per cycle, per benchmark (Figure 6)."""
    rows: dict[str, Figure6Row] = {}
    for name in kernels:
        out = run_tarantula(get(name), config, scale_for(name, quick),
                            check=False)
        rows[name] = Figure6Row(name, out.opc, out.fpc, out.mpc,
                                out.other_pc)
    return rows


@dataclass
class Figure7Row:
    """One group of Figure 7: EV8+ and Tarantula speedups over EV8."""

    kernel: str
    speedup_ev8_plus: float
    speedup_tarantula: float


def figure7(kernels=FIGURE_SUITE, quick: bool = False) -> dict[str, Figure7Row]:
    """Speedup of EV8+ and Tarantula over EV8 (Figure 7)."""
    rows: dict[str, Figure7Row] = {}
    for name in kernels:
        workload = get(name)
        scale = scale_for(name, quick)
        instance = workload.build(scale)
        t = run_tarantula(workload, "T", scale, check=False,
                          instance=instance)
        ev8 = run_scalar(workload, "EV8", scale, instance=instance)
        ev8p = run_scalar(workload, "EV8+", scale, instance=instance)
        rows[name] = Figure7Row(
            name,
            speedup_ev8_plus=ev8.seconds / ev8p.seconds,
            speedup_tarantula=ev8.seconds / t.seconds)
    return rows


@dataclass
class Figure8Row:
    """One group of Figure 8: T4 and T10 speedup over T."""

    kernel: str
    speedup_t4: float
    speedup_t10: float


def figure8(kernels=FIGURE_SUITE, quick: bool = False) -> dict[str, Figure8Row]:
    """Performance scaling at 4.8 GHz (T4) and 10.66 GHz (T10)."""
    rows: dict[str, Figure8Row] = {}
    for name in kernels:
        workload = get(name)
        scale = scale_for(name, quick)
        base = run_tarantula(workload, "T", scale, check=False)
        t4 = run_tarantula(workload, "T4", scale, check=False)
        t10 = run_tarantula(workload, "T10", scale, check=False)
        rows[name] = Figure8Row(
            name,
            speedup_t4=base.seconds / t4.seconds,
            speedup_t10=base.seconds / t10.seconds)
    return rows


@dataclass
class Figure9Row:
    """One bar of Figure 9: relative performance, PUMP disabled."""

    kernel: str
    relative_performance: float   # no-pump time fraction (<= ~1.0)


def figure9(kernels=FIGURE_SUITE + ("swim.untiled",),
            quick: bool = False) -> dict[str, Figure9Row]:
    """Slowdown from disabling stride-1 double-bandwidth mode."""
    rows: dict[str, Figure9Row] = {}
    for name in kernels:
        workload = get(name)
        scale = scale_for(name, quick)
        base = run_tarantula(workload, "T", scale, check=False)
        nopump = run_tarantula(workload, "T-nopump", scale, check=False)
        rows[name] = Figure9Row(name, base.seconds / nopump.seconds)
    return rows


def tiling_ablation(quick: bool = False) -> dict[str, float]:
    """Section 6's swim experiment: the non-tiled version is ~2X slower.

    The effect requires the grids to exceed the L2 (the reference swim
    grid is ~190 MB against 16 MB); at simulator-friendly grid sizes we
    preserve the grid/L2 ratio by shrinking the modeled L2 instead
    (DESIGN.md substitution 6).
    """
    from dataclasses import replace

    from repro.core.config import tarantula

    scale = scale_for("swim", quick)
    # grids at these scales total ~0.2 MB (quick) / ~1.5 MB (full); an
    # L2 an order of magnitude smaller reproduces the paper's ratio
    config = replace(tarantula(), l2_bytes=(1 << 15) if quick else (1 << 18))
    tiled = run_tarantula(get("swim"), config, scale, check=False)
    naive = run_tarantula(get("swim.untiled"), config, scale, check=False)
    return {
        "tiled_cycles": tiled.cycles,
        "untiled_cycles": naive.cycles,
        "slowdown": naive.cycles / tiled.cycles,
    }
