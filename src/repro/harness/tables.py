"""Table regeneration: Tables 1-4 of the paper.

* Table 1 comes from the analytic power/area model.
* Table 2 is the benchmark inventory — with the *measured* dynamic
  vectorization percentage of our kernels next to the paper's.
* Table 3 prints the configured machines' derived quantities.
* Table 4 runs the memory microkernels on the timing simulator and
  reports sustained Streams/Raw bandwidth in MB/s.

Tables 2 and 4 are simulation grids: they build
:class:`~repro.harness.engine.ExperimentSpec` lists (functional mode
for the Table 2 vectorization census, drain-accounted timing runs for
the Table 4 bandwidths) and submit them to ``engine.execute_many``;
Tables 1 and 3 are pure configuration arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import dataclasses as _dc

from repro.core.config import CONFIGURATIONS
from repro.core.power import cmp_ev8_model, table1_rows, tarantula_model
from repro.harness.engine import ExperimentSpec, ResultCache, execute_many
from repro.workloads.random_access import RNDMEMSCALE_BASE
from repro.workloads.registry import REGISTRY, TABLE4_SUITE, TARANTULA_SUITE
from repro.workloads.suite import Matrix, Suite, get_family


def table1() -> dict:
    """Power and area estimates (Table 1)."""
    return table1_rows()


@dataclass
class Table2Row:
    name: str
    description: str
    inputs: str
    comments: str
    uses_prefetch: bool
    uses_drainm: bool
    paper_vect_pct: float | None
    measured_vect_pct: float
    surrogate: bool


def table2(scale: float = 0.1, quick: bool = False, jobs: int = 1,
           cache: Optional[ResultCache] = None,
           suite: Optional[Suite] = None) -> dict[str, Table2Row]:
    """Benchmark inventory with measured vectorization percentages.

    ``quick`` quarters the census scale, like the figure generators;
    the dynamic vectorization fraction is scale-insensitive well past
    that point (loop control lives in the Python-side "compiler").
    The census covers the ``tarantula`` suite — the paper's own 19
    benchmarks, NOT the whole registry, so Table 2 output stays
    byte-stable as new suites register — unless ``suite`` says
    otherwise.
    """
    if suite is None:
        suite = TARANTULA_SUITE
    matrix = Matrix(suite, get_family("default"), scales=scale, quick=quick,
                    check=True, mode="functional")
    grid = matrix.run(jobs=jobs, cache=cache)
    rows: dict[str, Table2Row] = {}
    for name in suite:
        outcome = grid[name]["T"]
        workload = REGISTRY[name]
        # a failed cell has no detail; NaN renders as a FAIL marker
        measured = float("nan") if getattr(outcome, "failed", False) \
            else outcome.detail.vectorization_percent
        rows[name] = Table2Row(
            name=name, description=workload.description,
            inputs=workload.inputs, comments=workload.comments,
            uses_prefetch=workload.uses_prefetch,
            uses_drainm=workload.uses_drainm,
            paper_vect_pct=workload.paper_vectorization_pct,
            measured_vect_pct=measured,
            surrogate=workload.surrogate)
    return rows


def table3() -> dict[str, dict[str, float]]:
    """Machine configurations and their derived quantities (Table 3)."""
    out: dict[str, dict[str, float]] = {}
    for name in ("EV8", "EV8+", "T", "T4", "T10"):
        cfg = CONFIGURATIONS[name]()
        out[name] = {
            "core_ghz": round(cfg.core_ghz, 2),
            "l2_mbytes": cfg.l2_bytes // (1 << 20),
            "l2_gbytes_per_s": round(cfg.l2_bytes_per_cycle * cfg.core_ghz),
            "rambus_ports": cfg.rambus_ports,
            "rambus_mhz": cfg.rambus_mhz,
            "rambus_gbytes_per_s": round(cfg.rambus_gbs, 1),
            "peak_flops_per_cycle": cfg.peak_vector_flops_per_cycle,
            "peak_ops_per_cycle": cfg.peak_operations_per_cycle,
            "scalar_load_use": cfg.l2_scalar_load_use,
            "stride1_load_use": cfg.l2_stride1_load_use if cfg.has_vbox else None,
            "odd_stride_load_use": cfg.l2_odd_stride_load_use if cfg.has_vbox else None,
        }
    return out


@dataclass
class Table4Row:
    kernel: str
    streams_mbytes_per_s: float
    raw_mbytes_per_s: float


#: per-kernel scales for the bandwidth table (memory kernels want long
#: steady-state streams)
TABLE4_SCALES = {
    "streams.copy": 2.0,
    "streams.scale": 2.0,
    "streams.add": 2.0,
    "streams.triad": 2.0,
    "rndcopy": 1.0,
    "rndmemscale": 2.0,
}


def _table4_adjust(spec: ExperimentSpec, name: str, instance) -> ExperimentSpec:
    """Per-cell drain/override policy for the bandwidth table."""
    overrides = spec.overrides
    if name == "rndmemscale":
        # "All data from memory": the paper's B does not stay L2
        # resident; we preserve the footprint/L2 ratio (~2x) by
        # shrinking the modeled L2 (see EXPERIMENTS.md)
        # an L2 of exactly the footprint keeps the run dominated by
        # first-touch misses — the paper's single-pass regime
        footprint = int(RNDMEMSCALE_BASE * spec.scale) * 8
        overrides = (("l2_bytes", 1 << max(footprint.bit_length() - 1, 17)),)
    # rndcopy works entirely from the L2 ("prefetched into L2"; the
    # paper reports no raw column for it) — no drain for it
    return _dc.replace(spec, overrides=overrides,
                       drain_dirty=(name != "rndcopy"))


def table4(quick: bool = False, jobs: int = 1,
           cache: Optional[ResultCache] = None) -> dict[str, Table4Row]:
    """Sustained memory bandwidth microkernels (Table 4)."""
    matrix = Matrix(TABLE4_SUITE, get_family("default"),
                    scales=TABLE4_SCALES, quick=quick, check=False,
                    adjust=_table4_adjust)
    grid = matrix.run(jobs=jobs, cache=cache)
    return {name: Table4Row(name, grid[name]["T"].streams_mbytes_per_s,
                            grid[name]["T"].raw_mbytes_per_s)
            for name in TABLE4_SUITE}


def power_summary() -> dict[str, float]:
    """The headline Gflops/W comparison under Table 1."""
    cmp_model, t_model = cmp_ev8_model(), tarantula_model()
    return {
        "cmp_total_watts": round(cmp_model.total_watts, 1),
        "tarantula_total_watts": round(t_model.total_watts, 1),
        "cmp_gflops_per_watt": round(cmp_model.gflops_per_watt, 3),
        "tarantula_gflops_per_watt": round(t_model.gflops_per_watt, 3),
        "advantage": round(t_model.gflops_per_watt /
                           cmp_model.gflops_per_watt, 2),
    }
