"""Simulator-throughput benchmark harness (``python -m repro bench``).

Measures how fast the *simulator itself* runs — wall-clock and simulated
instructions per host second for every workload of one suite (default:
``tarantula``, the paper's 19 benchmarks; ``--suite`` picks another) —
and writes the results to ``BENCH_sim_throughput.json``.  The committed
copy of
that file is the performance baseline: CI reruns the quick benchmark
and fails when the total slows down by more than
:data:`REGRESSION_TOLERANCE` (see docs/PERF.md).

Two timings per workload:

* **cold** — build the workload instance (program assembly + numpy
  reference data) and simulate it, on a process with empty memo caches;
* **warm** — simulate again with the instance memo, splat/stride/plan
  caches and interpreter warm: the steady-state cost a sweep pays per
  additional cell.

When the trace JIT is enabled (the default), each workload also gets a
**jit_off** sidecar: a third, warm measurement with the JIT forced off
in-process.  The rerun must land on bit-identical cycles (a divergence
fails the benchmark), and the recorded ``jit_speedup`` ratio is the
machine-independent speedup evidence — both runs share one process on
one machine, so host noise cancels out of the ratio.

Runs go through :func:`repro.harness.engine.execute` — the same path
the report uses — with ``check=True``, so a benchmark run is also a
correctness run.

Fault budget: ``--deadline S`` bounds the whole benchmark run —
workloads not started in time are recorded as skipped (excluded from
the totals, listed under ``incomplete``).  ``--timeout S`` (or
``--pool process``) measures each workload inside a single worker
process so an overrunning workload can be abandoned and the pool
respawned instead of hanging the benchmark; by default measurement
stays in-process, byte-identical to the committed baselines.  A
document with incomplete entries never passes ``--check-against`` —
a partial total is not comparable.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

#: benchmark problem scale: small enough for CI, big enough that the
#: timing hot path (not workload build) dominates
QUICK_SCALE = 0.05
FULL_SCALE = 0.25

#: CI gate: fail when total warm wall-clock regresses past this factor
REGRESSION_TOLERANCE = 1.20

DEFAULT_OUTPUT = "BENCH_sim_throughput.json"
SCHEMA = "repro-bench-v1"


def _clear_memos() -> None:
    """Reset every per-process cache a cold measurement must not see."""
    from repro import jit
    from repro.harness import engine
    from repro.isa import semantics
    from repro.vbox import crbox

    engine._INSTANCE_MEMO.clear()
    semantics._SPLAT_CACHE.clear()
    semantics._STRIDED_CACHE = (None, None)
    jit.clear_caches()
    crbox.clear_pack_memo()


def _run_once(kernel: str, scale: float) -> tuple[float, object]:
    """One timed simulation of ``kernel``; returns (seconds, outcome)."""
    from repro.harness.engine import ExperimentSpec, execute

    spec = ExperimentSpec(kernel=kernel, config="T", scale=scale)
    t0 = time.perf_counter()
    outcome = execute(spec)
    elapsed = time.perf_counter() - t0
    if getattr(outcome, "failed", False):
        raise RuntimeError(
            f"bench: {kernel} failed: {outcome.message}")  # type: ignore
    return elapsed, outcome


def _instructions(outcome) -> int:
    counts = outcome.detail.counts
    return counts.scalar_instructions + counts.vector_instructions


def _jit_off_sidecar(name: str, scale: float, cycles: float) -> float | None:
    """Warm ``jit_off`` measurement of one workload, or None when the
    process already runs with the JIT off (nothing to compare).

    Doubles as a differential gate: the JIT-off rerun must land on the
    exact same cycle count, or the whole benchmark run fails.
    """
    from repro import jit

    if not jit.enabled():
        return None
    with jit.disabled():
        off_s, off_outcome = _run_once(name, scale)
    if off_outcome.cycles != cycles:
        raise RuntimeError(
            f"bench: {name} diverged with the JIT off "
            f"({off_outcome.cycles} != {cycles} cycles)")
    return off_s


def _bench_cell(name: str, scale: float) -> dict:
    """Worker-side cold+warm measurement of one workload (picklable).

    Workers start with empty memos (fresh process or respawned pool),
    but clear them anyway so a reused worker still measures a true
    cold build.
    """
    _clear_memos()
    cold_s, outcome = _run_once(name, scale)
    warm_s, warm_outcome = _run_once(name, scale)
    if warm_outcome.cycles != outcome.cycles:
        raise RuntimeError(
            f"bench: {name} warm rerun diverged "
            f"({warm_outcome.cycles} != {outcome.cycles} cycles)")
    return {
        "instructions": _instructions(outcome),
        "simulated_cycles": outcome.cycles,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "jit_off_s": _jit_off_sidecar(name, scale, outcome.cycles),
    }


def _measure_in_worker(pool, name: str, scale: float,
                       timeout: float | None) -> dict | None:
    """One workload through the measurement pool; None = timed out."""
    import concurrent.futures

    fut = pool.submit(_bench_cell, name, scale)
    try:
        return fut.result(timeout=timeout)
    except concurrent.futures.TimeoutError:
        pool.respawn()                  # reclaim the wedged worker
        return None


def _suite_of(name: str) -> str:
    """First registered suite containing ``name`` (for result tagging)."""
    from repro.workloads.suite import SUITES

    for suite in SUITES.values():
        if name in suite:
            return suite.name
    return ""


def run_benchmarks(quick: bool = False,
                   kernels: list[str] | None = None,
                   progress=None, suite: str | None = None,
                   timeout: float | None = None,
                   deadline: float | None = None,
                   backend: str = "auto") -> dict:
    """Benchmark one suite of workloads; returns the result document.

    The default is the ``tarantula`` suite — the paper's own 19
    benchmarks, sorted, exactly what the committed baseline recorded —
    NOT the whole registry, so the ``--check-against`` gate keeps
    comparing like against like as new suites register.  An explicit
    ``kernels`` list wins over ``suite``.

    With ``timeout`` (or ``backend="process"``) each workload is
    measured inside a one-worker :class:`~repro.harness.pool
    .ProcessPool`; an overrunning workload is abandoned (recorded under
    ``incomplete``, the pool respawned) instead of wedging the run.
    ``deadline`` bounds the whole benchmark: workloads not started in
    time are skipped.  Without either flag measurement is in-process
    and byte-identical to the historical behavior.
    """
    import repro.workloads.registry  # noqa: F401 — populate the suites
    from repro.workloads.suite import get_suite

    scale = QUICK_SCALE if quick else FULL_SCALE
    if kernels:
        names = list(kernels)
    else:
        names = list(get_suite(suite if suite else "tarantula"))
    use_worker = timeout is not None or backend == "process"
    pool = None
    if use_worker:
        from repro.harness.pool import ProcessPool

        pool = ProcessPool(1)
    workloads: dict[str, dict] = {}
    incomplete: dict[str, str] = {}
    interrupted = False
    start = time.perf_counter()
    pos = 0
    try:
        for pos, name in enumerate(names):
            if deadline is not None \
                    and time.perf_counter() - start > deadline:
                incomplete[name] = "skipped: deadline exceeded"
                if progress is not None:
                    print(f"bench: {name:<14s} skipped "
                          f"(deadline {deadline:g}s exceeded)",
                          file=progress)
                continue
            if pool is not None:
                cell = _measure_in_worker(pool, name, scale, timeout)
                if cell is None:
                    incomplete[name] = (
                        f"timed out: exceeded {timeout:g}s in the worker")
                    if progress is not None:
                        print(f"bench: {name:<14s} TIMED OUT "
                              f"(> {timeout:g}s)", file=progress)
                    continue
                cold_s, warm_s = cell["cold_s"], cell["warm_s"]
                instructions = cell["instructions"]
                simulated_cycles = cell["simulated_cycles"]
                jit_off_s = cell.get("jit_off_s")
            else:
                _clear_memos()
                cold_s, outcome = _run_once(name, scale)
                warm_s, warm_outcome = _run_once(name, scale)
                if warm_outcome.cycles != outcome.cycles:
                    raise RuntimeError(
                        f"bench: {name} warm rerun diverged "
                        f"({warm_outcome.cycles} != {outcome.cycles} cycles)")
                instructions = _instructions(outcome)
                simulated_cycles = outcome.cycles
                jit_off_s = _jit_off_sidecar(name, scale, outcome.cycles)
            workloads[name] = {
                "suite": _suite_of(name),
                "instructions": instructions,
                "simulated_cycles": simulated_cycles,
                "cold_wall_s": round(cold_s, 4),
                "warm_wall_s": round(warm_s, 4),
                "cold_instr_per_s": round(instructions / cold_s, 1),
                "warm_instr_per_s": round(instructions / warm_s, 1),
            }
            if jit_off_s is not None:
                # same-process, same-machine differential: the ratio is
                # the speedup evidence that survives noisy CI runners
                workloads[name]["jit_off_warm_s"] = round(jit_off_s, 4)
                workloads[name]["jit_speedup"] = round(jit_off_s / warm_s, 2)
            if progress is not None:
                print(f"bench: {name:<14s} {instructions:>8d} instr  "
                      f"cold {cold_s:6.2f}s  warm {warm_s:6.2f}s  "
                      f"({instructions / warm_s:>9.0f} instr/s warm)",
                      file=progress)
    except KeyboardInterrupt:
        # Ctrl-C: keep the measurements already taken, record the rest
        # as incomplete and let main() exit 130 — never lose a partial
        # run to an interrupt
        interrupted = True
        for name in names[pos:]:
            if name not in workloads:
                incomplete.setdefault(name, "interrupted (Ctrl-C)")
        if progress is not None:
            print("bench: interrupted — remaining workload(s) recorded "
                  "as incomplete", file=progress)
        if pool is not None:
            pool.mark_dirty()           # workers may be mid-measurement
    finally:
        if pool is not None:
            pool.close()
    from repro import jit

    totals = {
        "cold_wall_s": round(sum(w["cold_wall_s"] for w in workloads.values()), 4),
        "warm_wall_s": round(sum(w["warm_wall_s"] for w in workloads.values()), 4),
        "instructions": sum(w["instructions"] for w in workloads.values()),
    }
    sidecars = [w["jit_off_warm_s"] for w in workloads.values()
                if "jit_off_warm_s" in w]
    if sidecars and len(sidecars) == len(workloads):
        totals["jit_off_warm_s"] = round(sum(sidecars), 4)
        if totals["warm_wall_s"]:
            totals["jit_speedup"] = round(
                totals["jit_off_warm_s"] / totals["warm_wall_s"], 2)
    doc = {
        "schema": SCHEMA,
        "quick": quick,
        "scale": scale,
        "python": sys.version.split()[0],
        "jit": {"enabled": jit.enabled()},
        "workloads": workloads,
        "totals": totals,
    }
    if incomplete:
        doc["incomplete"] = incomplete
    if interrupted:
        doc["interrupted"] = True
    return doc


def check_regression(current: dict, baseline_path: Path,
                     tolerance: float = REGRESSION_TOLERANCE,
                     stream=None) -> bool:
    """Compare against a committed baseline; True when within tolerance.

    The gate is the *total warm* wall-clock — per-workload numbers are
    too noisy on shared CI runners, but a real regression moves the
    sum.  A baseline recorded at a different scale or schema is a
    configuration error, not a pass.
    """
    stream = stream if stream is not None else sys.stderr
    if current.get("incomplete"):
        print("bench: cannot gate an incomplete run ("
              + ", ".join(sorted(current["incomplete"])) + ")", file=stream)
        return False
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("schema") != current["schema"] \
            or baseline.get("scale") != current["scale"]:
        print(f"bench: baseline {baseline_path} has schema/scale "
              f"{baseline.get('schema')}/{baseline.get('scale')}, "
              f"current run is {current['schema']}/{current['scale']}",
              file=stream)
        return False
    base_total = baseline["totals"]["warm_wall_s"]
    cur_total = current["totals"]["warm_wall_s"]
    ratio = cur_total / base_total if base_total else float("inf")
    verdict = "OK" if ratio <= tolerance else "REGRESSION"
    print(f"bench: warm total {cur_total:.2f}s vs baseline "
          f"{base_total:.2f}s ({ratio:.2f}x, tolerance {tolerance:.2f}x) "
          f"-> {verdict}", file=stream)
    return ratio <= tolerance


def main(quick: bool = False, output: str | None = DEFAULT_OUTPUT,
         check_against: str | None = None,
         kernels: list[str] | None = None,
         suite: str | None = None,
         timeout: float | None = None,
         deadline: float | None = None,
         backend: str = "auto") -> int:
    """Entry point shared by the CLI and benchmarks/ wrapper script."""
    doc = run_benchmarks(quick=quick, kernels=kernels, progress=sys.stderr,
                         suite=suite, timeout=timeout, deadline=deadline,
                         backend=backend)
    if output:
        Path(output).write_text(json.dumps(doc, indent=2, sort_keys=True)
                                + "\n")
        print(f"bench: wrote {output}", file=sys.stderr)
    if check_against is not None:
        if not check_regression(doc, Path(check_against)):
            return 1
    if doc.get("interrupted"):
        return 130                      # conventional SIGINT exit status
    return 0
