"""Published numbers from the paper's evaluation section.

Table values are transcribed from the text; figure values (Figures 6-9
are bar charts without printed numbers) are approximate bar readings,
tagged as such.  The harness compares *shape* against these: who wins,
by roughly what factor, where the crossovers fall — not absolute cycle
counts, which belonged to the authors' RTL-validated testbed.
"""

from __future__ import annotations

#: Table 4 — sustained bandwidth in MB/s on Tarantula
TABLE4 = {
    "streams.copy": {"streams": 42983, "raw": 64475},
    "streams.scale": {"streams": 41689, "raw": 62492},
    "streams.add": {"streams": 43097, "raw": 57463},
    "streams.triad": {"streams": 47970, "raw": 63960},
    "rndcopy": {"streams": 73456, "raw": None},
    "rndmemscale": {"streams": 7512, "raw": 50106},
}

#: Table 1 — power/area (see repro.core.power for the full model)
TABLE1 = {
    "cmp_total_watts": 128.0,
    "tarantula_total_watts": 143.7,
    "cmp_gflops_per_watt": 0.16,
    "tarantula_gflops_per_watt": 0.55,
    "gflops_per_watt_advantage": 3.4,
}

#: Figure 6 — sustained operations/cycle (approximate bar readings)
FIGURE6_OPC = {
    "swim": 22.0,
    "art": 48.0,
    "sixtrack": 20.0,
    "dgemm": 40.0,
    "dtrmm": 33.0,
    "sparsemxv": 11.0,
    "fft": 23.0,
    "lu": 20.0,
    "linpack100": 13.0,
    "linpacktpp": 30.0,
    "moldyn": 25.0,
    "ccradix": 15.0,
}

#: Figure 7 — speedup over EV8 (approximate bar readings)
FIGURE7_SPEEDUP_T = {
    "swim": 9.0,
    "art": 14.0,
    "sixtrack": 6.0,
    "dgemm": 12.0,
    "dtrmm": 9.0,
    "sparsemxv": 3.5,
    "fft": 10.0,
    "lu": 7.0,
    "linpack100": 4.0,
    "linpacktpp": 8.0,
    "moldyn": 10.0,
    "ccradix": 2.9,
}

#: headline claims used as acceptance criteria
CLAIMS = {
    "average_speedup_over_ev8": 5.0,
    "peak_flop_ratio": 8.0,            # 32 vs 4 flops/cycle
    "ccradix_speedup": 2.9,            # "almost 3X"
    "ccradix_opc": 15.0,               # "15 sustained operations/cycle"
    "several_exceed_opc": 20.0,        # "several benchmarks exceed 20"
    "peak_operations_per_cycle": 104,  # section 1/7
    "swim_untiled_slowdown": 2.0,      # "almost 2X slower"
}

#: Figure 8 — frequency-scaling speedups over T (approximate)
FIGURE8 = {
    "sparsemxv": {"T4": 1.6, "T10": 1.8},
    # cache-resident codes scale near-linearly with frequency
    "dgemm": {"T4": 2.0, "T10": 3.5},
}

#: Figure 9 — relative performance with the PUMP disabled (approximate):
#: the hardest-hit kernels drop well below 1.0
FIGURE9_HARD_HIT = ("swim.untiled", "sparsemxv", "ccradix")
