"""Unified experiment engine: one execution path for the whole harness.

Every cell of the paper's evaluation grid — a (kernel, machine, scale)
triple plus a handful of run flags — is one frozen, picklable
:class:`ExperimentSpec`.  One canonical :func:`execute` turns a spec
into a :class:`RunOutcome`, routing to the Tarantula timing simulator,
the EV8 analytic model, or the functional simulator as the resolved
machine demands.  :func:`execute_many` fans a grid out across worker
processes (deterministic result order, serial fallback), and the
content-addressed :class:`ResultCache` makes regeneration incremental:
a spec's key digests the program bytes, the resolved configuration
fields and the simulator source itself, so any change that could alter
a result busts exactly the affected cells.

The figure/table/sweep generators and ``python -m repro report`` all
build spec grids and submit them here; no other module owns a
setup/step/result loop.  docs/HARNESS.md documents the model.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
import pickle
import time
import traceback
import warnings
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.harness.pool import Pool, PoolPolicy, ProcessPool, SerialPool, \
    run_grid

from repro.core.config import CONFIGURATIONS, MachineConfig
from repro.errors import ArchitecturalTrap, ConfigError
from repro.workloads.base import Workload, WorkloadInstance, run_functional
from repro.workloads.registry import get

#: bump to invalidate every cached result regardless of code digests
CACHE_SCHEMA = "repro-cache-v1"

#: default cache location, relative to the working directory
CACHE_DIR = Path(".repro-cache")

_CONFIG_FIELDS = {f.name for f in dataclasses.fields(MachineConfig)}


@dataclass
class EngineStats:
    """Module-level counters for the engine's failure machinery.

    Reset with :meth:`reset` (tests) — per-run traffic lives on the
    :class:`ResultCache` instance, but pool fallbacks and cell failures
    have no natural per-call home, so they accumulate here.
    """

    pool_fallbacks: int = 0
    cell_failures: int = 0
    retries: int = 0
    quarantined: int = 0
    #: attempts abandoned for exceeding the per-cell/grid time budget
    timeouts: int = 0
    #: cells that got a speculative duplicate submission
    stragglers: int = 0
    #: cells whose speculative duplicate finished first
    speculative_wins: int = 0
    #: completed cells kept (not re-simulated) across a mid-grid pool break
    preserved_on_break: int = 0
    #: cells abandoned by a KeyboardInterrupt (Ctrl-C exits 130)
    interrupted: int = 0
    # trace-JIT counters, mirrored from repro.jit.STATS after each
    # execute() (process-cumulative, like the JIT's own cache)
    jit_trace_hits: int = 0
    jit_trace_misses: int = 0
    jit_invalidations: int = 0
    jit_deopts: int = 0
    jit_compile_rejects: int = 0
    jit_traces_compiled: int = 0
    jit_batched_instructions: int = 0

    def reset(self) -> None:
        self.pool_fallbacks = 0
        self.cell_failures = 0
        self.retries = 0
        self.quarantined = 0
        self.timeouts = 0
        self.stragglers = 0
        self.speculative_wins = 0
        self.preserved_on_break = 0
        self.interrupted = 0
        self.jit_trace_hits = 0
        self.jit_trace_misses = 0
        self.jit_invalidations = 0
        self.jit_deopts = 0
        self.jit_compile_rejects = 0
        self.jit_traces_compiled = 0
        self.jit_batched_instructions = 0

    def sync_jit(self) -> None:
        """Mirror the process-cumulative trace-JIT counters in here so
        ``repro serve`` ``/stats`` and the chaos reports see them."""
        from repro.jit import STATS as jit_stats

        self.jit_trace_hits = jit_stats.trace_cache_hits
        self.jit_trace_misses = jit_stats.trace_cache_misses
        self.jit_invalidations = jit_stats.invalidations
        self.jit_deopts = jit_stats.deopts
        self.jit_compile_rejects = jit_stats.compile_rejects
        self.jit_traces_compiled = jit_stats.traces_compiled
        self.jit_batched_instructions = jit_stats.batched_instructions


#: the engine's shared stats bag (per-process; pool workers get their own)
STATS = EngineStats()


#: per-process LRU memo of built workload instances, keyed by
#: (kernel, scale); most-recently-used entries live at the end
_INSTANCE_MEMO: "OrderedDict[tuple[str, float], WorkloadInstance]" = \
    OrderedDict()
_INSTANCE_MEMO_MAX = 64


def _build_instance(spec: "ExperimentSpec") -> WorkloadInstance:
    """Build — or reuse — the workload instance a spec needs.

    A sweep revisits each (kernel, scale) pair once per machine config,
    and building is expensive: program assembly plus the numpy reference
    computation.  Instances are safe to share because they are immutable
    after ``build``: the simulators never mutate instructions, ``setup``
    copies the captured arrays into a fresh memory image per run, and
    ``check`` compares without modifying its captured expectations (see
    tests/harness/test_engine.py::test_instance_reuse_is_deterministic).

    Eviction is LRU, one entry at a time — a suite sweep that touches
    more than ``_INSTANCE_MEMO_MAX`` (kernel, scale) pairs drops only
    the coldest instance instead of thrashing a full rebuild of the
    working set at the capacity cliff.
    """
    key = (spec.kernel, spec.scale)
    inst = _INSTANCE_MEMO.get(key)
    if inst is not None:
        _INSTANCE_MEMO.move_to_end(key)
        return inst
    while len(_INSTANCE_MEMO) >= _INSTANCE_MEMO_MAX:
        _INSTANCE_MEMO.popitem(last=False)
    inst = get(spec.kernel).build(spec.scale)
    _INSTANCE_MEMO[key] = inst
    return inst


@dataclass
class RunOutcome:
    """Uniform result record across vector, scalar and functional runs."""

    config_name: str
    kernel: str
    cycles: float
    core_ghz: float
    opc: float = 0.0
    fpc: float = 0.0
    mpc: float = 0.0
    other_pc: float = 0.0
    streams_mbytes_per_s: float = 0.0
    raw_mbytes_per_s: float = 0.0
    verified: bool = False
    detail: object = None

    #: discriminator shared with CellFailure (not a dataclass field)
    failed = False

    @property
    def seconds(self) -> float:
        return self.cycles / (self.core_ghz * 1e9)


#: metric names a CellFailure answers with NaN so partial tables render
_NAN_METRICS = frozenset({
    "cycles", "core_ghz", "opc", "fpc", "mpc", "other_pc",
    "streams_mbytes_per_s", "raw_mbytes_per_s", "seconds",
})


@dataclass
class CellFailure:
    """One grid cell that raised instead of completing.

    Carries everything a post-mortem needs — the spec, the formatted
    traceback, and the trap PC when the failure was an
    :class:`ArchitecturalTrap` — while quacking enough like a
    :class:`RunOutcome` (NaN metrics, ``verified=False``) that the
    table/figure renderers can mark the cell and move on instead of
    dying.  ``attempts`` is 2 once the retry also failed (quarantined).
    """

    spec: "ExperimentSpec"
    error_type: str
    message: str
    traceback_text: str
    trap_pc: Optional[int] = None
    attempts: int = 1

    failed = True
    verified = False
    detail = None

    @property
    def kernel(self) -> str:
        return self.spec.kernel

    @property
    def config_name(self) -> str:
        return self.spec.config

    def __getattr__(self, name: str):
        if name in _NAN_METRICS:
            return math.nan
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}")


@dataclass(frozen=True)
class ExperimentSpec:
    """One cell of the evaluation grid, hashable and picklable.

    ``overrides`` replaces :class:`MachineConfig` fields on the named
    base configuration — the only sanctioned way to vary a machine
    parameter (sweeps use it for ``maf_entries``, ``l2_bytes``,
    ``crbox_cycles_per_round``; nothing mutates a processor after
    construction).  ``apply_l2_hint`` controls whether the workload's
    ``l2_bytes_hint`` (DESIGN.md substitution 6) is honored; an explicit
    ``l2_bytes`` override always wins over the hint.
    """

    kernel: str
    config: str = "T"
    scale: float = 1.0
    overrides: tuple = ()
    check: bool = True
    drain_dirty: bool = False
    warm: bool = True
    apply_l2_hint: bool = True
    #: "auto" routes on ``has_vbox`` (timing vs EV8 model);
    #: "functional" runs the functional simulator only (Table 2)
    mode: str = "auto"
    #: ``(site, seed)`` arms a deliberate, unrecovered fault at a seeded
    #: site (see repro.faults) — the cell is *expected* to fail, which
    #: is how tests and chaos drills produce real CellFailures through
    #: the pool path without monkeypatching workers.  Empty = no fault.
    fault: tuple = ()

    def __post_init__(self) -> None:
        if self.config not in CONFIGURATIONS:
            known = ", ".join(sorted(CONFIGURATIONS))
            raise ConfigError(
                f"unknown configuration {self.config!r}; known: {known}")
        if self.mode not in ("auto", "functional"):
            raise ConfigError(f"unknown spec mode {self.mode!r}")
        if self.fault:
            from repro.faults.plan import SITE_TYPES

            fault = tuple(self.fault)
            if len(fault) != 2 or fault[0] not in SITE_TYPES \
                    or not isinstance(fault[1], int):
                raise ConfigError(
                    f"fault must be (site, seed) with site in {SITE_TYPES}, "
                    f"got {self.fault!r}")
            object.__setattr__(self, "fault", fault)
        canon = tuple(sorted((str(k), v) for k, v in self.overrides))
        for name, _ in canon:
            if name not in _CONFIG_FIELDS:
                raise ConfigError(
                    f"override {name!r} is not a MachineConfig field")
        object.__setattr__(self, "overrides", canon)

    def workload(self) -> Workload:
        return get(self.kernel)

    def resolve_config(self,
                       instance: Optional[WorkloadInstance] = None
                       ) -> MachineConfig:
        """The machine this spec runs on, hint and overrides applied.

        Order: base configuration, then the instance's ``l2_bytes_hint``
        (when ``apply_l2_hint``), then explicit overrides — so an
        ``l2_bytes`` override beats the hint.  The hint models the
        paper's footprint/16MB-L2 ratio on the *vector* machine
        (DESIGN.md substitution 6); scalar EV8/EV8+ baselines keep
        their own configured L2.
        """
        cfg = CONFIGURATIONS[self.config]()
        if self.apply_l2_hint and cfg.has_vbox and instance is not None \
                and instance.l2_bytes_hint is not None:
            cfg = replace(cfg, l2_bytes=instance.l2_bytes_hint)
        if self.overrides:
            cfg = replace(cfg, **dict(self.overrides))
        return cfg


# -- canonical execution ---------------------------------------------------


def _run_vector_instance(cfg: MachineConfig, instance: WorkloadInstance,
                         check: bool = True, drain_dirty: bool = False,
                         warm: bool = True) -> RunOutcome:
    """The one timing-simulator loop: setup, warm, step, account, verify.

    ``drain_dirty`` flushes dirty L2 lines through the Zbox at the end
    and counts the drain in both bytes *and* cycles — the steady-state
    accounting the bandwidth microkernels (Table 4) need.  Application
    kernels leave it off: their outputs legitimately stay cached.
    """
    from repro.core.processor import TarantulaProcessor

    proc = TarantulaProcessor(cfg)
    instance.setup(proc.functional.memory)
    if warm:
        for base, nbytes in instance.warm_ranges:
            proc.warm_l2(base, nbytes)
    proc.execute_program(instance.program)
    result = proc.result(instance.name, workload_bytes=instance.workload_bytes)
    if drain_dirty:
        drain_at = result.cycles
        for eviction in proc.l2.tags.flush():
            if eviction.dirty:
                proc.zbox.writeback_line(eviction.addr, drain_at)
        result.cycles = max(result.cycles, proc.zbox.rambus.last_finish())
        result.mem_raw_bytes = proc.zbox.raw_bytes()
        result.mem_useful_bytes = proc.zbox.useful_bytes()
    if check:
        instance.check(proc.functional.memory)
    return RunOutcome(
        config_name=cfg.name, kernel=instance.name, cycles=result.cycles,
        core_ghz=cfg.core_ghz, opc=result.opc, fpc=result.fpc,
        mpc=result.mpc, other_pc=result.other_pc,
        streams_mbytes_per_s=result.streams_mbytes_per_s,
        raw_mbytes_per_s=result.raw_mbytes_per_s,
        verified=check, detail=result)


def _run_scalar_instance(cfg: MachineConfig,
                         instance: WorkloadInstance) -> RunOutcome:
    """Run the scalar loop descriptor on the EV8/EV8+ analytic model."""
    from repro.scalar.ev8 import EV8Model

    result = EV8Model(cfg).run(instance.scalar_loop)
    return RunOutcome(
        config_name=cfg.name, kernel=instance.name, cycles=result.cycles,
        core_ghz=cfg.core_ghz, opc=result.ops_per_cycle,
        fpc=result.flops_per_cycle, detail=result)


def _run_functional_instance(cfg: MachineConfig,
                             instance: WorkloadInstance) -> RunOutcome:
    """Functional-simulator run: operation counts, output verified."""
    counts = run_functional(instance)
    return RunOutcome(
        config_name=cfg.name, kernel=instance.name, cycles=0.0,
        core_ghz=cfg.core_ghz, verified=True, detail=counts)


def run_instance(instance: WorkloadInstance, config="T", *,
                 check: bool = True, drain_dirty: bool = False,
                 warm: bool = True) -> RunOutcome:
    """Run an ad-hoc :class:`WorkloadInstance` (one not in the registry,
    e.g. the FMAC-extension kernels) through the canonical loop.
    Registry kernels should build an :class:`ExperimentSpec` instead so
    they can fan out and cache."""
    cfg = CONFIGURATIONS[config]() if isinstance(config, str) else config
    if cfg.has_vbox:
        return _run_vector_instance(cfg, instance, check=check,
                                    drain_dirty=drain_dirty, warm=warm)
    return _run_scalar_instance(cfg, instance)


def _run_faulted_instance(cfg: MachineConfig, instance: WorkloadInstance,
                          spec: "ExperimentSpec") -> RunOutcome:
    """Run with a deliberate, *unrecovered* fault armed (spec.fault).

    The planned trap escapes to the caller — :func:`execute_captured`
    turns it into a :class:`CellFailure` with the trap PC attached.  A
    fault site that never fires (e.g. the program has no eligible
    instruction) completes normally and returns a real outcome.
    """
    from repro.core.processor import TarantulaProcessor
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan

    site, seed = spec.fault
    proc = TarantulaProcessor(cfg)
    instance.setup(proc.functional.memory)
    plan = FaultPlan(seed, sites=(site,), probe_prefetch=False)
    FaultInjector(proc, instance.program, plan).run(recover=False)
    result = proc.result(instance.name, workload_bytes=instance.workload_bytes)
    return RunOutcome(
        config_name=cfg.name, kernel=instance.name, cycles=result.cycles,
        core_ghz=cfg.core_ghz, opc=result.opc, fpc=result.fpc,
        mpc=result.mpc, other_pc=result.other_pc,
        streams_mbytes_per_s=result.streams_mbytes_per_s,
        raw_mbytes_per_s=result.raw_mbytes_per_s,
        verified=False, detail=result)


def execute(spec: ExperimentSpec,
            _instance: Optional[WorkloadInstance] = None) -> RunOutcome:
    """Run one spec to completion.  The engine's only entry into the
    simulators; everything (runner, sweeps, tables, figures, report)
    funnels through here."""
    instance = _instance if _instance is not None else _build_instance(spec)
    cfg = spec.resolve_config(instance)
    try:
        if spec.fault:
            if spec.mode == "functional" or not cfg.has_vbox:
                raise ConfigError(
                    "fault injection requires the vector timing model")
            return _run_faulted_instance(cfg, instance, spec)
        if spec.mode == "functional":
            return _run_functional_instance(cfg, instance)
        if cfg.has_vbox:
            return _run_vector_instance(cfg, instance, check=spec.check,
                                        drain_dirty=spec.drain_dirty,
                                        warm=spec.warm)
        return _run_scalar_instance(cfg, instance)
    finally:
        STATS.sync_jit()


def execute_captured(spec: ExperimentSpec,
                     _instance: Optional[WorkloadInstance] = None):
    """:func:`execute`, but exceptions become :class:`CellFailure`.

    This is what grid execution maps over: one bad cell must not abort
    the other 47 cells of a figure sweep.
    """
    try:
        return execute(spec, _instance)
    except Exception as err:  # noqa: BLE001 - the cell boundary
        STATS.cell_failures += 1
        trap_pc = err.pc if isinstance(err, ArchitecturalTrap) else None
        return CellFailure(
            spec=spec, error_type=type(err).__name__, message=str(err),
            traceback_text=traceback.format_exc(), trap_pc=trap_pc)


# -- content-addressed result cache ----------------------------------------


def _digest_program(program) -> str:
    """Content digest of an assembled program (operands, masks, order)."""
    h = hashlib.sha256()
    h.update(program.name.encode())
    for instr in program:
        h.update(repr((instr.op, instr.vd, instr.va, instr.vb, instr.rd,
                       instr.ra, instr.rb, instr.imm, instr.disp,
                       instr.masked)).encode())
    return h.hexdigest()


def _digest_scalar_loop(loop) -> str:
    """Content digest of an EV8 loop descriptor (streams included)."""
    blob = json.dumps(dataclasses.asdict(loop), sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


_code_version_cache: Optional[str] = None


def code_version() -> str:
    """Digest of the whole ``repro`` package source — the cache salt.

    Any edit to the simulators, the workloads or the harness invalidates
    every cached result; correctness is worth the occasional cold rerun.
    """
    global _code_version_cache
    if _code_version_cache is None:
        import repro

        root = Path(repro.__file__).parent
        h = hashlib.sha256(CACHE_SCHEMA.encode())
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(path.read_bytes())
        _code_version_cache = h.hexdigest()
    return _code_version_cache


def spec_digest(spec: ExperimentSpec,
                instance: Optional[WorkloadInstance] = None) -> str:
    """Content digest of everything a spec's *result* depends on.

    Digests the program bytes, the scalar-loop descriptor, every
    resolved :class:`MachineConfig` field and the run flags — but NOT
    the package source, so it is stable across refactors that do not
    change what actually runs.  ``tests/data/spec_digests_v1.json``
    pins these values for the original Table 2 suite: a change there
    means cached results were silently invalidated (or worse, that the
    workloads themselves changed).
    """
    if instance is None:
        instance = _build_instance(spec)
    cfg = spec.resolve_config(instance)
    blob = json.dumps({
        "kernel": spec.kernel,
        "scale": spec.scale,
        "check": spec.check,
        "drain_dirty": spec.drain_dirty,
        "warm": spec.warm,
        "mode": spec.mode,
        "fault": list(spec.fault),
        "config": dataclasses.asdict(cfg),
        "program": _digest_program(instance.program),
        "scalar_loop": _digest_scalar_loop(instance.scalar_loop),
        "workload_bytes": instance.workload_bytes,
        "warm_ranges": instance.warm_ranges,
    }, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


def cache_key(spec: ExperimentSpec,
              instance: Optional[WorkloadInstance] = None) -> str:
    """Content address of a spec's result: :func:`spec_digest` salted
    with :func:`code_version` — a change to the spec, the workload, the
    machine config, or any package source yields a different key.
    """
    blob = json.dumps({
        "salt": code_version(),
        "spec": spec_digest(spec, instance),
    }, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """Content-addressed on-disk store of :class:`RunOutcome` pickles.

    Layout: ``<root>/<key[:2]>/<key>.pkl``.  A file that fails to
    unpickle is quarantined to ``<key>.corrupt`` (counted in
    ``corrupt``) so the slot can be re-stored — a truncated pickle must
    not shadow its key forever.  ``hits``/``misses``/``stores`` track
    this cache object's traffic so ``repro report`` can prove a warm
    run re-simulated zero cells.

    Writes are crash-safe: :meth:`put` fsyncs the tmp file before the
    atomic ``os.replace``, and init sweeps ``*.tmp.*`` debris older
    than :data:`STALE_TMP_AGE_S` left by writers killed mid-put (the
    age guard keeps the sweep from racing a live writer in another
    process; ``swept`` counts removals).
    """

    #: tmp files older than this are crashed-writer debris, not live puts
    STALE_TMP_AGE_S = 300.0

    def __init__(self, root: Path | str = CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        self.swept = self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> int:
        cutoff = time.time() - self.STALE_TMP_AGE_S
        swept = 0
        for tmp in self.root.glob("*/*.tmp.*"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
                    swept += 1
            except OSError:
                continue
        return swept

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[RunOutcome]:
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                outcome = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            self.misses += 1
            self._quarantine(path)
            return None
        if not isinstance(outcome, RunOutcome):
            self.misses += 1
            self._quarantine(path)
            return None
        self.hits += 1
        return outcome

    def _quarantine(self, path: Path) -> None:
        """Move an unreadable entry aside; a plain miss (no file) is not
        corruption and FileNotFoundError is an OSError, hence the probe."""
        if not path.exists():
            return
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            return
        self.corrupt += 1
        warnings.warn(f"quarantined corrupt cache entry {path.name}",
                      RuntimeWarning, stacklevel=3)

    def put(self, key: str, outcome: RunOutcome) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "wb") as handle:
            pickle.dump(outcome, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self.stores += 1


# -- grid execution --------------------------------------------------------


def default_jobs() -> int:
    """Worker count for ``--jobs 0`` / the report command: all cores."""
    return max(1, os.cpu_count() or 1)


#: process-wide default fault budget for grid runs; the CLI derives it
#: from ``--pool/--timeout/--deadline`` so table/figure call signatures
#: stay unchanged.  Callers wanting a specific budget pass ``policy=``.
DEFAULT_POLICY = PoolPolicy()


def _make_pool(jobs: int, n_misses: int, policy: PoolPolicy) -> Pool:
    """Pick and build a backend; falls back to serial when the platform
    cannot fork/spawn workers (sandboxes, exotic schedulers).  The
    fallback is audible: a RuntimeWarning plus ``STATS.pool_fallbacks``,
    because a silently serialized 200-cell grid looks like a hang."""
    from concurrent.futures.process import BrokenProcessPool

    want_process = policy.backend == "process" or (
        policy.backend == "auto" and jobs > 1 and n_misses > 1)
    if not want_process:
        return SerialPool()
    try:
        return ProcessPool(min(max(jobs, 1), max(n_misses, 1)))
    except (OSError, PermissionError, BrokenProcessPool) as err:
        STATS.pool_fallbacks += 1
        warnings.warn(
            f"process pool unavailable ({type(err).__name__}: {err}); "
            f"re-running {n_misses} specs serially",
            RuntimeWarning, stacklevel=3)
        return SerialPool()


def execute_many(specs: Iterable[ExperimentSpec], jobs: int = 1,
                 cache: Optional[ResultCache] = None, *,
                 policy: Optional[PoolPolicy] = None,
                 pool: Optional[Pool] = None) -> list:
    """Run a grid of specs; returns outcomes in input order.

    Duplicate specs are simulated once.  With ``jobs > 1`` the misses
    fan out over a :class:`~repro.harness.pool.ProcessPool` (specs and
    outcomes are picklable, results are keyed by submission index, so
    parallel and serial runs produce identical results).  With a
    ``cache``, previously computed cells are loaded instead of
    re-simulated.

    ``policy`` (default: the module's :data:`DEFAULT_POLICY`) sets the
    fault budget — per-cell timeout, grid deadline, retries/backoff and
    straggler speculation; see :class:`~repro.harness.pool.PoolPolicy`.
    ``pool`` injects a prebuilt backend (chaos drills wrap one); its
    lifetime then belongs to the caller and ``jobs`` is ignored.

    A cell that fails becomes a :class:`CellFailure` instead of
    aborting the grid: it is retried within ``policy.retries`` with
    seeded exponential backoff, and when the budget is exhausted it is
    quarantined (``attempts`` = total tries, counted in
    ``STATS.quarantined``).  Timed-out cells degrade into
    ``CellFailure(error_type="Timeout")``; a mid-grid pool break keeps
    completed results and re-runs only unfinished cells serially.
    Failures are never cached — the next run gets a fresh attempt.
    """
    specs = list(specs)
    unique = list(dict.fromkeys(specs))
    policy = policy if policy is not None else DEFAULT_POLICY

    outcomes: dict[ExperimentSpec, object] = {}
    keys: dict[ExperimentSpec, str] = {}
    misses: list[ExperimentSpec] = []
    for spec in unique:
        if cache is not None:
            keys[spec] = cache_key(spec)
            hit = cache.get(keys[spec])
            if hit is not None:
                outcomes[spec] = hit
                continue
        misses.append(spec)

    owned = pool is None
    if owned:
        pool = _make_pool(jobs, len(misses), policy)
    try:
        fresh = run_grid(misses, execute_captured, pool, policy, STATS)
    finally:
        if owned:
            pool.close()
    for spec, outcome in zip(misses, fresh):
        outcomes[spec] = outcome
        if cache is not None and isinstance(outcome, RunOutcome):
            cache.put(keys[spec], outcome)
    return [outcomes[spec] for spec in specs]
