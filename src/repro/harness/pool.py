"""Pluggable, fault-tolerant grid-execution backends.

:func:`repro.harness.engine.execute_many` used to be a blocking
``pool.map``: one hung cell stalled the whole grid forever, and a
worker death discarded every completed result.  This module lifts
fan-out behind a small :class:`Pool` interface plus one futures-based
scheduler, :func:`run_grid`, that owns the fault budget:

* **per-cell timeouts** — an attempt that exceeds ``policy.timeout``
  wall-clock seconds is abandoned (the worker becomes a *zombie*; when
  zombies saturate the pool it is respawned) and the cell retried;
* **bounded retries with seeded backoff** — a failed or timed-out cell
  is retried up to ``policy.retries`` times, spaced by deterministic
  exponential backoff plus seeded jitter (:func:`backoff_delay`);
* **straggler speculation** — a cell running longer than ``k×`` the
  median of completed cells gets a speculative duplicate submission;
  the first result wins and the loser is ignored;
* **grid deadline** — when ``policy.deadline`` expires, every
  unresolved cell degrades into a ``CellFailure(error_type="Timeout")``
  instead of hanging the caller;
* **preserve-on-break** — when the process pool breaks mid-grid
  (killed worker, broken pipe), completed results are kept and only the
  unfinished cells fall back to serial execution.

Backends: :class:`SerialPool` (in-process, the determinism reference)
and :class:`ProcessPool` (``concurrent.futures`` worker processes).
``repro.faults.chaos_pool.ChaosPool`` wraps either to inject
orchestration faults.  The cell function is pure and deterministic, so
every scheduling order produces byte-identical results — the
cross-pool differential tests in ``tests/harness/test_pool.py`` keep
it that way.  See docs/HARNESS.md for the model.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import statistics
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence

__all__ = [
    "Pool",
    "PoolPolicy",
    "ProcessPool",
    "SerialPool",
    "backoff_delay",
    "run_grid",
]

#: exceptions that mean "the backend itself died", not "the cell failed"
POOL_BREAK_ERRORS = (
    BrokenProcessPool,
    concurrent.futures.CancelledError,
    OSError,
    PermissionError,
    RuntimeError,
)


@dataclass(frozen=True)
class PoolPolicy:
    """The fault budget one grid run executes under.

    ``backend="auto"`` picks :class:`ProcessPool` when ``jobs > 1`` and
    more than one cell misses the cache, else :class:`SerialPool`;
    ``"serial"``/``"process"`` force the choice.  ``timeout`` and the
    straggler knobs only apply on process backends (a serial cell
    cannot be interrupted); ``deadline`` and the retry budget apply
    everywhere.  Backoff is deterministic in ``backoff_seed`` so a
    chaos run is reproducible from its command line.
    """

    backend: str = "auto"
    #: per-cell wall-clock seconds; None = wait forever
    timeout: Optional[float] = None
    #: whole-grid wall-clock seconds; None = no deadline
    deadline: Optional[float] = None
    #: bounded retry budget per cell (total attempts = retries + 1)
    retries: int = 1
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    backoff_seed: int = 0
    #: speculate when a cell exceeds this multiple of the running median
    straggler_factor: float = 4.0
    #: ... but only once this many cells have completed
    straggler_min_done: int = 3
    #: ... and the cell has been running at least this long
    straggler_min_runtime: float = 2.0
    #: scheduler poll interval, seconds
    tick: float = 0.05

    def __post_init__(self) -> None:
        if self.backend not in ("auto", "serial", "process"):
            raise ValueError(f"unknown pool backend {self.backend!r}; "
                             "known: auto, serial, process")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(
                f"timeout must be positive (got {self.timeout!r}); "
                "use None for no per-cell budget")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(
                f"deadline must be positive (got {self.deadline!r}); "
                "use None for no grid budget")
        if self.retries < 0:
            raise ValueError(
                f"retries must be >= 0 (got {self.retries!r}); "
                "0 means a single attempt per cell")
        if self.tick <= 0:
            raise ValueError(f"tick must be positive (got {self.tick!r})")


def backoff_delay(policy: PoolPolicy, cell: int, attempt: int) -> float:
    """Seconds to wait before retrying ``cell`` after attempt ``attempt``.

    Exponential in the attempt number, capped, and jittered by a factor
    in ``[0.5, 1.5)`` derived from ``(backoff_seed, cell, attempt)`` —
    fully deterministic, so chaos oracles can assert the exact schedule.
    """
    base = min(policy.backoff_cap,
               policy.backoff_base * policy.backoff_factor ** max(0, attempt - 1))
    token = f"{policy.backoff_seed}|{cell}|{attempt}".encode()
    word = int.from_bytes(hashlib.sha256(token).digest()[:8], "big")
    return base * (0.5 + word / 2 ** 64)


class Pool:
    """Minimal executor surface the grid scheduler drives.

    ``submit(fn, *args)`` returns a ``concurrent.futures.Future``;
    ``respawn()`` replaces a backend whose workers are wedged;
    ``mark_dirty()`` records that a future was abandoned (or the
    backend broke) so ``close()`` knows a graceful shutdown would hang
    — long-lived owners like the serve layer read ``dirty`` to decide
    when a pool must be replaced between grids.
    """

    kind = "base"
    workers = 1
    dirty = False

    def submit(self, fn: Callable, *args) -> Future:
        raise NotImplementedError

    def respawn(self) -> None:
        pass

    def mark_dirty(self) -> None:
        self.dirty = True

    def close(self) -> None:
        pass


class SerialPool(Pool):
    """In-process execution: ``submit`` runs the cell synchronously.

    The determinism reference every other backend is differentially
    tested against.  Timeouts and speculation do not apply (a running
    cell cannot be interrupted from the same thread); deadlines and the
    retry budget do.
    """

    kind = "serial"
    workers = 1

    def submit(self, fn: Callable, *args) -> Future:
        fut: Future = Future()
        try:
            fut.set_result(fn(*args))
        except BaseException as err:  # noqa: BLE001 - mirrored to the future
            fut.set_exception(err)
        return fut


class ProcessPool(Pool):
    """``ProcessPoolExecutor``-backed pool with hard-kill semantics.

    ``respawn()`` replaces the executor wholesale — the only way to
    reclaim capacity from hung workers, since a running task cannot be
    cancelled — and terminates the old workers so an abandoned
    ``sleep(inf)`` cell cannot block interpreter exit.  ``close()``
    shuts down gracefully unless an attempt was abandoned mid-run.
    """

    kind = "process"

    def __init__(self, jobs: int) -> None:
        self.workers = max(1, jobs)
        self.dirty = False
        self._executor = self._spawn()

    def _spawn(self):
        # attribute access (not from-import) so tests can monkeypatch
        # concurrent.futures.ProcessPoolExecutor
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.workers)

    def submit(self, fn: Callable, *args) -> Future:
        return self._executor.submit(fn, *args)

    def mark_dirty(self) -> None:
        self.dirty = True

    def respawn(self) -> None:
        self.dirty = True
        self._hard_shutdown(self._executor)
        self._executor = self._spawn()

    def close(self) -> None:
        if self.dirty:
            self._hard_shutdown(self._executor)
        else:
            self._executor.shutdown(wait=True)

    @staticmethod
    def _hard_shutdown(executor) -> None:
        """Cancel what never started, terminate what never finishes."""
        try:
            procs = list(executor._processes.values())
        except Exception:  # noqa: BLE001 - private API, best effort
            procs = []
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:  # noqa: BLE001
            pass
        for proc in procs:
            try:
                if proc.is_alive():
                    proc.terminate()
            except Exception:  # noqa: BLE001
                pass


# -- the grid scheduler ----------------------------------------------------


def _timeout_failure(item, attempts: int, message: str):
    from repro.harness.engine import CellFailure

    return CellFailure(spec=item, error_type="Timeout", message=message,
                       traceback_text="", attempts=max(attempts, 1))


def _interrupt_failure(item, attempts: int = 0):
    from repro.harness.engine import CellFailure

    return CellFailure(
        spec=item, error_type="Interrupted",
        message="grid abandoned by KeyboardInterrupt (Ctrl-C)",
        traceback_text="", attempts=max(attempts, 1))


def _stamp_attempts(result, attempts: int):
    import dataclasses

    try:
        return dataclasses.replace(result, attempts=attempts)
    except TypeError:
        return result


def run_grid(items: Sequence, fn: Callable, pool: Pool,
             policy: PoolPolicy, stats) -> list:
    """Run ``fn`` over ``items`` through ``pool`` under ``policy``.

    Returns results aligned with ``items``.  ``fn`` must be pure per
    item and signal cell failure by *returning* an object whose
    ``failed`` attribute is true (``execute_captured`` / CellFailure);
    an exception escaping a future is read as backend death, not cell
    failure.  ``stats`` is an :class:`~repro.harness.engine.EngineStats`
    (or any object with its counter attributes).

    A ``KeyboardInterrupt`` mid-grid is routed through the
    preserve-on-break machinery instead of escaping: completed cells
    are kept, every unresolved cell degrades into a
    ``CellFailure(error_type="Interrupted")`` (counted in
    ``stats.interrupted``), and later grids of the same command
    short-circuit — so a Ctrl-C'd report still renders its completed
    cells with FAIL rows for the rest, and the CLI exits 130.
    """
    items = list(items)
    if not items:
        return []
    if getattr(stats, "interrupted", 0):
        # a previous grid of this command was Ctrl-C'd: start no new
        # work, degrade every cell so partial reports still render
        stats.interrupted += len(items)
        return [_interrupt_failure(item) for item in items]
    if pool.kind == "serial":
        return _run_serial_grid(items, fn, pool, policy, stats)
    return _run_process_grid(items, fn, pool, policy, stats)


def _run_serial_grid(items, fn, pool, policy, stats) -> list:
    start = time.monotonic()
    out = []
    for pos, item in enumerate(items):
        if policy.deadline is not None \
                and time.monotonic() - start > policy.deadline:
            stats.timeouts += 1
            out.append(_timeout_failure(
                item, 0, f"grid deadline of {policy.deadline:g}s exceeded "
                "before the cell started"))
            continue
        try:
            result = pool.submit(fn, item).result()
            attempts = 1
            while getattr(result, "failed", False) \
                    and attempts <= policy.retries:
                stats.retries += 1
                attempts += 1
                result = pool.submit(fn, item).result()
        except KeyboardInterrupt:
            remaining = items[pos:]
            stats.interrupted += len(remaining)
            out.extend(_interrupt_failure(it) for it in remaining)
            return out
        if getattr(result, "failed", False):
            stats.quarantined += 1
            result = _stamp_attempts(result, attempts)
        out.append(result)
    return out


def _run_process_grid(items, fn, pool, policy, stats) -> list:
    n = len(items)
    results: dict[int, object] = {}
    attempts = dict.fromkeys(range(n), 0)
    last_failure: dict[int, object] = {}
    running: dict[Future, tuple[int, float, bool]] = {}
    outstanding = dict.fromkeys(range(n), 0)   # live futures per cell
    #: cells not yet submitted — in-flight work is throttled to the
    #: worker count so a cell's timeout clock measures execution, not
    #: time spent queued behind other cells
    pending: list[tuple[int, bool]] = [(i, False) for i in range(n)]
    retry_at: dict[int, float] = {}
    speculated: set[int] = set()
    durations: list[float] = []
    zombies = 0
    broken = False
    start = time.monotonic()

    def submit(index: int, speculative: bool = False) -> None:
        if not speculative:
            attempts[index] += 1
        fut = pool.submit(fn, items[index])
        running[fut] = (index, time.monotonic(), speculative)
        outstanding[index] += 1

    def fill_slots() -> bool:
        while pending and len(running) < pool.workers:
            index, speculative = pending.pop(0)
            if index in results:
                continue
            try:
                submit(index, speculative=speculative)
            except POOL_BREAK_ERRORS:
                return True
        return False

    def attempt_failed(index: int, failure) -> None:
        """One attempt is lost: spend a retry or finalize the cell."""
        last_failure[index] = failure
        if index in retry_at:
            return                      # a retry is already scheduled
        if attempts[index] <= policy.retries:
            stats.retries += 1
            retry_at[index] = time.monotonic() + backoff_delay(
                policy, index, attempts[index])
        else:
            stats.quarantined += 1
            results[index] = _stamp_attempts(failure, attempts[index])

    interrupted = False
    try:
        while not broken and len(results) < n:
            now = time.monotonic()

            if policy.deadline is not None and now - start > policy.deadline:
                for i in range(n):
                    if i not in results:
                        stats.timeouts += 1
                        results[i] = _timeout_failure(
                            items[i], attempts[i],
                            f"grid deadline of {policy.deadline:g}s exceeded")
                pool.mark_dirty()
                break

            for i, due in sorted(retry_at.items()):
                if due <= now and i not in results:
                    del retry_at[i]
                    pending.append((i, False))
            broken = fill_slots()
            if broken:
                break

            if not running:
                if retry_at:
                    time.sleep(max(0.0, min(
                        policy.tick, min(retry_at.values()) - now)))
                    continue
                break                       # defensive: nothing left to wait on

            done, _ = wait(list(running), timeout=policy.tick,
                           return_when=FIRST_COMPLETED)
            now = time.monotonic()
            for fut in done:
                index, started, speculative = running.pop(fut)
                outstanding[index] -= 1
                if index in results:
                    continue                # speculative loser or stale attempt
                try:
                    err = fut.exception()
                except concurrent.futures.CancelledError:
                    err = concurrent.futures.CancelledError()
                if err is not None:
                    broken = True
                    break
                result = fut.result()
                if getattr(result, "failed", False):
                    attempt_failed(index, result)
                else:
                    durations.append(now - started)
                    if speculative:
                        stats.speculative_wins += 1
                    results[index] = result
                    retry_at.pop(index, None)
            if broken:
                break

            now = time.monotonic()
            if policy.timeout is not None:
                overdue = [(fut, meta) for fut, meta in running.items()
                           if now - meta[1] > policy.timeout]
                for fut, (index, _started, _spec) in overdue:
                    running.pop(fut)
                    outstanding[index] -= 1
                    zombies += 1
                    pool.mark_dirty()
                    if index in results:
                        continue
                    stats.timeouts += 1
                    if outstanding[index] > 0:
                        continue            # a twin attempt is still alive
                    attempt_failed(index, _timeout_failure(
                        items[index], attempts[index],
                        f"cell exceeded the {policy.timeout:g}s "
                        "wall-clock timeout"))
                if zombies >= pool.workers:
                    # every worker is wedged on an abandoned attempt:
                    # replace the backend and re-home the survivors
                    survivors = list(running.values())
                    running.clear()
                    try:
                        pool.respawn()
                        zombies = 0
                        for index, _started, speculative in survivors:
                            outstanding[index] -= 1
                            if index not in results:
                                attempts[index] -= 0 if speculative else 1
                                submit(index, speculative=speculative)
                    except POOL_BREAK_ERRORS:
                        broken = True
            if broken:
                break

            if policy.straggler_factor > 0 \
                    and len(durations) >= policy.straggler_min_done:
                threshold = max(
                    policy.straggler_factor * statistics.median(durations),
                    policy.straggler_min_runtime)
                for _fut, (index, started, speculative) in list(running.items()):
                    if speculative or index in results or index in speculated:
                        continue
                    if now - started > threshold:
                        speculated.add(index)
                        stats.stragglers += 1
                        try:
                            submit(index, speculative=True)
                        except POOL_BREAK_ERRORS:
                            broken = True
                            break
    except KeyboardInterrupt:
        # Ctrl-C: keep completed cells, degrade the rest and let
        # the CLI exit 130 — never restart work the user aborted
        interrupted = True
        pool.mark_dirty()

    if interrupted:
        for i in range(n):
            if i not in results:
                stats.interrupted += 1
                results[i] = _interrupt_failure(items[i], attempts[i])

    if broken and len(results) < n:
        pool.mark_dirty()
        preserved = len(results)
        stats.preserved_on_break += preserved
        remaining = [i for i in range(n) if i not in results]
        warnings.warn(
            f"process pool broke mid-grid; keeping {preserved} completed "
            f"cell(s) and re-running {len(remaining)} unfinished cell(s) "
            "serially", RuntimeWarning, stacklevel=3)
        left = None
        if policy.deadline is not None:
            left = max(0.0, policy.deadline - (time.monotonic() - start))
        serial = _run_serial_grid(
            [items[i] for i in remaining], fn, SerialPool(),
            replace(policy, deadline=left), stats)
        for i, result in zip(remaining, serial):
            results[i] = result

    if running:
        # abandoned attempts (speculative losers, late zombies) are
        # still executing; a graceful close would block on them
        pool.mark_dirty()

    for i in range(n):                  # defensive: never return a hole
        if i not in results:
            stats.timeouts += 1
            results[i] = _timeout_failure(
                items[i], attempts[i], "scheduler stalled before the cell "
                "resolved")
    return [results[i] for i in range(n)]
