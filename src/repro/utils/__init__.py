"""Small shared helpers: bit manipulation and statistics containers."""

from repro.utils.bitops import (
    bank_of_address,
    cache_index,
    cache_tag,
    ceil_div,
    is_power_of_two,
    line_address,
    log2_exact,
    odd_factor,
    sign_extend,
    to_u64,
)
from repro.utils.stats import Counter, RunningStats

__all__ = [
    "bank_of_address",
    "cache_index",
    "cache_tag",
    "ceil_div",
    "is_power_of_two",
    "line_address",
    "log2_exact",
    "odd_factor",
    "sign_extend",
    "to_u64",
    "Counter",
    "RunningStats",
]
