"""Lightweight statistics containers used by the timing models.

The simulator components each own a :class:`Counter` bag; the harness
merges them into per-run metric dictionaries.  ``RunningStats`` keeps
mean/min/max without storing samples (used for queue occupancies).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator


class Counter:
    """A named bag of monotonically increasing integer counters."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = defaultdict(int)

    def add(self, name: str, amount: int = 1) -> None:
        """Increment ``name`` by ``amount`` (may be any non-negative int)."""
        if amount == 1:
            # Fast path: the overwhelmingly common unit increment skips
            # the sign check (hot — called once or more per simulated
            # instruction).
            self._counts[name] += 1
            return
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self._counts[name] += amount

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never incremented)."""
        return self._counts.get(name, 0)

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def __iter__(self) -> Iterator[str]:
        return iter(self._counts)

    def as_dict(self) -> dict[str, int]:
        """Snapshot of all counters."""
        return dict(self._counts)

    def merge(self, other: "Counter", prefix: str = "") -> None:
        """Fold ``other``'s counts into this bag, optionally prefixed."""
        for name, value in other._counts.items():
            self._counts[prefix + name] += value

    def reset(self) -> None:
        self._counts.clear()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"Counter({inner})"


class RunningStats:
    """Streaming mean/min/max over observed samples."""

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observed samples (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def __repr__(self) -> str:
        if self.count == 0:
            return "RunningStats(empty)"
        return (
            f"RunningStats(n={self.count}, mean={self.mean:.3f}, "
            f"min={self.minimum:.3f}, max={self.maximum:.3f})"
        )
