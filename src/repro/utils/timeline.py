"""Resource timelines: the scheduling primitive of the timing models.

The simulators use *resource reservation* rather than a cycle-by-cycle
loop: each hardware resource (an issue port, an address generator, an L2
slice slot, a RAMBUS port) is a :class:`ResourceTimeline` that remembers
when it is next free.  An instruction's start time is the max of its
operands' ready times and its resources' free times; reserving a
resource advances its free time by the occupancy.  This gives the same
steady-state throughput and latency as a cycle loop for in-order
resources, at a tiny fraction of the cost — the key to running the
paper's benchmark suite in pure Python.

``MultiPortTimeline`` models N interchangeable ports (e.g. the eight
RAMBUS ports): a reservation picks the earliest-free port.
"""

from __future__ import annotations

import bisect
import heapq


class ResourceTimeline:
    """A single in-order resource with a next-free cycle."""

    def __init__(self, name: str = "resource") -> None:
        self.name = name
        self.next_free = 0.0
        self.busy_cycles = 0.0

    def reserve(self, earliest: float, occupancy: float) -> float:
        """Reserve for ``occupancy`` cycles no earlier than ``earliest``.

        Returns the cycle at which the reservation actually starts.
        """
        if occupancy < 0:
            raise ValueError(f"occupancy must be >= 0, got {occupancy}")
        start = self.next_free
        if earliest > start:
            start = earliest
        self.next_free = start + occupancy
        self.busy_cycles += occupancy
        return start

    def peek(self, earliest: float) -> float:
        """Start time a reservation would get, without reserving."""
        return max(earliest, self.next_free)

    def utilization(self, total_cycles: float) -> float:
        """Fraction of ``total_cycles`` this resource was busy."""
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / total_cycles)


class CalendarTimeline:
    """A resource that can *backfill*: reservations take the earliest
    free gap at or after the requested time, regardless of the order in
    which reservations arrive.

    This models pipelined structures whose slots are claimed by
    out-of-order events — the L2 slice port (retry walks arrive long
    after younger first walks) and the PUMP streaming buses (hit data
    must not queue behind a miss's much-later stream).  Busy intervals
    are kept sorted; intervals far behind the advancing query watermark
    are pruned, so memory and insert cost stay bounded by the active
    window rather than the whole run.
    """

    #: intervals ending this far before the oldest plausible query are dropped
    PRUNE_SLACK = 100000.0

    def __init__(self, name: str = "calendar") -> None:
        self.name = name
        self._busy: list[tuple[float, float]] = []  # sorted (start, end)
        self.busy_cycles = 0.0
        self._watermark = 0.0

    def _prune(self) -> None:
        cutoff = self._watermark - self.PRUNE_SLACK
        drop = 0
        for start, end in self._busy:
            if end >= cutoff:
                break
            drop += 1
        if drop:
            del self._busy[:drop]

    def reserve(self, earliest: float, occupancy: float) -> float:
        """Claim the earliest gap of ``occupancy`` cycles at/after
        ``earliest``; returns the start time."""
        if occupancy < 0:
            raise ValueError(f"occupancy must be >= 0, got {occupancy}")
        if earliest > self._watermark:
            self._watermark = earliest
            if len(self._busy) > 4096:
                self._prune()
        self.busy_cycles += occupancy
        if occupancy == 0:
            return earliest
        busy = self._busy
        if not busy:
            busy.append((earliest, earliest + occupancy))
            return earliest
        last = busy[-1]
        if earliest >= last[1]:
            # starts after every existing interval: append (coalescing
            # with the last interval when exactly touching) — the common
            # case for an advancing clock, no bisect/backfill needed
            if earliest == last[1]:
                busy[-1] = (last[0], earliest + occupancy)
            else:
                busy.append((earliest, earliest + occupancy))
            return earliest
        idx = bisect.bisect_right(busy, (earliest, float("inf"))) - 1
        # candidate start: after the interval covering/preceding `earliest`
        start = earliest
        if idx >= 0:
            start = max(earliest, busy[idx][1])
        pos = idx + 1
        n = len(busy)
        while pos < n and busy[pos][0] - start < occupancy:
            start = max(start, busy[pos][1])
            pos += 1
        end = start + occupancy
        # Intervals are kept strictly separated (touching neighbors are
        # merged on the spot), so the new reservation can touch at most
        # one neighbor on each side: the left one exactly when the gap
        # search advanced `start` onto its end, the right one exactly
        # when the loop stopped on ``busy[pos][0] == end``.  Extending a
        # neighbor tuple in place avoids the O(n) ``insert``/``del``
        # shuffle of the old insert-then-coalesce dance — the hot case
        # for the heavily backfilled L2/addr-gen ports.
        touch_left = pos > 0 and busy[pos - 1][1] >= start
        touch_right = pos < n and busy[pos][0] <= end
        if touch_left:
            if touch_right:
                busy[pos - 1] = (busy[pos - 1][0], busy[pos][1])
                del busy[pos]
            else:
                busy[pos - 1] = (busy[pos - 1][0], end)
        elif touch_right:
            busy[pos] = (start, busy[pos][1])
        else:
            busy.insert(pos, (start, end))
        return start

    def peek(self, earliest: float) -> float:
        """Start a 1-cycle reservation would get, without reserving."""
        idx = bisect.bisect_right(self._busy, (earliest, float("inf"))) - 1
        start = earliest
        if idx >= 0:
            start = max(earliest, self._busy[idx][1])
        pos = idx + 1
        while pos < len(self._busy) and self._busy[pos][0] - start < 1.0:
            start = max(start, self._busy[pos][1])
            pos += 1
        return start

    def utilization(self, total_cycles: float) -> float:
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / total_cycles)


class MultiPortTimeline:
    """N interchangeable in-order ports; reservations take the earliest."""

    def __init__(self, ports: int, name: str = "ports") -> None:
        if ports < 1:
            raise ValueError(f"need at least one port, got {ports}")
        self.name = name
        self.ports = ports
        self._free: list[float] = [0.0] * ports
        heapq.heapify(self._free)
        self.busy_cycles = 0.0

    def reserve(self, earliest: float, occupancy: float) -> float:
        """Reserve one port; returns the start cycle."""
        if occupancy < 0:
            raise ValueError(f"occupancy must be >= 0, got {occupancy}")
        free = heapq.heappop(self._free)
        start = max(earliest, free)
        heapq.heappush(self._free, start + occupancy)
        self.busy_cycles += occupancy
        return start

    def peek(self, earliest: float) -> float:
        return max(earliest, self._free[0])

    @property
    def next_free(self) -> float:
        """Earliest cycle at which any port is free."""
        return self._free[0]

    def utilization(self, total_cycles: float) -> float:
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / (total_cycles * self.ports))
