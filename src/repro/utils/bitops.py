"""Bit-level helpers used across the ISA and memory-system models.

All addresses in the simulator are byte addresses held in Python ints (or
numpy uint64 arrays in the vectorized paths).  The L2 bank of an address
is taken from bits <9:6> exactly as in the paper (section 3.4): 64-byte
lines select bits <5:0>, and the 16 banks are selected by the next four
bits.
"""

from __future__ import annotations

import numpy as np

U64_MASK = (1 << 64) - 1


def to_u64(value: int) -> int:
    """Wrap a Python int to unsigned 64-bit, mirroring register width."""
    return value & U64_MASK


def sign_extend(value: int, bits: int = 64) -> int:
    """Interpret the low ``bits`` of ``value`` as a two's-complement int."""
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division; the paper's ⌈vl/16⌉ port-busy time."""
    if b <= 0:
        raise ValueError(f"ceil_div divisor must be positive, got {b}")
    return -(-a // b)


def is_power_of_two(n: int) -> bool:
    """True for 1, 2, 4, 8, ...; False for 0 and negatives."""
    return n > 0 and (n & (n - 1)) == 0


def log2_exact(n: int) -> int:
    """log2 of an exact power of two; raises otherwise."""
    if not is_power_of_two(n):
        raise ValueError(f"{n} is not a power of two")
    return n.bit_length() - 1


def odd_factor(n: int) -> tuple[int, int]:
    """Decompose ``n`` = sigma * 2**s with sigma odd; returns (sigma, s).

    This is the stride decomposition of section 3.4: strides with s <= 4
    (in bytes, s <= 7 counting the 8-byte element) admit the conflict-free
    reordering; larger powers of two are "self-conflicting".  ``n`` must
    be a nonzero integer; negative strides decompose their magnitude and
    keep the sign on sigma.
    """
    if n == 0:
        raise ValueError("stride 0 has no odd/power-of-two decomposition")
    sign = -1 if n < 0 else 1
    n = abs(n)
    s = (n & -n).bit_length() - 1
    return sign * (n >> s), s


def line_address(addr: int, line_bytes: int = 64) -> int:
    """Align ``addr`` down to its cache-line base."""
    return addr & ~(line_bytes - 1)


def bank_of_address(addr, n_banks: int = 16, line_bytes: int = 64):
    """L2 bank index of a byte address: bits <9:6> for the default geometry.

    Accepts ints or numpy arrays (returns the matching type).
    """
    shift = log2_exact(line_bytes)
    if isinstance(addr, np.ndarray):
        return (addr >> np.uint64(shift)) & np.uint64(n_banks - 1)
    return (addr >> shift) & (n_banks - 1)


def cache_index(addr: int, n_sets: int, line_bytes: int = 64) -> int:
    """Set index of an address in a cache with ``n_sets`` sets."""
    return (addr >> log2_exact(line_bytes)) & (n_sets - 1)


def cache_tag(addr: int, n_sets: int, line_bytes: int = 64) -> int:
    """Tag of an address in a cache with ``n_sets`` sets."""
    return addr >> (log2_exact(line_bytes) + log2_exact(n_sets))
