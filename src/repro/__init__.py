"""Tarantula: a vector extension to the Alpha architecture (ISCA 2002).

A from-scratch reproduction of the paper's full system: the vector ISA
extension, a functional simulator, a cycle-level timing model (16-lane
Vbox, banked L2 with conflict-free address reordering, CR box, PUMP,
MAF, RAMBUS memory controller), an EV8-like superscalar baseline, the
benchmark suite, and a harness that regenerates every table and figure
of the paper's evaluation section.

Quick start::

    from repro import KernelBuilder, FunctionalSimulator

    kb = KernelBuilder("triad")
    kb.setvl(128)
    kb.setvs(8)
    kb.lda(1, 0x100000)            # A
    kb.lda(2, 0x200000)            # B
    kb.lda(3, 0x300000)            # C
    kb.vloadq(0, rb=1)             # v0 <- A
    kb.vloadq(1, rb=2)             # v1 <- B
    kb.vsmult(2, 1, imm=3.0)       # v2 <- 3.0 * B
    kb.vvaddt(3, 0, 2)             # v3 <- A + 3.0*B
    kb.vstoreq(3, rb=3)            # C <- v3

    sim = FunctionalSimulator()
    sim.memory.write_f64(0x100000, [1.0] * 128)
    sim.memory.write_f64(0x200000, [2.0] * 128)
    sim.run(kb.build())
    print(sim.memory.read_f64(0x300000, 4))   # [7. 7. 7. 7.]
"""

from repro.core.functional import FunctionalSimulator, OperationCounts
from repro.isa import (
    ArchState,
    Instruction,
    KernelBuilder,
    MVL,
    Program,
    assemble,
    execute,
)
from repro.mem.memory import MainMemory

__version__ = "1.0.0"

__all__ = [
    "ArchState",
    "FunctionalSimulator",
    "Instruction",
    "KernelBuilder",
    "MVL",
    "MainMemory",
    "OperationCounts",
    "Program",
    "assemble",
    "execute",
    "__version__",
]
