"""Regenerate docs/ISA.md from the live instruction table.

Usage: python docs/generate_isa_md.py
"""

from pathlib import Path

from repro.isa.instructions import INSTRUCTION_SET, Group

HEADER = '''# Tarantula ISA reference

Generated from `repro.isa.instructions.INSTRUCTION_SET` (regenerate with
`python docs/generate_isa_md.py`), so this manual cannot drift from the
simulator.

## Architectural state (section 2 of the paper)

| state | width | notes |
|---|---|---|
| `v0..v31` | 128 x 64 bits each | `v31` hardwired to zero; loads targeting it are prefetches |
| `vl` | 8 bits | vector length, 0..128 |
| `vs` | 64 bits | signed byte stride for SM-group accesses |
| `vm` | 128 bits | vector mask; `setvm` installs the low bit of each element of a vector register |
| `r0..r31` | 64 bits each | EV8-side scalar registers, `r31` = 0 |

Any vector instruction may carry the `/m` qualifier (builder:
`masked=True`): inactive elements (beyond `vl`, or with `vm` clear)
leave the destination bit-exactly unchanged; masked stores/scatters
skip memory.

Assembler syntax is Alpha-style: sources first, destination last,
`#` immediates, `disp(rN)` memory operands, `;` comments.

Entries marked **ext** are documented extensions beyond the paper's
instruction list (see DESIGN.md 4b): `viota`/`vsumq`/`vsumt` (needed by
the paper's own benchmarks) and the section-5 FMAC pair.
'''

GROUP_NOTES = {
    Group.VV: "Vector-vector operate: `op va, vb, vc`.",
    Group.VS: "Vector-scalar operate: `op va, (#imm|rN), vc`; the scalar "
              "crosses the narrow core-Vbox interface.",
    Group.SM: "Strided memory: addresses `rb + disp + i*vs`; stride 8 "
              "takes the PUMP, reorderable strides the ROM schedule, "
              "self-conflicting strides the CR box.",
    Group.RM: "Random memory: per-element byte offsets from a vector "
              "register, packed into slices by the CR box.",
    Group.VC: "Vector control: lengths, strides, masks, element moves, "
              "reductions.",
    Group.SC: "Scalar (EV8 core) instructions the kernels need, "
              "including the DrainM coherency barrier.",
}

FOOTER = """
## Encoding

32-bit words, major opcode 0x1A (see `repro.isa.encodings` for the
format diagrams).  The encoding covers register forms, 5-bit literals
and 8-byte-multiple displacements in [-512, 504]; anything else (float
immediates, large displacements) must be materialized through registers,
as a real compiler would.  `encode`/`decode` round trips are
property-tested, and `python -m repro lint` round-trips every kernel
through both the encoding and the assembler (see docs/ANALYSIS.md,
which also documents the static dataflow checks over this ISA's
`vl`/`vs`/`vm` control state).
"""


def render() -> str:
    lines = [HEADER]
    order = [Group.VV, Group.VS, Group.SM, Group.RM, Group.VC, Group.SC]
    for group in order:
        rows = sorted((n, d) for n, d in INSTRUCTION_SET.items()
                      if d.group is group)
        lines.append(f"\n## {group.name} — {group.value} "
                     f"({len(rows)} mnemonics)\n")
        lines.append(GROUP_NOTES[group] + "\n")
        lines.append("| mnemonic | operands | flops/elem | timing "
                     "| description |")
        lines.append("|---|---|---|---|---|")
        for name, d in rows:
            ops = ", ".join(d.fields)
            tag = " **ext**" if d.extension else ""
            lines.append(f"| `{name}`{tag} | {ops} | {d.flops} | "
                         f"{d.timing.value} | {d.description} |")
    lines.append(FOOTER)
    return "\n".join(lines)


if __name__ == "__main__":
    target = Path(__file__).with_name("ISA.md")
    target.write_text(render())
    print(f"wrote {target}")
