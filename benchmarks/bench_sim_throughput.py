#!/usr/bin/env python
"""Standalone wrapper for the simulator-throughput benchmark.

Equivalent to ``python -m repro bench``; exists so the benchmark can be
run from a checkout without installing the package::

    python benchmarks/bench_sim_throughput.py [--quick]
        [--out FILE] [--check-against BASELINE]

Writes ``BENCH_sim_throughput.json`` (instructions/sec and wall-clock
per registered workload, cold and warm) and, with ``--check-against``,
exits 1 when the total warm wall-clock regresses more than 20% against
the given baseline.  See docs/PERF.md.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.harness.bench import DEFAULT_OUTPUT, main  # noqa: E402


def parse_args(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized problem scale")
    parser.add_argument("--out", default=DEFAULT_OUTPUT, metavar="FILE",
                        help="output JSON path ('-' skips writing)")
    parser.add_argument("--check-against", default=None, metavar="FILE",
                        help="baseline JSON to gate against")
    parser.add_argument("--kernel", action="append", default=None,
                        metavar="NAME", help="restrict to one kernel")
    return parser.parse_args(argv)


if __name__ == "__main__":
    args = parse_args()
    out = None if args.out == "-" else args.out
    sys.exit(main(quick=args.quick, output=out,
                  check_against=args.check_against, kernels=args.kernel))
