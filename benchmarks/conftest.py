"""Benchmark harness configuration.

Each ``bench_*`` module regenerates one table or figure of the paper.
Benchmarks run the full simulation once per measurement (rounds=1): the
quantity of interest is the *regenerated result*, which each benchmark
prints and attaches to ``benchmark.extra_info`` so the JSON artifact
carries the paper-vs-measured comparison.
"""

import pytest


def run_once(benchmark, fn):
    """Measure one full execution of ``fn`` and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
