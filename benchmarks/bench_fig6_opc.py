"""Figure 6 — sustained operations per cycle (FPC + MPC + Other)."""

from conftest import run_once

from repro.harness.engine import default_jobs
from repro.harness.figures import figure6
from repro.harness.report import render_figure6


def test_figure6_operations_per_cycle(benchmark):
    rows = run_once(benchmark,
                    lambda: figure6(quick=False, jobs=default_jobs()))
    print("\n" + render_figure6(rows))
    for name, row in rows.items():
        benchmark.extra_info[name] = round(row.opc, 2)
    opcs = [row.opc for row in rows.values()]
    # the paper: most benchmarks sustain over 10 OPC...
    assert sum(1 for v in opcs if v > 10) >= 8
    # ...several exceed 20...
    assert sum(1 for v in opcs if v > 20) >= 3
    # ...and the range runs from ~10 to almost 50 (section 7: 10 to 50)
    assert max(opcs) < 70
    # gather/scatter-dominated kernels bring up the rear
    assert rows["sparsemxv"].opc < rows["dgemm"].opc
    assert rows["moldyn"].opc < rows["fft"].opc