"""Table 2 — benchmark inventory with measured vectorization %."""

from conftest import run_once

from repro.harness.engine import default_jobs
from repro.harness.report import render_table2
from repro.harness.tables import table2


def test_table2_inventory(benchmark):
    rows = run_once(benchmark,
                    lambda: table2(scale=0.1, jobs=default_jobs()))
    print("\n" + render_table2(rows))
    for name, row in rows.items():
        benchmark.extra_info[name] = round(row.measured_vect_pct, 1)
        if name != "linpack100":
            assert row.measured_vect_pct > 90.0, name
