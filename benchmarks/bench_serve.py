#!/usr/bin/env python
"""Load harness for the simulation job server (``repro serve``).

Measures what the serve layer *adds* on top of the engine, from a real
HTTP client against a live in-process server:

* **orchestration overhead** — round-trip latency of a submission whose
  result is already cached (admission + dedupe probe + cache load +
  JSON, zero simulation), p50/p99 over ``--requests`` sequential
  round-trips;
* **sustained throughput** — accepted submissions/s with ``--clients``
  concurrent connections hammering cached specs.

Writes ``BENCH_serve.json`` and exits 1 when the overhead p99 exceeds
the documented budget (docs/SERVE.md): the serve layer must stay an
invisible veneer over the engine, not a tax on it.

    python benchmarks/bench_serve.py [--quick] [--out FILE]
"""

import argparse
import json
import os
import statistics
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.serve.client import ServeClient  # noqa: E402
from repro.serve.server import ServeConfig, ServerThread  # noqa: E402

DEFAULT_OUTPUT = "BENCH_serve.json"
SCHEMA = "repro-serve-bench-v1"

#: docs/SERVE.md budget: orchestration overhead p99, milliseconds
BUDGET_P99_MS = 250.0


def _specs(scale: float) -> list:
    import repro.workloads.registry  # noqa: F401 - populate the suites
    from repro.workloads.suite import get_suite

    return [{"kernel": name, "config": "T", "scale": scale}
            for name in get_suite("table4")]


def _percentile(samples: list, q: float) -> float:
    data = sorted(samples)
    idx = min(len(data) - 1, max(0, round(q * (len(data) - 1))))
    return data[idx]


def run_serve_bench(quick: bool = False, requests: int = 200,
                    clients: int = 4, jobs: int = 2,
                    progress=sys.stderr) -> dict:
    """Run the three phases against a fresh server; returns the doc."""
    scale = 0.02 if quick else 0.05
    specs = _specs(scale)
    workdir = tempfile.mkdtemp(prefix="repro-bench-serve-")
    config = ServeConfig(port=0, jobs=jobs, queue_limit=256,
                         timeout=120.0, cache_dir=workdir + "/cache")
    with ServerThread(config) as st:
        host, port = st.server.host, st.server.port
        with ServeClient(host, port) as client:
            # phase 1: cold — populate the cache through the server
            t0 = time.perf_counter()
            response = client.submit_batch(specs)
            for entry in response["jobs"]:
                result = client.wait_result(entry["id"], timeout=600)
                if result["failed"]:
                    raise RuntimeError(
                        f"bench_serve: cold cell failed: {result}")
            cold_s = time.perf_counter() - t0
            print(f"bench_serve: cold phase {len(specs)} cell(s) in "
                  f"{cold_s:.2f}s", file=progress)

            # phase 2: warm round-trips — pure orchestration overhead
            latencies = []
            for i in range(requests):
                spec = specs[i % len(specs)]
                t0 = time.perf_counter()
                entry = client.submit(spec)
                latencies.append((time.perf_counter() - t0) * 1000.0)
                if not entry.get("cached"):
                    raise RuntimeError(
                        f"bench_serve: warm submission was not a cache "
                        f"hit: {entry}")
            p50 = _percentile(latencies, 0.50)
            p99 = _percentile(latencies, 0.99)
            print(f"bench_serve: overhead p50={p50:.2f}ms p99={p99:.2f}ms "
                  f"mean={statistics.fmean(latencies):.2f}ms "
                  f"({requests} round-trips)", file=progress)

        # phase 3: sustained concurrent submissions
        done = []
        lock = threading.Lock()

        def hammer(idx: int) -> None:
            with ServeClient(host, port) as c:
                n = 0
                for i in range(requests // clients):
                    c.submit(specs[(idx + i) % len(specs)])
                    n += 1
                with lock:
                    done.append(n)

        t0 = time.perf_counter()
        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        burst_s = time.perf_counter() - t0
        accepted = sum(done)
        rate = accepted / burst_s if burst_s else 0.0
        print(f"bench_serve: sustained {rate:.0f} submissions/s "
              f"({accepted} over {burst_s:.2f}s, {clients} clients)",
              file=progress)

    return {
        "schema": SCHEMA,
        "quick": quick,
        "scale": scale,
        "python": sys.version.split()[0],
        "cells": len(specs),
        "requests": requests,
        "clients": clients,
        "jobs": jobs,
        "cold_wall_s": round(cold_s, 3),
        "overhead_p50_ms": round(p50, 3),
        "overhead_p99_ms": round(p99, 3),
        "overhead_mean_ms": round(statistics.fmean(latencies), 3),
        "sustained_submissions_per_s": round(rate, 1),
        "budget_p99_ms": BUDGET_P99_MS,
        "ok": p99 <= BUDGET_P99_MS,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized problem scale")
    parser.add_argument("--out", default=DEFAULT_OUTPUT, metavar="FILE",
                        help="output JSON path ('-' skips writing)")
    parser.add_argument("--requests", type=int, default=200, metavar="N",
                        help="warm round-trips to time (default 200)")
    parser.add_argument("--clients", type=int, default=4, metavar="N",
                        help="concurrent clients in the burst phase")
    parser.add_argument("--jobs", type=int, default=2, metavar="N",
                        help="server pool workers (default 2)")
    args = parser.parse_args(argv)
    doc = run_serve_bench(quick=args.quick, requests=args.requests,
                          clients=args.clients, jobs=args.jobs)
    if args.out != "-":
        with open(args.out, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"bench_serve: wrote {args.out}", file=sys.stderr)
    if not doc["ok"]:
        print(f"bench_serve: overhead p99 {doc['overhead_p99_ms']:.1f}ms "
              f"exceeds the {BUDGET_P99_MS:.0f}ms budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
