"""Section 6 ablations: swim tiling and the LU register-tiling contrast."""

from conftest import run_once

from repro.harness.engine import ExperimentSpec, default_jobs, execute_many
from repro.harness.figures import scale_for, tiling_ablation


def test_swim_tiling_ablation(benchmark):
    """'The non-tiled version was almost 2X slower.'"""
    result = run_once(benchmark,
                      lambda: tiling_ablation(quick=False,
                                              jobs=default_jobs()))
    print(f"\nswim untiled/tiled slowdown: {result['slowdown']:.2f}x "
          f"(paper: ~2x)")
    benchmark.extra_info.update({k: round(v, 2) for k, v in result.items()})
    assert result["slowdown"] > 1.3


def test_lu_register_tiling_contrast(benchmark):
    """'LinpackTPP shows 50% more operations per cycle [than LU]. The
    reason is that we performed register tiling for LU' — same math,
    fewer memory operations per flop."""
    def run_pair():
        return execute_many(
            [ExperimentSpec("lu", "T", scale_for("lu"), check=False),
             ExperimentSpec("linpacktpp", "T", scale_for("linpacktpp"),
                            check=False)],
            jobs=2)

    lu, tpp = run_once(benchmark, run_pair)
    print(f"\nlu OPC={lu.opc:.2f} (MPC={lu.mpc:.2f})  "
          f"linpacktpp OPC={tpp.opc:.2f} (MPC={tpp.mpc:.2f})")
    benchmark.extra_info.update({"lu_opc": round(lu.opc, 2),
                                 "tpp_opc": round(tpp.opc, 2)})
    # the untiled variant sustains more OPC (it does more memory work
    # for the same arithmetic), exactly the paper's LU-vs-TPP contrast
    assert tpp.opc > lu.opc
    assert tpp.mpc > lu.mpc
