"""Figure 8 — performance scaling at 4.8 GHz (T4) and 10.66 GHz (T10).

"Programs that mostly access the L2 cache scale very well. In contrast,
sparsemxv barely reaches speedups of 1.6 and 1.8 when scaling the
frequency by 2.2X and 5X."
"""

from conftest import run_once

from repro.harness.engine import default_jobs
from repro.harness.figures import figure8
from repro.harness.report import render_figure8


def test_figure8_frequency_scaling(benchmark):
    rows = run_once(benchmark,
                    lambda: figure8(quick=False, jobs=default_jobs()))
    print("\n" + render_figure8(rows))
    benchmark.extra_info.update(
        {n: round(r.speedup_t10, 2) for n, r in rows.items()})
    for name, row in rows.items():
        # higher frequency never hurts, never super-linear vs 5x clock
        assert 0.95 <= row.speedup_t4 <= 2.6, name
        assert row.speedup_t10 >= row.speedup_t4 * 0.95, name
        assert row.speedup_t10 <= 5.5, name
    # memory-bound kernels stop scaling...
    assert rows["sparsemxv"].speedup_t10 < 3.0
    # ...while cache-resident compute scales much further
    best = max(r.speedup_t10 for r in rows.values())
    assert best > 2.5
    assert best > rows["sparsemxv"].speedup_t10
