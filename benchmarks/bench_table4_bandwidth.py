"""Table 4 — sustained memory bandwidth microkernels.

The headline memory-system result: STREAMS kernels in the 40+ GB/s
class (the paper compares against the NEC SX/5's 42.5 GB/s), RndCopy's
gather bandwidth from the L2, and RndMemScale's random-RAMBUS floor.
"""

from conftest import run_once

from repro.harness import paper_data
from repro.harness.engine import default_jobs
from repro.harness.report import render_table4
from repro.harness.tables import table4


def test_table4_bandwidth(benchmark):
    rows = run_once(benchmark,
                    lambda: table4(quick=False, jobs=default_jobs()))
    print("\n" + render_table4(rows))
    for name, row in rows.items():
        benchmark.extra_info[name] = round(row.streams_mbytes_per_s)
        paper = paper_data.TABLE4[name]["streams"]
        ratio = row.streams_mbytes_per_s / paper
        # shape criterion: within 2x of every published bandwidth
        assert 0.5 < ratio < 2.0, f"{name}: {ratio:.2f}x of paper"
    # orderings the paper's narrative relies on:
    assert rows["rndcopy"].streams_mbytes_per_s > \
        rows["streams.copy"].streams_mbytes_per_s   # L2 gathers beat DRAM
    assert rows["rndmemscale"].streams_mbytes_per_s < \
        0.3 * rows["streams.copy"].streams_mbytes_per_s
