"""Section-5 extension study: FMAC units in the Vbox.

The paper: "adding floating point multiply-accumulate units (FMAC) to
Tarantula, this rate could be doubled with very little extra complexity
and power."  This ablation rebuilds the dgemm inner strip with
``vvmaddt``/``vsmaddt`` and measures the flop-rate gain on the timing
model, alongside the Gflops/W effect from the power model.
"""

import numpy as np
from conftest import run_once

from repro.core.power import gflops_per_watt_advantage
from repro.harness.engine import run_instance
from repro.isa.builder import KernelBuilder
from repro.scalar.loopmodel import ScalarLoopBody
from repro.workloads.base import WorkloadInstance

A, B, C = 0x100000, 0x300000, 0x500000
MK, N = 64, 128


def _gemm_kernel(fused: bool) -> "Program":
    """C[i, :] += a(i,k) * B[k, :] over a 4-row register tile."""
    kb = KernelBuilder("gemm-fmac" if fused else "gemm-muladd")
    kb.lda(1, A)
    kb.lda(2, B)
    kb.lda(3, C)
    kb.setvl(128)
    kb.setvs(8)
    row = N * 8
    for i0 in range(0, MK, 4):
        for r in range(4):
            kb.vloadq(10 + r, rb=3, disp=(i0 + r) * row)
        for k in range(MK):
            kb.vloadq(1, rb=2, disp=k * row)
            for r in range(4):
                kb.ldq(20 + r, rb=1, disp=((i0 + r) * MK + k) * 8)
                if fused:
                    kb.vsmaddt(10 + r, 1, ra=20 + r)
                else:
                    kb.vsmult(2, 1, ra=20 + r)
                    kb.vvaddt(10 + r, 10 + r, 2)
        for r in range(4):
            kb.vstoreq(10 + r, rb=3, disp=(i0 + r) * row)
    return kb.build()


def _setup(memory):
    rng = np.random.default_rng(1)
    memory.write_f64(A, rng.standard_normal(MK * MK))
    memory.write_f64(B, rng.standard_normal(MK * N))


def _run(fused: bool):
    # an ad-hoc (non-registry) kernel still runs through the engine's
    # canonical loop via run_instance
    program = _gemm_kernel(fused)
    instance = WorkloadInstance(
        name=program.name, program=program,
        scalar_loop=ScalarLoopBody(name=program.name),
        setup=_setup, check=lambda memory: None,
        warm_ranges=[(A, MK * MK * 8), (B, MK * N * 8), (C, MK * N * 8)])
    return run_instance(instance, "T", check=False)


def test_fmac_ablation(benchmark):
    base, fused = run_once(benchmark, lambda: (_run(False), _run(True)))
    gain = base.cycles / fused.cycles
    print(f"\ndgemm strip: mul+add FPC={base.fpc:.1f}  "
          f"FMAC FPC={fused.fpc:.1f}  speedup={gain:.2f}x")
    print(f"Gflops/W advantage with FMAC: "
          f"{gflops_per_watt_advantage(fmac=True):.1f}x "
          f"(base {gflops_per_watt_advantage():.1f}x)")
    benchmark.extra_info.update({
        "base_fpc": round(base.fpc, 2),
        "fmac_fpc": round(fused.fpc, 2),
        "speedup": round(gain, 2),
    })
    assert base.detail.counts.flops == fused.detail.counts.flops
    assert gain > 1.4          # 'could be doubled' at the port limit
    assert fused.fpc > base.fpc * 1.4
