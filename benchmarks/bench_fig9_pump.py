"""Figure 9 — slowdown when the stride-1 double-bandwidth PUMP is off.

"The programs that did not have their iteration space tiled suffer the
most when stride-1 bandwidth is dropped from thirty-two 64-bit words
per cycle down to sixteen"; MAF pressure also grows 8x.
"""

from conftest import run_once

from repro.harness.engine import default_jobs
from repro.harness.figures import figure9
from repro.harness.report import render_figure9


def test_figure9_pump_ablation(benchmark):
    rows = run_once(benchmark,
                    lambda: figure9(quick=False, jobs=default_jobs()))
    print("\n" + render_figure9(rows))
    benchmark.extra_info.update(
        {n: round(r.relative_performance, 3) for n, r in rows.items()})
    for name, row in rows.items():
        # disabling a bandwidth feature never helps (beyond noise)
        assert row.relative_performance <= 1.05, name
    # stride-1-heavy kernels are hurt; the untiled stencil most of all
    assert rows["swim.untiled"].relative_performance < 0.9
    assert rows["swim"].relative_performance < 0.97
    hurt = [n for n, r in rows.items() if r.relative_performance < 0.95]
    assert len(hurt) >= 3
