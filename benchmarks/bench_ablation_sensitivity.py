"""Design-sensitivity ablations for the choices DESIGN.md calls out.

Three one-parameter sweeps quantify the design points the paper fixes
without data: the 32-entry MAF, the CR-box tournament cost, and the
L2-capacity cliff under a sparse working set.
"""

from conftest import run_once

from repro.harness.engine import default_jobs
from repro.harness.sweeps import (
    render_sweep,
    sweep_cr_cost,
    sweep_l2_size,
    sweep_maf_entries,
)


def test_maf_size_sensitivity(benchmark):
    curve = run_once(benchmark,
                     lambda: sweep_maf_entries(jobs=default_jobs()))
    print("\n" + render_sweep("MAF entries vs cycles (streams.triad, "
                              "memory-streaming)", curve, " ent"))
    benchmark.extra_info.update({str(k): round(v) for k, v in curve.items()})
    # starving the MAF must hurt; the paper's 32 sits on the plateau
    assert curve[2] > 1.5 * curve[32]
    assert curve[64] >= 0.95 * curve[32]


def test_cr_cost_sensitivity(benchmark):
    curve = run_once(benchmark, lambda: sweep_cr_cost(jobs=default_jobs()))
    print("\n" + render_sweep("CR tournament cost vs cycles (sparsemxv, "
                              "gather-bound)", curve, " cyc"))
    benchmark.extra_info.update({str(k): round(v) for k, v in curve.items()})
    # gather-bound kernels ride almost linearly on the CR cost
    assert curve[8.0] > 1.5 * curve[1.0]
    assert curve[4.0] > curve[2.0] > curve[1.0]


def test_l2_capacity_cliff(benchmark):
    curve = run_once(benchmark, lambda: sweep_l2_size(jobs=default_jobs()))
    print("\n" + render_sweep("L2 capacity vs cycles (sparsemxv working "
                              "set)", curve, " B"))
    benchmark.extra_info.update({str(k): round(v) for k, v in curve.items()})
    sizes = sorted(curve)
    # monotone improvement with capacity, with a real cliff at the
    # small end — the paper's L2-centric design thesis
    assert curve[sizes[0]] > 1.3 * curve[sizes[-1]]
    for small, big in zip(sizes, sizes[1:]):
        assert curve[big] <= curve[small] * 1.02
