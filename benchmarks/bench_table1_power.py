"""Table 1 — power and area estimates (section 5)."""

from conftest import run_once

from repro.core.power import gflops_per_watt_advantage
from repro.harness.report import render_table1
from repro.harness.tables import power_summary, table1


def test_table1_power_model(benchmark):
    rows = run_once(benchmark, table1)
    text = render_table1(rows)
    print("\n" + text)
    summary = power_summary()
    print(f"\nGflops/Watt advantage: {summary['advantage']}x "
          f"(paper: 3.4x; with FMAC: "
          f"{gflops_per_watt_advantage(fmac=True):.1f}x)")
    benchmark.extra_info.update(summary)
    assert 3.1 <= summary["advantage"] <= 3.7
