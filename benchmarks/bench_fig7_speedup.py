"""Figure 7 — speedup of EV8+ and Tarantula over EV8.

The abstract's headline: "an average speedup of 5X over EV8, out of a
peak speedup in terms of flops of 8X"; six applications exceed 8X for
the reasons section 6 enumerates (flop:mem ratio, register count,
masks, prefetch reach).
"""

from conftest import run_once

from repro.harness.engine import default_jobs
from repro.harness.figures import figure7
from repro.harness.report import render_figure7


def test_figure7_speedups(benchmark):
    rows = run_once(benchmark,
                    lambda: figure7(quick=False, jobs=default_jobs()))
    print("\n" + render_figure7(rows))
    speedups = {n: r.speedup_tarantula for n, r in rows.items()}
    benchmark.extra_info.update(
        {n: round(v, 2) for n, v in speedups.items()})
    average = sum(speedups.values()) / len(speedups)
    # "typically, Tarantula achieves a speedup of at least 5X":
    assert average > 4.0
    # gather-bound kernels show the least parallelism (section 6):
    assert speedups["ccradix"] == min(speedups.values())
    assert speedups["sparsemxv"] < average
    # some applications exceed the 8X peak-flop ratio:
    assert sum(1 for v in speedups.values() if v > 8.0) >= 3
    # EV8+ alone explains little: "this performance advantage can not be
    # attributed to the bigger cache and better memory system alone"
    for name, row in rows.items():
        assert row.speedup_ev8_plus < row.speedup_tarantula, name
