"""Table 3 — the four machine configurations' derived quantities."""

from conftest import run_once

from repro.harness.report import render_table3
from repro.harness.tables import table3


def test_table3_configurations(benchmark):
    rows = run_once(benchmark, table3)
    print("\n" + render_table3(rows))
    benchmark.extra_info.update(
        {name: row["rambus_gbytes_per_s"] for name, row in rows.items()})
    assert rows["T"]["l2_gbytes_per_s"] == 1091
    assert rows["T4"]["l2_gbytes_per_s"] == 2458
    assert rows["T"]["peak_ops_per_cycle"] == 104
