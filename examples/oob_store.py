"""A deliberately-buggy kernel: an out-of-bounds strided store.

The kernel copies a 128-element array, but the author padded the
*source* rows and not the destination: the store runs at ``vs = 16``
into a densely-allocated 1024-byte buffer, so its last 64 elements land
past the end of ``dst`` (128 elements at stride 16 span 2040 bytes).
The vmem analyzer proves the overrun statically — the store's footprint
``[dst, dst + 2040)`` is not contained in any declared buffer — and
reports ``MEM_OOB`` at the store's pc.

This is the worked example in docs/ANALYSIS.md, and
``tests/analysis/test_vmem.py`` asserts the exact code and pc so the
example can never silently rot.  Run it directly to see the report::

    PYTHONPATH=src python examples/oob_store.py
"""

import sys

from repro.isa.builder import KernelBuilder
from repro.workloads.base import Arena

N = 128          # elements in each buffer

#: instruction index of the out-of-bounds vstoreq (see build())
OOB_PC = 6


def build():
    """Build the buggy program; returns ``(program, buffers)``."""
    arena = Arena()
    src = arena.alloc("src", N * 8)
    dst = arena.alloc("dst", N * 8)

    kb = KernelBuilder("examples.oob_store")
    kb.lda(1, src)            # 0
    kb.lda(2, dst)            # 1
    kb.setvl(128)             # 2
    kb.setvs(8)               # 3
    kb.vloadq(10, rb=1)       # 4: dense load of src — fine
    kb.setvs(16)              # 5: bug: dst is NOT row-padded
    kb.vstoreq(10, rb=2)      # 6: 128 elems @ stride 16 overrun dst
    return kb.build(), arena.declare_buffers()


def main() -> int:
    from repro.analysis import Severity, lint_program

    program, buffers = build()
    report = lint_program(program, buffers=buffers)
    print(report.format(min_severity=Severity.INFO))
    return 1 if report.has_errors else 0


if __name__ == "__main__":
    sys.exit(main())
