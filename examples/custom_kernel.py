"""Writing kernels in assembly text, including the paper's mask idiom.

Section 2 of the paper shows how Tarantula codes a compound condition
(`A(i).ne.0 .and. B(i).gt.2`) without any scalar round trips: vector
compares write boolean vectors into ordinary vector registers, logical
ops combine them, and ``setvm`` installs the result as the mask.

This example assembles that exact idiom from text, runs it, and shows
the under-mask update leaving unselected elements untouched.

Run:  python examples/custom_kernel.py
"""

import numpy as np

from repro import FunctionalSimulator, assemble
from repro.isa.assembler import disassemble

A_ADDR, B_ADDR, OUT = 0x10000, 0x20000, 0x30000

SOURCE = f"""
; conditional update: out(i) += 100.0 where A(i) != 0 and B(i) > 2
        setvl   #128
        setvs   #8
        lda     r1, #{A_ADDR}
        lda     r2, #{B_ADDR}
        lda     r3, #{OUT}

        vloadq  v0, 0(r1)            ; v0 <- A
        vloadq  v1, 0(r2)            ; v1 <- B

        vscmpteq v0, #0.0, v6        ; v6 <- (A == 0)
        vnot     v6, v6              ; v6 <- (A != 0)   [low bit]
        vscmptle v1, #2.0, v7        ; v7 <- (B <= 2)
        vnot     v7, v7              ; v7 <- (B > 2)
        vvand    v6, v7, v8          ; v8 <- both conditions
        setvm    v8                  ; vm <- v8

        vloadq  v9, 0(r3)            ; current out
        vsaddt  v9, #100.0, v9  /m   ; add under mask only
        vstoreq v9, 0(r3)       /m   ; store under mask only
"""


def main() -> None:
    program = assemble(SOURCE, name="masked-update")
    print("disassembly round-trip:")
    print(disassemble(program))

    sim = FunctionalSimulator()
    rng = np.random.default_rng(7)
    a = rng.choice([0.0, 1.0], size=128)
    b = rng.uniform(0.0, 4.0, size=128)
    out = np.zeros(128)
    sim.memory.write_f64(A_ADDR, a)
    sim.memory.write_f64(B_ADDR, b)
    sim.memory.write_f64(OUT, out)

    sim.run(program)

    selected = (a != 0) & (b > 2)
    expected = np.where(selected, 100.0, 0.0)
    got = sim.memory.read_f64(OUT, 128)
    np.testing.assert_allclose(got, expected)
    print(f"\nmask selected {selected.sum()} of 128 elements — "
          "masked update verified, no scalar round trips used.")


if __name__ == "__main__":
    main()
