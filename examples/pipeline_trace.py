"""Pipeline tracing: watch the machine overlap (or fail to overlap).

Two versions of the same reduction are traced:

* a *serial* accumulation — every ``vvaddt`` depends on the previous
  one, so the Gantt chart is a staircase;
* an *unrolled* accumulation with four partial sums — the chart becomes
  a dense parallelogram and the kernel finishes far sooner.

This is the register-tiling story of section 6 in miniature, and the
trace facility used to debug the timing model itself.

Run:  python examples/pipeline_trace.py
"""

from repro.harness.trace import critical_summary, render_gantt, trace_program
from repro.isa.builder import KernelBuilder

BASE = 0x100000
BLOCKS = 12


def serial_kernel():
    kb = KernelBuilder("serial-reduce")
    kb.lda(1, BASE)
    kb.setvl(128)
    kb.setvs(8)
    for blk in range(BLOCKS):
        kb.vloadq(2, rb=1, disp=blk * 1024)
        kb.vvaddt(10, 10, 2)          # one accumulator: serial chain
    kb.vsumt(5, 10)
    return kb.build()


def unrolled_kernel():
    kb = KernelBuilder("unrolled-reduce")
    kb.lda(1, BASE)
    kb.setvl(128)
    kb.setvs(8)
    for blk in range(BLOCKS):
        kb.vloadq(2, rb=1, disp=blk * 1024)
        kb.vvaddt(10 + blk % 4, 10 + blk % 4, 2)   # four partial sums
    kb.vvaddt(10, 10, 11)
    kb.vvaddt(12, 12, 13)
    kb.vvaddt(10, 10, 12)
    kb.vsumt(5, 10)
    return kb.build()


def main() -> None:
    warm = [(BASE, BLOCKS * 1024 + 64)]
    for name, build in (("serial", serial_kernel),
                        ("unrolled x4", unrolled_kernel)):
        entries, cycles = trace_program(build(), warm_ranges=warm)
        print(f"=== {name}: {cycles:.0f} cycles ===")
        print(render_gantt(entries, start=2, count=14))
        hot = critical_summary(entries, top=1)[0]
        print(f"longest-latency instruction: {hot.text} "
              f"({hot.latency:.0f} cycles)\n")


if __name__ == "__main__":
    main()
