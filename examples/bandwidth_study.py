"""Stride sweep: how the three address-generation paths behave.

The paper's central memory-system design problem (section 3.4) was
non-unit strides.  This study loads the same amount of data at
different byte strides and shows the three regimes:

* stride 1 (8 bytes) — the PUMP path: full-line streaming;
* odd / small-power-of-two strides — the conflict-free reorder ROM:
  half the stride-1 rate (the paper's designed 1:2 ratio);
* large power-of-two strides — self-conflicting: the CR box tournament
  crawls, exactly why the paper special-cases them.

Run:  python examples/bandwidth_study.py
"""

from repro import KernelBuilder
from repro.core.config import tarantula
from repro.core.processor import TarantulaProcessor

BASE = 0x100000
BLOCKS = 24


def run_stride(stride_bytes: int) -> tuple[float, str]:
    """Load BLOCKS x 128 elements at the given stride; returns
    (elements/cycle, path used)."""
    kb = KernelBuilder(f"stride-{stride_bytes}")
    kb.lda(1, BASE)
    kb.setvl(128)
    kb.setvs(stride_bytes)
    span = 128 * stride_bytes
    for blk in range(BLOCKS):
        kb.vloadq(2, rb=1, disp=blk * span)
    proc = TarantulaProcessor(tarantula())
    proc.warm_l2(BASE, BLOCKS * span + 64)   # isolate the access path
    result = proc.run(kb.build())
    stats = proc.addr_gens.counters
    if stats.get("pump_plans"):
        path = "pump"
    elif stats.get("reordered_plans"):
        path = "reorder ROM"
    else:
        path = "CR box"
    elements = BLOCKS * 128
    return elements / result.cycles, path


def main() -> None:
    print(f"{'stride (bytes)':>15s} {'path':>12s} {'elements/cycle':>15s}")
    strides = [8, 16, 24, 40, 64, 104, 128, 256, 1024, 4096]
    results = {}
    for stride in strides:
        rate, path = run_stride(stride)
        results[stride] = (rate, path)
        print(f"{stride:>15d} {path:>12s} {rate:>15.2f}")

    unit = results[8][0]
    odd = results[24][0]
    self_conf = results[1024][0]
    print(f"\nstride-1 : odd-stride ratio  = {unit / odd:.2f} "
          "(paper designed 2:1 via the PUMP)")
    print(f"odd : self-conflicting ratio = {odd / self_conf:.1f} "
          "(why section 3.4 routes these through the CR box)")


if __name__ == "__main__":
    main()
