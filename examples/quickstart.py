"""Quickstart: hand-vectorize a STREAMS triad and run it on Tarantula.

Demonstrates the three layers of the library:

1. write a vector kernel with :class:`KernelBuilder` (the paper's
   hand-vectorization methodology);
2. execute it on the functional simulator and verify the result;
3. execute it on the cycle-level timing model and read the paper's
   metrics (operations/cycle, split into flops and memory ops).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import KernelBuilder, FunctionalSimulator
from repro.core.config import tarantula
from repro.core.processor import TarantulaProcessor

N = 128 * 64                      # 8192 doubles per array
A, B, C = 0x100000, 0x200000, 0x300000
SCALE = 3.0


def build_triad() -> "Program":
    """a(i) = b(i) + 3.0 * c(i), 128 elements per vector instruction."""
    kb = KernelBuilder("triad")
    kb.lda(1, A)
    kb.lda(2, B)
    kb.lda(3, C)
    kb.setvl(128)                 # full vectors
    kb.setvs(8)                   # unit stride (8-byte doubles)
    for block in range(N // 128):
        off = block * 128 * 8
        kb.vloadq(4, rb=2, disp=off)          # v4 <- b
        kb.vloadq(5, rb=3, disp=off)          # v5 <- c
        kb.vsmult(6, 5, imm=SCALE)            # v6 <- 3.0 * c
        kb.vvaddt(7, 4, 6)                    # v7 <- b + 3.0*c
        kb.vstoreq(7, rb=1, disp=off)         # a <- v7
    return kb.build()


def main() -> None:
    program = build_triad()
    print(f"assembled {len(program)} instructions; first iteration:")
    print(program.listing().splitlines()[4:9])

    # --- functional run: is the kernel correct? -------------------------
    sim = FunctionalSimulator()
    b = np.linspace(0.0, 1.0, N)
    c = np.linspace(2.0, 3.0, N)
    sim.memory.write_f64(B, b)
    sim.memory.write_f64(C, c)
    counts = sim.run(program)
    got = sim.memory.read_f64(A, N)
    np.testing.assert_allclose(got, b + SCALE * c)
    print(f"\nfunctional: OK  ({counts.flops} flops, "
          f"{counts.memory_elements} memory elements, "
          f"{counts.vectorization_percent:.1f}% vectorized)")

    # --- timing run: how fast is it on the modeled chip? ----------------
    proc = TarantulaProcessor(tarantula())
    proc.functional.memory.write_f64(B, b)
    proc.functional.memory.write_f64(C, c)
    for base in (A, B, C):
        proc.warm_l2(base, N * 8)            # L2-resident regime
    result = proc.run(build_triad())
    print(f"timing:     {result.cycles:.0f} cycles at "
          f"{proc.config.core_ghz} GHz")
    print(f"            OPC={result.opc:.1f} "
          f"(FPC={result.fpc:.1f}, MPC={result.mpc:.1f}) "
          f"of the {proc.config.peak_operations_per_cycle}-op/cycle peak")


if __name__ == "__main__":
    main()
