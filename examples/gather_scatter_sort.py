"""Gather/scatter in anger: a histogram built entirely with vector
memory operations, the core trick of the paper's radix-sort benchmark.

Each of the 128 vector lanes owns a private histogram row, so the
gather-increment-scatter never collides inside a batch; a final
vectorized reduction folds the rows together.  The timing run shows the
CR box at work (tournament counts, slices, addresses per slice).

Run:  python examples/gather_scatter_sort.py
"""

import numpy as np

from repro import KernelBuilder
from repro.core.config import tarantula
from repro.core.processor import TarantulaProcessor

N = 128 * 64          # values to histogram
BINS = 256
VALS = 0x100000
HIST = 0x400000       # [slot][bin] layout: 128 rows x 256 bins


def build() -> "Program":
    kb = KernelBuilder("vector-histogram")
    kb.lda(1, VALS)
    kb.lda(2, HIST)
    kb.setvl(128)
    kb.setvs(8)
    kb.viota(20)                          # slot ids
    kb.vssll(21, 20, imm=11)              # slot * 256 bins * 8 bytes

    # zero the 128 private rows
    kb.vvxor(10, 10, 10)
    for off in range(0, 128 * BINS * 8, 128 * 8):
        kb.vstoreq(10, rb=2, disp=off)

    # count: hist[slot][value] += 1, no collisions by construction
    for blk in range(N // 128):
        kb.vloadq(11, rb=1, disp=blk * 128 * 8)
        kb.vssll(12, 11, imm=3)           # bin byte offset
        kb.vvaddq(12, 12, 21)             # + private row offset
        kb.vgathq(13, 12, rb=2)
        kb.vsaddq(13, 13, imm=1)
        kb.vscatq(13, 12, rb=2)

    # reduce the 128 rows into row 0 (vector adds over bin blocks)
    for db in range(BINS // 128):
        doff = db * 128 * 8
        kb.vvxor(14, 14, 14)
        for slot in range(128):
            kb.vloadq(15, rb=2, disp=slot * BINS * 8 + doff)
            kb.vvaddq(14, 14, 15)
        kb.vstoreq(14, rb=2, disp=doff)
    return kb.build()


def main() -> None:
    rng = np.random.default_rng(3)
    values = rng.integers(0, BINS, N).astype(np.uint64)

    proc = TarantulaProcessor(tarantula())
    proc.functional.memory.write_array(VALS, values)
    proc.warm_l2(VALS, N * 8)
    proc.warm_l2(HIST, 128 * BINS * 8)
    result = proc.run(build())

    got = proc.functional.memory.read_array(HIST, BINS)
    expected = np.bincount(values.astype(int), minlength=BINS).astype(np.uint64)
    np.testing.assert_array_equal(got, expected)
    print(f"histogram of {N} values verified against numpy")

    cr = proc.addr_gens.crbox.counters
    print(f"\ntiming: {result.cycles:.0f} cycles, OPC={result.opc:.1f}")
    print(f"CR box: {cr['cr_addresses']} addresses packed into "
          f"{cr['cr_slices']} slices "
          f"({cr['cr_addresses'] / cr['cr_slices']:.1f} addresses/slice, "
          f"{cr['tournaments']} tournament rounds)")


if __name__ == "__main__":
    main()
