"""Power/efficiency exploration around Table 1.

Reproduces the paper's CMP-vs-vector efficiency argument and its two
sensitivity remarks: adding FMAC units would double Tarantula's rate
"with very little extra complexity and power", while doing the same to
EV8 "would require an expensive rework" — plus a what-if on Vbox power
(the paper calls its estimate a lower bound).

Run:  python examples/power_study.py
"""

from dataclasses import replace

from repro.core.power import (
    PowerBlock,
    cmp_ev8_model,
    gflops_per_watt_advantage,
    tarantula_model,
)


def main() -> None:
    cmp_chip = cmp_ev8_model()
    tarantula = tarantula_model()

    print("Table 1 bottom lines")
    for chip in (cmp_chip, tarantula):
        print(f"  {chip.name:<10s} {chip.total_watts:6.1f} W   "
              f"{chip.peak_gflops:5.1f} Gflops   "
              f"{chip.gflops_per_watt:5.2f} Gflops/W   "
              f"{chip.die_area_mm2:.0f} mm^2")
    print(f"  advantage: {gflops_per_watt_advantage():.2f}x "
          "(paper: 3.4x)")

    print("\nWhat if the Vbox gets FMAC units? (section 5)")
    print(f"  advantage becomes {gflops_per_watt_advantage(fmac=True):.2f}x "
          "— double, for 'very little extra complexity and power'")

    print("\nSensitivity: the Vbox power estimate is a lower bound "
          "(TLBs and address generators not fully accounted).")
    for extra in (0.0, 5.0, 10.0, 20.0):
        blocks = [PowerBlock(b.name, b.area_percent,
                             b.watts + (extra if b.name == "Vbox" else 0.0))
                  for b in tarantula.blocks]
        what_if = replace(tarantula, blocks=blocks)
        print(f"  Vbox +{extra:4.1f} W  ->  total {what_if.total_watts:6.1f} W, "
              f"{what_if.gflops_per_watt:.2f} Gflops/W "
              f"({what_if.gflops_per_watt / cmp_chip.gflops_per_watt:.2f}x)")

    print("\nEven +20 W of Vbox pessimism keeps a ~3x efficiency lead — "
          "the paper's conclusion is robust to its own caveat.")


if __name__ == "__main__":
    main()
