"""Differential cycle-exactness: array-backed tags vs the dict reference.

The numpy :class:`SetAssocCache` exists purely for simulator speed; its
contract (docs/PERF.md) is *bit-identical behavior* to
:class:`SetAssocCacheReference`.  These tests enforce that contract
three ways:

* every registered workload runs through the full timing simulator
  under both models, asserting identical cycle counts, operation
  counts, and every per-component counter;
* the fault-recovery oracle (MAF replay, panic, poisoned lines, TLB
  shootdown) runs under both models and must report identical outcomes;
* a randomized access stream is driven through both models directly,
  comparing hits, evictions, writebacks, and counters step by step.
"""

import numpy as np
import pytest

from repro.mem.banks import (
    SetAssocCache,
    SetAssocCacheReference,
    use_tag_model,
)
from repro.workloads.registry import REGISTRY, get


def _run(kernel: str, model: str, instance):
    from repro.harness.runner import run_tarantula

    with use_tag_model(model):
        return run_tarantula(get(kernel), "T", instance=instance)


@pytest.mark.parametrize("kernel", sorted(REGISTRY))
def test_every_workload_is_cycle_identical(kernel):
    instance = get(kernel).build_small()
    ref = _run(kernel, "reference", instance)
    new = _run(kernel, "numpy", instance)
    assert new.cycles == ref.cycles
    assert new.detail.counts == ref.detail.counts
    assert new.detail.component_stats == ref.detail.component_stats
    assert new.detail.mem_raw_bytes == ref.detail.mem_raw_bytes
    assert new.detail.mem_useful_bytes == ref.detail.mem_useful_bytes


@pytest.mark.parametrize("kernel", ["lu", "rndcopy"])
def test_chaos_recovery_is_model_independent(kernel):
    """MAF replay/panic and poison recovery behave identically."""
    from repro.faults import run_recovery_oracle

    with use_tag_model("reference"):
        ref = run_recovery_oracle(kernel, seed=1234)
    with use_tag_model("numpy"):
        new = run_recovery_oracle(kernel, seed=1234)
    assert ref.ok and new.ok
    assert new.summary() == ref.summary()


def _fresh_pair(capacity=1 << 14, ways=2):
    return (SetAssocCache(capacity, ways, 64, "numpy"),
            SetAssocCacheReference(capacity, ways, 64, "ref"))


def _assert_same_eviction(ea, eb):
    assert (ea is None) == (eb is None)
    if ea is not None:
        assert (ea.addr, ea.dirty, ea.pbit) == (eb.addr, eb.dirty, eb.pbit)


def test_models_agree_on_random_access_stream():
    rng = np.random.default_rng(7)
    a, b = _fresh_pair()
    lines = (rng.integers(0, 600, size=3000) << 6).tolist()
    writes = (rng.random(3000) < 0.3).tolist()
    cores = (rng.random(3000) < 0.1).tolist()
    for line, w, c in zip(lines, writes, cores):
        hit_a, ev_a = a.access(line, is_write=w, from_core=c)
        hit_b, ev_b = b.access(line, is_write=w, from_core=c)
        assert hit_a == hit_b
        _assert_same_eviction(ev_a, ev_b)
    assert a.counters.as_dict() == b.counters.as_dict()
    assert a.flush() == b.flush()


def test_access_many_matches_sequential_access():
    rng = np.random.default_rng(11)
    batched, sequential = _fresh_pair()
    for round_no in range(40):
        batch = (rng.integers(0, 400, size=16) << 6).tolist()
        is_write = bool(round_no % 3 == 0)
        hits, evictions = batched.access_many(batch, is_write=is_write)
        for line, hit, ev in zip(batch, hits, evictions):
            hit_s, ev_s = sequential.access(line, is_write=is_write)
            assert bool(hit) == hit_s
            _assert_same_eviction(ev, ev_s)
    assert batched.counters.as_dict() == sequential.counters.as_dict()
    assert batched.flush() == sequential.flush()


def test_pbit_bookkeeping_matches():
    a, b = _fresh_pair()
    stream = [0x1000, 0x2040, 0x1000, 0x8080, 0x2040]
    for line in stream:
        a.access(line, is_write=False, from_core=True)
        b.access(line, is_write=False, from_core=True)
    probe = stream + [0x4000]
    assert a.pbit_lines(probe) == b.pbit_lines(probe)
    a.clear_pbits([0x1000])
    b.clear_pbits([0x1000])
    assert a.pbit_lines(probe) == b.pbit_lines(probe)
