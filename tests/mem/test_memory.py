"""Main-memory substrate tests."""

import numpy as np
import pytest

from repro.errors import AlignmentTrap, InvalidAddressTrap
from repro.mem.memory import ADDRESS_LIMIT


class TestQuadAccess:
    def test_read_of_untouched_memory_is_zero(self, mem):
        assert mem.read_quad(0x1234560) == 0

    def test_scalar_roundtrip(self, mem):
        mem.write_quad(0x1000, 0xDEADBEEF)
        assert mem.read_quad(0x1000) == 0xDEADBEEF

    def test_write_wraps_to_64_bits(self, mem):
        mem.write_quad(0x1000, 1 << 70)
        assert mem.read_quad(0x1000) == 0

    def test_vector_roundtrip_across_chunks(self, mem):
        # straddle the 1 MiB chunk boundary
        base = (1 << 20) - 64
        addrs = np.uint64(base) + np.uint64(8) * np.arange(32, dtype=np.uint64)
        values = np.arange(32, dtype=np.uint64) + 7
        mem.write_quads(addrs, values)
        assert np.array_equal(mem.read_quads(addrs), values)

    def test_duplicate_addresses_last_writer_wins(self, mem):
        addrs = np.array([0x100, 0x108, 0x100], dtype=np.uint64)
        mem.write_quads(addrs, np.array([1, 2, 3], dtype=np.uint64))
        assert mem.read_quad(0x100) == 3

    def test_unaligned_raises(self, mem):
        with pytest.raises(AlignmentTrap):
            mem.read_quad(0x1001)
        with pytest.raises(AlignmentTrap):
            mem.write_quads(np.array([12], dtype=np.uint64),
                            np.array([0], dtype=np.uint64))

    def test_out_of_range_raises(self, mem):
        with pytest.raises(InvalidAddressTrap):
            mem.read_quad(ADDRESS_LIMIT)

    def test_empty_vector_access(self, mem):
        empty = np.array([], dtype=np.uint64)
        assert mem.read_quads(empty).size == 0
        mem.write_quads(empty, empty)  # no-op, no error


class TestBlockHelpers:
    def test_f64_roundtrip(self, mem):
        values = np.linspace(-1.0, 1.0, 100)
        mem.write_f64(0x4000, values)
        np.testing.assert_array_equal(mem.read_f64(0x4000, 100), values)

    def test_write_array_accepts_floats(self, mem):
        mem.write_array(0x8000, np.array([1.5, 2.5]))
        np.testing.assert_array_equal(mem.read_f64(0x8000, 2), [1.5, 2.5])

    def test_sparse_allocation(self, mem):
        mem.write_quad(0x0, 1)
        mem.write_quad(1 << 40, 2)
        assert mem.bytes_allocated == 2 * (1 << 20)


class TestPoisonedLines:
    def test_poisoned_read_machine_checks(self, mem):
        from repro.errors import MachineCheckTrap
        mem.write_quad(0x1000, 42)
        mem.poison_line(0x1008)   # same 64-byte line as 0x1000
        with pytest.raises(MachineCheckTrap):
            mem.read_quad(0x1000)
        with pytest.raises(MachineCheckTrap):
            mem.write_quad(0x1038, 1)

    def test_scrub_restores_original_data(self, mem):
        values = np.arange(8, dtype=np.uint64) + 100
        mem.write_array(0x2000, values)
        mem.poison_line(0x2010)
        assert mem.poisoned_lines == (0x2000,)
        mem.scrub_line(0x2000)
        assert mem.poisoned_lines == ()
        assert np.array_equal(mem.read_array(0x2000, 8), values)

    def test_neighbor_lines_unaffected(self, mem):
        mem.write_quad(0x3040, 7)
        mem.poison_line(0x3000)
        assert mem.read_quad(0x3040) == 7

    def test_poison_is_idempotent(self, mem):
        mem.write_quad(0x4000, 9)
        mem.poison_line(0x4000)
        mem.poison_line(0x4008)   # second poison must not clobber the
        mem.scrub_line(0x4000)    # saved originals with the pattern
        assert mem.read_quad(0x4000) == 9

    def test_scrub_of_clean_line_is_a_noop(self, mem):
        mem.scrub_line(0x5000)
        assert mem.poisoned_lines == ()


class TestSnapshotRestore:
    def test_roundtrip_is_bit_identical(self, mem):
        mem.write_array(0x1000, np.arange(16, dtype=np.uint64))
        snap = mem.snapshot()
        digest = mem.content_digest()
        mem.write_quad(0x1000, 999)
        mem.write_quad(0x7777770, 1)
        assert mem.content_digest() != digest
        mem.restore(snap)
        assert mem.content_digest() == digest
        assert mem.read_quad(0x1000) == 0

    def test_snapshot_is_a_deep_copy(self, mem):
        mem.write_quad(0x1000, 5)
        snap = mem.snapshot()
        mem.write_quad(0x1000, 6)
        assert snap.chunks[0][0x1000 // 8] == 5

    def test_digest_skips_all_zero_chunks(self, mem):
        mem.write_quad(0x1000, 1)
        digest = mem.content_digest()
        mem.write_quad(1 << 30, 0)   # allocates a chunk, stays all-zero
        assert mem.content_digest() == digest

    def test_snapshot_preserves_poison_marks(self, mem):
        from repro.errors import MachineCheckTrap
        mem.write_quad(0x1000, 3)
        mem.poison_line(0x1000)
        snap = mem.snapshot()
        mem.scrub_line(0x1000)
        mem.restore(snap)
        with pytest.raises(MachineCheckTrap):
            mem.read_quad(0x1000)
