"""Page table: 512 MB pages, translation, walk accounting."""

import numpy as np
import pytest

from repro.errors import TLBMissTrap
from repro.mem.pages import PAGE_BYTES, PageTable


class TestPageTable:
    def test_tarantula_page_size(self):
        assert PAGE_BYTES == 512 << 20

    def test_identity_default(self):
        pt = PageTable()
        assert pt.translate(0x1234) == 0x1234
        assert pt.translate(PAGE_BYTES + 8) == PAGE_BYTES + 8

    def test_explicit_mapping(self):
        pt = PageTable(page_bytes=1 << 16)
        pt.map(2, 5)
        assert pt.translate((2 << 16) | 0x18) == (5 << 16) | 0x18

    def test_non_identity_without_mapping_traps(self):
        pt = PageTable(page_bytes=1 << 16, identity=False)
        with pytest.raises(TLBMissTrap):
            pt.translate(0x10000)

    def test_unmap(self):
        pt = PageTable(page_bytes=1 << 16)
        pt.map(1, 9)
        pt.unmap(1)
        assert pt.translate(1 << 16) == 1 << 16  # identity fallback

    def test_walks_counted(self):
        pt = PageTable()
        pt.translate(0)
        pt.translate(8)
        assert pt.walks == 2

    def test_translate_many_vectorized(self):
        pt = PageTable(page_bytes=1 << 16)
        pt.map(0, 3)
        addrs = np.array([0x8, 0x10, (1 << 16) + 8], dtype=np.uint64)
        out = pt.translate_many(addrs)
        assert out.tolist() == [(3 << 16) + 8, (3 << 16) + 0x10,
                                (1 << 16) + 8]

    def test_bad_page_size_rejected(self):
        with pytest.raises(ValueError):
            PageTable(page_bytes=1000)


class TestHoles:
    """Punched holes: the fault injector's TLB-unmap seam — the page
    faults on the next walk even under identity mapping."""

    def test_hole_traps_under_identity(self):
        pt = PageTable()
        pt.punch_hole(0)
        with pytest.raises(TLBMissTrap, match="hole"):
            pt.translate(0x1234)

    def test_fill_hole_services_the_fault(self):
        pt = PageTable()
        pt.punch_hole(0)
        pt.fill_hole(0)
        assert pt.translate(0x1234) == 0x1234

    def test_hole_beats_an_explicit_mapping(self):
        pt = PageTable(page_bytes=1 << 16)
        pt.map(2, 5)
        pt.punch_hole(2)
        with pytest.raises(TLBMissTrap):
            pt.translate_page(2)

    def test_other_pages_unaffected(self):
        pt = PageTable(page_bytes=1 << 16)
        pt.punch_hole(7)
        assert pt.translate_page(3) == 3

    def test_translate_many_hits_the_hole(self):
        pt = PageTable(page_bytes=1 << 16)
        pt.punch_hole(1)
        addrs = np.array([0x100, (1 << 16) + 8], dtype=np.uint64)
        with pytest.raises(TLBMissTrap):
            pt.translate_many(addrs)
