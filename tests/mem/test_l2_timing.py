"""Timing behavior of the banked L2: hits, misses, MAF, PUMP, Zbox."""

import pytest

from repro.mem.l1cache import L1DataCache
from repro.mem.l2cache import BankedL2, L2Config
from repro.mem.maf import MissAddressFile
from repro.mem.pump import PumpUnit
from repro.mem.rambus import RambusConfig
from repro.mem.zbox import Zbox


def _lines(n, start=0):
    return [start + i * 64 for i in range(n)]


def make_l2(**kw):
    cfg = L2Config(**kw)
    return BankedL2(cfg, Zbox(RambusConfig()))


class TestHitsAndMisses:
    def test_hit_faster_than_miss(self):
        l2 = make_l2()
        t_miss = l2.access_slice(_lines(16), 16, False, 0.0)
        l2_warm = make_l2()
        l2_warm.warm(_lines(16))
        t_hit = l2_warm.access_slice(_lines(16), 16, False, 0.0)
        assert t_hit < t_miss

    def test_hit_latency_matches_config(self):
        l2 = make_l2(hit_latency=20.0)
        l2.warm(_lines(16))
        t = l2.access_slice(_lines(16), 16, False, 0.0)
        assert t == pytest.approx(20.0)  # lookup starts at 0, data at +20

    def test_second_access_hits(self):
        l2 = make_l2()
        l2.access_slice(_lines(16), 16, False, 0.0)
        assert l2.counters["line_misses"] == 16
        l2.access_slice(_lines(16), 16, False, 100000.0)
        assert l2.counters["line_hits"] == 16

    def test_slice_too_wide_rejected(self):
        l2 = make_l2()
        with pytest.raises(Exception):
            l2.access_slice(_lines(17), 17, False, 0.0)

    def test_empty_slice_is_cheap(self):
        l2 = make_l2()
        t = l2.access_slice([], 0, False, 0.0)
        assert t == pytest.approx(l2.config.hit_latency)


class TestSliceAtomicity:
    def test_partial_miss_delays_whole_slice(self):
        """One missing address makes the whole slice sleep (section 3.4)."""
        l2 = make_l2()
        l2.warm(_lines(15))  # 15 of 16 lines resident
        t_partial = l2.access_slice(_lines(16), 16, False, 0.0)
        l2_warm = make_l2()
        l2_warm.warm(_lines(16))
        t_full = l2_warm.access_slice(_lines(16), 16, False, 0.0)
        assert t_partial > t_full + l2.zbox.config.access_latency / 2

    def test_maf_allocated_per_miss_slice(self):
        l2 = make_l2()
        l2.access_slice(_lines(16), 16, False, 0.0)
        assert l2.maf.counters["allocations"] == 1
        assert l2.maf.counters["missing_lines"] == 16


class TestMafPressure:
    def test_maf_full_stalls(self):
        l2 = make_l2(maf_entries=1)
        l2.access_slice(_lines(16, 0), 16, False, 0.0)
        l2.access_slice(_lines(16, 0x10000), 16, False, 0.0)
        assert l2.counters["maf_stalls"] >= 1

    def test_peak_occupancy_tracked(self):
        l2 = make_l2(maf_entries=8)
        for i in range(4):
            l2.access_slice(_lines(16, i * 0x10000), 16, False, 0.0)
        assert 1 <= l2.maf.peak_occupancy <= 8


class TestWritePaths:
    def test_full_line_pump_store_uses_directory_path(self):
        l2 = make_l2()
        l2.access_slice(_lines(16), 128, True, 0.0, pump_bit=True,
                        full_line_write=True)
        stats = l2.zbox.stats()
        assert stats["dirty_transitions"] == 16
        assert stats["fills"] == 0

    def test_partial_store_fills_lines(self):
        l2 = make_l2()
        l2.access_slice(_lines(16), 16, True, 0.0)
        stats = l2.zbox.stats()
        assert stats["fills"] == 16
        assert stats["dirty_transitions"] == 0

    def test_dirty_eviction_writes_back(self):
        # 2-way tiny L2: fill a set three times with dirty lines
        l2 = make_l2(capacity_bytes=2 * 64 * 4, ways=2)
        set_stride = 4 * 64  # 4 sets
        for i in range(3):
            l2.access_slice([i * set_stride], 1, True, float(i * 1000))
        assert l2.zbox.stats()["writebacks"] >= 1


class TestPump:
    def test_pump_stream_occupies_4_cycles_per_128qw(self):
        pump = PumpUnit()
        t0 = pump.stream(128, False, 0.0)
        assert t0 == pytest.approx(4.0)
        t1 = pump.stream(128, False, 0.0)
        assert t1 == pytest.approx(8.0)  # bus serializes

    def test_read_and_write_paths_independent(self):
        pump = PumpUnit()
        tr = pump.stream(128, False, 0.0)
        tw = pump.stream(128, True, 0.0)
        assert tr == pytest.approx(4.0)
        assert tw == pytest.approx(4.0)

    def test_disabled_pump_refuses(self):
        pump = PumpUnit(enabled=False)
        with pytest.raises(Exception):
            pump.stream(128, False, 0.0)


class TestCoherencyHooks:
    def test_vector_touch_of_pbit_line_invalidates_l1(self):
        l1 = L1DataCache()
        l2 = BankedL2(L2Config(), Zbox(), l1=l1)
        l1.store(0x1000)
        l1.drain()
        l2.set_pbits([0x1000])
        t_with = l2.access_slice([0x1000], 1, False, 0.0)
        assert l2.counters["pbit_hits"] == 1
        assert l1.counters["coherency_invalidates"] == 1
        # second touch: P-bit cleared, no penalty
        l2.access_slice([0x1000], 1, False, 1000.0)
        assert l2.counters["pbit_hits"] == 1

    def test_scalar_access_sets_pbit(self):
        l2 = make_l2()
        l2.scalar_access(0x2000, False, 0.0)
        assert l2.tags.lookup(0x2000).pbit


class TestMafUnit:
    def test_entry_accounting(self):
        maf = MissAddressFile(entries=2)
        e1 = maf.allocate(0.0, {0})
        maf.release(e1, 10.0)
        assert maf.earliest_entry(0.0) == 0.0
        e2 = maf.allocate(0.0, {64})
        e3 = maf.allocate(0.0, {128})
        maf.release(e2, 20.0)
        maf.release(e3, 30.0)
        assert maf.earliest_entry(15.0) == 20.0

    def test_panic_mode_trips_and_clears(self):
        maf = MissAddressFile(entries=4, replay_threshold=2)
        entry = maf.allocate(0.0, {0})
        assert not maf.record_replay(entry)
        assert not maf.record_replay(entry)
        assert maf.record_replay(entry)  # third replay > threshold
        assert maf.panic_mode
        maf.release(entry, 50.0)
        assert not maf.panic_mode
        assert maf.counters["panic_exits"] == 1


class TestWarmRange:
    def test_partial_final_line_is_warmed(self):
        l2 = BankedL2()
        line = l2.config.line_bytes
        # 65 bytes from an aligned base crosses into a second line
        l2.warm_range(8 * line, line + 1)
        assert l2.tags.lookup(8 * line) is not None
        assert l2.tags.lookup(9 * line) is not None
        assert l2.tags.lookup(10 * line) is None

    def test_unaligned_base_and_end(self):
        l2 = BankedL2()
        line = l2.config.line_bytes
        l2.warm_range(4 * line + 16, line)   # spans two lines, both partial
        assert l2.tags.lookup(4 * line) is not None
        assert l2.tags.lookup(5 * line) is not None
        assert l2.tags.lookup(6 * line) is None

    def test_empty_range_warms_nothing(self):
        l2 = BankedL2()
        l2.warm_range(0x1000, 0)
        assert l2.tags.lookup(0x1000) is None
