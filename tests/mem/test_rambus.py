"""RAMBUS channel model: bandwidth, turnaround, row-buffer behavior."""

import pytest

from repro.mem.rambus import RambusConfig, RambusSystem
from repro.mem.zbox import Zbox


class TestBandwidth:
    def test_line_transfer_cycles(self):
        cfg = RambusConfig(ports=8, bytes_per_core_cycle=32.0)
        assert cfg.line_transfer_cycles == pytest.approx(16.0)

    def test_streaming_reads_approach_raw_bandwidth(self):
        cfg = RambusConfig(turnaround_cycles=0.0, row_activate_cycles=0.0,
                           row_precharge_cycles=0.0)
        ram = RambusSystem(cfg)
        n = 512
        for i in range(n):
            ram.transaction(i * 64, "read", 0.0)
        achieved = n * 64 / ram.last_finish()
        assert achieved == pytest.approx(cfg.bytes_per_core_cycle, rel=0.05)

    def test_ports_parallelize(self):
        cfg = RambusConfig(ports=8, turnaround_cycles=0.0,
                           row_activate_cycles=0.0, row_precharge_cycles=0.0)
        one = RambusSystem(RambusConfig(ports=1, turnaround_cycles=0.0,
                                        row_activate_cycles=0.0,
                                        row_precharge_cycles=0.0,
                                        bytes_per_core_cycle=cfg.bytes_per_core_cycle / 8))
        eight = RambusSystem(cfg)
        for i in range(64):
            one.transaction(i * 64, "read", 0.0)
            eight.transaction(i * 64, "read", 0.0)
        assert eight.last_finish() < one.last_finish() / 7


class TestTurnaround:
    def test_alternating_reads_writes_cost_more(self):
        base = dict(row_activate_cycles=0.0, row_precharge_cycles=0.0)
        quiet = RambusSystem(RambusConfig(ports=1, turnaround_cycles=0.0, **base))
        noisy = RambusSystem(RambusConfig(ports=1, turnaround_cycles=8.0, **base))
        for i in range(32):
            kind = "read" if i % 2 == 0 else "write"
            quiet.transaction(0, kind, 0.0)
            noisy.transaction(0, kind, 0.0)
        assert noisy.last_finish() > quiet.last_finish()
        assert noisy.counters["turnarounds"] == 31

    def test_dirread_uses_read_bus_direction(self):
        ram = RambusSystem(RambusConfig(ports=1))
        ram.transaction(0, "read", 0.0)
        ram.transaction(64 * 8, "dirread", 0.0)
        assert ram.counters["turnarounds"] == 0


class TestRowBuffer:
    def test_sequential_hits_open_row(self):
        ram = RambusSystem(RambusConfig(ports=1, row_bytes=2048))
        for i in range(16):
            ram.transaction(i * 64, "read", 0.0)
        # first access activates; the other 31 lines of the row hit
        assert ram.counters["row_activates"] == 1
        assert ram.counters["row_hits"] == 15

    def test_random_pattern_activates_much_more(self, rng):
        seq = RambusSystem(RambusConfig())
        rand = RambusSystem(RambusConfig())
        for i in range(256):
            seq.transaction(i * 64, "read", 0.0)
        addrs = rng.integers(0, 1 << 26, 256) * 64
        for a in addrs:
            rand.transaction(int(a), "read", 0.0)
        assert rand.counters["row_activates"] > 2 * seq.counters["row_activates"]


class TestZbox:
    def test_raw_vs_useful_bytes(self):
        z = Zbox()
        z.fill_line(0, 0.0)
        z.writeback_line(64, 0.0)
        z.dirty_transition(128, 0.0)
        assert z.raw_bytes() == 3 * 64
        assert z.useful_bytes() == 2 * 64

    def test_fill_includes_access_latency(self):
        z = Zbox()
        ready = z.fill_line(0, 0.0)
        assert ready > z.config.access_latency

    def test_copy_pattern_directory_share_is_one_third(self):
        """The STREAMS copy accounting of section 6: read + wh64 + write
        -> 1/3 of raw bandwidth is directory traffic."""
        z = Zbox()
        for i in range(64):
            z.fill_line(i * 64, 0.0)                 # load A
            z.dirty_transition((1 << 20) + i * 64, 0.0)  # wh64 B
            z.writeback_line((1 << 20) + i * 64, 0.0)    # store B
        assert z.useful_bytes() / z.raw_bytes() == pytest.approx(2 / 3)
