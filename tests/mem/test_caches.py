"""Set-associative tag array, L1 write buffer, and P-bit state tests."""

import pytest

from repro.errors import ConfigError
from repro.mem.banks import SetAssocCache, bank_of, quadrant_of
from repro.mem.l1cache import L1DataCache


class TestGeometry:
    def test_bank_bits_9_to_6(self):
        assert bank_of(0x000) == 0
        assert bank_of(0x040) == 1
        assert bank_of(0x3C0) == 15
        assert bank_of(0x400) == 0  # wraps every 1 KiB

    def test_quadrant_bits_7_to_6(self):
        assert quadrant_of(0x00) == 0
        assert quadrant_of(0x40) == 1
        assert quadrant_of(0xC0) == 3

    def test_bad_capacity_raises(self):
        with pytest.raises(ConfigError):
            SetAssocCache(1000, 8)


class TestSetAssocCache:
    def _tiny(self):
        # 4 sets x 2 ways x 64B = 512 bytes: easy to force evictions
        return SetAssocCache(512, 2)

    def test_miss_then_hit(self):
        cache = self._tiny()
        hit, _ = cache.access(0x0)
        assert not hit
        hit, _ = cache.access(0x0)
        assert hit

    def test_same_line_quadwords_hit(self):
        cache = self._tiny()
        cache.access(0x0)
        assert cache.contains(0x38)

    def test_lru_eviction_order(self):
        cache = self._tiny()
        # set 0 holds lines 0x000, 0x100, 0x200... (4 sets of 64B)
        cache.access(0x000)
        cache.access(0x100)
        cache.access(0x000)          # refresh line 0
        _, evicted = cache.access(0x200)
        assert evicted is not None
        assert evicted.addr == 0x100  # LRU, not the refreshed line

    def test_dirty_eviction_reports_writeback(self):
        cache = self._tiny()
        cache.access(0x000, is_write=True)
        cache.access(0x100)
        _, evicted = cache.access(0x200)
        assert evicted.addr == 0x000 and evicted.dirty

    def test_pbit_set_by_core_access_and_sticky(self):
        cache = self._tiny()
        cache.access(0x0, from_core=True)
        assert cache.lookup(0x0).pbit
        cache.access(0x0, from_core=False)
        assert cache.lookup(0x0).pbit  # vector touch does not clear here

    def test_invalidate_removes_line(self):
        cache = self._tiny()
        cache.access(0x0)
        assert cache.invalidate(0x0) is not None
        assert not cache.contains(0x0)
        assert cache.invalidate(0x0) is None

    def test_flush_returns_dirty_lines(self):
        cache = self._tiny()
        cache.access(0x000, is_write=True)
        cache.access(0x100)
        dirty = cache.flush()
        assert [e.addr for e in dirty] == [0x000]
        assert cache.resident_lines == 0

    def test_counters(self):
        cache = self._tiny()
        cache.access(0x0)
        cache.access(0x0)
        assert cache.counters["hits"] == 1
        assert cache.counters["misses"] == 1


class TestL1WriteBuffer:
    def test_store_is_invisible_until_drain(self):
        l1 = L1DataCache()
        l1.store(0x1000)
        assert 0x1000 in l1.pending_lines()
        assert not l1.tags.contains(0x1000)

    def test_drain_pushes_stores_and_reports_lines(self):
        l1 = L1DataCache()
        l1.store(0x1000)
        l1.store(0x2000)
        drained = l1.drain()
        assert set(drained) == {0x1000, 0x2000}
        assert l1.tags.contains(0x1000)
        assert not l1.pending_lines()

    def test_buffer_overflow_spills_oldest(self):
        l1 = L1DataCache(write_buffer_entries=2)
        l1.store(0x1000)
        l1.store(0x2000)
        l1.store(0x3000)
        assert l1.counters["write_buffer_spills"] == 1
        assert l1.tags.contains(0x1000)

    def test_invalidate_reports_dirtiness(self):
        l1 = L1DataCache()
        l1.store(0x1000)
        l1.drain()
        assert l1.invalidate(0x1000) is True   # dirty write-through
        assert l1.invalidate(0x1000) is False  # already gone
