"""Fault injection: forcing the rare paths of the memory system.

The replay/panic machinery of section 3.4 exists for livelock-class
corner cases that normal workloads never hit; these tests construct the
hostile conditions directly.
"""

import pytest

from repro.errors import SimulationError
from repro.mem.l2cache import BankedL2, L2Config
from repro.mem.maf import MissAddressFile
from repro.mem.zbox import Zbox


class TestReplayPath:
    def test_eviction_between_fill_and_retry_causes_replay(self):
        """A hostile interleaving: while slice A sleeps on its miss,
        competing accesses evict its line, so its retry walk misses
        again and replays."""
        # 1 set x 2 ways: trivially thrashable
        l2 = BankedL2(L2Config(capacity_bytes=2 * 64, ways=2), Zbox())

        # occupy the MAF path with a miss that wakes late
        t = l2.access_slice([0x000], 1, False, 0.0)
        assert l2.counters["line_misses"] == 1
        # before the wake completes in *simulated* time we schedule two
        # more accesses that evict line 0x000 (same single set)
        l2.access_slice([0x040], 1, False, 1.0)
        l2.access_slice([0x080], 1, False, 2.0)
        # now a second access to 0x000 must re-miss (it was evicted)
        t2 = l2.access_slice([0x000], 1, False, 3.0)
        assert l2.counters["line_misses"] >= 3
        assert t2 > 0

    def test_hard_replay_bound_guards_model_bugs(self):
        """The paper's panic mode guarantees forward progress; in the
        model, exceeding MAX_REPLAYS raises instead of spinning."""
        from repro.mem import l2cache
        assert l2cache.MAX_REPLAYS >= 8


class TestMafPanic:
    def test_panic_mode_cycle(self):
        maf = MissAddressFile(entries=2, replay_threshold=1)
        entry = maf.allocate(0.0, {0x0})
        maf.record_replay(entry)          # 1: at threshold
        tripped = maf.record_replay(entry)  # 2: beyond -> panic
        assert tripped and maf.panic_mode
        maf.release(entry, 100.0)
        assert not maf.panic_mode

    def test_only_one_panic_entry_counted(self):
        maf = MissAddressFile(entries=2, replay_threshold=0)
        e = maf.allocate(0.0, {0x0})
        maf.record_replay(e)
        maf.record_replay(e)
        assert maf.counters["panic_entries"] == 1

    def test_allocate_when_full_is_a_bug(self):
        maf = MissAddressFile(entries=1)
        e = maf.allocate(0.0, {0})
        maf.release(e, 100.0)     # entry stays occupied until cycle 100
        with pytest.raises(Exception):
            maf.allocate(0.0, {128})
        # honoring earliest_entry first is the correct protocol
        t = maf.earliest_entry(0.0)
        assert t == 100.0
        maf.allocate(t, {128})


class TestMafNackAccounting:
    """Panic mode NACKs competing requests (section 3.4's livelock
    escape): entry via the replay threshold, NACK accounting while
    panicked, and the exit back to normal arbitration."""

    def _panicked_maf(self):
        maf = MissAddressFile(entries=4, replay_threshold=1,
                              nack_retry_cycles=16.0)
        owner = maf.allocate(0.0, {0x0})
        while not maf.panic_mode:
            maf.record_replay(owner)
        return maf, owner

    def test_entry_records_the_owner(self):
        maf, owner = self._panicked_maf()
        assert maf.panic_owner == owner.slice_id
        assert maf.counters["panic_entries"] == 1

    def test_competitors_are_nacked_while_panicked(self):
        maf, _ = self._panicked_maf()
        # free entries exist, but panic mode NACKs the request and
        # tells the competitor to retry nack_retry_cycles later
        t = maf.earliest_entry(10.0)
        assert t == 26.0
        assert maf.counters["nacks"] == 1
        # every retry while still panicked is NACKed again
        t = maf.earliest_entry(t)
        assert t == 42.0
        assert maf.counters["nacks"] == 2

    def test_innocent_release_does_not_exit_panic(self):
        maf, _ = self._panicked_maf()
        bystander = maf.allocate(maf.earliest_entry(0.0), {0x40})
        maf.release(bystander, 50.0)
        assert maf.panic_mode and maf.panic_owner is not None

    def test_owner_release_restores_normal_arbitration(self):
        maf, owner = self._panicked_maf()
        maf.release(owner, 100.0)
        assert not maf.panic_mode
        assert maf.panic_owner is None
        assert maf.counters["panic_exits"] == 1
        nacks_before = maf.counters["nacks"]
        assert maf.earliest_entry(200.0) == 200.0  # no NACK delay
        assert maf.counters["nacks"] == nacks_before

    def test_normal_operation_never_nacks(self):
        maf = MissAddressFile(entries=2, replay_threshold=8)
        e = maf.allocate(maf.earliest_entry(0.0), {0x0})
        maf.record_replay(e)
        maf.release(e, 10.0)
        assert maf.earliest_entry(5.0) == 5.0
        assert maf.counters["nacks"] == 0


class TestSliceWidth:
    def test_oversized_slice_rejected(self):
        l2 = BankedL2(L2Config(), Zbox())
        with pytest.raises(SimulationError):
            l2.access_slice([i * 64 for i in range(17)], 17, False, 0.0)


class TestMissMerge:
    def test_second_slice_waits_for_inflight_fill(self):
        """Two slices touching the same cold line: the second 'hits' the
        freshly allocated tags but must wait for the fill in flight."""
        l2 = BankedL2(L2Config(), Zbox())
        t1 = l2.access_slice([0x0], 1, False, 0.0)
        t2 = l2.access_slice([0x0], 1, False, 1.0)
        # the merge makes t2 comparable to t1, not a cheap 28-cycle hit
        assert t2 >= t1 - l2.config.hit_latency
        assert l2.counters["miss_merges"] == 1

    def test_after_fill_lands_hits_are_cheap_again(self):
        l2 = BankedL2(L2Config(), Zbox())
        t1 = l2.access_slice([0x0], 1, False, 0.0)
        t2 = l2.access_slice([0x0], 1, False, t1 + 10.0)
        assert t2 <= t1 + 10.0 + l2.config.hit_latency + 1.0
        assert l2.counters["miss_merges"] == 0
