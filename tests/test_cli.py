"""CLI surface tests (python -m repro ...)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for cmd in ("list", "run", "report", "table1", "table2", "table3",
                    "table4", "fig6", "fig7", "fig8", "fig9", "asm"):
            args = parser.parse_args([cmd] if cmd not in ("run", "asm")
                                     else [cmd, "dgemm" if cmd == "run"
                                           else "x.s"])
            assert args.command == cmd

    def test_run_rejects_unknown_kernel(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "bogus"])

    def test_run_rejects_unknown_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "dgemm", "--config", "EV9"])

    def test_analytic_tables_reject_quick(self):
        # table1/table3 run no simulation; --quick would be a silent lie
        for cmd in ("table1", "table3"):
            with pytest.raises(SystemExit):
                build_parser().parse_args([cmd, "--quick"])

    def test_simulation_grids_take_engine_flags(self):
        parser = build_parser()
        for cmd in ("table2", "table4", "fig6", "fig7", "fig8", "fig9",
                    "report"):
            args = parser.parse_args([cmd, "--quick", "--jobs", "2",
                                      "--no-cache"])
            assert args.quick and args.jobs == 2 and args.no_cache

    def test_report_defaults_to_all_cores_and_cache(self):
        args = build_parser().parse_args(["report"])
        assert args.jobs == 0 and not args.no_cache

    def test_report_defaults_to_full_evaluation(self):
        args = build_parser().parse_args(["report"])
        assert args.suite is None and args.instances == "default"

    def test_report_takes_suite_and_instances(self):
        args = build_parser().parse_args(
            ["report", "--suite", "rivec", "--instances", "baselines"])
        assert args.suite == "rivec" and args.instances == "baselines"

    def test_list_suites_registered(self):
        args = build_parser().parse_args(["list-suites"])
        assert args.command == "list-suites"

    def test_bench_takes_suite(self):
        args = build_parser().parse_args(["bench", "--suite", "rivec"])
        assert args.suite == "rivec"
        assert build_parser().parse_args(["bench"]).suite is None

    def test_report_and_bench_take_pool_flags(self):
        parser = build_parser()
        for cmd in ("report", "bench"):
            args = parser.parse_args([cmd, "--timeout", "5", "--deadline",
                                      "60", "--pool", "process"])
            assert args.timeout == 5.0
            assert args.deadline == 60.0
            assert args.pool == "process"

    def test_pool_flags_default_to_no_budget(self):
        args = build_parser().parse_args(["report"])
        assert args.timeout is None and args.deadline is None
        assert args.pool == "auto"

    def test_pool_backend_choices_are_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "--pool", "threads"])

    def test_chaos_defaults_to_sim_layer(self):
        args = build_parser().parse_args(["chaos"])
        assert args.layer == "sim"
        assert args.seed == 1234

    def test_chaos_pool_layer_takes_drill_flags(self):
        args = build_parser().parse_args(
            ["chaos", "--layer", "pool", "--seed", "7", "--suite", "rivec",
             "--jobs", "3", "--timeout", "4", "--quick",
             "--log", "drill.txt"])
        assert args.layer == "pool" and args.seed == 7
        assert args.suite == "rivec" and args.jobs == 3
        assert args.timeout == 4.0 and args.quick
        assert args.log == "drill.txt"

    def test_chaos_layer_choices_are_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--layer", "network"])

    def test_chaos_serve_layer_parses(self):
        args = build_parser().parse_args(
            ["chaos", "--layer", "serve", "--seed", "1234", "--quick",
             "--jobs", "2", "--timeout", "3"])
        assert args.layer == "serve" and args.seed == 1234

    def test_list_suites_takes_format(self):
        assert build_parser().parse_args(["list-suites"]).format == "text"
        args = build_parser().parse_args(["list-suites", "--format", "json"])
        assert args.format == "json"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["list-suites", "--format", "yaml"])

    def test_serve_registered_with_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1" and args.port == 8537
        assert args.jobs == 0 and args.queue_limit == 256
        assert args.timeout is None and not args.no_cache

    def test_serve_takes_the_pool_budget_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--jobs", "2", "--queue-limit", "8",
             "--batch-max", "4", "--timeout", "5", "--deadline", "60",
             "--retries", "0", "--no-cache"])
        assert args.port == 0 and args.jobs == 2
        assert args.queue_limit == 8 and args.batch_max == 4
        assert args.timeout == 5.0 and args.deadline == 60.0
        assert args.retries == 0 and args.no_cache


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "dgemm" in out and "T10" in out

    def test_run_vector(self, capsys):
        assert main(["run", "streams.copy", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "OPC" in out and "verified" in out

    def test_run_scalar(self, capsys):
        assert main(["run", "streams.copy", "--config", "EV8",
                     "--scale", "0.05"]) == 0
        assert "OPC" in capsys.readouterr().out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        assert "core_ghz" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "Vbox" in capsys.readouterr().out

    def test_list_suites(self, capsys):
        assert main(["list-suites"]) == 0
        out = capsys.readouterr().out
        for suite in ("tarantula", "figures", "table4", "rivec"):
            assert suite in out
        for family in ("default", "baselines", "scaling", "pump"):
            assert family in out

    def test_list_suites_json_is_machine_readable(self, capsys):
        assert main(["list-suites", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        suites = {s["name"] for s in payload["suites"]}
        assert {"tarantula", "figures", "table4", "rivec"} <= suites
        families = {f["name"] for f in payload["families"]}
        assert {"default", "baselines", "scaling", "pump"} <= families
        by_name = {s["name"]: s for s in payload["suites"]}
        assert "streams.copy" in by_name["table4"]["workloads"]
        default = next(f for f in payload["families"]
                       if f["name"] == "default")
        for inst in default["instances"]:
            assert set(inst) == {"name", "config", "scale_factor",
                                 "overrides", "apply_l2_hint"}

    def test_report_unknown_suite_exits_two_with_suggestion(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["report", "--suite", "rivecc", "--no-cache"])
        assert exc.value.code == 2
        assert "did you mean: rivec" in capsys.readouterr().err

    def test_report_unknown_family_exits_two(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["report", "--suite", "rivec", "--instances", "bogus",
                  "--no-cache"])
        assert exc.value.code == 2
        assert "unknown instance family" in capsys.readouterr().err

    def test_asm(self, tmp_path, capsys):
        src = tmp_path / "kernel.s"
        src.write_text("setvl #128\nvvaddt v1, v2, v3\n")
        assert main(["asm", str(src)]) == 0
        out = capsys.readouterr().out
        assert "vvaddt" in out and "2 instructions" in out


class TestInterruptExitCode:
    """Ctrl-C anywhere in a command exits 130 with a partial-result
    note, instead of a stack trace."""

    @pytest.fixture(autouse=True)
    def _reset_stats(self):
        from repro.harness.engine import STATS

        STATS.reset()
        yield
        STATS.reset()

    def test_keyboard_interrupt_exits_130(self, monkeypatch, capsys):
        def boom(args):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.cli._cmd_list", boom)
        assert main(["list"]) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_absorbed_interrupt_still_exits_130(self, monkeypatch, capsys):
        # run_grid converts Ctrl-C into Interrupted failures and returns
        # normally; the CLI must still report the 130 exit code
        def absorbed(args):
            from repro.harness.engine import STATS

            STATS.interrupted = 2
            return 0

        monkeypatch.setattr("repro.cli._cmd_list", absorbed)
        assert main(["list"]) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_clean_run_is_untouched(self, capsys):
        assert main(["list"]) == 0


class TestLint:
    """Exit-code contract: 0 clean, 1 findings, 2 usage error."""

    def test_clean_kernel_exits_zero(self, capsys):
        assert main(["lint", "streams.copy"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        src = tmp_path / "bad.s"
        src.write_text("vvaddt v1, v2, v3\n")     # vector op, no setvl
        assert main(["lint", str(src)]) == 1
        assert "VL_UNSET" in capsys.readouterr().out

    def test_unknown_target_exits_two_with_suggestion(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["lint", "ccradx"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "did you mean: ccradix?" in err
        assert "streams.triad" in err       # the full kernel list prints

    def test_missing_target_exits_two(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["lint"])
        assert exc.value.code == 2

    def test_unassemblable_file_exits_two(self, tmp_path, capsys):
        src = tmp_path / "nonsense.s"
        src.write_text("frobnicate v1\n")
        with pytest.raises(SystemExit) as exc:
            main(["lint", str(src)])
        assert exc.value.code == 2
        assert "does not assemble" in capsys.readouterr().err

    def test_json_format_has_stable_fields(self, capsys):
        assert main(["lint", "streams.copy", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (prog,) = payload["programs"]
        assert prog["program"] == "streams.copy"
        assert prog["errors"] == 0 and prog["warnings"] == 0
        for diag in prog["diagnostics"]:
            assert set(diag) == {"code", "severity", "pc", "message",
                                 "instruction"}

    def test_json_format_reports_findings(self, tmp_path, capsys):
        src = tmp_path / "bad.s"
        src.write_text("vvaddt v1, v2, v3\n")
        assert main(["lint", str(src), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        (prog,) = payload["programs"]
        assert prog["errors"] >= 1
        codes = {d["code"] for d in prog["diagnostics"]}
        assert "VL_UNSET" in codes

    def test_list_codes_enumerates_every_code(self, capsys):
        from repro.analysis import Code

        assert main(["lint", "--list-codes"]) == 0
        out = capsys.readouterr().out
        for code in Code:
            assert code.name in out
        assert "MEM_OOB" in out and "error" in out
