"""Control-state lattice: transfer function and join."""

from repro.analysis.lattice import AbstractValue, ControlState, MaskState
from repro.isa.instructions import Instruction


class TestAbstractValue:
    def test_initial_is_unset(self):
        assert AbstractValue.unset().is_unset

    def test_join_identical(self):
        a = AbstractValue.known(128)
        assert a.join(AbstractValue.known(128)) == a

    def test_join_disagreeing_knowns_is_unknown(self):
        joined = AbstractValue.known(64).join(AbstractValue.known(128))
        assert not joined.is_known
        assert not joined.is_unset

    def test_join_with_unset_stays_unset(self):
        # "maybe never set" must survive the merge so reads get flagged
        joined = AbstractValue.known(64).join(AbstractValue.unset())
        assert joined.is_unset

    def test_join_known_unknown(self):
        joined = AbstractValue.known(64).join(AbstractValue.unknown())
        assert not joined.is_known and not joined.is_unset


class TestControlState:
    def test_initial_everything_unset(self):
        state = ControlState.initial()
        assert state.vl.is_unset and state.vs.is_unset and state.vm.is_unset

    def test_setvl_immediate_is_known(self):
        state = ControlState.initial().step(Instruction("setvl", imm=64), 0)
        assert state.vl == AbstractValue.known(64)

    def test_setvl_from_register_is_unknown(self):
        state = ControlState.initial().step(Instruction("setvl", ra=5), 0)
        assert not state.vl.is_known and not state.vl.is_unset

    def test_setvs_immediate(self):
        state = ControlState.initial().step(Instruction("setvs", imm=8), 0)
        assert state.vs == AbstractValue.known(8)

    def test_setvm_records_producer_and_vl_regime(self):
        state = ControlState.initial()
        state = state.step(Instruction("setvl", imm=128), 0)
        state = state.step(Instruction("setvm", va=3), 1)
        assert state.vm.set_at == 1
        assert state.vm.vl_at_def == AbstractValue.known(128)

    def test_non_control_instruction_leaves_state(self):
        state = ControlState.initial().step(Instruction("setvl", imm=128), 0)
        after = state.step(Instruction("vvaddt", va=1, vb=2, vd=3), 1)
        assert after == state

    def test_join_of_paths(self):
        a = ControlState.initial().step(Instruction("setvl", imm=64), 0)
        b = ControlState.initial().step(Instruction("setvl", imm=128), 0)
        joined = a.join(b)
        assert not joined.vl.is_known and not joined.vl.is_unset

    def test_mask_join_unset_dominates(self):
        set_mask = MaskState(set_at=3, vl_at_def=AbstractValue.known(128))
        assert set_mask.join(MaskState()).is_unset
