"""Symbolic vector-memory analyzer: domain, footprints, dependences,
and the lint rules (docs/ANALYSIS.md, "The vmem pass")."""

import importlib.util
import pathlib

from repro.analysis import Code, DepKind, build_dep_graph
from repro.analysis.diagnostics import LintReport
from repro.analysis.footprint import Footprint, interval_within
from repro.analysis.symbolic import SymExpr
from repro.analysis.vmem import (
    analyze_memory,
    check_memory,
    memory_dependences,
)
from repro.isa.builder import KernelBuilder


def _report(program, buffers=None):
    report = LintReport(program_name=program.name)
    check_memory(program, report, buffers=buffers)
    return report


def _prologue(name="k", vl=128, vs=8):
    kb = KernelBuilder(name)
    kb.setvl(vl)
    kb.setvs(vs)
    return kb


class TestSymExpr:
    def test_constant_arithmetic(self):
        e = SymExpr.constant(8).shift(8).times(2)
        assert e.is_const and e.const == 32

    def test_same_param_bases_have_concrete_delta(self):
        base = SymExpr.param("b")
        assert base.shift(64).delta(base.shift(8)) == 56

    def test_different_params_have_no_delta(self):
        assert SymExpr.param("a").delta(SymExpr.param("b")) is None

    def test_times_distributes_over_terms(self):
        e = SymExpr.param("b").shift(4).times(3)
        assert e.const == 12
        assert e.terms == (("b", 3),)

    def test_cancellation_produces_a_constant(self):
        e = SymExpr.param("b").shift(5)
        diff = e.minus(SymExpr.param("b"))
        assert diff.is_const and diff.const == 5

    def test_widening_beyond_max_terms(self):
        acc = SymExpr.constant(0)
        for i in range(9):
            acc = acc.plus(SymExpr.param(f"p{i}"))
            if acc is None:
                break
        assert acc is None


def _strided(base, stride, length):
    return Footprint(base=SymExpr.constant(base), kind="strided",
                     stride=stride, length=length)


class TestFootprintRelations:
    def test_dense_disjoint(self):
        a = _strided(0x1000, 8, 128)
        b = _strided(0x1400, 8, 128)
        assert not a.may_overlap(b)
        assert not a.must_overlap(b)

    def test_dense_overlap_is_must(self):
        a = _strided(0x1000, 8, 128)
        b = _strided(0x1008, 8, 128)
        assert a.may_overlap(b)
        assert a.must_overlap(b)

    def test_equal_stride_phase_gap_is_disjoint(self):
        # interleaved rows: same stride 32, bases 16 bytes apart — no
        # element of one ever touches an element of the other
        a = _strided(0x1000, 32, 16)
        b = _strided(0x1010, 32, 16)
        assert not a.may_overlap(b)

    def test_equal_stride_congruent_is_must(self):
        a = _strided(0x1000, 32, 16)
        b = _strided(0x1000 + 64, 32, 8)
        assert a.may_overlap(b)
        assert a.must_overlap(b)

    def test_scalar_in_progression(self):
        a = _strided(0x1000, 16, 4)          # slots at 0,16,32,48
        hit = Footprint(base=SymExpr.constant(0x1020), kind="scalar")
        miss = Footprint(base=SymExpr.constant(0x1008), kind="scalar")
        assert a.must_overlap(hit)
        assert not a.must_overlap(miss)

    def test_unknown_stride_widens_to_may(self):
        a = Footprint(base=SymExpr.constant(0x1000), kind="strided",
                      stride=None, length=128)
        b = _strided(0x9000, 8, 1)
        assert a.may_overlap(b)
        assert not a.must_overlap(b)

    def test_symbolic_bases_same_param_still_compare(self):
        base = SymExpr.param("r1.entry")
        a = Footprint(base=base, kind="strided", stride=8, length=4)
        b = Footprint(base=base.shift(0x100), kind="strided",
                      stride=8, length=4)
        assert not a.may_overlap(b)

    def test_covers_strided_membership(self):
        a = _strided(0x1000, 16, 4)
        assert a.covers(0x1000) and a.covers(0x1030)
        assert not a.covers(0x1008)
        assert not a.covers(0x1040)

    def test_covers_indexed_interval(self):
        a = Footprint(base=SymExpr.constant(0x1000), kind="indexed",
                      length=128, off_lo=0, off_hi=1016)
        assert a.covers(0x1000) and a.covers(0x1000 + 1016)
        assert not a.covers(0xff8)

    def test_abs_interval(self):
        assert _strided(0x1000, 8, 4).abs_interval() == (0x1000, 0x1020)
        assert interval_within((0x1000, 0x1020), (0x1000, 0x1400))


class TestAnalyzeMemory:
    def test_strided_footprint_shape(self):
        kb = _prologue(vl=64, vs=16)
        kb.lda(1, 0x1000)
        kb.vloadq(2, rb=1, disp=0x20)
        analysis = analyze_memory(kb.build())
        (acc,) = analysis.accesses
        fp = acc.footprint
        assert fp.kind == "strided"
        assert fp.base.const == 0x1020
        assert fp.stride == 16 and fp.length == 64
        assert acc.vl_known

    def test_gather_offset_interval_through_viota_pipeline(self):
        kb = _prologue()
        kb.lda(1, 0x1000)
        kb.viota(2)
        kb.vssll(3, 2, imm=3)
        kb.vgathq(4, 3, rb=1)
        analysis = analyze_memory(kb.build())
        fp = analysis.accesses[-1].footprint
        assert fp.kind == "indexed"
        assert (fp.off_lo, fp.off_hi) == (0, 127 * 8)

    def test_masked_digit_extraction_stays_bounded(self):
        # the ccradix idiom: loaded keys are unknown, but & 255 << 3
        # bounds the gather offsets regardless
        kb = _prologue()
        kb.lda(1, 0x1000)
        kb.vloadq(2, rb=1)
        kb.vsand(3, 2, imm=255)
        kb.vssll(3, 3, imm=3)
        kb.vgathq(4, 3, rb=1)
        fp = analyze_memory(kb.build()).accesses[-1].footprint
        assert (fp.off_lo, fp.off_hi) == (0, 255 * 8)

    def test_prefetches_are_skipped(self):
        kb = _prologue()
        kb.lda(1, 0x1000)
        kb.vloadq(31, rb=1)          # vd=31: prefetch
        kb.vloadq(2, rb=1)
        analysis = analyze_memory(kb.build())
        assert len(analysis.accesses) == 1
        assert analysis.footprint_at(3) is None

    def test_scalar_load_widens_the_register(self):
        kb = _prologue()
        kb.lda(1, 0x1000)
        kb.ldq(2, rb=1, disp=0)      # r2 := unknown
        kb.vloadq(3, rb=2)
        fp = analyze_memory(kb.build()).accesses[-1].footprint
        assert fp.base is not None and not fp.base.is_const

    def test_drainm_indices_recorded(self):
        kb = _prologue()
        kb.lda(1, 0x1000)
        kb.drainm()
        kb.vloadq(2, rb=1)
        assert analyze_memory(kb.build()).drains == [3]


class TestMemoryDependences:
    def test_store_load_same_region_is_must_raw(self):
        kb = _prologue()
        kb.lda(1, 0x1000)
        kb.vvxor(2, 2, 2)
        kb.vstoreq(2, rb=1)          # 4
        kb.vloadq(3, rb=1)           # 5
        deps = memory_dependences(analyze_memory(kb.build()))
        assert (4, 5, "RAW", True) in deps

    def test_disjoint_regions_have_no_edge(self):
        kb = _prologue()
        kb.lda(1, 0x1000)
        kb.lda(2, 0x9000)
        kb.vvxor(3, 3, 3)
        kb.vstoreq(3, rb=1)          # 5
        kb.vloadq(4, rb=2)           # 6
        deps = memory_dependences(analyze_memory(kb.build()))
        assert not any(kind == "RAW" for _, _, kind, _ in deps)

    def test_unprovable_aliasing_is_a_may_edge(self):
        kb = _prologue()
        kb.ldq(1, rb=31, disp=0)     # r1, r2: two distinct unknowns
        kb.ldq(2, rb=31, disp=8)
        kb.vvxor(3, 3, 3)
        kb.vstoreq(3, rb=1)          # 5
        kb.vloadq(4, rb=2)           # 6
        deps = memory_dependences(analyze_memory(kb.build()))
        assert (5, 6, "RAW", False) in deps

    def test_war_and_waw(self):
        kb = _prologue()
        kb.lda(1, 0x1000)
        kb.vloadq(2, rb=1)           # 3
        kb.vvxor(3, 3, 3)
        kb.vstoreq(3, rb=1)          # 5
        kb.vstoreq(3, rb=1)          # 6
        deps = memory_dependences(analyze_memory(kb.build()))
        assert (3, 5, "WAR", True) in deps
        assert (5, 6, "WAW", True) in deps

    def test_covering_store_stops_the_backward_scan(self):
        kb = _prologue()
        kb.lda(1, 0x1000)
        kb.vvxor(2, 2, 2)
        kb.vstoreq(2, rb=1)          # 4: killed by 5
        kb.vstoreq(2, rb=1)          # 5: covers 4 completely
        kb.vloadq(3, rb=1)           # 6
        deps = memory_dependences(analyze_memory(kb.build()))
        assert (5, 6, "RAW", True) in deps
        assert (4, 6, "RAW", True) not in deps


class TestDepgraphIntegration:
    def test_precise_mem_edges_replace_all_pairs(self):
        kb = _prologue()
        kb.lda(1, 0x1000)
        kb.lda(2, 0x9000)
        kb.vvxor(3, 3, 3)
        kb.vstoreq(3, rb=1)          # 5
        kb.vloadq(4, rb=2)           # 6: provably disjoint from 5
        kb.vloadq(5, rb=1)           # 7: reads what 5 wrote
        g = build_dep_graph(kb.build(), memory=True)
        mem = {(e.src, e.dst, e.may) for e in g.on_resource("mem")
               if e.kind is DepKind.RAW}
        assert (5, 7, False) in mem
        assert not any(dst == 6 for _, dst, _ in mem)

    def test_may_flag_survives_into_the_graph(self):
        kb = _prologue()
        kb.ldq(1, rb=31, disp=0)
        kb.vvxor(3, 3, 3)
        kb.vstoreq(3, rb=1)
        kb.vloadq(4, rb=1)
        g = build_dep_graph(kb.build(), memory=True)
        mem = g.on_resource("mem")
        assert mem and all(e.src < e.dst for e in mem)
        # same unknown base on both sides: delta is 0, provably aliases
        assert any(not e.may for e in mem)


class TestDrainHazard:
    def _kernel(self, *, drain, overlap=True):
        kb = _prologue()
        kb.lda(1, 0x1000)
        kb.lda(2, 0x9000)
        kb.lda(3, 123)
        kb.stq(3, rb=1, disp=0)                  # 5: scalar store
        if drain:
            kb.drainm()
        kb.vloadq(4, rb=1 if overlap else 2)     # vector load
        return kb.build()

    def test_missing_drain_is_an_error(self):
        report = _report(self._kernel(drain=False))
        (diag,) = report.by_code(Code.MEM_DRAIN_MISSING)
        assert diag.index == 6
        assert "@5" in diag.message

    def test_drainm_clears_the_hazard(self):
        assert not _report(self._kernel(drain=True)).diagnostics

    def test_disjoint_store_is_no_hazard(self):
        report = _report(self._kernel(drain=False, overlap=False))
        assert not report.by_code(Code.MEM_DRAIN_MISSING)


class TestMemoryLints:
    def test_self_overlapping_strided_store(self):
        kb = _prologue(vs=4)
        kb.lda(1, 0x1000)
        kb.vvxor(2, 2, 2)
        kb.vstoreq(2, rb=1)
        report = _report(kb.build())
        (diag,) = report.by_code(Code.MEM_STORE_SELF_OVERLAP)
        assert diag.index == 4

    def test_self_conflicting_stride_noted(self):
        kb = _prologue(vs=1024)          # one L2 bank, every element
        kb.lda(1, 0x100000)
        kb.vloadq(2, rb=1)
        assert _report(kb.build()).by_code(Code.MEM_BANK_CONFLICT)

    def test_misaligned_base_noted(self):
        kb = _prologue()
        kb.lda(1, 0x1004)
        kb.vloadq(2, rb=1)
        assert _report(kb.build()).by_code(Code.MEM_MISALIGNED)

    def test_short_vl_is_one_aggregated_note(self):
        kb = _prologue(vl=64)
        kb.lda(1, 0x1000)
        kb.vloadq(2, rb=1)
        kb.vloadq(3, rb=1, disp=0x2000)
        report = _report(kb.build())
        (diag,) = report.by_code(Code.MEM_SHORT_VL)
        assert "2 memory access(es)" in diag.message

    def test_in_bounds_access_is_clean(self):
        kb = _prologue()
        kb.lda(1, 0x1000)
        kb.vloadq(2, rb=1)
        report = _report(kb.build(), buffers={"buf": (0x1000, 1024)})
        assert not report.by_code(Code.MEM_OOB)

    def test_out_of_bounds_access_is_an_error(self):
        kb = _prologue()
        kb.lda(1, 0x1000)
        kb.vloadq(2, rb=1)
        report = _report(kb.build(), buffers={"buf": (0x1000, 1016)})
        (diag,) = report.by_code(Code.MEM_OOB)
        assert diag.index == 3
        assert "overruns" in diag.message


def _load_example(name):
    path = pathlib.Path(__file__).parents[2] / "examples" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBuggyExample:
    def test_oob_store_example_is_flagged_at_the_right_pc(self):
        example = _load_example("oob_store")
        program, buffers = example.build()
        report = _report(program, buffers=buffers)
        (diag,) = report.by_code(Code.MEM_OOB)
        assert diag.index == example.OOB_PC
        assert "dst" in diag.message
