"""Trace-differential soundness gate for the vmem analyzer.

The analyzer's one hard promise is *over*-approximation: every byte a
kernel dynamically touches must lie inside the static footprint of the
touching instruction.  This suite proves it empirically for the whole
registry at two problem scales — the functional simulator records each
memory instruction's dynamically touched addresses
(``FunctionalSimulator(trace_addresses=True)``), and every traced
address must satisfy ``Footprint.covers``.

A second cross-check drives the timing model's address generators over
the same instruction stream (``AddressGenerators.trace``): the planned
physical quadword addresses must fall inside the same footprints, so
the abstraction is validated against both simulators' address paths.

A failure here means the abstract transfer functions are wrong (or a
new instruction was added without one), never that a kernel is wrong —
widening always errs toward bigger footprints.
"""

import pytest

from repro.analysis.vmem import analyze_memory
from repro.core.functional import FunctionalSimulator
from repro.isa.instructions import Group
from repro.workloads.registry import REGISTRY

#: ``None`` is each workload's CI-sized instance (``build_small``); the
#: second scale shifts every kernel's loop counts and array extents so
#: footprint lengths/strides are exercised at two different shapes
SCALES = (None, 0.12)
SCALE_IDS = ("small", "scale-0.12")


def _build(name, scale):
    workload = REGISTRY[name]
    return workload.build_small() if scale is None else workload.build(scale)


def _footprints(program):
    return {acc.index: acc.footprint
            for acc in analyze_memory(program).accesses}


@pytest.mark.parametrize("scale", SCALES, ids=SCALE_IDS)
@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_static_footprint_covers_dynamic_trace(name, scale):
    instance = _build(name, scale)
    footprints = _footprints(instance.program)
    sim = FunctionalSimulator(trace_addresses=True)
    instance.setup(sim.memory)
    sim.run(instance.program)

    assert sim.address_trace, f"{name}: kernel touched no memory"
    checked = 0
    for pc, addrs in sim.address_trace.items():
        fp = footprints.get(pc)
        assert fp is not None, \
            f"{name}: no static footprint for memory access at pc {pc}"
        bad = [int(a) for a in addrs if not fp.covers(int(a))]
        assert not bad, (
            f"{name} pc {pc} ({instance.program[pc]}): footprint "
            f"{fp.describe()} misses {len(bad)} traced address(es), "
            f"first {bad[0]:#x}")
        checked += len(addrs)
    assert checked > 0


@pytest.mark.parametrize("name", ["ccradix", "sparsemxv", "streams.triad"])
def test_address_generator_plans_stay_inside_footprints(name):
    """Timing-side cross-check: the Vbox address generators' planned
    quadword addresses for every vector access fall inside the static
    footprint too (gather/scatter, strided, and pump paths)."""
    from repro.vbox.address_gen import AddressGenerators

    instance = _build(name, None)
    footprints = _footprints(instance.program)
    sim = FunctionalSimulator()
    instance.setup(sim.memory)
    gens = AddressGenerators()
    gens.trace = []

    for i, instr in enumerate(instance.program):
        d = instr.definition
        if d.is_memory and d.group in (Group.SM, Group.RM) \
                and not instr.is_prefetch:
            plan = gens.plan(instr, sim.state)
            fp = footprints[i]
            bad = [a for a in plan.touched if not fp.covers(int(a))]
            assert not bad, (
                f"{name} pc {i} ({instr}): plan kind {plan.kind!r} "
                f"touched {bad[0]:#x} outside {fp.describe()}")
        sim.step(instr)

    # the trace hook saw every planned access, in program order
    assert gens.trace
    assert all(isinstance(t, tuple) for _, t in gens.trace)
