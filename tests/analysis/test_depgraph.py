"""Dependency-graph builder: RAW/WAR/WAW classification."""

from repro.analysis import DepKind, build_dep_graph
from repro.isa.builder import KernelBuilder


def _edges(graph, kind):
    return {(e.src, e.dst, e.resource) for e in graph.by_kind(kind)}


def _chain():
    kb = KernelBuilder("chain")
    kb.setvl(128)            # 0
    kb.setvs(8)              # 1
    kb.lda(1, 0x1000)        # 2
    kb.vloadq(2, rb=1)       # 3
    kb.vvaddt(3, 2, 2)       # 4
    kb.vstoreq(3, rb=1)      # 5
    return kb.build()


class TestRawEdges:
    def test_vector_raw_chain(self):
        g = build_dep_graph(_chain())
        raw = _edges(g, DepKind.RAW)
        assert (3, 4, "v2") in raw     # load feeds the add
        assert (4, 5, "v3") in raw     # add feeds the store

    def test_scalar_address_raw(self):
        g = build_dep_graph(_chain())
        raw = _edges(g, DepKind.RAW)
        assert (2, 3, "r1") in raw
        assert (2, 5, "r1") in raw

    def test_control_register_raw(self):
        g = build_dep_graph(_chain())
        raw = _edges(g, DepKind.RAW)
        assert (0, 3, "vl") in raw     # setvl governs the load
        assert (1, 3, "vs") in raw     # setvs governs the stride

    def test_setvm_feeds_masked_op(self):
        kb = KernelBuilder()
        kb.setvl(128)                  # 0
        kb.setvs(8)                    # 1
        kb.lda(1, 0x1000)              # 2
        kb.vloadq(2, rb=1)             # 3
        kb.vscmptlt(3, 2, imm=0.0)     # 4
        kb.setvm(3)                    # 5
        kb.vstoreq(2, rb=1, masked=True)   # 6
        g = build_dep_graph(kb.build())
        raw = _edges(g, DepKind.RAW)
        assert (4, 5, "v3") in raw
        assert (5, 6, "vm") in raw

    def test_raw_critical_path_of_serial_chain(self):
        kb = KernelBuilder()
        kb.setvl(128)
        kb.vvaddq(1, 31, 31)
        kb.vvaddq(2, 1, 1)
        kb.vvaddq(3, 2, 2)
        kb.vvaddq(4, 3, 3)
        kb.vsumq(1, 4)
        g = build_dep_graph(kb.build())
        # setvl -> def v1 -> v2 -> v3 -> v4 -> sum: six nodes deep
        assert g.raw_critical_path() == 6

    def test_independent_ops_have_shallow_critical_path(self):
        kb = KernelBuilder()
        kb.setvl(128)
        kb.vvaddq(1, 31, 31)
        kb.vvaddq(2, 31, 31)
        kb.vvaddq(3, 31, 31)
        kb.vstoreq(1, rb=31)
        g = build_dep_graph(kb.build())
        assert g.raw_critical_path() <= 3   # setvl -> one def -> one use


class TestFalseEdges:
    def test_register_reuse_creates_war_waw(self):
        kb = KernelBuilder("reuse")
        kb.setvl(128)
        kb.lda(1, 0x1000)
        kb.setvs(8)
        kb.vloadq(2, rb=1)             # 3
        kb.vstoreq(2, rb=1)            # 4 reads v2
        kb.vloadq(2, rb=1, disp=8)     # 5 rewrites v2: WAR with 4, WAW with 3
        kb.vstoreq(2, rb=1, disp=8)    # 6
        g = build_dep_graph(kb.build())
        assert (4, 5, "v2") in _edges(g, DepKind.WAR)
        assert (3, 5, "v2") in _edges(g, DepKind.WAW)
        # these are exactly the edges the Vbox renamer removes
        false = {(e.src, e.dst) for e in g.false_edges()}
        assert (4, 5) in false and (3, 5) in false

    def test_distinct_registers_have_no_false_edges(self):
        g = build_dep_graph(_chain())
        assert [e for e in g.false_edges() if e.resource.startswith("v")] == []

    def test_setvl_overwrite_is_waw_on_vl(self):
        kb = KernelBuilder()
        kb.setvl(64)
        kb.setvl(128)
        g = build_dep_graph(kb.build())
        assert (0, 1, "vl") in _edges(g, DepKind.WAW)
        # control registers are renamed by the real hardware too, but the
        # false_edges() contract covers only vector state (v*, vm)
        assert all(not e.resource == "vl" for e in g.false_edges())


class TestGraphQueries:
    def test_predecessors_and_successors(self):
        g = build_dep_graph(_chain())
        assert 3 in g.predecessors(4)
        assert 4 in g.successors(3)

    def test_on_resource(self):
        g = build_dep_graph(_chain())
        v2_edges = g.on_resource("v2")
        assert all(e.resource == "v2" for e in v2_edges)
        assert v2_edges

    def test_memory_token_serializes_stores(self):
        kb = KernelBuilder()
        kb.setvl(128)
        kb.setvs(8)
        kb.lda(1, 0x1000)
        kb.vloadq(2, rb=1)             # 3
        kb.vstoreq(2, rb=1)            # 4
        kb.vloadq(3, rb=1)             # 5 reads memory after the store
        no_mem = build_dep_graph(kb.build())
        with_mem = build_dep_graph(kb.build(), memory=True)
        mem_raw = _edges(with_mem, DepKind.RAW)
        assert (4, 5, "mem") in mem_raw
        assert (4, 5, "mem") not in _edges(no_mem, DepKind.RAW)
