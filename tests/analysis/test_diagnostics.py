"""One intentionally-broken kernel per diagnostic kind.

Each test seeds the exact authoring mistake the rule exists to catch and
asserts the precise :class:`~repro.analysis.diagnostics.Code` fires (and
with the intended severity), so the diagnostic surface is pinned down as
API.  A final test checks the clean prologue idiom stays silent.
"""

import pytest

from repro.analysis import Code, LintError, Severity, lint_program
from repro.analysis import encoding_lint
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import Instruction
from repro.isa.program import Program


def _lint(build, **kw):
    kb = KernelBuilder("broken")
    build(kb)
    return lint_program(kb.build(), **kw)


def _codes(report):
    return {d.code for d in report}


class TestControlStateDiagnostics:
    def test_vl_unset(self):
        def build(kb):
            kb.setvs(8)
            kb.lda(1, 0x1000)
            kb.vloadq(2, rb=1)       # executes with vl never set
            kb.vstoreq(2, rb=1)
        report = _lint(build)
        assert Code.VL_UNSET in _codes(report)
        assert report.by_code(Code.VL_UNSET)[0].severity is Severity.ERROR

    def test_vs_unset(self):
        def build(kb):
            kb.setvl(128)
            kb.lda(1, 0x1000)
            kb.vloadq(2, rb=1)       # strided access with vs never set
            kb.vstoreq(2, rb=1)
        report = _lint(build)
        assert Code.VS_UNSET in _codes(report)
        assert Code.VL_UNSET not in _codes(report)

    def test_vm_unset(self):
        def build(kb):
            kb.setvl(128)
            kb.setvs(8)
            kb.lda(1, 0x1000)
            kb.vloadq(2, rb=1)
            kb.vstoreq(2, rb=1, masked=True)   # no setvm anywhere
        report = _lint(build)
        assert Code.VM_UNSET in _codes(report)
        assert report.by_code(Code.VM_UNSET)[0].severity is Severity.ERROR

    def test_vm_stale_across_setvl(self):
        def build(kb):
            kb.setvl(128)
            kb.setvs(8)
            kb.lda(1, 0x1000)
            kb.vloadq(2, rb=1)
            kb.vscmptlt(3, 2, imm=0.0)
            kb.setvm(3)              # mask computed at vl=128
            kb.setvl(64)             # regime change
            kb.vstoreq(2, rb=1, masked=True)   # stale mask
        report = _lint(build)
        assert Code.VM_STALE in _codes(report)
        assert report.by_code(Code.VM_STALE)[0].severity is Severity.WARNING
        assert Code.VM_UNSET not in _codes(report)

    def test_vm_not_stale_when_vl_unchanged(self):
        def build(kb):
            kb.setvl(128)
            kb.setvs(8)
            kb.lda(1, 0x1000)
            kb.vloadq(2, rb=1)
            kb.vscmptlt(3, 2, imm=0.0)
            kb.setvm(3)
            kb.vstoreq(2, rb=1, masked=True)
        assert Code.VM_STALE not in _codes(_lint(build))

    def test_vl_zero(self):
        report = _lint(lambda kb: kb.setvl(0))
        assert Code.VL_ZERO in _codes(report)

    def test_vl_out_of_range(self):
        report = _lint(lambda kb: kb.setvl(200))
        assert Code.VL_RANGE in _codes(report)


class TestDefUseDiagnostics:
    def test_use_before_def(self):
        def build(kb):
            kb.setvl(128)
            kb.vvaddt(3, 1, 2)       # v1 and v2 never written
        report = _lint(build)
        offenders = report.by_code(Code.USE_BEFORE_DEF)
        assert {d.message.split()[0] for d in offenders} == {"v1", "v2"}
        assert all(d.severity is Severity.ERROR for d in offenders)

    def test_v31_reads_are_always_defined(self):
        def build(kb):
            kb.setvl(128)
            kb.vvaddq(3, 31, 31)     # architectural zero: fine
            kb.vsumq(1, 3)
        assert Code.USE_BEFORE_DEF not in _codes(_lint(build))

    def test_zero_idiom_is_a_def_not_a_use(self):
        def build(kb):
            kb.setvl(128)
            kb.setvs(8)
            kb.lda(1, 0x1000)
            kb.vvxor(10, 10, 10)     # ccradix zeroing idiom
            kb.vstoreq(10, rb=1)
        assert Code.USE_BEFORE_DEF not in _codes(_lint(build))

    def test_fmac_accumulator_uninitialized(self):
        def build(kb):
            kb.setvl(128)
            kb.setvs(8)
            kb.lda(1, 0x1000)
            kb.vloadq(1, rb=1)
            kb.vvmaddt(3, 1, 1)      # v3 += ... but v3 never initialized
            kb.vstoreq(3, rb=1)
        report = _lint(build)
        assert Code.ACC_UNINIT in _codes(report)
        assert Code.USE_BEFORE_DEF not in _codes(report)

    def test_masked_merge_uninitialized_is_info(self):
        def build(kb):
            kb.setvl(128)
            kb.setvs(8)
            kb.lda(1, 0x1000)
            kb.vloadq(2, rb=1)
            kb.vscmptlt(3, 2, imm=0.0)
            kb.setvm(3)
            kb.vvmult(4, 2, 2, masked=True)    # fresh v4 merges old bits
            kb.vstoreq(4, rb=1, masked=True)
        report = _lint(build)
        merge = report.by_code(Code.MERGE_UNINIT)
        assert merge and merge[0].severity is Severity.INFO

    def test_scalar_use_before_def(self):
        def build(kb):
            kb.setvl(128)
            kb.setvs(8)
            kb.vloadq(2, rb=1)       # r1 never written
            kb.vstoreq(2, rb=1)
        report = _lint(build)
        assert Code.SCALAR_USE_BEFORE_DEF in _codes(report)

    def test_dead_write_overwritten(self):
        def build(kb):
            kb.setvl(128)
            kb.setvs(8)
            kb.lda(1, 0x1000)
            kb.vloadq(2, rb=1)           # dead: overwritten unread
            kb.vloadq(2, rb=1, disp=8)
            kb.vstoreq(2, rb=1)
        report = _lint(build)
        dead = report.by_code(Code.DEAD_WRITE)
        assert len(dead) == 1
        assert dead[0].severity is Severity.WARNING

    def test_dead_write_at_end_of_program(self):
        def build(kb):
            kb.setvl(128)
            kb.setvs(8)
            kb.lda(1, 0x1000)
            kb.vloadq(2, rb=1)           # never read before the end
        report = _lint(build)
        assert Code.DEAD_WRITE in _codes(report)

    def test_masked_overwrite_is_not_a_dead_write(self):
        def build(kb):
            kb.setvl(128)
            kb.setvs(8)
            kb.lda(1, 0x1000)
            kb.vloadq(2, rb=1)
            kb.vscmptlt(3, 2, imm=0.0)
            kb.setvm(3)
            # masked write merges the previous value: the first load is live
            kb.vloadq(2, rb=1, disp=8, masked=True)
            kb.vstoreq(2, rb=1)
        assert Code.DEAD_WRITE not in _codes(_lint(build))

    def test_write_to_v31_flagged(self):
        def build(kb):
            kb.setvl(128)
            kb.lda(1, 0x1000)
            kb.emit("vvaddq", va=31, vb=31, vd=31)
        report = _lint(build)
        assert Code.ZERO_DEST in _codes(report)

    def test_prefetch_is_not_a_zero_dest(self):
        def build(kb):
            kb.setvl(128)
            kb.setvs(8)
            kb.lda(1, 0x1000)
            kb.vprefetch(1)
        assert Code.ZERO_DEST not in _codes(_lint(build))


class TestRoundTripDiagnostics:
    def test_unencodable_is_an_aggregated_info(self):
        def build(kb):
            kb.setvl(128)
            kb.setvs(8)
            kb.lda(1, 0x123456)      # far beyond a 5-bit literal
            kb.lda(2, 0x234567)
            kb.vloadq(2, rb=1)
            kb.vstoreq(2, rb=2)
        report = _lint(build)
        notes = report.by_code(Code.ENC_UNENCODABLE)
        assert len(notes) == 1       # aggregated, not per-instruction
        assert "not" in notes[0].message
        assert notes[0].severity is Severity.INFO

    def test_encoding_mismatch(self, monkeypatch):
        # a genuine encode/decode defect is simulated by corrupting the
        # decoder; the lint must catch the round-trip divergence
        def bad_decode(word):
            return Instruction("vvsubt", va=1, vb=2, vd=3)
        monkeypatch.setattr(encoding_lint, "decode", bad_decode)
        def build(kb):
            kb.setvl(16)
            kb.vvaddt(3, 31, 31)
            kb.vsumt(1, 3)
        report = _lint(build)
        assert Code.ENC_MISMATCH in _codes(report)
        assert report.has_errors

    def test_asm_mismatch_on_unparseable_listing(self):
        # vinsq without a source register renders "#idx" where the
        # assembler demands a scalar register: the listing line cannot
        # round-trip and the lint says so
        program = Program("asm-broken", [
            Instruction("setvl", imm=128),
            Instruction("vinsq", imm=3, vd=2),
        ])
        report = lint_program(program)
        assert Code.ASM_MISMATCH in _codes(report)


class TestCleanKernelAndHooks:
    def _clean(self, kb):
        kb.setvl(128)
        kb.setvs(8)
        kb.lda(1, 0x1000)
        kb.lda(2, 0x2000)
        kb.vloadq(3, rb=1)
        kb.vsmult(4, 3, imm=2.0)
        kb.vstoreq(4, rb=2)

    def test_clean_kernel_has_no_errors_or_warnings(self):
        kb = KernelBuilder("clean")
        self._clean(kb)
        report = lint_program(kb.build())
        assert not report.errors and not report.warnings

    def test_builder_lint_hook_raises(self):
        kb = KernelBuilder("hooked", lint=True)
        kb.setvl(128)
        kb.vvaddt(3, 1, 2)           # use-before-def
        with pytest.raises(LintError) as exc:
            kb.build()
        assert exc.value.report.has_errors

    def test_builder_lint_hook_passes_clean_kernel(self):
        kb = KernelBuilder("hooked", lint=True)
        self._clean(kb)
        assert len(kb.build()) == 7

    def test_assembler_lint_hook(self):
        from repro.isa.assembler import assemble

        source = "setvl #128\nvvaddt v1, v2, v3\n"
        assemble(source)             # no lint: accepted
        with pytest.raises(LintError):
            assemble(source, lint=True)
