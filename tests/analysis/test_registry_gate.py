"""Lint gate over the whole workload registry.

Every hand-vectorized kernel this repo ships must pass ``repro lint``
clean — the diagnostics exist to catch exactly the authoring mistakes
these kernels could contain.  A kernel that starts failing here has a
real dataflow bug (or the linter has a false positive worth fixing, in
which case tune the rule, not the gate).
"""

import pytest

from repro.analysis import Severity, lint_program
from repro.workloads.registry import REGISTRY


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_registry_kernel_lints_clean(name):
    program = REGISTRY[name].build_small().program
    report = lint_program(program)
    assert not report.errors, report.format(min_severity=Severity.ERROR)
    # the shipped kernels are also warning-free; keep them that way
    assert not report.warnings, report.format(min_severity=Severity.WARNING)


def test_registry_lint_helper_covers_every_workload():
    from repro.analysis import lint_registry

    reports = lint_registry()
    assert set(reports) == set(REGISTRY)
    assert not any(r.has_errors for r in reports.values())
