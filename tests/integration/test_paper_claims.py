"""Integration: the paper's headline claims, checked end to end.

These run the actual timing simulator across machines and assert the
*shape* of the published results — who wins, by roughly what factor —
per DESIGN.md's reproduction criteria.  Scales are kept small enough
for CI (the full-size numbers live in the benchmark harness and
EXPERIMENTS.md).
"""

import pytest

from repro.harness.figures import tiling_ablation
from repro.harness.runner import run_scalar, run_tarantula
from repro.workloads.registry import get


def _speedup(name, scale):
    workload = get(name)
    inst = workload.build(scale)
    t = run_tarantula(workload, "T", instance=inst, check=False)
    e8 = run_scalar(workload, "EV8", instance=inst)
    return e8.seconds / t.seconds, t


class TestHeadlineClaims:
    def test_tarantula_beats_ev8_on_dense_kernels(self):
        """Abstract: 'an average speedup of 5X over EV8'."""
        speedups = []
        for name, scale in (("dgemm", 0.25), ("sixtrack", 0.5),
                            ("swim", 0.5), ("lu", 0.25)):
            s, _ = _speedup(name, scale)
            speedups.append(s)
            assert s > 2.0, f"{name} speedup only {s:.2f}"
        assert sum(speedups) / len(speedups) > 4.0

    def test_gather_scatter_kernel_speedup_modest_but_real(self):
        """Abstract: radix sort 'a speedup of almost 3X over EV8'."""
        s, t = _speedup("ccradix", 2.0)
        # the paper reports 2.9x; our CR-box calibration (tied to Table
        # 4's RndCopy rate) lands lower but Tarantula still wins --
        # EXPERIMENTS.md discusses the gap
        assert 1.0 < s < 8.0
        assert t.opc > 8.0   # the '15 sustained operations/cycle' regime

    def test_several_benchmarks_exceed_20_opc(self):
        """Abstract: 'Several benchmarks exceed 20 operations/cycle.'"""
        over20 = 0
        for name, scale in (("dgemm", 0.25), ("fft", 0.5),
                            ("sixtrack", 0.5), ("linpacktpp", 0.25)):
            out = run_tarantula(get(name), "T", scale, check=False)
            if out.opc > 20:
                over20 += 1
        assert over20 >= 3

    def test_vector_wins_come_from_vectors_not_memory_system(self):
        """Figure 7's EV8+ bars: the better memory system alone does not
        explain the speedup — 'it's the use of vector instructions'."""
        workload = get("dgemm")
        inst = workload.build(0.25)
        ev8 = run_scalar(workload, "EV8", instance=inst)
        ev8p = run_scalar(workload, "EV8+", instance=inst)
        t = run_tarantula(workload, "T", instance=inst, check=False)
        assert ev8.seconds / ev8p.seconds < 1.5
        assert ev8.seconds / t.seconds > 4.0


class TestMicroArchClaims:
    def test_swim_tiling_ablation(self):
        """Section 6: the non-tiled swim 'was almost 2X slower'."""
        result = tiling_ablation(quick=True)
        assert result["slowdown"] > 1.2

    def test_pump_matters_for_stride1_heavy_kernels(self):
        """Figure 9: disabling the pump slows stride-1-heavy codes."""
        for name, scale, bound in (("swim.untiled", 0.5, 0.95),
                                   ("ccradix", 1.0, 0.99)):
            workload = get(name)
            base = run_tarantula(workload, "T", scale, check=False)
            nopump = run_tarantula(workload, "T-nopump", scale, check=False)
            rel = base.seconds / nopump.seconds
            assert rel < bound, f"{name}: pump made no difference ({rel:.2f})"

    def test_frequency_scaling_splits_by_memory_boundedness(self):
        """Figure 8: cache-resident codes scale with frequency, memory-
        bound ones barely move."""
        cached = get("dgemm")
        bound = get("streams.triad")
        c_t = run_tarantula(cached, "T", 0.25, check=False)
        c_t4 = run_tarantula(cached, "T4", 0.25, check=False)
        m_t = run_tarantula(bound, "T", 0.25, check=False)
        m_t4 = run_tarantula(bound, "T4", 0.25, check=False)
        cached_scaling = c_t.seconds / c_t4.seconds
        memory_scaling = m_t.seconds / m_t4.seconds
        assert cached_scaling > memory_scaling
        assert cached_scaling > 1.5
        assert memory_scaling < 1.6


class TestTimingFunctionalAgreement:
    @pytest.mark.parametrize("name,scale", [("fft", 0.5), ("moldyn", 0.25),
                                            ("ccradix", 0.25)])
    def test_timing_cosimulation_preserves_results(self, name, scale):
        """The timing simulator must produce bit-identical architectural
        results to the functional simulator (co-simulation check)."""
        run_tarantula(get(name), "T", scale, check=True)
