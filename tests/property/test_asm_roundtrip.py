"""Assembler <-> listing round-trip over every registry kernel.

``Program.listing()`` is the repo's human-readable kernel dump; the
assembler accepts its output verbatim (the ``NNN:`` label prefix is
stripped).  Round-tripping every shipped workload pins down both
directions of the text format: every operand the ``__str__`` renderer
emits must be one the parser reconstructs into an equivalent
instruction.
"""

import pytest

from repro.isa.assembler import assemble
from repro.workloads.registry import REGISTRY


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_listing_reassembles_to_equivalent_program(name):
    program = REGISTRY[name].build_small().program
    back = assemble(program.listing(), name=f"{name}-roundtrip")
    assert len(back) == len(program)
    for i, (orig, re_read) in enumerate(zip(program, back)):
        assert re_read == orig, (
            f"{name}[{i}]: {orig!s} reassembled as {re_read!s}")


def test_roundtrip_preserves_masking_and_immediates():
    program = REGISTRY["moldyn"].build_small().program
    back = assemble(program.listing())
    assert [i.masked for i in back] == [i.masked for i in program]
    assert [i.imm for i in back] == [i.imm for i in program]
