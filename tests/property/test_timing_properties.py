"""Property-based invariants of the timing components."""

from hypothesis import given, settings, strategies as st

from repro.mem.l2cache import BankedL2, L2Config
from repro.mem.rambus import RambusConfig, RambusSystem
from repro.mem.zbox import Zbox

line_addrs = st.lists(
    st.integers(0, 1 << 22).map(lambda n: n * 64),
    min_size=1, max_size=16, unique=True)

access_plans = st.lists(
    st.tuples(line_addrs, st.booleans(), st.floats(0, 1000)),
    min_size=1, max_size=25)


@settings(max_examples=40, deadline=None)
@given(plan=access_plans)
def test_l2_completion_never_precedes_request(plan):
    l2 = BankedL2(L2Config(), Zbox())
    for lines, is_write, earliest in plan:
        done = l2.access_slice(lines, len(lines), is_write, earliest)
        assert done >= earliest


@settings(max_examples=40, deadline=None)
@given(plan=access_plans)
def test_l2_timing_is_deterministic(plan):
    def run():
        l2 = BankedL2(L2Config(), Zbox())
        return [l2.access_slice(lines, len(lines), w, t)
                for lines, w, t in plan]
    assert run() == run()


@settings(max_examples=40, deadline=None)
@given(plan=access_plans)
def test_l2_counter_conservation(plan):
    l2 = BankedL2(L2Config(), Zbox())
    for lines, is_write, earliest in plan:
        l2.access_slice(lines, len(lines), is_write, earliest)
    c = l2.counters
    touched = sum(len(set(lines)) for lines, _, _ in plan)
    assert c["line_hits"] + c["line_misses"] == touched
    assert c["slices"] == len(plan)
    maf = l2.maf.counters
    assert maf["allocations"] == maf["releases"]


@settings(max_examples=40, deadline=None)
@given(plan=access_plans)
def test_warm_cache_never_slower(plan):
    """Warming every line never increases any access's completion."""
    cold = BankedL2(L2Config(), Zbox())
    warm = BankedL2(L2Config(), Zbox())
    for lines, _, _ in plan:
        warm.warm(lines)
    for lines, is_write, earliest in plan:
        t_cold = cold.access_slice(lines, len(lines), is_write, earliest)
        t_warm = warm.access_slice(lines, len(lines), is_write, earliest)
        assert t_warm <= t_cold + 1e-9


@settings(max_examples=60, deadline=None)
@given(addrs=st.lists(st.integers(0, 1 << 20).map(lambda n: n * 64),
                      min_size=1, max_size=60),
       kinds=st.lists(st.sampled_from(["read", "write", "dirread"]),
                      min_size=60, max_size=60))
def test_rambus_port_throughput_bound(addrs, kinds):
    """No port can move more bytes than its share of the raw rate."""
    cfg = RambusConfig()
    ram = RambusSystem(cfg)
    finish = 0.0
    for addr, kind in zip(addrs, kinds):
        finish = max(finish, ram.transaction(addr, kind, 0.0))
    moved = ram.raw_bytes()
    assert moved <= cfg.bytes_per_core_cycle * finish + 64 * cfg.ports
