"""Property-based verification of the conflict-free reordering theorem.

For *every* reorderable stride class and base alignment, the schedule
must partition the 128 elements into 8 slices that are simultaneously
bank- and lane-conflict-free — the paper's section 3.4 claim, checked
exhaustively over randomized inputs by hypothesis.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.isa.registers import MVL
from repro.vbox.reorder import (
    bank_pattern,
    conflict_free_schedule,
    is_reorderable,
)
from repro.vbox.slices import Slice

# byte strides sigma * 2^k with sigma odd, k in [3, 6]: the reorderable
# family for the 16-bank / 64-byte-line geometry
reorderable_strides = st.builds(
    lambda sigma, k, sign: sign * sigma * (1 << k),
    st.integers(0, 300).map(lambda n: 2 * n + 1),
    st.integers(3, 6),
    st.sampled_from([1, -1]),
)

bases = st.integers(0, 1 << 30).map(lambda n: n * 8)


@settings(max_examples=150, deadline=None)
@given(stride=reorderable_strides, base=bases)
def test_reorderable_strides_always_schedule(stride, base):
    assert is_reorderable(base, stride)
    schedule = conflict_free_schedule(base, stride)
    seen = sorted(int(e) for group in schedule for e in group)
    assert seen == list(range(MVL))
    for sid, group in enumerate(schedule):
        addrs = (np.int64(base) + np.int64(stride) * group).view(np.uint64)
        s = Slice(sid, group, addrs)
        assert s.is_lane_conflict_free()
        assert s.is_bank_conflict_free()


@settings(max_examples=100, deadline=None)
@given(
    sigma=st.integers(0, 300).map(lambda n: 2 * n + 1),
    k=st.integers(7, 16),
    base=bases,
)
def test_large_power_of_two_strides_self_conflict(sigma, k, base):
    stride = sigma * (1 << k)
    assert not is_reorderable(base, stride)


@settings(max_examples=100, deadline=None)
@given(stride=reorderable_strides, base=bases)
def test_bank_histogram_uniform_iff_reorderable(stride, base):
    counts = np.bincount(bank_pattern(base, stride), minlength=16)
    assert np.all(counts == 8)


@settings(max_examples=50, deadline=None)
@given(stride=reorderable_strides, base=bases, delta=st.integers(1, 100))
def test_schedule_is_translation_invariant_mod_1024(stride, base, delta):
    a = conflict_free_schedule(base, stride)
    b = conflict_free_schedule(base + delta * 1024, stride)
    assert [x.tolist() for x in a] == [y.tolist() for y in b]
