"""Property-based checks on the ISA: semantics vs numpy, encode/decode."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.functional import FunctionalSimulator
from repro.isa.encodings import decode, encode
from repro.isa.instructions import Instruction
from repro.isa.registers import MVL

u64_vectors = arrays(np.uint64, MVL,
                     elements=st.integers(0, (1 << 64) - 1))
f64_vectors = arrays(np.float64, MVL,
                     elements=st.floats(-1e100, 1e100,
                                        allow_nan=False, allow_infinity=False))
vls = st.integers(0, MVL)


@settings(max_examples=60, deadline=None)
@given(a=u64_vectors, b=u64_vectors, vl=vls)
def test_vvaddq_matches_numpy_below_vl(a, b, vl):
    sim = FunctionalSimulator()
    sim.state.vregs.write(1, a)
    sim.state.vregs.write(2, b)
    sim.state.ctrl.set_vl(vl)
    sim.step(Instruction("vvaddq", va=1, vb=2, vd=3))
    out = sim.state.vregs.read(3)
    with np.errstate(over="ignore"):
        expect = a + b
    assert np.array_equal(out[:vl], expect[:vl])


@settings(max_examples=60, deadline=None)
@given(a=f64_vectors, b=f64_vectors, vl=vls)
def test_vvmult_matches_numpy(a, b, vl):
    sim = FunctionalSimulator()
    sim.state.vregs.write(1, a.view(np.uint64))
    sim.state.vregs.write(2, b.view(np.uint64))
    sim.state.ctrl.set_vl(vl)
    sim.step(Instruction("vvmult", va=1, vb=2, vd=3))
    out = sim.state.vregs.read(3).view(np.float64)
    with np.errstate(over="ignore"):
        np.testing.assert_array_equal(out[:vl], (a * b)[:vl])


@settings(max_examples=60, deadline=None)
@given(a=u64_vectors, mask_bits=arrays(np.bool_, MVL), vl=vls)
def test_masked_merge_invariant(a, mask_bits, vl):
    """Inactive elements of the destination are bit-exactly preserved."""
    sim = FunctionalSimulator()
    old = np.arange(MVL, dtype=np.uint64) * np.uint64(3)
    sim.state.vregs.write(1, a)
    sim.state.vregs.write(3, old)
    sim.state.ctrl.set_vm(mask_bits)
    sim.state.ctrl.set_vl(vl)
    sim.step(Instruction("vsaddq", va=1, imm=1, vd=3, masked=True))
    out = sim.state.vregs.read(3)
    active = np.zeros(MVL, dtype=bool)
    active[:vl] = True
    active &= mask_bits
    assert np.array_equal(out[~active], old[~active])
    with np.errstate(over="ignore"):
        assert np.array_equal(out[active], (a + np.uint64(1))[active])


@settings(max_examples=60, deadline=None)
@given(values=u64_vectors, base=st.integers(0, 1 << 20), vl=vls)
def test_store_load_roundtrip(values, base, vl):
    sim = FunctionalSimulator()
    addr = base * 8
    sim.state.vregs.write(1, values)
    sim.state.sregs.write(1, addr)
    sim.state.ctrl.set_vl(vl)
    sim.step(Instruction("vstoreq", va=1, rb=1))
    sim.step(Instruction("vloadq", vd=2, rb=1))
    out = sim.state.vregs.read(2)
    assert np.array_equal(out[:vl], values[:vl])


@settings(max_examples=60, deadline=None)
@given(perm=st.permutations(list(range(MVL))))
def test_scatter_gather_inverse(perm):
    """Scattering through a permutation then gathering through it is
    the identity (any requesting order, per Figure 1)."""
    sim = FunctionalSimulator()
    values = np.arange(MVL, dtype=np.uint64) + np.uint64(1000)
    offsets = (np.array(perm, dtype=np.uint64) * np.uint64(8))
    sim.state.vregs.write(1, values)
    sim.state.vregs.write(2, offsets)
    sim.state.sregs.write(1, 0x40000)
    sim.step(Instruction("vscatq", va=1, vb=2, rb=1))
    sim.step(Instruction("vgathq", vd=3, vb=2, rb=1))
    assert np.array_equal(sim.state.vregs.read(3), values)


# -- encode/decode round trip -------------------------------------------------

regs = st.integers(0, 31)
small_lits = st.integers(0, 31)
disps = st.integers(-64, 63).map(lambda n: n * 8)

encodable = st.one_of(
    st.builds(lambda a, b, c, m: Instruction("vvaddt", va=a, vb=b, vd=c,
                                             masked=m),
              regs, regs, regs, st.booleans()),
    st.builds(lambda a, i, c: Instruction("vsmulq", va=a, imm=i, vd=c),
              regs, small_lits, regs),
    st.builds(lambda a, r, c: Instruction("vssubt", va=a, ra=r, vd=c),
              regs, regs, regs),
    st.builds(lambda v, b, d, m: Instruction("vloadq", vd=v, rb=b, disp=d,
                                             masked=m),
              regs, regs, disps, st.booleans()),
    st.builds(lambda v, b, d: Instruction("vstoreq", va=v, rb=b, disp=d),
              regs, regs, disps),
    st.builds(lambda v, i, b: Instruction("vgathq", vd=v, vb=i, rb=b),
              regs, regs, regs),
    st.builds(lambda v, i, b: Instruction("vscatq", va=v, vb=i, rb=b),
              regs, regs, regs),
    st.builds(lambda i: Instruction("setvl", imm=i), small_lits),
    st.builds(lambda v: Instruction("setvm", va=v), regs),
    st.builds(lambda a, r: Instruction("vsumt", va=a, rd=r), regs, regs),
    st.builds(lambda a, i, r: Instruction("addq", ra=a, imm=i, rd=r),
              regs, small_lits, regs),
    st.just(Instruction("drainm")),
)


@settings(max_examples=200, deadline=None)
@given(instr=encodable)
def test_encode_decode_roundtrip(instr):
    word = encode(instr)
    assert 0 <= word < (1 << 32)
    back = decode(word)
    assert back.op == instr.op
    assert back.masked == instr.masked
    for f in ("vd", "va", "vb", "rd", "ra", "rb", "disp"):
        got, want = getattr(back, f), getattr(instr, f)
        if want is not None and f != "disp":
            assert got == want, f"{instr.op}.{f}: {got} != {want}"
    if instr.definition.is_memory and not instr.definition.is_indexed:
        assert back.disp == instr.disp
