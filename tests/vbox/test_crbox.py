"""CR box: the gather/scatter conflict-resolution tournament."""

import numpy as np
import pytest

from repro.vbox.crbox import ConflictResolutionBox
from repro.vbox.slices import SLICE_SIZE


def _pack(addresses, cycles_per_round=2.5):
    cr = ConflictResolutionBox(cycles_per_round)
    elements = np.arange(len(addresses), dtype=np.int64)
    return cr.pack(elements, np.asarray(addresses, dtype=np.uint64))


class TestPacking:
    def test_every_address_appears_exactly_once(self, rng):
        addrs = (rng.integers(0, 1 << 20, 128) // 8 * 8).astype(np.uint64)
        slices, _ = _pack(addrs)
        packed = np.concatenate([s.addresses for s in slices])
        assert sorted(packed.tolist()) == sorted(addrs.tolist())

    def test_slices_are_conflict_free(self, rng):
        addrs = (rng.integers(0, 1 << 22, 128) // 8 * 8).astype(np.uint64)
        slices, _ = _pack(addrs)
        for s in slices:
            assert s.is_bank_conflict_free()
            assert s.is_lane_conflict_free()

    def test_distinct_banks_pack_into_single_slice(self):
        # 16 addresses, one per bank, lanes 0..15: one perfect slice
        addrs = [bank * 64 for bank in range(16)]
        slices, _ = _pack(addrs)
        assert len(slices) == 1
        assert slices[0].valid_count == SLICE_SIZE

    def test_worst_case_same_bank_yields_one_per_slice(self):
        # all addresses in bank 0: 128 slices (the paper's worst case)
        addrs = [i * 1024 for i in range(128)]
        slices, _ = _pack(addrs)
        assert len(slices) == 128
        assert all(s.valid_count == 1 for s in slices)

    def test_lane_conflicts_also_split(self):
        # distinct banks but identical lane (elements 0, 16, 32...):
        cr = ConflictResolutionBox()
        elements = np.arange(0, 128, 16, dtype=np.int64) * 2  # all lane 0
        elements = np.arange(8, dtype=np.int64) * 16          # lanes all 0
        addrs = np.array([i * 64 for i in range(8)], dtype=np.uint64)
        slices, _ = cr.pack(elements, addrs)
        assert len(slices) == 8

    def test_short_streams(self):
        slices, cycles = _pack([0, 64, 128], cycles_per_round=2.5)
        assert len(slices) == 1
        assert cycles == pytest.approx(2.5)

    def test_empty_stream(self):
        slices, cycles = _pack([])
        assert slices == []
        assert cycles == 0.0


class TestTournamentRate:
    def test_random_rate_matches_table4_regime(self, rng):
        """Uniformly random addresses should pack at ~4-6 addresses per
        cycle with the calibrated round cost (Table 4 reports ~4.3
        including downstream effects)."""
        addrs = (rng.integers(0, 1 << 24, 128) // 8 * 8).astype(np.uint64)
        slices, cycles = _pack(addrs, cycles_per_round=4.0)
        rate = 128 / cycles
        assert 2.0 < rate < 5.0

    def test_sequential_banks_pack_densely(self):
        addrs = [(i % 16) * 64 + (i // 16) * 4096 for i in range(128)]
        slices, cycles = _pack(addrs)
        assert len(slices) == 8
