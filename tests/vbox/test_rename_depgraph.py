"""Renaming removes false dependences — certified by the dep graph.

The Vbox renames vector registers (and ``vm``), so WAR/WAW hazards must
not serialize execution: a kernel that recycles one architectural
destination must time identically to the same kernel spread over
distinct destinations.  The dependence graph from ``repro.analysis``
certifies which member of the pair actually carries the false edges, so
the timing assertion tests what it claims to.
"""

from repro.analysis import DepKind, build_dep_graph
from repro.core.config import tarantula
from repro.core.processor import TarantulaProcessor
from repro.isa.builder import KernelBuilder

A = 0x100000


def _run(program):
    proc = TarantulaProcessor(tarantula())
    proc.warm_l2(A, 1 << 17)
    return proc.run(program)


def _kernel(dests):
    """One independent add per destination register in ``dests``."""
    kb = KernelBuilder("renametest")
    kb.lda(1, A)
    kb.setvl(128)
    kb.setvs(8)
    kb.vloadq(2, rb=1)
    for i, vd in enumerate(dests):
        kb.vvaddt(vd, 2, 2)
    kb.vstoreq(dests[-1], rb=1, disp=1 << 16)
    return kb.build()


class TestFalseDependencesAreFree:
    def test_graph_distinguishes_the_pair(self):
        recycled = _kernel([3] * 12)
        spread = _kernel(list(range(3, 15)))
        g_recycled = build_dep_graph(recycled)
        g_spread = build_dep_graph(spread)
        # recycling v3 creates a WAW chain the renamer must break...
        assert len(g_recycled.false_edges()) >= 11
        # ...while distinct destinations carry no false edges at all
        assert g_spread.false_edges() == []
        # and neither kernel chains RAW through the adds
        assert g_recycled.raw_critical_path() == g_spread.raw_critical_path()

    def test_renamer_times_the_pair_identically(self):
        recycled = _run(_kernel([3] * 12))
        spread = _run(_kernel(list(range(3, 15))))
        assert recycled.cycles == spread.cycles

    def test_true_raw_chain_is_not_free(self):
        """Control: a genuine RAW chain must cost more than the
        false-dependence kernel the renamer fixed up."""
        kb = KernelBuilder("rawchain")
        kb.lda(1, A)
        kb.setvl(128)
        kb.setvs(8)
        kb.vloadq(2, rb=1)
        for _ in range(24):
            kb.vvaddt(3, 3, 2)       # reads the previous v3
        kb.vstoreq(3, rb=1, disp=1 << 16)
        chain = kb.build()
        g = build_dep_graph(chain)
        assert g.raw_critical_path() >= 25   # load + 24 chained adds
        serial = _run(chain)
        free = _run(_kernel([3] * 24))
        assert serial.cycles > free.cycles * 1.5

    def test_mask_rename_overlaps_mask_compute(self):
        """Section 2: ``vm`` is renamed so a new mask can be computed
        while an older one is in use — the setvm WAW must not serialize."""
        def masked_kernel(n):
            kb = KernelBuilder("masks")
            kb.lda(1, A)
            kb.setvl(128)
            kb.setvs(8)
            kb.vloadq(2, rb=1)
            for i in range(n):
                kb.vscmptlt(4, 2, imm=float(i))
                kb.setvm(4)
                kb.vvaddt(5 + i, 2, 2, masked=True)
            return kb.build()

        g = build_dep_graph(masked_kernel(4))
        waw_vm = [e for e in g.by_kind(DepKind.WAW) if e.resource == "vm"]
        assert len(waw_vm) == 3
        assert all(e in g.false_edges() for e in waw_vm)
        one = _run(masked_kernel(1)).cycles
        four = _run(masked_kernel(4)).cycles
        # four mask regimes pipeline: far cheaper than 4x a single one
        assert four < 4 * one
