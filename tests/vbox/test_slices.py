"""Slice data structure: the memory pipeline's unit of work."""

import numpy as np
import pytest

from repro.vbox.slices import Slice


def _slice(elements, addresses, **kw):
    return Slice(0, np.array(elements), np.array(addresses, dtype=np.uint64),
                 **kw)


class TestConstruction:
    def test_basic(self):
        s = _slice([0, 1], [0, 64])
        assert s.valid_count == 2
        assert s.quadwords == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            _slice([0, 1], [0])

    def test_too_many_addresses_rejected(self):
        with pytest.raises(ValueError):
            _slice(list(range(17)), [i * 64 for i in range(17)])

    def test_explicit_quadwords_for_pump(self):
        s = _slice(list(range(16)), [i * 64 for i in range(16)],
                   pump=True, quadwords=128)
        assert s.quadwords == 128


class TestConflictChecks:
    def test_lanes_are_element_mod_16(self):
        s = _slice([0, 17, 35], [0, 64, 128])
        assert s.lanes().tolist() == [0, 1, 3]

    def test_banks_are_bits_9_to_6(self):
        s = _slice([0, 1], [0x40, 0x3C0])
        assert s.banks().tolist() == [1, 15]

    def test_lane_conflict_detected(self):
        s = _slice([0, 16], [0, 64])        # both lane 0
        assert not s.is_lane_conflict_free()

    def test_bank_conflict_detected(self):
        s = _slice([0, 1], [0x000, 0x400])  # both bank 0, distinct lines
        assert not s.is_bank_conflict_free()

    def test_same_line_is_not_a_bank_conflict(self):
        """Two quadwords of one line are served by one bank read."""
        s = _slice([0, 1], [0x00, 0x08])
        assert s.is_bank_conflict_free()

    def test_fully_conflict_free(self):
        s = _slice(list(range(16)), [i * 64 for i in range(16)])
        assert s.is_conflict_free()

    def test_line_addresses_deduplicate(self):
        s = _slice([0, 1, 2], [0x00, 0x08, 0x40])
        assert s.line_addresses() == [0x00, 0x40]
