"""Vector TLB: per-lane translation, refill strategies, huge pages."""

import numpy as np
import pytest

from repro.mem.pages import PageTable
from repro.vbox.vtlb import LaneTLB, RefillStrategy, VectorTLB


def _translate(tlb, addrs, elements=None):
    addrs = np.asarray(addrs, dtype=np.uint64)
    if elements is None:
        elements = np.arange(len(addrs))
    return tlb.translate_elements(np.asarray(elements), addrs)


class TestLaneTLB:
    def test_lru_eviction(self):
        tlb = LaneTLB(entries=2)
        tlb.insert(1, 1)
        tlb.insert(2, 2)
        tlb.lookup(1)            # refresh 1
        evicted = tlb.insert(3, 3)
        assert evicted == 2
        assert tlb.lookup(1) == 1 and tlb.lookup(2) is None


class TestIdentityTranslation:
    def test_first_touch_pays_refill(self):
        tlb = VectorTLB()
        addrs = [0x1000, 0x2000]
        _, penalty = _translate(tlb, addrs)
        assert penalty == tlb.refill_penalty_cycles
        assert tlb.counters["misses"] >= 1

    def test_second_touch_is_free_and_identity(self):
        tlb = VectorTLB()
        addrs = np.arange(16, dtype=np.uint64) * 8 + 0x8000
        _translate(tlb, addrs)
        out, penalty = _translate(tlb, addrs)
        assert penalty == 0.0
        assert np.array_equal(out, addrs)

    def test_whole_stride_refill_covers_all_lanes(self):
        tlb = VectorTLB(strategy=RefillStrategy.WHOLE_STRIDE)
        # lane 0 misses; whole-stride refill should cover lane 5 too
        _translate(tlb, [0x1000], elements=[0])
        _, penalty = _translate(tlb, [0x2000], elements=[5])
        assert penalty == 0.0  # same page, already refilled everywhere

    def test_per_miss_refill_is_per_lane(self):
        tlb = VectorTLB(strategy=RefillStrategy.PER_MISS)
        _translate(tlb, [0x1000], elements=[0])
        _, penalty = _translate(tlb, [0x2000], elements=[5])
        assert penalty == tlb.refill_penalty_cycles  # lane 5 still cold


class TestExplicitMappings:
    def test_non_identity_translation(self):
        pt = PageTable(page_bytes=1 << 16)
        pt.map(vpn=1, pfn=9)
        tlb = VectorTLB(pt)
        out, _ = _translate(tlb, [(1 << 16) + 0x18])
        assert int(out[0]) == (9 << 16) + 0x18

    def test_prefetch_ignores_misses(self):
        pt = PageTable(page_bytes=1 << 16, identity=False)
        tlb = VectorTLB(pt)
        addrs = np.array([0x10000], dtype=np.uint64)
        out, penalty = tlb.translate_elements(np.array([0]), addrs,
                                              ignore_misses=True)
        assert penalty == 0.0  # no refill, no trap

    def test_giant_stride_many_pages_forward_progress(self):
        """A stride touching one page per element must still translate —
        the paper's reason for associative TLBs (section 3.4)."""
        pt = PageTable(page_bytes=1 << 16)
        tlb = VectorTLB(pt, entries_per_lane=32)
        addrs = (np.arange(128, dtype=np.uint64) * np.uint64(1 << 16))
        out, penalty = tlb.translate_elements(np.arange(128), addrs)
        assert np.array_equal(out, addrs)
        assert penalty > 0


class TestHugePagesKeepTLBQuiet:
    def test_512mb_pages_one_refill_per_huge_region(self):
        tlb = VectorTLB()
        a = np.arange(128, dtype=np.uint64) * 8
        _translate(tlb, a)
        refills_after_first = tlb.counters["refill_traps"]
        for i in range(10):
            out, penalty = _translate(tlb, a + i * 4096)
            assert penalty == 0.0
        assert tlb.counters["refill_traps"] == refills_after_first


class TestShootdown:
    def test_invalidate_drops_every_lane(self):
        tlb = VectorTLB()
        a = np.arange(16, dtype=np.uint64) * 8
        _translate(tlb, a)           # warm all lanes (whole-stride refill)
        tlb.invalidate(0)
        assert all(lane.lookup(0) is None for lane in tlb.lanes)
        assert tlb.counters["shootdowns"] == 1
        # next touch re-walks the page table (pays the refill again)
        _, penalty = _translate(tlb, a)
        assert penalty == tlb.refill_penalty_cycles

    def test_invalidate_clears_identity_fast_path(self):
        tlb = VectorTLB()
        a = np.arange(16, dtype=np.uint64) * 8
        _translate(tlb, a)
        assert 0 in tlb._hot_identity_vpns
        tlb.invalidate(0)
        assert 0 not in tlb._hot_identity_vpns


class TestPrefetchFaultTransparency:
    """Section 2: prefetches (writes to v31) never fault.  The timing
    half of that promise lives here: a hole punched in the page table
    must trap demand accesses but leave ``ignore_misses`` translation
    silent — no trap, no refill, no PALcode penalty."""

    def _holed_tlb(self):
        from repro.errors import TLBMissTrap
        pt = PageTable()
        pt.punch_hole(0)
        return VectorTLB(pt), TLBMissTrap

    def test_demand_access_traps_on_hole(self):
        tlb, TLBMissTrap = self._holed_tlb()
        with pytest.raises(TLBMissTrap):
            _translate(tlb, [0x1000])

    def test_prefetch_sails_over_the_hole(self):
        tlb, _ = self._holed_tlb()
        addrs = np.array([0x1000, 0x2000], dtype=np.uint64)
        out, penalty = tlb.translate_elements(np.arange(2), addrs,
                                              ignore_misses=True)
        assert penalty == 0.0
        assert tlb.counters["refill_traps"] == 0
        # and it installed nothing: a later demand access still walks
        assert all(lane.lookup(0) is None for lane in tlb.lanes)

    def test_shootdown_then_prefetch_still_silent(self):
        from repro.errors import TLBMissTrap
        pt = PageTable()
        tlb = VectorTLB(pt)
        a = np.arange(16, dtype=np.uint64) * 8
        _translate(tlb, a)                      # warm
        pt.punch_hole(0)
        tlb.invalidate(0)                       # injector's arm sequence
        out, penalty = tlb.translate_elements(np.arange(16), a,
                                              ignore_misses=True)
        assert penalty == 0.0
        with pytest.raises(TLBMissTrap):
            _translate(tlb, a)
