"""Property test: stride classification is base-periodic.

The reorder ROM's schedule — and therefore the address generators' path
selection (pump / reordered / CR box) — depends only on
``(stride mod BANK_PERIOD, base mod BANK_PERIOD)``.  That periodicity
is what makes a 2.1 KB ROM sufficient in hardware, what makes the plan
cache's rebase trick sound (tests/vbox/test_plan_cache.py), and what
the vmem linter relies on when it classifies a stride once per kernel
(``MEM_BANK_CONFLICT`` fires per stride, not per base).  Here the
invariance is checked over *random* bases and strides — including
negative and self-conflicting ones, which the schedule-level property
suite (tests/property/test_reorder_properties.py) deliberately avoids.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.isa.instructions import Instruction
from repro.isa.registers import ArchState
from repro.vbox.address_gen import AddressGenerators
from repro.vbox.reorder import BANK_PERIOD, bank_pattern, is_reorderable

# any quadword-aligned byte stride, both directions, conflict-free and
# self-conflicting classes alike
strides = st.builds(lambda q, sign: sign * q * 8,
                    st.integers(1, 1 << 12), st.sampled_from([1, -1]))
bases = st.integers(0, 1 << 27).map(lambda n: n * 8)
periods = st.integers(1, 1 << 10)


@settings(max_examples=200, deadline=None)
@given(stride=strides, base=bases, k=periods)
def test_classification_invariant_under_bank_period_translation(
        stride, base, k):
    assert is_reorderable(base, stride) == \
        is_reorderable(base + k * BANK_PERIOD, stride)


@settings(max_examples=200, deadline=None)
@given(stride=strides, base=bases, k=periods)
def test_bank_pattern_invariant_under_bank_period_translation(
        stride, base, k):
    assert np.array_equal(bank_pattern(base, stride),
                          bank_pattern(base + k * BANK_PERIOD, stride))


@settings(max_examples=200, deadline=None)
@given(stride=strides, base=bases, delta=st.integers(8, BANK_PERIOD - 8)
       .map(lambda n: n & ~7))
def test_classification_not_generally_base_free(stride, base, delta):
    # sub-period translations may change the classification only
    # through the base's residue — the histogram, hence the verdict,
    # matches whenever the residues match
    if (base % BANK_PERIOD) == ((base + delta) % BANK_PERIOD):
        assert is_reorderable(base, stride) == \
            is_reorderable(base + delta, stride)


@settings(max_examples=60, deadline=None)
@given(stride=st.integers(1, 1 << 9).map(lambda q: q * 8),
       base=bases, k=st.integers(1, 1 << 6))
def test_plan_path_selection_invariant_under_translation(stride, base, k):
    """The generators pick the same access path (pump / reordered / CR)
    for the same stride at bank-period-translated bases."""
    def plan_kind(addr):
        state = ArchState()
        state.ctrl.set_vl(128)
        state.ctrl.set_vs(stride)
        state.sregs.write(1, addr)
        return AddressGenerators().plan(
            Instruction("vloadq", vd=1, rb=1), state).kind

    assert plan_kind(base) == plan_kind(base + k * BANK_PERIOD)
