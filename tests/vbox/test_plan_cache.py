"""Keyed plan cache in the address generators (docs/PERF.md).

Plan construction for a strided memory instruction is deterministic in
(op, vl, vs, mask, base mod BANK_PERIOD), so the generators memoize
built plans and *rebase* them when only the base address moved.  These
tests pin down the lifecycle: a plan is only stored from a TLB
fast-path translation, hits rebase to the live base address, and the
explicit invalidation hooks (setvl/setvs/setvm in the processor) clear
the cache and count.
"""

import numpy as np

from repro.isa.instructions import Instruction
from repro.isa.registers import ArchState
from repro.vbox.address_gen import AddressGenerators
from repro.vbox.reorder import BANK_PERIOD


def _state(base=0x10000, vl=128, vs=8):
    state = ArchState()
    state.sregs.write(1, base)
    state.ctrl.set_vl(vl)
    state.ctrl.set_vs(vs)
    return state


def _load(**kw):
    return Instruction("vloadq", vd=1, rb=1, **kw)


def _warm(ag, instr, state):
    """First plan: cold TLB refill, never cached.  Second: stored."""
    ag.plan(instr, state)
    return ag.plan(instr, state)


class TestPlanCache:
    def test_store_then_hit(self):
        ag = AddressGenerators()
        state = _state()
        instr = _load()
        stored = _warm(ag, instr, state)
        assert ag.counters["plan_cache_hits"] == 0
        hit = ag.plan(instr, state)
        assert ag.counters["plan_cache_hits"] == 1
        assert hit.kind == stored.kind
        assert np.array_equal(hit.touched, stored.touched)

    def test_cold_tlb_plan_is_not_cached(self):
        ag = AddressGenerators()
        ag.plan(_load(), _state())
        assert ag.counters["plan_cache_misses"] >= 1
        assert ag.counters["plan_cache_hits"] == 0

    def test_rebase_shifts_every_address(self):
        ag = AddressGenerators()
        state = _state(base=0x10000)
        instr = _load()
        stored = _warm(ag, instr, state)
        # same key class (base mod BANK_PERIOD unchanged), new base
        state.sregs.write(1, 0x10000 + BANK_PERIOD)
        rebased = ag.plan(instr, state)
        assert ag.counters["plan_cache_hits"] == 1
        assert np.array_equal(np.asarray(rebased.touched),
                              np.asarray(stored.touched) + BANK_PERIOD)

    def test_vl_change_changes_key(self):
        ag = AddressGenerators()
        state = _state(vl=128)
        instr = _load()
        _warm(ag, instr, state)
        state.ctrl.set_vl(64)
        before = ag.counters["plan_cache_hits"]
        short = ag.plan(instr, state)
        assert ag.counters["plan_cache_hits"] == before
        assert len(short.touched) == 64

    def test_masked_key_includes_mask_bits(self):
        ag = AddressGenerators()
        state = _state()
        instr = _load(masked=True)
        mask = np.zeros(128, dtype=bool)
        mask[::2] = True
        state.ctrl.set_vm(mask)
        _warm(ag, instr, state)
        hits = ag.counters["plan_cache_hits"]
        ag.plan(instr, state)
        assert ag.counters["plan_cache_hits"] == hits + 1
        # flip one mask bit: same vl/vs/base, different plan key
        mask2 = mask.copy()
        mask2[1] = True
        state.ctrl.set_vm(mask2)
        changed = ag.plan(instr, state)
        assert ag.counters["plan_cache_hits"] == hits + 1
        assert len(changed.touched) == int(mask2.sum())

    def test_invalidate_plans(self):
        ag = AddressGenerators()
        state = _state()
        _warm(ag, _load(), state)
        assert ag._plan_cache
        ag.invalidate_plans()
        assert not ag._plan_cache
        assert ag.counters["plan_cache_invalidations"] == 1
        # invalidating an already-empty cache is not an event
        ag.invalidate_plans()
        assert ag.counters["plan_cache_invalidations"] == 1

    def test_cached_plan_is_cycle_identical(self):
        """A rebased/hit plan prices identically to a fresh build."""
        cached = AddressGenerators()
        fresh = AddressGenerators()
        instr = _load()
        state = _state()
        _warm(cached, instr, state)
        _warm(fresh, instr, state)      # TLB hot in both generators
        for base in (0x10000, 0x10000 + BANK_PERIOD, 0x10000 + 3 * BANK_PERIOD):
            state.sregs.write(1, base)
            a = cached.plan(instr, state)
            fresh.invalidate_plans()
            b = fresh.plan(instr, state)
            assert a.kind == b.kind
            assert a.addr_gen_cycles == b.addr_gen_cycles
            assert a.tlb_penalty == b.tlb_penalty == 0.0
            assert a.quadwords == b.quadwords
            assert np.array_equal(np.asarray(a.touched), np.asarray(b.touched))
        assert cached.counters["plan_cache_hits"] >= 2
