"""Vbox issue ports, rename allocator, completion unit, lane structure."""

import pytest

from repro.errors import ConfigError
from repro.isa.instructions import TimingClass
from repro.vbox.issue import VboxIssue
from repro.vbox.lanes import LaneConfig, N_LANES, TOTAL_UNITS, lane_of_element
from repro.vbox.rename import RenameAllocator
from repro.vbox.vcu import COMPLETION_BUS_WIDTH, CompletionUnit, \
    RENAME_BUS_WIDTH


class TestIssuePorts:
    def test_full_vector_occupies_port_8_cycles(self):
        """Section 3.2: port busy ceil(vl/16) cycles, 'typically 8'."""
        issue = VboxIssue()
        assert issue.occupancy(128, TimingClass.FP) == 8.0
        assert issue.occupancy(16, TimingClass.FP) == 1.0
        assert issue.occupancy(17, TimingClass.FP) == 2.0

    def test_two_ports_give_two_instructions_in_flight(self):
        issue = VboxIssue()
        s1, _ = issue.issue_arithmetic(0.0, 128, TimingClass.FP)
        s2, _ = issue.issue_arithmetic(0.0, 128, TimingClass.FP)
        s3, _ = issue.issue_arithmetic(0.0, 128, TimingClass.FP)
        assert s1 == 0.0 and s2 == 0.0
        assert s3 == 8.0  # third instruction waits for a port

    def test_dual_issue_window_drives_32_units(self):
        """'A simple dual-issue window is able to fully utilize 32
        functional units': 2 ports x 16 lanes."""
        assert TOTAL_UNITS == 32
        issue = VboxIssue()
        for _ in range(10):
            issue.issue_arithmetic(0.0, 128, TimingClass.FP)
        total = issue.north.busy_cycles + issue.south.busy_cycles
        assert total == 10 * 8.0

    def test_ports_balance_under_ties(self):
        issue = VboxIssue()
        for i in range(8):
            issue.issue_arithmetic(i * 100.0, 128, TimingClass.FP)
        assert issue.north.busy_cycles == issue.south.busy_cycles

    def test_divide_is_partially_pipelined(self):
        issue = VboxIssue()
        assert issue.occupancy(128, TimingClass.FP_DIV) > \
            issue.occupancy(128, TimingClass.FP)

    def test_latency_classes(self):
        issue = VboxIssue()
        assert issue.latency(TimingClass.INT) < issue.latency(TimingClass.FP)
        assert issue.latency(TimingClass.FP) < \
            issue.latency(TimingClass.FP_DIV)
        with pytest.raises(ConfigError):
            issue.latency(TimingClass.MEM)

    def test_zero_vl_minimal_occupancy(self):
        assert VboxIssue().occupancy(0, TimingClass.FP) == 1.0


class TestRenameAllocator:
    def test_allocates_freely_within_pool(self):
        r = RenameAllocator(physical=48, architectural=32)
        for i in range(16):
            assert r.allocate(0.0, 100.0) == 0.0

    def test_stalls_when_pool_exhausted(self):
        r = RenameAllocator(physical=34, architectural=32)
        r.allocate(0.0, 50.0)
        r.allocate(0.0, 60.0)
        start = r.allocate(0.0, 70.0)
        assert start == 50.0   # waits for the oldest release
        assert r.counters["rename_stalls"] == 1
        assert r.stall_cycles == 50.0

    def test_releases_refill_pool(self):
        r = RenameAllocator(physical=33, architectural=32)
        r.allocate(0.0, 10.0)
        assert r.available_at(11.0) == 1

    def test_rejects_degenerate_pool(self):
        with pytest.raises(ConfigError):
            RenameAllocator(physical=32, architectural=32)


class TestCompletionUnit:
    def test_rename_bus_is_3_wide(self):
        """Section 3.3: 'a 3-instruction bus carries renamed
        instructions from the EV8 renaming unit to the Vbox'."""
        vcu = CompletionUnit()
        assert RENAME_BUS_WIDTH == 3
        assert vcu.deliver(0.0, count=3) == 1.0
        assert vcu.deliver(0.0, count=4) == 3.0  # second group queues

    def test_completion_bus_is_3_wide(self):
        vcu = CompletionUnit()
        assert COMPLETION_BUS_WIDTH == 3
        vcu.complete(0.0, count=6)
        assert vcu.retired == 6

    def test_counters(self):
        vcu = CompletionUnit()
        vcu.deliver(0.0, 5)
        vcu.complete(0.0, 5)
        assert vcu.counters["delivered"] == 5
        assert vcu.counters["completed"] == 5


class TestLaneStructure:
    def test_sixteen_identical_lanes(self):
        assert N_LANES == 16
        assert lane_of_element(0) == 0
        assert lane_of_element(17) == 1
        assert lane_of_element(127) == 15

    def test_register_file_slice_geometry(self):
        cfg = LaneConfig()
        assert cfg.elements_per_register == 8   # 128 / 16 lanes

    def test_operand_bandwidth_figure(self):
        """Section 3.2: '64+32 operands per cycle' between file and FUs."""
        assert LaneConfig().operand_bandwidth_per_cycle == 96

    def test_smt_forces_a_large_file(self):
        """Section 3.3: multithreading 'forced using a much larger
        register file'."""
        cfg = LaneConfig()
        single_thread = cfg.physical_registers_per_thread * \
            cfg.elements_per_register
        assert cfg.regfile_elements_per_lane == 4 * single_thread

    def test_mask_file_is_tiny(self):
        cfg = LaneConfig()
        assert cfg.mask_bits == 256
        assert (cfg.mask_read_ports, cfg.mask_write_ports) == (3, 2)
