"""Conflict-free reordering: the section-3.4 theorem, executed.

The paper proves that strided accesses with a small power-of-two factor
can be reordered into 8 slices that are both L2-bank and register-lane
conflict-free.  These tests verify our constructive schedule delivers
exactly that for every reorderable stride class, and that
self-conflicting strides are refused (they go to the CR box).
"""

import numpy as np
import pytest

from repro.isa.registers import MVL
from repro.vbox.reorder import (
    bank_pattern,
    conflict_free_schedule,
    is_reorderable,
    schedule_cache_info,
)
from repro.vbox.slices import SLICE_SIZE, Slice

# quadword strides sigma * 2^s; with 16 banks x 64B lines the geometry
# admits reordering for byte strides sigma * 2^k, k <= 6
REORDERABLE_BYTE_STRIDES = [8, 16, 24, 32, 40, 48, 56, 64, 72, 88, 104,
                            120, 8 * 13, 8 * 5, 16 * 3, 32 * 5, 64 * 9,
                            -8, -24, -64]
SELF_CONFLICTING_BYTE_STRIDES = [128, 256, 512, 1024, 128 * 3, 256 * 5,
                                 -128, 4096]


def _slices_of(base, stride):
    schedule = conflict_free_schedule(base, stride)
    out = []
    for sid, group in enumerate(schedule):
        addrs = (np.uint64(base) +
                 (np.int64(stride) * group).astype(np.int64).view(np.uint64))
        out.append(Slice(sid, group, addrs))
    return out


class TestReorderableStrides:
    @pytest.mark.parametrize("stride", REORDERABLE_BYTE_STRIDES)
    def test_classified_reorderable(self, stride):
        assert is_reorderable(0x10000, stride)

    @pytest.mark.parametrize("stride", REORDERABLE_BYTE_STRIDES)
    def test_schedule_partitions_all_elements(self, stride):
        schedule = conflict_free_schedule(0x10000, stride)
        assert len(schedule) == MVL // SLICE_SIZE
        seen = np.concatenate(schedule)
        assert sorted(seen.tolist()) == list(range(MVL))

    @pytest.mark.parametrize("stride", REORDERABLE_BYTE_STRIDES)
    @pytest.mark.parametrize("base", [0, 0x40, 0x88, 0x3F8, 0x10238])
    def test_slices_conflict_free(self, stride, base):
        for s in _slices_of(base, stride):
            assert s.is_lane_conflict_free(), f"lane conflict: {s.elements}"
            assert s.is_bank_conflict_free(), \
                f"bank conflict stride={stride} base={base:#x}: {s.banks()}"

    def test_unit_stride_schedulable_without_pump(self):
        # with the pump disabled, stride-1 takes this path (Figure 9)
        for s in _slices_of(0x2000, 8):
            assert s.is_conflict_free()


class TestSelfConflictingStrides:
    @pytest.mark.parametrize("stride", SELF_CONFLICTING_BYTE_STRIDES)
    def test_classified_self_conflicting(self, stride):
        assert not is_reorderable(0x10000, stride)

    @pytest.mark.parametrize("stride", SELF_CONFLICTING_BYTE_STRIDES)
    def test_schedule_refuses(self, stride):
        with pytest.raises(ValueError):
            conflict_free_schedule(0x10000, stride)

    def test_stride_zero_is_self_conflicting(self):
        assert not is_reorderable(0x10000, 0)


class TestBankPattern:
    def test_unit_stride_pattern(self):
        banks = bank_pattern(0, 8)
        # 8 consecutive quadwords share a line, hence a bank
        assert banks[0] == banks[7] == 0
        assert banks[8] == 1
        assert banks[127] == 15

    def test_base_offset_shifts_banks(self):
        assert bank_pattern(0x40, 8)[0] == 1

    def test_counts_uniform_for_odd_stride(self):
        counts = np.bincount(bank_pattern(0, 8 * 7), minlength=16)
        assert np.all(counts == 8)


class TestScheduleMemoization:
    def test_rom_is_shared_across_bases_with_same_residue(self):
        before = schedule_cache_info().currsize
        conflict_free_schedule(0x12345400, 24)
        conflict_free_schedule(0x400, 24)  # same (stride, base) residues
        after = schedule_cache_info()
        assert after.currsize <= before + 1

    def test_dependence_only_on_residues(self):
        a = conflict_free_schedule(0x1000, 40)
        b = conflict_free_schedule(0x1000 + 1024 * 7, 40 + 1024 * 3)
        assert [x.tolist() for x in a] == [y.tolist() for y in b]
