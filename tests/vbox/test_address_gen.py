"""Address generators: path selection and slice planning."""

import numpy as np
import pytest

from repro.isa.instructions import Instruction
from repro.isa.registers import ArchState
from repro.vbox.address_gen import AddressGenerators


def _state(vs=8, vl=128, base=0x100000, rb=1):
    state = ArchState()
    state.ctrl.set_vs(vs)
    state.ctrl.set_vl(vl)
    state.sregs.write(rb, base)
    return state


class TestPathSelection:
    def test_unit_stride_takes_pump(self):
        plan = AddressGenerators().plan(Instruction("vloadq", vd=1, rb=1),
                                        _state(vs=8))
        assert plan.kind == "pump"
        assert all(s.pump for s in plan.slices)

    def test_unit_stride_without_pump_reorders(self):
        gens = AddressGenerators(pump_enabled=False)
        plan = gens.plan(Instruction("vloadq", vd=1, rb=1), _state(vs=8))
        assert plan.kind == "reordered"
        assert len(plan.slices) == 8

    def test_odd_stride_reorders(self):
        plan = AddressGenerators().plan(Instruction("vloadq", vd=1, rb=1),
                                        _state(vs=8 * 7))
        assert plan.kind == "reordered"
        assert len(plan.slices) == 8
        assert all(s.is_conflict_free() for s in plan.slices)

    def test_self_conflicting_stride_goes_to_cr(self):
        gens = AddressGenerators()
        plan = gens.plan(Instruction("vloadq", vd=1, rb=1), _state(vs=1024))
        assert plan.kind == "cr"
        assert gens.counters["self_conflicting_strides"] == 1

    def test_gather_goes_to_cr(self, rng):
        state = _state()
        offsets = (rng.integers(0, 1 << 16, 128) * 8).astype(np.uint64)
        state.vregs.write(2, offsets)
        plan = AddressGenerators().plan(
            Instruction("vgathq", vd=3, vb=2, rb=1), state)
        assert plan.kind == "cr"
        packed = sum(s.valid_count for s in plan.slices)
        assert packed == 128


class TestPumpPlans:
    def test_aligned_full_vector_is_16_lines_one_slice(self):
        plan = AddressGenerators().plan(Instruction("vloadq", vd=1, rb=1),
                                        _state(base=0x100000))
        assert len(plan.slices) == 1
        assert plan.slices[0].valid_count == 16
        assert plan.quadwords == 128

    def test_misaligned_spans_17_lines_two_slices(self):
        plan = AddressGenerators().plan(Instruction("vloadq", vd=1, rb=1),
                                        _state(base=0x100008))
        lines = sum(s.valid_count for s in plan.slices)
        assert lines == 17
        assert len(plan.slices) == 2

    def test_full_line_store_flagged(self):
        plan = AddressGenerators().plan(Instruction("vstoreq", va=1, rb=1),
                                        _state(base=0x100000))
        assert plan.is_write
        assert plan.slices[0].full_line_write

    def test_misaligned_store_not_full_line(self):
        plan = AddressGenerators().plan(Instruction("vstoreq", va=1, rb=1),
                                        _state(base=0x100008))
        assert not all(s.full_line_write for s in plan.slices)

    def test_short_vl_covers_fewer_lines(self):
        plan = AddressGenerators().plan(Instruction("vloadq", vd=1, rb=1),
                                        _state(vl=32))
        assert plan.slices[0].valid_count == 4  # 32 qw = 4 lines
        assert plan.quadwords == 32


class TestReorderedPlans:
    def test_short_vl_still_pays_8_cycles(self):
        plan = AddressGenerators().plan(Instruction("vloadq", vd=1, rb=1),
                                        _state(vs=24, vl=16))
        assert plan.addr_gen_cycles == 8.0
        assert sum(s.valid_count for s in plan.slices) == 16

    def test_masked_elements_dropped(self):
        state = _state(vs=24)
        vm = np.zeros(128, dtype=bool)
        vm[:64] = True
        state.ctrl.set_vm(vm)
        plan = AddressGenerators().plan(
            Instruction("vloadq", vd=1, rb=1, masked=True), state)
        assert sum(s.valid_count for s in plan.slices) == 64


class TestEdgeCases:
    def test_vl_zero_is_empty_plan(self):
        plan = AddressGenerators().plan(Instruction("vloadq", vd=1, rb=1),
                                        _state(vl=0))
        assert plan.kind == "empty"
        assert plan.slices == []

    def test_non_memory_instruction_rejected(self):
        with pytest.raises(ValueError):
            AddressGenerators().plan(Instruction("vvaddq", va=1, vb=2, vd=3),
                                     _state())

    def test_prefetch_flagged(self):
        plan = AddressGenerators().plan(Instruction("vloadq", vd=31, rb=1),
                                        _state())
        assert plan.is_prefetch
